"""ALTO format: adaptive bit allocation, construction, partitioning, and
data-driven format selection.

The encode/decode property tests cover the adaptive-allocation edge cases
the fixed Morton interleave cannot represent compactly: extents near and
over 2^20, non-power-of-two shapes, and strongly non-uniform mode widths
(keys spilling into a second 64-bit word).
"""

import numpy as np
import pytest

from repro.analysis.model import FormatStats, format_stats
from repro.core.hicoo import HicooTensor
from repro.core.tuner import choose_format
from repro.formats import FORMAT_NAMES, as_format
from repro.formats.alto import AltoTensor
from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor
from repro.util.bitops import (alto_decode, alto_encode, alto_positions,
                               alto_widths, bits_for)
from tests.conftest import make_random_coo


# ----------------------------------------------------------------------
# adaptive bit allocation: widths, positions, round-trip
# ----------------------------------------------------------------------
def test_alto_widths_size_to_extents():
    assert alto_widths((8, 8, 8)) == (3, 3, 3)
    assert alto_widths((9, 8, 8)) == (4, 3, 3)  # 9 needs 4 bits (max idx 8)
    assert alto_widths((1, 1)) == (1, 1)  # degenerate modes keep one bit
    assert alto_widths((2 ** 20, 3, 1000)) == (20, 2, 10)
    assert alto_widths((2 ** 20 + 1, 2)) == (21, 1)
    with pytest.raises(ValueError):
        alto_widths((0, 4))


def test_alto_positions_round_robin_lsb_first():
    # widths (3, 1, 2): mode bits are dealt round-robin from the LSB,
    # skipping exhausted modes — the ALTO paper's allocation rule
    pos = alto_positions((3, 1, 2))
    assert pos == ((0, 3, 5), (1,), (2, 4))
    total = sorted(b for mode in pos for b in mode)
    assert total == list(range(6))  # a permutation: no gaps, no overlaps


@pytest.mark.parametrize("shape", [
    (25, 18, 12),                  # non-power-of-two, uniform-ish
    (2 ** 20 - 1, 37, 5),          # near 2^20
    (2 ** 20 + 3, 37, 5),          # over 2^20 (21-bit mode)
    (2 ** 25, 2 ** 25, 2 ** 25),   # 75 bits: two-word keys
    (11, 9, 14, 7, 3),             # 5-mode, tiny odd extents
    (1, 130, 9),                   # degenerate mode
])
def test_alto_encode_decode_round_trip(shape):
    rng = np.random.default_rng(hash(shape) % (2 ** 32))
    coords = np.stack(
        [rng.integers(0, s, 257, dtype=np.uint64) for s in shape])
    # force the extremes in: index 0 and the max index of every mode
    coords[:, 0] = 0
    coords[:, 1] = np.array([s - 1 for s in shape], dtype=np.uint64)
    widths = alto_widths(shape)
    words = alto_encode(coords, widths)
    assert words.shape == (-(-sum(widths) // 64), coords.shape[1])
    back = alto_decode(words, widths)
    assert np.array_equal(back, coords)


def test_alto_tensor_round_trips_indices_exactly():
    shape = (2 ** 20 + 3, 37, 5)
    coo = make_random_coo(shape, 500, seed=3)
    alto = AltoTensor(coo)
    back = alto.to_coo()
    # same (index, value) multiset; ALTO stores them key-sorted
    order = np.argsort(alto.source_order)
    assert np.array_equal(back.indices[order], coo.indices)
    assert np.array_equal(back.values[order], coo.values)


# ----------------------------------------------------------------------
# construction: shared sort with MortonContext, storage, caching
# ----------------------------------------------------------------------
def test_alto_shares_morton_sort_for_uniform_widths():
    from repro.obs import metrics

    coo = make_random_coo((32, 32, 32), 400, seed=5)  # uniform 5-bit widths
    coo.morton_context()  # the HiCOO-side sort, paid once
    was_enabled = metrics.enabled()
    metrics.enable()
    try:
        before = metrics.value("convert.alto_shared_sorts")
        AltoTensor(coo)
        assert metrics.value("convert.alto_shared_sorts") == before + 1
    finally:
        if not was_enabled:
            metrics.disable()


def test_alto_context_memoized_on_coo():
    coo = make_random_coo((25, 18, 12), 300, seed=6)
    assert coo.alto_context() is coo.alto_context()
    a1 = AltoTensor(coo)
    a2 = AltoTensor(coo)
    assert a1.keys is a2.keys  # both ride the same cached context


def test_alto_storage_and_cache_accounting():
    coo = make_random_coo((25, 18, 12), 300, seed=7)
    alto = AltoTensor(coo)
    storage = alto.storage_bytes()
    assert storage["keys"] == 8 * alto.keys.shape[0] * alto.nnz
    assert storage["values"] == 4 * alto.nnz
    assert alto.cache_nbytes() == 0  # nothing materialized yet
    alto.mode_view(0)
    assert alto.cache_nbytes() > 0
    alto.clear_cache()
    assert alto.cache_nbytes() == 0


# ----------------------------------------------------------------------
# equal-nnz partitioning: row-disjoint, load-balanced
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nthreads", [1, 2, 3, 7, 64])
def test_alto_schedule_row_disjoint_and_balanced(nthreads):
    coo = make_random_coo((40, 30, 20), 800, seed=8)
    alto = AltoTensor(coo)
    for mode in range(3):
        part = alto.schedule(mode, nthreads)
        rows = alto.mode_view(mode).ginds[:, mode]
        assert int(part.thread_nnz.sum()) == alto.nnz
        seen_hi = -1
        for lo, hi in part.ranges:
            if lo == hi:
                continue
            assert lo == 0 or rows[lo] != rows[lo - 1]  # cut at row boundary
            assert rows[lo] > seen_hi  # row-disjoint, ascending
            seen_hi = int(rows[hi - 1])


def test_alto_schedule_balances_skewed_rows():
    # one hot row holds half the nonzeros; equal-nnz splitting must still
    # spread the rest instead of handing one thread everything (the HiCOO
    # superblock schedule's worst case)
    rng = np.random.default_rng(9)
    nnz = 600
    r = np.where(rng.random(nnz) < 0.5, 0, rng.integers(1, 50, nnz))
    idx = np.stack([r, rng.integers(0, 40, nnz), rng.integers(0, 30, nnz)],
                   axis=1)
    coo = CooTensor((50, 40, 30), idx,
                    rng.standard_normal(nnz).astype(np.float32))
    alto = AltoTensor(coo)
    part = alto.schedule(0, 4)
    nz = part.thread_nnz[part.thread_nnz > 0]
    # the indivisible hot row caps balance at ~nnz/2 per thread
    assert nz.max() <= int(0.7 * alto.nnz)
    assert len(nz) >= 3


# ----------------------------------------------------------------------
# data-driven format selection
# ----------------------------------------------------------------------
def _blocked_coo(seed=10):
    """Nonzeros clustered into dense 16^3 blocks: HiCOO's regime."""
    rng = np.random.default_rng(seed)
    pts = []
    for _ in range(12):
        base = rng.integers(0, 4, 3) * 16
        pts.append(base + rng.integers(0, 16, (120, 3)))
    idx = np.unique(np.concatenate(pts), axis=0)
    return CooTensor((64, 64, 64), idx,
                     rng.standard_normal(len(idx)).astype(np.float32))


def _skewed_coo(seed=11):
    """Hyper-sparse with Zipf-skewed mode 0: ALTO's regime."""
    rng = np.random.default_rng(seed)
    nnz = 4000
    r = np.minimum((rng.zipf(1.3, nnz) - 1) % 100000, 99999)
    idx = np.stack([r, rng.integers(0, 5000, nnz),
                    rng.integers(0, 500, nnz)], axis=1)
    return CooTensor((100000, 5000, 500), idx,
                     rng.standard_normal(nnz).astype(np.float32))


def test_choose_format_on_fixtures():
    assert choose_format(_blocked_coo()) == "hicoo"
    assert choose_format(_skewed_coo()) == "alto"
    tiny = make_random_coo((6, 6, 6), 30, seed=12)
    assert choose_format(tiny) == "coo"


def test_choose_format_is_pure_and_deterministic():
    # same recorded stats -> same pick, no tensor needed
    stats = FormatStats(nnz=5000, nmodes=3, shape=(1000, 1000, 1000),
                        alpha_b=0.95, mode_skew=40.0, fiber_reuse=1.1)
    picks = {choose_format(stats=stats) for _ in range(5)}
    assert picks == {"alto"}
    csf_stats = FormatStats(nnz=5000, nmodes=3, shape=(100, 100, 100),
                            alpha_b=0.8, mode_skew=2.0, fiber_reuse=4.0)
    assert choose_format(stats=csf_stats) == "csf"
    # measured stats agree with themselves across calls
    coo = _skewed_coo()
    assert format_stats(coo) == format_stats(coo)
    with pytest.raises(ValueError):
        choose_format()


def test_format_stats_blocked_vs_skewed_separation():
    blocked = format_stats(_blocked_coo())
    skewed = format_stats(_skewed_coo())
    assert blocked.alpha_b < 0.5 < skewed.alpha_b
    assert skewed.mode_skew > 8.0 >= blocked.mode_skew


# ----------------------------------------------------------------------
# as_format / cp_als / CLI exposure
# ----------------------------------------------------------------------
def test_as_format_all_names():
    coo = make_random_coo((20, 15, 10), 200, seed=13)
    for name in FORMAT_NAMES:
        t = as_format(coo, name)
        assert t.format_name == name
        # conversion is value-preserving
        assert abs(t.to_coo().norm() - coo.norm()) < 1e-12
    assert as_format(coo, "coo") is coo  # already there: no copy
    alto = AltoTensor(coo)
    assert as_format(alto, "alto") is alto
    with pytest.raises(ValueError, match="unknown format"):
        as_format(coo, "dok")


def test_cp_als_format_kwarg():
    from repro.cpd.cp_als import cp_als

    coo = make_random_coo((15, 12, 10), 250, seed=14, values="uniform")
    base = cp_als(coo, 3, maxiters=3, seed=0)
    for fmt in ("alto", "auto"):
        res = cp_als(coo, 3, maxiters=3, seed=0, format=fmt)
        assert res.iterations == base.iterations
        assert res.fits[-1] == pytest.approx(base.fits[-1], abs=1e-8)


def test_cli_mttkrp_alto_and_info_formats(tmp_path, capsys):
    from repro.data.frostt import write_tns
    from repro.tools.cli import main

    path = tmp_path / "t.tns"
    write_tns(make_random_coo((30, 20, 10), 400, seed=15), path)
    assert main(["mttkrp", str(path), "-r", "4", "-m", "0",
                 "-f", "alto", "-t", "2"]) == 0
    out = capsys.readouterr().out
    assert "alto MTTKRP" in out

    assert main(["info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "storage formats: " + ", ".join(FORMAT_NAMES) in out
    assert "tuner would pick:" in out

    assert main(["info"]) == 0  # tensor stays optional
    out = capsys.readouterr().out
    assert "tuner would pick" not in out


# ----------------------------------------------------------------------
# analysis integration
# ----------------------------------------------------------------------
def test_alto_in_format_suite_and_work_model():
    from repro.analysis.model import build_format_suite
    from repro.analysis.traffic import mttkrp_work

    coo = make_random_coo((30, 20, 10), 300, seed=16)
    suite = build_format_suite(coo, block_bits=4)
    assert set(suite) == {"coo", "csf", "hicoo", "alto"}
    assert isinstance(suite["alto"], AltoTensor)
    w = mttkrp_work(suite["alto"], 0, 8)
    assert w.flops == 3 * 8 * coo.nnz
    assert w.atomic_updates == 0
    assert w.detail["index_bytes"] == 8 * coo.nnz + 4 * coo.nnz  # 1-word keys
