"""Tests for CP-ALS restarts and rank sweeps."""

import pytest

from repro.cpd.model_selection import RankProfile, cp_als_restarts, rank_sweep
from repro.data.synthetic import lowrank_tensor


@pytest.fixture(scope="module")
def planted():
    # 80%-dense sample of a rank-2 tensor: approximately rank-2
    return lowrank_tensor((14, 12, 10), 1340, rank=2, seed=0)


class TestRestarts:
    def test_returns_best(self, planted):
        best = cp_als_restarts(planted, 2, restarts=3, maxiters=10, seed=1)
        single = cp_als_restarts(planted, 2, restarts=1, maxiters=10, seed=1)
        assert best.final_fit >= single.final_fit - 1e-9

    def test_restart_validation(self, planted):
        with pytest.raises(ValueError):
            cp_als_restarts(planted, 2, restarts=0)

    def test_init_kwarg_rejected(self, planted):
        with pytest.raises(ValueError, match="init"):
            cp_als_restarts(planted, 2, init="random")

    def test_deterministic_given_seed(self, planted):
        a = cp_als_restarts(planted, 2, restarts=2, maxiters=5, seed=3)
        b = cp_als_restarts(planted, 2, restarts=2, maxiters=5, seed=3)
        assert a.final_fit == b.final_fit


class TestRankSweep:
    def test_profile_fields(self, planted):
        profile = rank_sweep(planted, [1, 2, 3], maxiters=8, seed=2)
        assert profile.ranks == [1, 2, 3]
        assert len(profile.fits) == 3
        assert all(s > 0 for s in profile.seconds)

    def test_fit_improves_with_rank(self, planted):
        """More components can only help the best achievable fit (in
        practice, ALS with enough iterations tracks this)."""
        profile = rank_sweep(planted, [1, 4], restarts=2, maxiters=20, seed=4)
        assert profile.fits[1] >= profile.fits[0] - 0.02

    def test_knee_detects_planted_rank(self, planted):
        profile = rank_sweep(planted, [1, 2, 3, 4], restarts=2, maxiters=25,
                             seed=5)
        knee = profile.knee(tolerance=0.05)
        assert knee <= 3  # planted rank is 2; elbow at or before 3

    def test_validation(self, planted):
        with pytest.raises(ValueError):
            rank_sweep(planted, [])
        with pytest.raises(ValueError):
            rank_sweep(planted, [0, 2])

    def test_empty_profile_knee(self):
        with pytest.raises(ValueError):
            RankProfile().knee()

    def test_best_rank_zero_tolerance(self):
        p = RankProfile(ranks=[1, 2, 3], fits=[0.3, 0.9, 0.9],
                        iterations=[1, 1, 1], seconds=[0.1, 0.1, 0.1])
        assert p.best_rank() == 2
