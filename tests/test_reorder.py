"""Tests for the reordering extension (Lexi-order, BFS-MCS, baselines)."""

import numpy as np
import pytest

from repro.cpd.cp_als import cp_als
from repro.data.synthetic import power_law_tensor
from repro.formats.coo import CooTensor
from repro.reorder import (
    alpha_effect,
    apply_permutations,
    bfs_mcs,
    bfs_mcs_mode,
    identity_permutations,
    invert_permutation,
    lexi_order,
    random_permutations,
    slice_sort_mode,
)


@pytest.fixture
def shuffled():
    """Power-law tensor with shuffled labels — locality destroyed, so a
    good reordering has something to recover."""
    return power_law_tensor((400, 400, 400), 4000, exponent=1.3,
                            shuffle_labels=True, seed=3)


class TestApply:
    def test_identity_is_noop(self, small3d):
        out = apply_permutations(small3d, identity_permutations(small3d.shape))
        assert np.array_equal(out.indices, small3d.indices)

    def test_none_entries_skip(self, small3d):
        perms = [None] * 3
        out = apply_permutations(small3d, perms)
        assert np.array_equal(out.indices, small3d.indices)

    def test_roundtrip_with_inverse(self, small3d):
        perms = random_permutations(small3d.shape, seed=1)
        fwd = apply_permutations(small3d, perms)
        back = apply_permutations(fwd, [invert_permutation(p) for p in perms])
        a = back.sort_lexicographic()
        b = small3d.sort_lexicographic()
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_values_preserved(self, small3d):
        perms = random_permutations(small3d.shape, seed=2)
        out = apply_permutations(small3d, perms)
        np.testing.assert_allclose(np.sort(out.values),
                                   np.sort(small3d.values))

    def test_norm_invariant(self, small3d):
        perms = random_permutations(small3d.shape, seed=3)
        out = apply_permutations(small3d, perms)
        assert np.isclose(out.norm(), small3d.norm())

    def test_bad_perm_length(self, small3d):
        perms = identity_permutations(small3d.shape)
        perms[0] = perms[0][:-1]
        with pytest.raises(ValueError, match="shape"):
            apply_permutations(small3d, perms)

    def test_non_permutation(self, small3d):
        perms = identity_permutations(small3d.shape)
        perms[1] = np.zeros_like(perms[1])
        with pytest.raises(ValueError, match="not a permutation"):
            apply_permutations(small3d, perms)

    def test_wrong_count(self, small3d):
        with pytest.raises(ValueError, match="permutations"):
            apply_permutations(small3d, [None, None])

    def test_invert(self):
        p = np.array([2, 0, 1])
        inv = invert_permutation(p)
        assert np.array_equal(inv[p], np.arange(3))


class TestLexiOrder:
    def test_returns_valid_permutations(self, small3d):
        perms = lexi_order(small3d)
        for perm, dim in zip(perms, small3d.shape):
            assert sorted(perm) == list(range(dim))

    def test_recovers_shuffled_locality(self, shuffled):
        perms = lexi_order(shuffled)
        effect = alpha_effect(shuffled, perms, block_bits=4)
        assert effect["alpha_ratio"] < 0.7, effect

    def test_identical_slices_adjacent(self):
        # slices 0 and 5 have identical patterns -> consecutive after sort
        inds = [[0, 1], [0, 3], [5, 1], [5, 3], [2, 0]]
        coo = CooTensor((6, 4), inds, np.ones(5))
        perm = slice_sort_mode(coo, 0)
        assert abs(int(perm[0]) - int(perm[5])) == 1

    def test_empty_slices_last(self):
        coo = CooTensor((5, 3), [[0, 0], [4, 1]], [1.0, 1.0])
        perm = slice_sort_mode(coo, 0)
        # slices 1,2,3 are empty -> new positions 2,3,4
        assert sorted(int(perm[i]) for i in (1, 2, 3)) == [2, 3, 4]

    def test_mode_restriction(self, small3d):
        perms = lexi_order(small3d, modes=[0])
        assert np.array_equal(perms[1], np.arange(small3d.shape[1]))
        assert np.array_equal(perms[2], np.arange(small3d.shape[2]))

    def test_iterations_validation(self, small3d):
        with pytest.raises(ValueError):
            lexi_order(small3d, iterations=0)

    def test_single_mode_tensor(self):
        coo = CooTensor((8,), [[2], [5]], [1.0, 2.0])
        perms = lexi_order(coo)
        assert sorted(perms[0]) == list(range(8))


class TestBfsMcs:
    def test_returns_valid_permutations(self, small3d):
        perms = bfs_mcs(small3d)
        for perm, dim in zip(perms, small3d.shape):
            assert sorted(perm) == list(range(dim))

    def test_recovers_shuffled_locality(self, shuffled):
        perms = bfs_mcs(shuffled)
        effect = alpha_effect(shuffled, perms, block_bits=4)
        assert effect["alpha_ratio"] < 0.7, effect

    def test_connected_slices_get_close(self):
        # two groups of slices sharing fibers; groups must not interleave
        inds = ([[i, 0] for i in (0, 2, 4)] +  # group A shares fiber 0
                [[i, 7] for i in (1, 3, 5)])   # group B shares fiber 7
        coo = CooTensor((6, 8), inds, np.ones(6))
        perm = bfs_mcs_mode(coo, 0)
        pos_a = sorted(int(perm[i]) for i in (0, 2, 4))
        pos_b = sorted(int(perm[i]) for i in (1, 3, 5))
        # each group occupies a contiguous range
        assert pos_a[-1] - pos_a[0] == 2
        assert pos_b[-1] - pos_b[0] == 2

    def test_empty_tensor(self):
        coo = CooTensor.empty((5, 5))
        perms = bfs_mcs(coo)
        assert np.array_equal(perms[0], np.arange(5))

    def test_mode_restriction(self, small3d):
        perms = bfs_mcs(small3d, modes=[2])
        assert np.array_equal(perms[0], np.arange(small3d.shape[0]))


class TestReorderingSemantics:
    def test_random_reorder_degrades(self, shuffled):
        """Random permutation of an already-shuffled tensor should not
        improve blocking."""
        perms = random_permutations(shuffled.shape, seed=9)
        effect = alpha_effect(shuffled, perms, block_bits=4)
        assert effect["alpha_ratio"] > 0.9

    def test_cp_fit_invariant_under_reordering(self, small3d, rng):
        """Reordering relabels indices; CP-ALS fits are identical when the
        initial factors are relabelled the same way."""
        perms = bfs_mcs(small3d)
        reordered = apply_permutations(small3d, perms)
        init = [rng.random((s, 2)) for s in small3d.shape]
        init_re = [f[invert_permutation(p)] for f, p in zip(init, perms)]
        a = cp_als(small3d, 2, maxiters=3, tol=0.0, init=init)
        b = cp_als(reordered, 2, maxiters=3, tol=0.0, init=init_re)
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-9)

    def test_mttkrp_consistent_after_reordering(self, small3d, rng):
        perms = lexi_order(small3d)
        reordered = apply_permutations(small3d, perms)
        factors = [rng.random((s, 3)) for s in small3d.shape]
        re_factors = [f[invert_permutation(p)] for f, p in zip(factors, perms)]
        for mode in range(3):
            orig = small3d.mttkrp(factors, mode)
            remapped = reordered.mttkrp(re_factors, mode)
            # row new_i of the reordered output is row old_i = inv[new_i]
            # of the original output
            np.testing.assert_allclose(
                remapped, orig[invert_permutation(perms[mode])], atol=1e-10)
