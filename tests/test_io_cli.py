"""Tests for HiCOO binary serialization and the command-line interface."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.core.io import load_hicoo, save_hicoo
from repro.data.frostt import write_tns
from repro.tools.cli import build_parser, main
from tests.conftest import make_random_coo


class TestHicooIO:
    def test_roundtrip(self, small3d, tmp_path):
        hic = HicooTensor(small3d, block_bits=3)
        path = tmp_path / "t.hicoo"
        save_hicoo(hic, path)
        back = load_hicoo(path)
        assert back.shape == hic.shape
        assert back.block_bits == hic.block_bits
        np.testing.assert_array_equal(back.bptr, hic.bptr)
        np.testing.assert_array_equal(back.binds, hic.binds)
        np.testing.assert_array_equal(back.einds, hic.einds)
        np.testing.assert_allclose(back.values, hic.values)

    def test_loaded_tensor_computes(self, small3d, tmp_path, rng):
        hic = HicooTensor(small3d, block_bits=3)
        path = tmp_path / "t.hicoo"
        save_hicoo(hic, path)
        back = load_hicoo(path)
        factors = [rng.random((s, 3)) for s in small3d.shape]
        np.testing.assert_allclose(back.mttkrp(factors, 0),
                                   hic.mttkrp(factors, 0), atol=1e-12)

    def test_exact_filename_kept(self, small3d, tmp_path):
        """np.savez normally appends .npz; save_hicoo must not."""
        hic = HicooTensor(small3d, block_bits=2)
        path = tmp_path / "exact.hicoo"
        save_hicoo(hic, path)
        assert path.exists()
        assert not (tmp_path / "exact.hicoo.npz").exists()

    def test_type_check(self, small3d, tmp_path):
        with pytest.raises(TypeError):
            save_hicoo(small3d, tmp_path / "x.hicoo")

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.hicoo"
        np.savez(path.open("wb"), version=np.int64(1))
        with pytest.raises(ValueError, match="missing"):
            load_hicoo(path)

    def test_wrong_version_rejected(self, small3d, tmp_path):
        hic = HicooTensor(small3d, block_bits=2)
        path = tmp_path / "v.hicoo"
        save_hicoo(hic, path)
        with np.load(path) as a:
            data = {k: a[k] for k in a.files}
        data["version"] = np.int64(99)
        np.savez(path.open("wb"), **data)
        with pytest.raises(ValueError, match="version"):
            load_hicoo(path)

    def test_corrupt_bptr_rejected(self, small3d, tmp_path):
        hic = HicooTensor(small3d, block_bits=2)
        path = tmp_path / "c.hicoo"
        save_hicoo(hic, path)
        with np.load(path) as a:
            data = {k: a[k] for k in a.files}
        data["bptr"] = data["bptr"][:-1]
        np.savez(path.open("wb"), **data)
        with pytest.raises(ValueError, match="bptr"):
            load_hicoo(path)

    def test_offset_overflow_rejected(self, small3d, tmp_path):
        hic = HicooTensor(small3d, block_bits=2)
        path = tmp_path / "o.hicoo"
        save_hicoo(hic, path)
        with np.load(path) as a:
            data = {k: a[k] for k in a.files}
        data["einds"] = data["einds"] + np.uint8(1 << 3)
        np.savez(path.open("wb"), **data)
        with pytest.raises(ValueError, match="offset|shape"):
            load_hicoo(path)


@pytest.fixture
def tns_file(tmp_path):
    # positive values so the CP-APR subcommand (count data) also accepts it
    coo = make_random_coo((40, 30, 20), 400, seed=21, values="uniform")
    path = tmp_path / "t.tns"
    write_tns(coo, path)
    return str(path)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["inspect", "x.tns"])
        assert args.command == "inspect"

    def test_inspect(self, tns_file, capsys):
        assert main(["inspect", tns_file]) == 0
        out = capsys.readouterr().out
        assert "nonzeros  : 400" in out
        assert "alpha_b" in out

    def test_convert_and_storage(self, tns_file, tmp_path, capsys):
        out_path = str(tmp_path / "t.hicoo")
        assert main(["convert", tns_file, out_path, "--block-bits", "3"]) == 0
        assert main(["storage", out_path]) == 0
        out = capsys.readouterr().out
        assert "hicoo" in out and "csf" in out

    def test_mttkrp_all_formats(self, tns_file, capsys):
        for fmt in ("coo", "csf", "hicoo"):
            assert main(["mttkrp", tns_file, "-f", fmt, "-r", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("MTTKRP") == 3

    def test_mttkrp_parallel(self, tns_file, capsys):
        assert main(["mttkrp", tns_file, "-t", "4", "-r", "4"]) == 0
        assert "strategy=" in capsys.readouterr().out

    def test_cpd(self, tns_file, capsys):
        assert main(["cpd", tns_file, "-r", "2", "--maxiters", "2"]) == 0
        out = capsys.readouterr().out
        assert "iter   1" in out and "fit" in out

    def test_reorder(self, tns_file, tmp_path, capsys):
        out_path = str(tmp_path / "re.tns")
        assert main(["reorder", tns_file, out_path, "--method", "bfs"]) == 0
        assert "alpha_b" in capsys.readouterr().out

    def test_dataset(self, tmp_path, capsys):
        out_path = str(tmp_path / "d.tns")
        assert main(["dataset", "vast", out_path, "--scale", "0.2"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_dataset_unknown(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "nope", str(tmp_path / "x.tns")])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["inspect", "/nonexistent/file.tns"])


class TestCliExtensions:
    def test_cpd_apr(self, tns_file, capsys):
        assert main(["cpd", tns_file, "--method", "apr", "-r", "2",
                     "--maxiters", "2"]) == 0
        out = capsys.readouterr().out
        assert "logL" in out

    def test_tune(self, tns_file, capsys):
        assert main(["tune", tns_file, "-r", "4", "-t", "4", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out and "scoreboard" in out

    def test_inspect_viz(self, tns_file, capsys):
        assert main(["inspect", tns_file, "--viz"]) == 0
        assert "block density" in capsys.readouterr().out

    def test_tucker(self, tns_file, capsys):
        assert main(["tucker", tns_file, "-r", "2", "--maxiters", "2"]) == 0
        out = capsys.readouterr().out
        assert "core=" in out

    def test_profile_flag_writes_collapsed_stacks(self, tns_file, tmp_path,
                                                  capsys):
        out_path = tmp_path / "prof.folded"
        assert main(["mttkrp", tns_file, "-r", "4", "-t", "2",
                     "--warmup", "3", "--profile", str(out_path)]) == 0
        assert "[profile]" in capsys.readouterr().out
        text = out_path.read_text()
        # every line is "frame;frame;... count", scoped to the subcommand
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert count.isdigit()
            assert stack.startswith("cli.mttkrp")

    def test_metrics_port_serves_during_command(self, tns_file, capsys):
        import re
        from urllib.request import urlopen

        assert main(["cpd", tns_file, "-r", "2", "--maxiters", "2",
                     "--metrics-port", "0"]) == 0
        out = capsys.readouterr().out
        url = re.search(r"serving (http://127\.0\.0\.1:\d+)/metrics", out)
        assert url is not None, out
        # the endpoint lived only for the command's duration
        with pytest.raises(OSError):
            urlopen(url.group(1) + "/metrics", timeout=2)

    def test_info_prefix_prints_labeled_snapshot(self, tns_file, capsys):
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset()
        # populate the registry in-process, then print a filtered view
        assert main(["mttkrp", tns_file, "-r", "4", "-t", "2"]) == 0
        assert main(["info", "--prefix", "mttkrp."]) == 0
        out = capsys.readouterr().out
        assert "metrics (prefix='mttkrp.'):" in out
        assert "mttkrp.parallel_calls" in out
        assert 'format="hicoo"' in out
        assert "gather.cache_hits" not in out  # filtered out by the prefix
