"""Unit tests for the dense reference tensor."""

import numpy as np
import pytest

from repro.formats.dense import DenseTensor, khatri_rao


class TestKhatriRao:
    def test_two_matrices(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0], [9.0, 10.0]])
        kr = khatri_rao([a, b])
        assert kr.shape == (6, 2)
        # row (i*3 + j) = a[i] * b[j]
        np.testing.assert_allclose(kr[0], a[0] * b[0])
        np.testing.assert_allclose(kr[2], a[0] * b[2])
        np.testing.assert_allclose(kr[5], a[1] * b[2])

    def test_single_matrix(self):
        a = np.ones((3, 2))
        np.testing.assert_allclose(khatri_rao([a]), a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            khatri_rao([])

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            khatri_rao([np.ones((2, 2)), np.ones((2, 3))])

    def test_associativity_of_sizes(self):
        mats = [np.random.default_rng(i).random((d, 4)) for i, d in enumerate((2, 3, 5))]
        kr = khatri_rao(mats)
        assert kr.shape == (30, 4)


class TestDenseTensor:
    def test_unfold_known(self):
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        u0 = DenseTensor(x).unfold(0)
        assert u0.shape == (2, 12)
        np.testing.assert_allclose(u0[0], x[0].ravel())

    def test_unfold_all_modes_shapes(self):
        x = np.zeros((2, 3, 4, 5))
        t = DenseTensor(x)
        for mode, dim in enumerate(x.shape):
            assert t.unfold(mode).shape == (dim, x.size // dim)

    def test_mttkrp_vs_explicit(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 5, 6))
        t = DenseTensor(x)
        factors = [rng.normal(size=(s, 3)) for s in x.shape]
        # explicit computation element by element
        for mode in range(3):
            ref = np.zeros((x.shape[mode], 3))
            for idx in np.ndindex(*x.shape):
                for r in range(3):
                    prod = x[idx]
                    for m in range(3):
                        if m != mode:
                            prod *= factors[m][idx[m], r]
                    ref[idx[mode], r] += prod
            np.testing.assert_allclose(t.mttkrp(factors, mode), ref, atol=1e-10)

    def test_mttkrp_1mode(self):
        x = np.array([1.0, 2.0, 3.0])
        out = DenseTensor(x).mttkrp([np.ones((3, 4))], 0)
        np.testing.assert_allclose(out, np.repeat(x[:, None], 4, axis=1))

    def test_ttv(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4, 5))
        v = rng.normal(size=4)
        got = DenseTensor(x).ttv(v, 1).array
        np.testing.assert_allclose(got, np.tensordot(x, v, axes=(1, 0)))

    def test_norm_and_nnz(self):
        x = np.array([[1.0, 0.0], [0.0, 2.0]])
        t = DenseTensor(x)
        assert np.isclose(t.norm(), np.sqrt(5))
        assert t.nnz == 2

    def test_to_coo(self):
        x = np.array([[1.0, 0.0], [0.0, 2.0]])
        coo = DenseTensor(x).to_coo()
        assert coo.nnz == 2
        np.testing.assert_allclose(coo.to_dense(), x)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            DenseTensor(np.float64(3.0))

    def test_storage_bytes(self):
        t = DenseTensor(np.zeros((2, 3)))
        assert t.storage_bytes()["values"] == 6 * 8
