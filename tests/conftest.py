"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.coo import CooTensor


def make_random_coo(shape, nnz, seed=0, values="normal"):
    """Random COO tensor with distinct coordinates (test helper)."""
    rng = np.random.default_rng(seed)
    space = int(np.prod(shape))
    if nnz > space:
        raise ValueError("too many nonzeros for the shape")
    flat = rng.choice(space, size=nnz, replace=False)
    inds = np.stack(np.unravel_index(flat, shape), axis=1)
    if values == "normal":
        vals = rng.normal(size=nnz)
    else:
        vals = rng.random(nnz) + 0.1
    return CooTensor(shape, inds, vals, sum_duplicates=False)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small3d():
    """30 x 20 x 10 tensor with 300 nonzeros."""
    return make_random_coo((30, 20, 10), 300, seed=7)


@pytest.fixture
def small4d():
    """12 x 9 x 17 x 8 tensor with 250 nonzeros."""
    return make_random_coo((12, 9, 17, 8), 250, seed=11)


@pytest.fixture
def factors3d(small3d, rng):
    return [rng.normal(size=(s, 6)) for s in small3d.shape]


@pytest.fixture
def factors4d(small4d, rng):
    return [rng.normal(size=(s, 5)) for s in small4d.shape]
