"""Tests for the sorted-COO segment-reduction MTTKRP."""

import numpy as np
import pytest

from repro.formats.coo import CooTensor
from repro.kernels.coo_variants import (
    build_all_plans,
    build_sort_plan,
    mttkrp_sorted,
)


class TestSortPlan:
    def test_order_sorts_target_mode(self, small3d):
        plan = build_sort_plan(small3d, 1)
        keys = small3d.indices[plan.order, 1]
        assert np.all(np.diff(keys) >= 0)

    def test_segments_cover_nnz(self, small3d):
        plan = build_sort_plan(small3d, 0)
        assert plan.segments[0] == 0
        assert plan.segments[-1] == small3d.nnz
        assert np.all(np.diff(plan.segments) > 0)

    def test_rows_are_distinct_and_sorted(self, small3d):
        plan = build_sort_plan(small3d, 2)
        assert np.all(np.diff(plan.rows) > 0)
        assert len(plan.rows) == len(np.unique(small3d.indices[:, 2]))

    def test_stability(self, small3d):
        """Within a segment (equal keys) the original order survives."""
        plan = build_sort_plan(small3d, 0)
        for row_start, row_end in zip(plan.segments[:-1], plan.segments[1:]):
            seg = plan.order[row_start:row_end]
            assert np.all(np.diff(seg) > 0)

    def test_empty_tensor(self):
        plan = build_sort_plan(CooTensor.empty((3, 3)), 0)
        assert len(plan.rows) == 0
        assert list(plan.segments) == [0]

    def test_build_all_plans(self, small3d):
        plans = build_all_plans(small3d)
        assert [p.mode for p in plans] == [0, 1, 2]


class TestMttkrpSorted:
    def test_matches_baseline(self, small3d, factors3d):
        for mode in range(3):
            np.testing.assert_allclose(
                mttkrp_sorted(small3d, factors3d, mode),
                small3d.mttkrp(factors3d, mode), atol=1e-10)

    def test_4d(self, small4d, factors4d):
        for mode in range(4):
            np.testing.assert_allclose(
                mttkrp_sorted(small4d, factors4d, mode),
                small4d.mttkrp(factors4d, mode), atol=1e-10)

    def test_with_precomputed_plan(self, small3d, factors3d):
        plan = build_sort_plan(small3d, 1)
        a = mttkrp_sorted(small3d, factors3d, 1, plan=plan)
        b = mttkrp_sorted(small3d, factors3d, 1)
        np.testing.assert_allclose(a, b)

    def test_plan_mode_mismatch(self, small3d, factors3d):
        plan = build_sort_plan(small3d, 0)
        with pytest.raises(ValueError, match="mode"):
            mttkrp_sorted(small3d, factors3d, 1, plan=plan)

    def test_empty(self):
        t = CooTensor.empty((4, 5))
        out = mttkrp_sorted(t, [np.ones((4, 2)), np.ones((5, 2))], 0)
        assert np.all(out == 0)

    def test_single_row_output(self):
        """All nonzeros in one slice: one segment, one output row."""
        t = CooTensor((5, 4), [[2, 0], [2, 1], [2, 3]], [1.0, 2.0, 3.0])
        fs = [np.ones((5, 2)), np.arange(8, dtype=float).reshape(4, 2)]
        out = mttkrp_sorted(t, fs, 0)
        np.testing.assert_allclose(out, t.mttkrp(fs, 0))
        assert np.count_nonzero(out.sum(axis=1)) == 1
