"""Tests for CP-APR (Poisson CP decomposition)."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.cpd.cp_apr import cp_apr
from repro.cpd.ktensor import KruskalTensor
from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor


@pytest.fixture(scope="module")
def count_tensor():
    """Poisson counts sampled from a planted rank-2 nonnegative model."""
    rng = np.random.default_rng(5)
    shape = (20, 15, 10)
    true = KruskalTensor(np.array([8000.0, 5000.0]),
                         [rng.dirichlet(np.ones(s), 2).T for s in shape])
    rates = true.full()
    counts = rng.poisson(rates)
    return CooTensor.from_dense(counts.astype(np.float64)), true


class TestConvergence:
    def test_log_likelihood_monotone(self, count_tensor):
        coo, _ = count_tensor
        res = cp_apr(coo, 2, maxiters=15, tol=0.0, seed=0)
        lls = np.array(res.log_likelihoods)
        assert np.all(np.diff(lls) > -1e-6), lls

    def test_converges(self, count_tensor):
        coo, _ = count_tensor
        res = cp_apr(coo, 2, maxiters=200, tol=1e-6, seed=1)
        assert res.converged
        assert res.iterations < 200

    def test_recovers_planted_factors(self, count_tensor):
        coo, true = count_tensor
        res = cp_apr(coo, 2, maxiters=80, tol=1e-9, seed=2)
        assert res.ktensor.congruence(true) > 0.85

    def test_total_mass_tracked(self, count_tensor):
        """At a Poisson MLE, the model's total mass matches the data's."""
        coo, _ = count_tensor
        res = cp_apr(coo, 2, maxiters=100, tol=1e-9, seed=3)
        kt = res.ktensor
        col_sums = np.ones(2)
        for f in kt.factors:
            col_sums = col_sums * f.sum(axis=0)
        assert np.isclose(kt.weights @ col_sums, coo.values.sum(), rtol=0.01)


class TestInterface:
    def test_nonnegative_factors_maintained(self, count_tensor):
        coo, _ = count_tensor
        res = cp_apr(coo, 3, maxiters=10, seed=4)
        assert all(f.min() >= 0 for f in res.ktensor.factors)
        assert res.ktensor.weights.min() >= 0

    def test_negative_values_rejected(self):
        coo = CooTensor((3, 3), [[0, 0]], [-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            cp_apr(coo, 1)

    def test_negative_init_rejected(self, count_tensor):
        coo, _ = count_tensor
        init = [-np.ones((s, 2)) for s in coo.shape]
        with pytest.raises(ValueError, match="non-negative"):
            cp_apr(coo, 2, init=init)

    def test_bad_rank_and_iters(self, count_tensor):
        coo, _ = count_tensor
        with pytest.raises(ValueError):
            cp_apr(coo, 0)
        with pytest.raises(ValueError):
            cp_apr(coo, 2, maxiters=0)
        with pytest.raises(ValueError):
            cp_apr(coo, 2, inner_iters=0)

    def test_init_rank_mismatch(self, count_tensor):
        coo, _ = count_tensor
        init = [np.ones((s, 3)) for s in coo.shape]
        with pytest.raises(ValueError, match="rank"):
            cp_apr(coo, 2, init=init)

    def test_seed_reproducibility(self, count_tensor):
        coo, _ = count_tensor
        a = cp_apr(coo, 2, maxiters=5, tol=0.0, seed=7)
        b = cp_apr(coo, 2, maxiters=5, tol=0.0, seed=7)
        np.testing.assert_allclose(a.log_likelihoods, b.log_likelihoods)

    def test_empty_tensor(self):
        res = cp_apr(CooTensor.empty((4, 4)), 1, maxiters=2)
        assert res.iterations >= 1


class TestFormatGeneric:
    def test_same_trace_across_formats(self, count_tensor, rng):
        coo, _ = count_tensor
        init = [rng.random((s, 2)) + 0.1 for s in coo.shape]
        runs = [
            cp_apr(t, 2, maxiters=4, tol=0.0, init=init)
            for t in (coo, CsfTensor(coo), HicooTensor(coo, block_bits=3))
        ]
        for other in runs[1:]:
            np.testing.assert_allclose(runs[0].log_likelihoods,
                                       other.log_likelihoods, atol=1e-8)
