"""Equivalence matrix: every format x strategy x planned/unplanned MTTKRP
path must agree with the dense reference to 1e-10, including the new
scatter backends (this is the acceptance gate of the gather/scatter layer).
"""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.formats.alto import AltoTensor
from repro.formats.csf import CsfTensor
from repro.formats.dense import DenseTensor
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from tests.conftest import make_random_coo

CASES = [
    ("3mode", (25, 18, 12), 400, 2),
    ("4mode", (11, 9, 14, 7), 300, 2),
]

STRATEGIES = {
    "coo": ["auto", "privatize", "atomic"],
    "hicoo": ["auto", "schedule", "privatize"],
    "csf": ["auto", "subtree", "privatize"],
    "alto": ["auto", "schedule", "privatize"],
}


def _suite(shape, nnz, block_bits, seed):
    coo = make_random_coo(shape, nnz, seed=seed)
    return coo, {
        "coo": coo,
        "hicoo": HicooTensor(coo, block_bits=block_bits),
        "csf": CsfTensor(coo),
        "alto": AltoTensor(coo),
    }


def _dense_reference(coo, factors, mode):
    return DenseTensor(coo.to_dense()).mttkrp(factors, mode)


@pytest.mark.parametrize("name,shape,nnz,bits", CASES)
def test_equivalence_matrix(name, shape, nnz, bits):
    coo, suite = _suite(shape, nnz, bits, seed=len(shape))
    rng = np.random.default_rng(42)
    factors = [rng.normal(size=(s, 5)) for s in shape]
    for mode in range(len(shape)):
        ref = _dense_reference(coo, factors, mode)
        # sequential kernel of every format
        for fmt, tensor in suite.items():
            np.testing.assert_allclose(
                tensor.mttkrp(factors, mode), ref, atol=1e-10,
                err_msg=f"{name}: sequential {fmt} mode {mode}")
        # parallel, all strategies, several widths
        for fmt, tensor in suite.items():
            for strategy in STRATEGIES[fmt]:
                for nthreads in (1, 3, 5):
                    run = mttkrp_parallel(tensor, factors, mode, nthreads,
                                          strategy=strategy)
                    np.testing.assert_allclose(
                        run.output, ref, atol=1e-10,
                        err_msg=f"{name}: {fmt}/{strategy} "
                                f"P={nthreads} mode {mode}")


@pytest.mark.parametrize("name,shape,nnz,bits", CASES)
@pytest.mark.parametrize("strategy", ["auto", "schedule", "privatize"])
def test_planned_equivalence(name, shape, nnz, bits, strategy):
    coo, suite = _suite(shape, nnz, bits, seed=len(shape))
    hic = suite["hicoo"]
    rng = np.random.default_rng(7)
    factors = [rng.normal(size=(s, 4)) for s in shape]
    plan = plan_mttkrp(hic, rank=4, nthreads=4, strategy=strategy)
    for mode in range(len(shape)):
        ref = _dense_reference(coo, factors, mode)
        run = mttkrp_parallel(hic, factors, mode, 4, plan=plan)
        np.testing.assert_allclose(
            run.output, ref, atol=1e-10,
            err_msg=f"{name}: planned {strategy} mode {mode}")
        # second call hits the cached gathers and must stay identical
        again = mttkrp_parallel(hic, factors, mode, 4, plan=plan)
        np.testing.assert_allclose(again.output, run.output, atol=0)
        assert again.scatter_backends == run.scatter_backends


def test_plan_symbolic_work_is_cached():
    """CP-ALS-style reuse: the plan's gather arrays are built once and the
    very same objects serve every later call (symbolic cost paid once)."""
    coo = make_random_coo((30, 24, 16), 500, seed=9)
    hic = HicooTensor(coo, block_bits=2)
    rng = np.random.default_rng(1)
    factors = [rng.normal(size=(s, 4)) for s in hic.shape]
    plan = plan_mttkrp(hic, rank=4, nthreads=3)
    mttkrp_parallel(hic, factors, 0, 3, plan=plan)
    first = [id(tg) for tg in plan.for_mode(0).gathers]
    cache_bytes = hic.gather_cache_bytes()
    for _ in range(3):
        mttkrp_parallel(hic, factors, 0, 3, plan=plan)
    assert [id(tg) for tg in plan.for_mode(0).gathers] == first
    assert hic.gather_cache_bytes() == cache_bytes  # no new symbolic work


def test_scatter_backends_recorded():
    coo = make_random_coo((40, 30, 20), 600, seed=13)
    hic = HicooTensor(coo, block_bits=2)
    rng = np.random.default_rng(2)
    factors = [rng.normal(size=(s, 4)) for s in hic.shape]
    run = mttkrp_parallel(hic, factors, 0, 4)
    assert run.scatter_backends  # non-empty
    assert all(b in ("add_at", "reduceat", "bincount", "sort_reduceat")
               for b in run.scatter_backends)
