"""Unit tests for the compiled kernel tier and its dispatch plumbing.

These run on every host: the registry, the silent-fallback contract, the
scatter crossover policy, and — crucially — the *interpreted twins* of the
jitted/device kernels.  The numba decorators wrap plain Python functions,
so the exact loop nests CI's jit-smoke job compiles are verified
interpreted here, and the cupy tier's segmented-reduction algorithm is
array-module generic and tested with ``xp=numpy``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.cpd.cp_als import cp_als
from repro.formats.coo import CooTensor
from repro.kernels import backends, compiled
from repro.kernels.gather import (SCATTER_COMPILED_MIN_N, SCATTER_SMALL_N,
                                  choose_scatter_backend, scatter_add)
from repro.kernels.mttkrp import mttkrp
from repro.kernels.plan import plan_mttkrp
from repro.obs import metrics
from repro.parallel.executor import BACKENDS, resolve_backend, run_tasks
from repro.tools.cli import main as cli_main


def _tensor(seed=0, shape=(18, 14, 21), nnz=260, block_bits=3):
    rng = np.random.default_rng(seed)
    flat = rng.choice(int(np.prod(shape)), size=nnz, replace=False)
    inds = np.stack(np.unravel_index(flat, shape), axis=1)
    vals = rng.random(nnz) + 0.5
    coo = CooTensor(shape, inds, vals, sum_duplicates=False)
    return coo, HicooTensor(coo, block_bits=block_bits)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_shape():
    tiers = backends.detect_tiers()
    assert set(tiers) == set(backends.KERNEL_TIERS)
    assert tiers["numpy"].available
    for name in ("numba", "cupy"):
        info = tiers[name]
        # either it runs here, or the reason is a human-readable sentence
        assert info.available or info.reason
    assert "numpy" in backends.available_tiers()


def test_resolve_kernel_backend():
    assert backends.resolve_kernel_backend(None) == "numpy"
    assert backends.resolve_kernel_backend("numpy") == "numpy"
    auto = backends.resolve_kernel_backend("auto")
    assert auto == ("numba" if backends.tier_available("numba") else "numpy")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        backends.resolve_kernel_backend("tpu")


def test_unavailable_request_degrades_and_counts(monkeypatch):
    """Forcing a tier unavailable must fall back to numpy + count it."""
    fake = dict(backends.detect_tiers())
    fake["numba"] = backends.TierInfo("numba", False, "forced off (test)")
    monkeypatch.setattr(backends, "_CACHE", fake)
    metrics.reset()
    assert backends.resolve_kernel_backend("numba") == "numpy"
    assert metrics.value("kernel.fallbacks") == 1


def test_executor_accepts_compiled_backends():
    assert "numba" in BACKENDS and "cupy" in BACKENDS
    assert resolve_backend("numba") == "numba"
    report = run_tasks([lambda: 1, lambda: 2], backend="numba")
    assert report.values() == [1, 2]
    # without the dependency the region is recorded as the sim fallback
    expected = "numba" if backends.tier_available("numba") else "sim"
    assert report.backend == expected


# ----------------------------------------------------------------------
# scatter crossover: compiled tiers must never pay JIT/dispatch overhead
# on tiny scatters
# ----------------------------------------------------------------------
def test_scatter_crossover_policy():
    assert SCATTER_SMALL_N < SCATTER_COMPILED_MIN_N
    small, mid, big = SCATTER_SMALL_N, SCATTER_COMPILED_MIN_N - 1, \
        SCATTER_COMPILED_MIN_N
    # tiny inputs: add_at regardless of any compiled request
    assert choose_scatter_backend(small, 100, backend="numba",
                                  compiled_available=True) == "add_at"
    # mid-range: the NumPy ladder even when the tier is available
    assert choose_scatter_backend(mid, 100, backend="numba",
                                  compiled_available=True) == "bincount"
    assert choose_scatter_backend(mid, 100, presorted=True, backend="numba",
                                  compiled_available=True) == "reduceat"
    # at/above the crossover: the compiled tier (when available)...
    assert choose_scatter_backend(big, 100, backend="numba",
                                  compiled_available=True) == "numba"
    # ...and the NumPy ladder when it is not
    assert choose_scatter_backend(big, 100, backend="numba",
                                  compiled_available=False) == "bincount"
    # no request -> never compiled, no matter the size
    assert choose_scatter_backend(big, 100,
                                  compiled_available=True) == "bincount"
    # the GPU tier never serves host-array scatters
    assert choose_scatter_backend(big, 100, backend="cupy",
                                  compiled_available=True) == "bincount"
    assert choose_scatter_backend(0, 100, backend="numba",
                                  compiled_available=True) == "noop"


def test_scatter_add_with_backend_request_is_correct():
    """scatter_add(backend=...) must stay exact on every host."""
    rng = np.random.default_rng(3)
    n, rows, rank = SCATTER_COMPILED_MIN_N + 100, 64, 3
    idx = rng.integers(0, rows, size=n)
    acc = rng.random((n, rank))
    expect = np.zeros((rows, rank))
    np.add.at(expect, idx, acc)
    out = np.zeros((rows, rank))
    metrics.reset()
    used = scatter_add(out, idx, acc, backend="numba")
    assert np.allclose(out, expect, rtol=1e-12)
    expected_backend = ("numba" if backends.tier_available("numba")
                        else "bincount")
    assert used == expected_backend
    assert metrics.value("scatter." + used) == 1


def test_scatter_add_compiled_twin_matches_add_at():
    """The jitted scatter loop bodies, run interpreted, equal np.add.at."""
    rng = np.random.default_rng(4)
    idx = rng.integers(0, 20, size=500)
    acc2 = rng.random((500, 4))
    out = np.zeros((20, 4))
    compiled.scatter_add_compiled(out, idx, acc2)
    expect = np.zeros((20, 4))
    np.add.at(expect, idx, acc2)
    assert np.allclose(out, expect, rtol=1e-15)
    acc1 = rng.random(500)
    out1, expect1 = np.zeros(20), np.zeros(20)
    compiled.scatter_add_compiled(out1, idx, acc1)
    np.add.at(expect1, idx, acc1)
    assert np.allclose(out1, expect1, rtol=1e-15)


# ----------------------------------------------------------------------
# the kernel bodies (what numba compiles), interpreted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["schedule", "privatize"])
def test_fused_kernel_twin_matches_oracle(strategy):
    coo, hic = _tensor(seed=11)
    rng = np.random.default_rng(11)
    factors = [rng.random((s, 4)) + 0.1 for s in coo.shape]
    plan = plan_mttkrp(hic, 4, 3, strategy=strategy)
    for mode in range(coo.nmodes):
        oracle = mttkrp(hic, factors, mode)
        gathers = plan.ensure_gathers(hic, mode)
        fused = compiled.build_fused_tasks(gathers, strategy == "schedule")
        assert fused.nnz == coo.nnz
        assert len(fused.task_ptr) == len(gathers) + 1
        out = np.zeros_like(oracle)
        compiled.run_fused_mttkrp(fused, factors, mode, out)
        assert np.allclose(out, oracle, rtol=1e-12)
        # the serial kernel body must agree with the task-parallel one
        out_serial = np.zeros_like(oracle)
        compiled.run_fused_mttkrp(fused, factors, mode, out_serial,
                                  force_serial=True)
        assert np.allclose(out_serial, oracle, rtol=1e-12)


def test_segmented_mttkrp_numpy_twin_matches_oracle():
    """The cupy tier's algorithm, executed with xp=numpy."""
    coo, hic = _tensor(seed=12, shape=(25, 9, 13, 7), nnz=220)
    rng = np.random.default_rng(12)
    factors = [rng.random((s, 3)) + 0.1 for s in coo.shape]
    plan = plan_mttkrp(hic, 3, 2)
    for mode in range(coo.nmodes):
        oracle = mttkrp(hic, factors, mode)
        gathers = plan.ensure_gathers(hic, mode)
        fused = compiled.build_fused_tasks(gathers, True)
        out = np.zeros_like(oracle)
        compiled.segmented_mttkrp(np, fused.ginds, fused.values, factors,
                                  mode, out)
        assert np.allclose(out, oracle, rtol=1e-10)


def test_device_arena_uploads_once():
    coo, hic = _tensor(seed=13)
    rng = np.random.default_rng(13)
    factors = [rng.random((s, 4)) + 0.1 for s in coo.shape]
    plan = plan_mttkrp(hic, 4, 2)
    gathers = plan.ensure_gathers(hic, 0)
    fused = compiled.build_fused_tasks(gathers, True)
    arena = compiled.DeviceArena(xp=np)
    metrics.reset()
    oracle = mttkrp(hic, factors, 0)
    out1 = arena.run(0, fused, factors, coo.shape[0], 4)
    out2 = arena.run(0, fused, factors, coo.shape[0], 4)
    assert np.allclose(out1, oracle, rtol=1e-10)
    assert np.array_equal(out1, out2)
    assert metrics.value("compiled.upload_hits") == 1  # second call: cached
    assert metrics.value("compiled.upload_bytes") > 0
    assert arena.nbytes() > 0


def test_plan_caches_fused_state():
    coo, hic = _tensor(seed=14)
    rng = np.random.default_rng(14)
    factors = [rng.random((s, 4)) + 0.1 for s in coo.shape]
    plan = plan_mttkrp(hic, 4, 2)
    metrics.reset()
    out1, _, _ = compiled.mttkrp_compiled(hic, factors, 0, plan, "numba")
    out2, _, _ = compiled.mttkrp_compiled(hic, factors, 0, plan, "numba")
    assert np.allclose(out1, out2, rtol=1e-15)
    assert metrics.value("compiled.fused_builds") == 1
    assert metrics.value("compiled.fused_hits") == 1
    assert metrics.value("scatter.numba") == 2
    assert plan.for_mode(0).compiled["fused"].nnz == coo.nnz


def test_warmup_is_noop_without_numba():
    if backends.tier_available("numba"):
        assert compiled.warmup_numba() >= 0.0
    else:
        assert compiled.warmup_numba() == 0.0


# ----------------------------------------------------------------------
# end-to-end: CP-ALS and the CLI under a compiled-tier request
# ----------------------------------------------------------------------
def test_cp_als_backend_numba_matches_default():
    coo, hic = _tensor(seed=15)
    base = cp_als(hic, 3, maxiters=5, seed=42)
    jit = cp_als(hic, 3, maxiters=5, seed=42, backend="numba")
    assert jit.iterations == base.iterations
    assert np.allclose(jit.fits, base.fits, rtol=1e-8)


def test_cli_info_reports_tiers(capsys):
    assert cli_main(["info"]) == 0
    out = capsys.readouterr().out
    assert "kernel tiers:" in out
    assert "numpy " in out and "numba " in out and "cupy " in out
    for name in ("numba", "cupy"):
        if not backends.tier_available(name):
            assert "unavailable" in out
    assert "execution backends:" in out


def test_cli_mttkrp_backend_numba(tmp_path):
    from repro.data.frostt import write_tns

    coo, _ = _tensor(seed=16)
    path = tmp_path / "t.tns"
    write_tns(coo, path)
    assert cli_main(["mttkrp", str(path), "-r", "4", "-t", "2",
                     "--backend", "numba"]) == 0
