"""Tests for the observability layer: span tracer + metrics registry."""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor, best_block_bits
from repro.data import load
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from repro.obs import metrics, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, validate_chrome_trace
from repro.parallel.executor import ExecutionReport, TaskResult, run_tasks


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with pristine global tracer/registry."""
    trace.disable()
    trace.clear()
    metrics.reset()
    metrics.enable()
    yield
    trace.disable()
    trace.clear()
    metrics.reset()
    metrics.enable()


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_depths(self):
        t = Tracer()
        t.enable()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner2"):
                pass
        by_name = {e.name: e for e in t.events()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner2"].depth == 1
        # children complete before the parent and nest inside its interval
        assert by_name["inner"].start_ns >= by_name["outer"].start_ns
        assert by_name["inner"].end_ns <= by_name["outer"].end_ns

    def test_span_args_and_note(self):
        t = Tracer()
        t.enable()
        with t.span("x", mode=2) as sp:
            sp.note(fit=0.5)
        (ev,) = t.events()
        assert ev.args == {"mode": 2, "fit": 0.5}

    def test_instant(self):
        t = Tracer()
        t.enable()
        t.instant("mark", k=1)
        (ev,) = t.events()
        assert ev.phase == "i" and ev.dur_ns == 0

    def test_nesting_across_threads(self):
        """Each thread nests independently; events carry the right thread."""
        t = Tracer()
        t.enable()

        def worker():
            with t.span("w.outer"):
                with t.span("w.inner"):
                    time.sleep(0.001)

        with t.span("main"):
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        events = t.events()
        assert len(events) == 1 + 4 * 2
        outers = [e for e in events if e.name == "w.outer"]
        inners = [e for e in events if e.name == "w.inner"]
        # worker spans are top-level in their own thread, never nested
        # under the main thread's open span
        assert all(e.depth == 0 for e in outers)
        assert all(e.depth == 1 for e in inners)
        assert len({e.thread for e in outers}) == 4
        for inner in inners:
            parent = next(o for o in outers if o.thread == inner.thread)
            assert parent.start_ns <= inner.start_ns
            assert inner.end_ns <= parent.end_ns

    def test_disabled_hot_path_allocates_nothing(self):
        """Disabled spans return one shared singleton — no event, and the
        argless call allocates no per-call object at all."""
        t = Tracer()
        assert t.span("a") is t.span("b")
        assert trace.span("a") is trace.span("b")
        with trace.span("a"):
            pass
        assert trace.get_tracer().nevents == 0

    def test_disabled_overhead_is_small(self):
        """A disabled span costs < 10 us/call even on a loaded machine."""
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with trace.span("probe", mode=0):
                pass
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 10e-6

    def test_enable_clears_by_default(self):
        t = Tracer()
        t.enable()
        with t.span("stale"):
            pass
        t.enable()
        assert t.nevents == 0


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestChromeExport:
    def _traced(self):
        t = Tracer()
        t.enable()
        with t.span("a", k=1):
            with t.span("b"):
                pass
        t.instant("mark")
        return t

    def test_schema_valid(self):
        doc = self._traced().to_chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "X" in phases and "M" in phases and "i" in phases

    def test_json_serializable_with_numpy_args(self, tmp_path):
        t = Tracer()
        t.enable()
        with t.span("np", alpha=np.float64(0.5), n=np.int64(3)):
            pass
        path = tmp_path / "trace.json"
        t.save(path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["args"]["alpha"] == 0.5

    def test_timestamps_relative_and_ordered(self):
        doc = self._traced().to_chrome_trace()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        a = next(e for e in xs if e["name"] == "a")
        b = next(e for e in xs if e["name"] == "b")
        assert a["ts"] <= b["ts"]
        assert b["ts"] + b["dur"] <= a["ts"] + a["dur"] + 1e-6

    def test_report_and_stopwatch_aggregate(self):
        t = self._traced()
        lines = t.report()
        assert any("a" in ln for ln in lines)
        sw = t.to_stopwatch()
        assert sw.timers["a"].count == 1
        assert sw.timers["b"].elapsed <= sw.timers["a"].elapsed

    def test_coverage_with_root_span(self):
        t = Tracer()
        t.enable()
        with t.span("root"):
            with t.span("child"):
                pass
        assert t.coverage() == pytest.approx(1.0)

    def test_coverage_with_gap(self):
        t = Tracer()
        t.enable()
        with t.span("first"):
            time.sleep(0.002)
        time.sleep(0.004)
        with t.span("second"):
            time.sleep(0.002)
        assert t.coverage() < 0.95

    def test_validator_catches_problems(self):
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0,
                                "ts": -1, "dur": "oops"}]}
        problems = validate_chrome_trace(bad)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 2.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == pytest.approx(2.0)
        assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 3.0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError):
            reg.set_gauge("x", 1.0)

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry()
        reg.enabled = False
        reg.inc("c")
        reg.observe("h", 1.0)
        assert reg.snapshot() == {}

    def test_thread_safe_increments(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.inc("hits")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert reg.value("hits") == 8000

    def test_report_lines(self):
        reg = MetricsRegistry()
        reg.inc("a.count", 3)
        reg.observe("a.hist", 2.0)
        lines = reg.report()
        assert len(lines) == 2
        assert lines[0].startswith("a.count")
        assert "mean=2" in lines[1]


# ----------------------------------------------------------------------
# instrumented subsystems
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_convert_cache_counters(self):
        coo = load("uber")
        coo.clear_convert_cache()
        HicooTensor(coo, block_bits=4)          # context build
        best_block_bits(coo)                    # context hit
        HicooTensor(coo, block_bits=4)          # decompose hit
        snap = metrics.snapshot()
        assert snap["convert.context_builds"] == 1
        assert snap["convert.context_hits"] >= 1
        assert snap["convert.decompose_builds"] == 1
        assert snap["convert.decompose_hits"] >= 1
        assert snap["convert.cache_bytes"] > 0

    def test_gather_cache_counters(self):
        coo = load("uber")
        hic = HicooTensor(coo, block_bits=4)
        metrics.reset()
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 4)) for s in coo.shape]
        plan = plan_mttkrp(hic, 4, 2, strategy="schedule")
        plan.ensure_gathers(hic)
        misses = metrics.value("gather.cache_misses")
        assert misses >= 1
        for _ in range(2):
            mttkrp_parallel(hic, factors, 0, 2, plan=plan)
        snap = metrics.snapshot()
        assert snap["gather.cache_hits"] >= 2
        assert snap["gather.cache_misses"] == misses  # warm runs add none
        assert snap["gather.cache_bytes"] > 0

    def test_mttkrp_trace_spans(self):
        coo = load("uber")
        hic = HicooTensor(coo, block_bits=4)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 4)) for s in coo.shape]
        trace.enable()
        mttkrp_parallel(hic, factors, 1, 2)
        trace.disable()
        events = trace.events()
        par = [e for e in events if e.name == "mttkrp.parallel"]
        assert len(par) == 1
        assert par[0].args["mode"] == 1
        assert "strategy" in par[0].args and "imbalance" in par[0].args
        tasks = [e for e in events if e.name == "executor.task"]
        assert len(tasks) == 2
        # executor tasks nest under the kernel span
        assert all(e.depth == par[0].depth + 1 for e in tasks)

    def test_executor_metrics(self):
        run_tasks([lambda: 1, lambda: 2])
        snap = metrics.snapshot()
        assert snap["executor.tasks"] == 2
        assert snap["executor.regions"] == 1
        assert snap["executor.load_imbalance"] >= 1.0
        assert snap["executor.task_seconds"]["count"] == 2

    def test_cpals_iteration_spans(self):
        from repro.cpd.cp_als import cp_als

        coo = load("uber")
        hic = HicooTensor(coo, block_bits=4)
        trace.enable()
        cp_als(hic, rank=2, maxiters=2, seed=0)
        trace.disable()
        events = trace.events()
        iters = [e for e in events if e.name == "cpals.iter"]
        assert len(iters) == 2
        for e in iters:
            assert "fit" in e.args
            assert e.args["alpha_b"] == pytest.approx(hic.block_ratio())
            assert e.args["c_b"] == pytest.approx(hic.avg_slice_size())
        root = next(e for e in events if e.name == "cpals")
        assert root.args["iterations"] == 2
        # sequential kernels route through the dispatch span too
        assert sum(e.name == "mttkrp.seq" for e in events) == 2 * hic.nmodes


# ----------------------------------------------------------------------
# ExecutionReport edge cases (satellite)
# ----------------------------------------------------------------------
class TestExecutionReportEdges:
    def test_zero_tasks(self):
        report = ExecutionReport()
        assert report.load_imbalance() == 1.0
        assert report.makespan() == 0.0
        assert report.total_work_time() == 0.0

    def test_one_task(self):
        report = ExecutionReport(results=[TaskResult(tid=0, elapsed=0.5)])
        assert report.load_imbalance() == pytest.approx(1.0)

    def test_one_task_zero_elapsed(self):
        report = ExecutionReport(results=[TaskResult(tid=0, elapsed=0.0)])
        assert report.load_imbalance() == 1.0

    def test_run_tasks_empty(self):
        report = run_tasks([])
        assert report.nthreads == 0
        assert report.load_imbalance() == 1.0
