"""Differential fuzz suite: the parallel backends against the sequential
oracle.

Randomized tensors (orders 3-5; uniform, skewed, and hyper-sparse
patterns) x modes x block bits x thread/worker counts, checked as:

* ``sim`` and ``thread`` backends vs. the sequential oracle;
* the ``process`` backend vs. the ``sim`` backend — **bit-identical**:
  both execute exactly the same per-task gather/multiply/scatter chunks,
  so any drift means the shared-memory path corrupted structure or used a
  different partition;
* every backend vs. the sequential oracle — within a tight ULP budget on
  positive-valued tensors (different scatter-add backends may reduce a
  row's contributions in a different association order, which is the only
  permitted difference; privatized paths add one cross-worker reduction).

The suite counts every (tensor, mode, backend, strategy) comparison it ran
and asserts the total is >= 200, so the coverage floor of the acceptance
criterion is enforced by the tests themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.formats.alto import AltoTensor
from repro.formats.coo import CooTensor
from repro.kernels.backends import tier_available, tier_reason
from repro.kernels.mttkrp import mttkrp, mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from repro.parallel import procpool

#: the compiled tiers, each parametrized with a *visible* skip reason when
#: its dependency is absent (CI's default jobs show exactly why)
COMPILED_TIERS = [
    pytest.param(t, marks=pytest.mark.skipif(
        not tier_available(t), reason=tier_reason(t) or f"{t} unavailable"))
    for t in ("numba", "cupy")
]

#: ULP budget for paths that reassociate row reductions: the oracle may
#: accumulate a row with sequential ``bincount`` while a parallel task uses
#: pairwise ``add.reduceat``, and privatized runs add one cross-worker sum.
#: Reassociating a k-term all-positive sum perturbs the result by O(k) ULP
#: at worst; with <= ~100 contributions per row the observed worst case
#: across the seeds below is 7 ULP.  Bitwise identity is still asserted
#: where it is guaranteed (process vs. sim: identical partitions/kernels).
MAX_ULP = 8.0

#: running count of executed comparisons (asserted >= 200 at the end)
CASES = {"count": 0}


def _random_coo(seed: int) -> CooTensor:
    """Random tensor with one of three structural regimes."""
    rng = np.random.default_rng(seed)
    order = int(rng.integers(3, 6))
    pattern = ("uniform", "skewed", "hypersparse")[seed % 3]
    if pattern == "hypersparse":
        shape = tuple(int(rng.integers(24, 64)) for _ in range(order))
        nnz = int(rng.integers(8, 40))
    else:
        shape = tuple(int(rng.integers(6, 28)) for _ in range(order))
        space = int(np.prod(shape))
        nnz = int(min(space // 2, rng.integers(60, 400)))
    if pattern == "skewed":
        # cluster mode-0 on a handful of hot slices (Zipf-ish skew)
        hot = rng.integers(0, shape[0], size=max(1, shape[0] // 6))
        cols = [rng.choice(hot, size=nnz)]
        cols += [rng.integers(0, s, size=nnz) for s in shape[1:]]
        inds = np.stack(cols, axis=1)
        inds = np.unique(inds, axis=0)
        nnz = len(inds)
    else:
        space = int(np.prod(shape))
        flat = rng.choice(space, size=nnz, replace=False)
        inds = np.stack(np.unravel_index(flat, shape), axis=1)
    # positive values: reassociation stays within the ULP budget
    vals = rng.random(nnz) + 0.5
    return CooTensor(shape, inds, vals, sum_duplicates=False)


def _ulp_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise |a-b| measured in ULPs of the larger magnitude."""
    scale = np.spacing(np.maximum(np.abs(a), np.abs(b)))
    scale = np.where(scale > 0, scale, np.finfo(np.float64).tiny)
    return float((np.abs(a - b) / scale).max()) if a.size else 0.0


def _check_against_oracle(out: np.ndarray, oracle: np.ndarray, label: str):
    assert out.shape == oracle.shape, label
    ulp = _ulp_diff(out, oracle)
    assert ulp <= MAX_ULP, f"{label}: {ulp:.1f} ULP from the oracle"
    CASES["count"] += 1


@pytest.fixture(scope="module", autouse=True)
def _procpool_teardown():
    yield
    procpool.shutdown_pools()


# ----------------------------------------------------------------------
# sim / thread backends vs the sequential oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(24))
def test_sim_and_thread_match_oracle(seed):
    coo = _random_coo(seed)
    block_bits = 2 + seed % 4
    hic = HicooTensor(coo, block_bits=block_bits)
    rng = np.random.default_rng(1000 + seed)
    rank = int(rng.integers(2, 9))
    factors = [rng.random((s, rank)) + 0.1 for s in coo.shape]
    nthreads = (2, 3, 5)[seed % 3]
    for mode in range(coo.nmodes):
        oracle = mttkrp(hic, factors, mode)
        for backend in ("sim", "thread"):
            for strategy in ("schedule", "privatize"):
                run = mttkrp_parallel(hic, factors, mode, nthreads,
                                      strategy=strategy, backend=backend)
                _check_against_oracle(
                    run.output, oracle,
                    f"seed={seed} mode={mode} {backend}/{strategy}")


# ----------------------------------------------------------------------
# process backend: bit-identical to sim, ULP-close to the oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_process_backend_equivalence(seed):
    coo = _random_coo(100 + seed)
    block_bits = 2 + seed % 3
    hic = HicooTensor(coo, block_bits=block_bits)
    rng = np.random.default_rng(2000 + seed)
    rank = int(rng.integers(2, 7))
    factors = [rng.random((s, rank)) + 0.1 for s in coo.shape]
    nworkers = 2 + seed % 2
    try:
        for strategy in ("schedule", "privatize"):
            plan = plan_mttkrp(hic, rank, nworkers, strategy=strategy)
            for mode in range(coo.nmodes):
                oracle = mttkrp(hic, factors, mode)
                sim = mttkrp_parallel(hic, factors, mode, nworkers,
                                      plan=plan, backend="sim")
                proc = mttkrp_parallel(hic, factors, mode, nworkers,
                                       plan=plan, backend="process")
                assert proc.strategy == sim.strategy == strategy
                # same partition, same per-task kernels => bit-identical
                assert np.array_equal(proc.output, sim.output), (
                    f"seed={seed} mode={mode} {strategy}: process backend "
                    "diverged bitwise from the sim backend")
                CASES["count"] += 1
                _check_against_oracle(
                    proc.output, oracle,
                    f"seed={seed} mode={mode} process/{strategy}")
                assert proc.report.backend == "process"
                assert proc.report.nthreads == nworkers
                assert int(proc.thread_nnz.sum()) == coo.nnz
    finally:
        procpool.release_shared(hic)


@pytest.mark.parametrize("seed", range(4))
def test_process_backend_auto_strategy_and_warm_calls(seed):
    """Unforced strategy + repeated warm calls (CP-ALS-style reuse)."""
    coo = _random_coo(200 + seed)
    hic = HicooTensor(coo, block_bits=3)
    rng = np.random.default_rng(3000 + seed)
    factors = [rng.random((s, 4)) + 0.1 for s in coo.shape]
    try:
        for mode in range(coo.nmodes):
            oracle = mttkrp(hic, factors, mode)
            for repeat in range(2):  # second call exercises warm caches
                run = mttkrp_parallel(hic, factors, mode, 2,
                                      backend="process")
                _check_against_oracle(
                    run.output, oracle,
                    f"seed={seed} mode={mode} auto repeat={repeat}")
    finally:
        procpool.release_shared(hic)


def test_process_backend_empty_tensor():
    coo = CooTensor((8, 8, 8), np.empty((0, 3), dtype=np.int64),
                    np.empty(0), sum_duplicates=False)
    hic = HicooTensor(coo, block_bits=2)
    factors = [np.ones((8, 3)) for _ in range(3)]
    try:
        run = mttkrp_parallel(hic, factors, 0, 2, backend="process")
        assert np.array_equal(run.output, np.zeros((8, 3)))
        CASES["count"] += 1
    finally:
        procpool.release_shared(hic)


def test_process_backend_more_workers_than_blocks():
    coo = _random_coo(999)
    hic = HicooTensor(coo, block_bits=5)  # few, large blocks
    rng = np.random.default_rng(999)
    factors = [rng.random((s, 3)) + 0.1 for s in coo.shape]
    oracle = mttkrp(hic, factors, 0)
    try:
        run = mttkrp_parallel(hic, factors, 0, 6, backend="process")
        _check_against_oracle(run.output, oracle, "overprovisioned workers")
    finally:
        procpool.release_shared(hic)


def test_process_backend_rejects_non_hicoo():
    coo = _random_coo(5)
    rng = np.random.default_rng(5)
    factors = [rng.random((s, 3)) for s in coo.shape]
    with pytest.raises(ValueError, match="process"):
        mttkrp_parallel(coo, factors, 0, 2, backend="process")


# ----------------------------------------------------------------------
# compiled tiers (numba / cupy): fuzz vs the sequential oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tier", COMPILED_TIERS)
@pytest.mark.parametrize("seed", range(12))
def test_compiled_tier_matches_oracle(tier, seed):
    """Differential fuzz of the compiled tiers: orders 3-5, uniform /
    skewed / hyper-sparse regimes, both strategies, 8-ULP budget."""
    coo = _random_coo(300 + seed)
    hic = HicooTensor(coo, block_bits=2 + seed % 3)
    rng = np.random.default_rng(4000 + seed)
    rank = int(rng.integers(2, 9))
    factors = [rng.random((s, rank)) + 0.1 for s in coo.shape]
    nthreads = 2 + seed % 3
    for strategy in ("schedule", "privatize"):
        plan = plan_mttkrp(hic, rank, nthreads, strategy=strategy)
        for mode in range(coo.nmodes):
            oracle = mttkrp(hic, factors, mode)
            for repeat in range(2):  # repeat 1 = warm fused/device caches
                run = mttkrp_parallel(hic, factors, mode, nthreads,
                                      plan=plan, backend=tier)
                assert run.report.backend == tier
                _check_against_oracle(
                    run.output, oracle,
                    f"seed={seed} mode={mode} {tier}/{strategy} "
                    f"repeat={repeat}")


@pytest.mark.parametrize("tier", COMPILED_TIERS)
def test_compiled_tier_unplanned_and_empty(tier):
    coo = _random_coo(777)
    hic = HicooTensor(coo, block_bits=3)
    rng = np.random.default_rng(777)
    factors = [rng.random((s, 4)) + 0.1 for s in coo.shape]
    oracle = mttkrp(hic, factors, 0)
    run = mttkrp_parallel(hic, factors, 0, 2, backend=tier)  # plan built ad hoc
    _check_against_oracle(run.output, oracle, f"{tier} unplanned")

    empty = HicooTensor(CooTensor((8, 8, 8), np.empty((0, 3), dtype=np.int64),
                                  np.empty(0), sum_duplicates=False),
                        block_bits=2)
    ones = [np.ones((8, 3)) for _ in range(3)]
    run = mttkrp_parallel(empty, ones, 0, 2, backend=tier)
    assert np.array_equal(run.output, np.zeros((8, 3)))
    CASES["count"] += 1


# ----------------------------------------------------------------------
# compiled-tier *requests* must be safe everywhere: when the dependency is
# absent these exercise the silent NumPy fallback (and always run)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("tier", ["numba", "cupy"])
def test_compiled_request_always_matches_oracle(tier, seed):
    coo = _random_coo(400 + seed)
    hic = HicooTensor(coo, block_bits=2 + seed % 3)
    rng = np.random.default_rng(5000 + seed)
    factors = [rng.random((s, 5)) + 0.1 for s in coo.shape]
    for mode in range(coo.nmodes):
        oracle = mttkrp(hic, factors, mode)
        run = mttkrp_parallel(hic, factors, mode, 2, backend=tier)
        _check_against_oracle(run.output, oracle,
                              f"seed={seed} mode={mode} request={tier}")
        expected = tier if tier_available(tier) else "sim"
        assert run.report.backend == expected


# ----------------------------------------------------------------------
# ALTO: every backend bit-identical to the sequential COO oracle
# ----------------------------------------------------------------------
def _coo_oracle(coo: CooTensor, factors, mode: int) -> np.ndarray:
    """The sequential COO oracle: ``np.add.at`` in original input order.

    This is the definitional MTTKRP semantics (each output row accumulates
    its contributions one at a time, left to right in COO order).  ALTO
    pins its scatters to the same order (``scatter_add_sequential``), so
    its output must match *bitwise* on every backend and thread count —
    not just within the ULP budget the reassociating HiCOO paths get.
    """
    from repro.formats.coo import _row_products

    rank = factors[0].shape[1]
    out = np.zeros((coo.shape[mode], rank))
    if coo.nnz:
        acc = coo.values[:, None] * _row_products(factors, coo.indices, mode)
        np.add.at(out, coo.indices[:, mode], acc)
    return out


@pytest.mark.parametrize("seed", range(16))
def test_alto_sim_and_thread_bitwise(seed):
    coo = _random_coo(600 + seed)
    alto = AltoTensor(coo)
    rng = np.random.default_rng(6000 + seed)
    rank = int(rng.integers(2, 9))
    factors = [rng.random((s, rank)) + 0.1 for s in coo.shape]
    nthreads = (2, 3, 5)[seed % 3]
    for mode in range(coo.nmodes):
        oracle = _coo_oracle(coo, factors, mode)
        assert np.array_equal(alto.mttkrp(factors, mode), oracle), (
            f"seed={seed} mode={mode}: sequential ALTO diverged bitwise")
        CASES["count"] += 1
        for backend in ("sim", "thread"):
            run = mttkrp_parallel(alto, factors, mode, nthreads,
                                  strategy="schedule", backend=backend)
            assert np.array_equal(run.output, oracle), (
                f"seed={seed} mode={mode} alto {backend}/schedule "
                "diverged bitwise from the COO oracle")
            CASES["count"] += 1
        priv = mttkrp_parallel(alto, factors, mode, nthreads,
                               strategy="privatize")
        _check_against_oracle(priv.output, oracle,
                              f"seed={seed} mode={mode} alto privatize")
        # the format's own reduceat-based oracle stays ULP-close too
        _check_against_oracle(coo.mttkrp(factors, mode), oracle,
                              f"seed={seed} mode={mode} coo.mttkrp")


@pytest.mark.parametrize("seed", range(6))
def test_alto_process_backend_bitwise(seed):
    coo = _random_coo(700 + seed)
    alto = AltoTensor(coo)
    rng = np.random.default_rng(7000 + seed)
    rank = int(rng.integers(2, 7))
    factors = [rng.random((s, rank)) + 0.1 for s in coo.shape]
    nworkers = 2 + seed % 2
    try:
        for mode in range(coo.nmodes):
            oracle = _coo_oracle(coo, factors, mode)
            for repeat in range(2):  # second call exercises warm sessions
                run = mttkrp_parallel(alto, factors, mode, nworkers,
                                      strategy="schedule", backend="process")
                assert run.report.backend == "process"
                assert np.array_equal(run.output, oracle), (
                    f"seed={seed} mode={mode} repeat={repeat}: alto process "
                    "backend diverged bitwise from the COO oracle")
                CASES["count"] += 1
            priv = mttkrp_parallel(alto, factors, mode, nworkers,
                                   strategy="privatize", backend="process")
            _check_against_oracle(priv.output, oracle,
                                  f"seed={seed} mode={mode} alto "
                                  "process/privatize")
    finally:
        procpool.release_shared(alto)


@pytest.mark.parametrize("tier", ["numba", "cupy"])
@pytest.mark.parametrize("seed", range(6))
def test_alto_compiled_request_bitwise(tier, seed):
    """Compiled-tier requests stay bitwise: the numba scatter is a
    sequential in-order loop (same summation order as the oracle) and an
    unavailable tier — or cupy, which has no ALTO kernels yet — silently
    runs the NumPy chunks."""
    coo = _random_coo(800 + seed)
    alto = AltoTensor(coo)
    rng = np.random.default_rng(8000 + seed)
    factors = [rng.random((s, 5)) + 0.1 for s in coo.shape]
    for mode in range(coo.nmodes):
        oracle = _coo_oracle(coo, factors, mode)
        run = mttkrp_parallel(alto, factors, mode, 2, strategy="schedule",
                              backend=tier)
        assert np.array_equal(run.output, oracle), (
            f"seed={seed} mode={mode} alto request={tier} diverged bitwise")
        CASES["count"] += 1
        expected = "numba" if tier == "numba" and tier_available("numba") \
            else "sim"
        assert run.report.backend == expected


def test_alto_empty_tensor_all_backends():
    coo = CooTensor((8, 8, 8), np.empty((0, 3), dtype=np.int64),
                    np.empty(0), sum_duplicates=False)
    alto = AltoTensor(coo)
    factors = [np.ones((8, 3)) for _ in range(3)]
    try:
        assert np.array_equal(alto.mttkrp(factors, 0), np.zeros((8, 3)))
        for backend in ("sim", "thread", "process"):
            run = mttkrp_parallel(alto, factors, 0, 2, backend=backend)
            assert np.array_equal(run.output, np.zeros((8, 3)))
            CASES["count"] += 1
    finally:
        procpool.release_shared(alto)


# ----------------------------------------------------------------------
# case-count floor (keep this test LAST in the file)
# ----------------------------------------------------------------------
def test_zz_case_floor():
    """The acceptance criterion demands >= 200 randomized comparisons."""
    assert CASES["count"] >= 200, (
        f"only {CASES['count']} equivalence cases executed")
