"""Tests for the one-sort conversion pipeline (core/convert.py).

The MortonContext derives every block size's decomposition from a single
Morton encode + sort.  The contract is strict: each derived decomposition
must be *array-identical* to the direct per-``b`` path in
``core/blocking.py`` — same block order, same within-block element order,
same duplicate handling — so everything downstream (HiCOO construction,
storage accounting, the tuner) is oblivious to which path built it.
"""

import numpy as np
import pytest

from repro.core.blocking import decompose
from repro.core.convert import MortonContext, hicoo_storage_bytes
from repro.core.hicoo import HicooTensor, best_block_bits
from repro.core.streaming import ChunkedHicooBuilder, hicoo_from_chunks
from repro.formats.coo import CooTensor


def random_coo(shape, nnz, seed, duplicates=False):
    rng = np.random.default_rng(seed)
    inds = np.column_stack(
        [rng.integers(0, s, nnz) for s in shape]).astype(np.int64)
    if duplicates:
        inds[nnz // 2:] = inds[: nnz - nnz // 2]
    return CooTensor(shape, inds, rng.standard_normal(nnz))


def clustered_coo(shape, nnz, seed):
    """Nonzeros gathered around a few cluster centers (dense blocks)."""
    rng = np.random.default_rng(seed)
    centers = np.column_stack(
        [rng.integers(0, s, 8) for s in shape])
    pick = centers[rng.integers(0, len(centers), nnz)]
    jitter = rng.integers(-3, 4, size=pick.shape)
    inds = np.clip(pick + jitter, 0, np.asarray(shape) - 1).astype(np.int64)
    return CooTensor(shape, inds, rng.standard_normal(nnz))


TENSORS = [
    random_coo((60, 50, 40), 800, seed=0),
    random_coo((60, 50, 40), 800, seed=1, duplicates=True),
    random_coo((300, 20), 500, seed=2),
    random_coo((20, 15, 12, 10), 600, seed=3),
    random_coo((9, 8, 7, 6, 5), 400, seed=4),
    clustered_coo((256, 256, 256), 900, seed=5),
]


def assert_same_decomposition(a, b):
    assert a.block_bits == b.block_bits
    assert np.array_equal(a.block_ptr, b.block_ptr)
    assert np.array_equal(a.block_coords, b.block_coords)
    assert np.array_equal(a.elem_offsets, b.elem_offsets)
    assert np.array_equal(a.values, b.values)


class TestContextMatchesDirectDecompose:
    @pytest.mark.parametrize("i", range(len(TENSORS)))
    def test_all_block_sizes(self, i):
        coo = TENSORS[i]
        ctx = MortonContext(coo)
        for b in range(1, 9):
            assert_same_decomposition(ctx.decompose(b), decompose(coo, b))

    def test_multiword_codes(self):
        # dims force nmodes * nbits > 64, exercising the multi-word
        # boundary-detection path (shift_right_words across words)
        coo = random_coo((1 << 23, 1 << 23, 1 << 23), 500, seed=6)
        ctx = MortonContext(coo)
        assert ctx.nbits * ctx.nmodes > 64
        for b in (1, 4, 8):
            assert_same_decomposition(ctx.decompose(b), decompose(coo, b))

    def test_empty_tensor(self):
        coo = CooTensor.empty((10, 10, 10))
        ctx = MortonContext(coo)
        for b in (1, 8):
            assert_same_decomposition(ctx.decompose(b), decompose(coo, b))
            assert ctx.nblocks(b) == 0

    def test_duplicate_order_is_stable(self):
        # equal coordinates must keep source order, exactly like the
        # direct path's stable sorts (values differ, so order is visible)
        inds = np.tile([[3, 3, 3]], (5, 1)).astype(np.int64)
        coo = CooTensor((8, 8, 8), inds, np.arange(5.0), sum_duplicates=False)
        dec = MortonContext(coo).decompose(2)
        assert np.array_equal(dec.values, np.arange(5.0))


class TestStorageCounts:
    def test_counts_match_materialized_tensor(self):
        coo = TENSORS[0]
        ctx = MortonContext(coo)
        for b in range(1, 9):
            hic = HicooTensor(coo, block_bits=b)
            assert ctx.nblocks(b) == hic.nblocks
            assert ctx.storage_bytes(b) == hic.storage_bytes()
            assert ctx.total_bytes(b) == hic.total_bytes()

    def test_accounting_helper(self):
        bytes_ = hicoo_storage_bytes(nblocks=10, nnz=100, nmodes=3)
        assert bytes_ == {"bptr": 88, "binds": 120, "einds": 300,
                          "values": 400}


class TestBestBlockBits:
    def test_matches_per_candidate_sweep(self):
        for coo in TENSORS:
            chosen = best_block_bits(coo)
            best, best_bytes = None, None
            for b in range(1, 9):
                total = HicooTensor(coo, block_bits=b).total_bytes()
                if best_bytes is None or total <= best_bytes:
                    best, best_bytes = b, total
            assert chosen == best


class TestConstructionCache:
    def test_context_and_decompositions_memoized(self):
        coo = random_coo((40, 40, 40), 300, seed=7)
        ctx = coo.morton_context()
        assert coo.morton_context() is ctx
        dec = coo.block_decomposition(3)
        assert coo.block_decomposition(3) is dec
        # HicooTensor construction shares the same cached arrays
        hic = HicooTensor(coo, block_bits=3)
        assert hic.bptr is dec.block_ptr

    def test_clear_and_bytes(self):
        coo = random_coo((40, 40, 40), 300, seed=8)
        assert coo.convert_cache_bytes() == 0
        coo.block_decomposition(3)
        coo.lex_sort_order()
        assert coo.convert_cache_bytes() > 0
        coo.clear_convert_cache()
        assert coo.convert_cache_bytes() == 0

    def test_context_clear_keeps_sorted_codes(self):
        coo = random_coo((40, 40, 40), 300, seed=9)
        ctx = coo.morton_context()
        before = ctx.nbytes()
        ctx.decompose(2)
        assert ctx.nbytes() > before
        ctx.clear()
        assert ctx.nbytes() == before

    def test_bad_block_bits(self):
        ctx = MortonContext(random_coo((10, 10), 20, seed=10))
        for bad in (0, 9):
            with pytest.raises(ValueError, match="block_bits"):
                ctx.decompose(bad)


class TestChunkedBuilder:
    def assert_same_tensor(self, streamed, direct):
        assert np.array_equal(streamed.bptr, direct.bptr)
        assert np.array_equal(streamed.binds, direct.binds)
        assert np.array_equal(streamed.einds, direct.einds)
        assert np.allclose(streamed.values, direct.values)

    def test_matches_direct_construction(self):
        rng = np.random.default_rng(11)
        shape = (100, 80, 60)
        chunks = []
        for _ in range(13):
            inds = np.column_stack([rng.integers(0, s, 200) for s in shape])
            chunks.append((inds, rng.standard_normal(200)))
        streamed = hicoo_from_chunks(chunks, block_bits=3, shape=shape)
        direct = HicooTensor(
            CooTensor(shape, np.vstack([c[0] for c in chunks]),
                      np.concatenate([c[1] for c in chunks])), block_bits=3)
        self.assert_same_tensor(streamed, direct)

    def test_cross_chunk_duplicates_summed(self):
        inds = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.int64)
        streamed = hicoo_from_chunks(
            [(inds, np.array([1.0, 2.0])), (inds, np.array([10.0, 20.0]))],
            block_bits=2, shape=(8, 8, 8))
        assert streamed.nnz == 2
        assert sorted(streamed.values) == [11.0, 22.0]

    def test_multiword_fallback_triggers_and_matches(self):
        rng = np.random.default_rng(12)
        shape = (1 << 22, 1 << 22, 1 << 22)
        builder = ChunkedHicooBuilder(4, shape=shape)
        small = np.column_stack([rng.integers(0, 64, 150) for _ in shape])
        sv = rng.standard_normal(150)
        builder.add(small, sv)
        assert builder._raw is None  # still on the single-word path
        huge = np.column_stack([rng.integers(0, d, 150) for d in shape])
        hv = rng.standard_normal(150)
        builder.add(huge, hv)
        assert builder._raw is not None  # key > 64 bits -> fallback
        streamed = builder.finalize()
        direct = HicooTensor(
            CooTensor(shape, np.vstack([small, huge]),
                      np.concatenate([sv, hv])), block_bits=4)
        self.assert_same_tensor(streamed, direct)

    def test_validation_errors_preserved(self):
        with pytest.raises(ValueError, match="no chunks and no explicit"):
            hicoo_from_chunks([], block_bits=2)
        with pytest.raises(ValueError, match="out of declared shape"):
            hicoo_from_chunks(
                [(np.array([[5, 5]]), np.array([1.0]))],
                block_bits=2, shape=(4, 4))
        with pytest.raises(ValueError, match="modes"):
            b = ChunkedHicooBuilder(2)
            b.add(np.array([[1, 2]]), np.array([1.0]))
            b.add(np.array([[1, 2, 3]]), np.array([1.0]))
