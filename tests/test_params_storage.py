"""Unit tests for HiCOO parameter analysis and storage comparison."""

import numpy as np

from repro.core.hicoo import HicooTensor
from repro.core.params import HicooParams, analyze_block_sizes, recommend_block_bits
from repro.core.storage import StorageRow, compare_formats, format_table
from repro.data.synthetic import banded_tensor, random_tensor


class TestHicooParams:
    def test_measure_consistency(self, small3d):
        hic = HicooTensor(small3d, block_bits=4)
        params = HicooParams.measure(hic)
        assert params.block_bits == 4
        assert params.block_size == 16
        assert params.nnz == small3d.nnz
        assert np.isclose(params.alpha_b, hic.block_ratio())
        assert np.isclose(params.c_b, hic.avg_slice_size())
        assert params.total_bytes == hic.total_bytes()

    def test_compresses_well_thresholds(self):
        good = HicooParams(3, 10, 1000, 0.01, 12.5, 0, 0.0)
        bad = HicooParams(3, 990, 1000, 0.99, 0.13, 0, 0.0)
        assert good.compresses_well()
        assert not bad.compresses_well()


class TestAnalyzeBlockSizes:
    def test_full_sweep(self, small3d):
        sweep = analyze_block_sizes(small3d)
        assert [p.block_bits for p in sweep] == list(range(1, 9))

    def test_alpha_decreases_with_block_size(self, small3d):
        """Bigger blocks can only merge nonzeros, never split them."""
        sweep = analyze_block_sizes(small3d)
        nblocks = [p.nblocks for p in sweep]
        assert all(a >= b for a, b in zip(nblocks, nblocks[1:]))

    def test_recommend_minimizes_storage(self, small3d):
        rec = recommend_block_bits(small3d)
        chosen, sweep = rec["chosen"], rec["sweep"]
        assert chosen.total_bytes == min(p.total_bytes for p in sweep)


class TestCompareFormats:
    def test_rows_present(self, small3d):
        rows = compare_formats(small3d, block_bits=3)
        names = [r.format_name for r in rows]
        assert names == ["coo", "csf", "hicoo"]
        assert rows[0].ratio_to_coo == 1.0

    def test_csf_n_variant(self, small3d):
        rows = compare_formats(small3d, block_bits=3, csf_trees=(1, 3))
        names = [r.format_name for r in rows]
        assert "csf" in names and "csf-3" in names
        one = next(r for r in rows if r.format_name == "csf")
        three = next(r for r in rows if r.format_name == "csf-3")
        assert three.total_bytes > one.total_bytes

    def test_hicoo_wins_on_banded(self):
        coo = banded_tensor((2048, 2048, 2048), 20000, bandwidth=8, seed=1)
        rows = compare_formats(coo, block_bits=5)
        by_name = {r.format_name: r for r in rows}
        assert by_name["hicoo"].total_bytes < by_name["coo"].total_bytes
        assert by_name["hicoo"].compression_vs_coo() > 1.5

    def test_hicoo_degenerates_on_random(self):
        coo = random_tensor((4096, 4096, 4096), 2000, seed=1)
        rows = compare_formats(coo, block_bits=7)
        by_name = {r.format_name: r for r in rows}
        # scattered tensor: alpha_b ~ 1 so HiCOO carries per-block overhead
        assert by_name["hicoo"].total_bytes > by_name["coo"].total_bytes

    def test_totals_are_component_sums(self, small3d):
        for row in compare_formats(small3d):
            assert row.total_bytes == row.index_bytes + row.value_bytes


class TestFormatTable:
    def test_renders(self, small3d):
        rows = compare_formats(small3d)
        text = format_table(rows, title="storage")
        assert "storage" in text
        assert "hicoo" in text
        assert len(text.splitlines()) == 3 + len(rows)

    def test_compression_display(self):
        row = StorageRow("x", 100, 80, 20, 1.0, 0.5)
        assert np.isclose(row.compression_vs_coo(), 2.0)
