"""Unit tests for the lock-free superblock scheduler."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.core.scheduler import choose_strategy, schedule_mode
from repro.core.superblock import build_superblocks
from tests.conftest import make_random_coo


@pytest.fixture
def sbs(small3d):
    hic = HicooTensor(small3d, block_bits=2)
    return build_superblocks(hic, 4)


class TestScheduleMode:
    def test_bad_nthreads(self, sbs):
        with pytest.raises(ValueError):
            schedule_mode(sbs, 0, 0)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("nthreads", [1, 2, 4, 7])
    def test_schedule_is_safe(self, sbs, mode, nthreads):
        sched = schedule_mode(sbs, mode, nthreads)
        sched.verify(sbs)  # raises on conflicts or missing superblocks

    def test_group_integrity(self, sbs):
        """All superblocks sharing a mode coordinate land on one thread."""
        sched = schedule_mode(sbs, 0, 3)
        for tid, members in enumerate(sched.assignment):
            for sb in members:
                coord = int(sbs.scoords[sb, 0])
                assert sched.group_of[coord] == tid

    def test_work_conserved(self, sbs):
        sched = schedule_mode(sbs, 1, 4)
        assert sched.thread_nnz.sum() == sbs.nnz_per_superblock.sum()

    def test_single_thread_takes_all(self, sbs):
        sched = schedule_mode(sbs, 0, 1)
        assert sorted(sched.assignment[0]) == list(range(sbs.nsuper))
        assert sched.load_imbalance() == 1.0

    def test_lpt_beats_naive_balance(self):
        """LPT must balance a skewed tensor reasonably (imbalance < 2)."""
        coo = make_random_coo((64, 64, 64), 2000, seed=9)
        hic = HicooTensor(coo, block_bits=2)
        sbs = build_superblocks(hic, 3)
        sched = schedule_mode(sbs, 0, 4)
        if sched.ngroups >= 8:
            assert sched.load_imbalance() < 2.0

    def test_makespan_and_parallelism(self, sbs):
        sched = schedule_mode(sbs, 0, 2)
        assert sched.makespan() >= sbs.nnz_per_superblock.sum() / 2
        assert 1.0 <= sched.effective_parallelism() <= 2.0

    def test_verify_detects_conflict(self, sbs):
        sched = schedule_mode(sbs, 0, 2)
        # corrupt: move one superblock to the other thread
        if sched.assignment[0] and sched.assignment[1]:
            sb = sched.assignment[0][0]
            # find a second superblock with the same coordinate, if any;
            # otherwise fabricate a duplicate assignment which must also fail
            sched.assignment[1].append(sb)
            with pytest.raises(AssertionError):
                sched.verify(sbs)


class TestChooseStrategy:
    def test_small_output_privatizes(self, sbs):
        assert choose_strategy(sbs, 0, 4, output_rows=100, rank=8) == "privatize"

    def test_large_output_schedules(self, sbs):
        strat = choose_strategy(sbs, 0, 2, output_rows=10**9, rank=64,
                                privatize_limit_bytes=1024)
        # huge output, several groups -> schedule (if enough groups exist)
        ngroups = len(np.unique(sbs.scoords[:, 0]))
        expected = "schedule" if ngroups >= 2 else "privatize"
        assert strat == expected

    def test_few_groups_fall_back(self, sbs):
        nthreads = sbs.nsuper + 10  # more threads than groups can exist
        assert choose_strategy(sbs, 0, nthreads, output_rows=10**9, rank=64,
                               privatize_limit_bytes=1) == "privatize"
