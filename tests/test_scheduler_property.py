"""Property test for the lock-free scheduler invariant.

The parallel MTTKRP relies on :func:`repro.core.scheduler.schedule_mode`
to guarantee that **no two superblocks assigned to different threads share
a mode-``m`` output coordinate** — that disjointness is the entire reason
the schedule strategy needs no atomics, locks, or privatized buffers.
This suite checks the invariant directly (not via ``Schedule.verify``,
which is itself under test) over hundreds of seeded-random superblock
populations, plus real tensors where it also cross-checks ``verify`` and
the element-level ``output_range`` disjointness the workers actually
depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.core.scheduler import Schedule, schedule_mode
from repro.core.superblock import SuperblockIndex, build_superblocks
from tests.conftest import make_random_coo

#: running count of (population, mode, nthreads) invariant checks
CASES = {"count": 0}


def _random_sbs(seed: int) -> SuperblockIndex:
    """Synthetic superblock population: scheduling only reads ``scoords``
    and ``nnz_per_superblock``, so no backing tensor is needed."""
    rng = np.random.default_rng(seed)
    nmodes = int(rng.integers(1, 6))
    nsuper = int(rng.integers(0, 300))
    # small coordinate ranges force heavy group collisions (the hard case);
    # occasionally use wide ranges so most groups are singletons
    span = int(rng.choice([2, 3, 7, 64]))
    scoords = rng.integers(0, span, size=(nsuper, nmodes)).astype(np.int64)
    # skewed loads: a few superblocks dominate, like real hot slices
    nnz = (rng.pareto(1.2, size=nsuper) * 10 + 1).astype(np.int64)
    sptr = np.arange(nsuper + 1, dtype=np.int64)
    return SuperblockIndex(superblock_bits=4, sptr=sptr, scoords=scoords,
                           nnz_per_superblock=nnz)


def _assert_invariant(sched: Schedule, sbs: SuperblockIndex, mode: int):
    """Independent re-derivation of every safety property."""
    # 1. exact cover: every superblock assigned to exactly one thread
    flat = [sb for blocks in sched.assignment for sb in blocks]
    assert sorted(flat) == list(range(sbs.nsuper)), "not an exact cover"

    # 2. THE lock-free invariant: a mode-m coordinate has a unique owner
    owner = {}
    for tid, blocks in enumerate(sched.assignment):
        for sb in blocks:
            coord = int(sbs.scoords[sb, mode])
            assert owner.setdefault(coord, tid) == tid, (
                f"coordinate {coord} split across threads "
                f"{owner[coord]} and {tid}")

    # 3. bookkeeping consistency
    assert len(sched.assignment) == sched.nthreads
    assert int(sched.thread_nnz.sum()) == int(sbs.nnz_per_superblock.sum())
    for tid, blocks in enumerate(sched.assignment):
        assert int(sched.thread_nnz[tid]) == int(
            sbs.nnz_per_superblock[blocks].sum())
    for coord, tid in sched.group_of.items():
        assert owner.get(coord, tid) == tid
    CASES["count"] += 1


@pytest.mark.parametrize("seed", range(60))
def test_invariant_on_random_populations(seed):
    sbs = _random_sbs(seed)
    rng = np.random.default_rng(10_000 + seed)
    for mode in range(sbs.scoords.shape[1]):
        for nthreads in (1, int(rng.integers(2, 5)), 8):
            sched = schedule_mode(sbs, mode, nthreads)
            _assert_invariant(sched, sbs, mode)


@pytest.mark.parametrize("seed", range(8))
def test_invariant_on_real_tensors(seed):
    """Real HiCOO tensors: also cross-check ``Schedule.verify`` and the
    element-level write-range disjointness the workers rely on."""
    rng = np.random.default_rng(seed)
    order = 3 + seed % 3
    shape = tuple(int(rng.integers(16, 64)) for _ in range(order))
    coo = make_random_coo(shape, nnz=int(rng.integers(50, 400)),
                          seed=seed)
    hic = HicooTensor(coo, block_bits=2)
    sbs = build_superblocks(hic, superblock_bits=2 + seed % 3 + 2)
    for mode in range(order):
        for nthreads in (2, 4):
            sched = schedule_mode(sbs, mode, nthreads)
            _assert_invariant(sched, sbs, mode)
            sched.verify(sbs)  # the built-in checker must agree
            # element-level: write intervals of distinct threads disjoint
            intervals = [set() for _ in range(nthreads)]
            for tid, blocks in enumerate(sched.assignment):
                for sb in blocks:
                    lo, hi = sbs.output_range(sb, mode)
                    intervals[tid].update(range(lo, hi))
            for a in range(nthreads):
                for b in range(a + 1, nthreads):
                    assert not (intervals[a] & intervals[b]), (
                        f"threads {a} and {b} write overlapping rows")


def test_verify_rejects_split_group():
    """``Schedule.verify`` must catch a hand-corrupted assignment."""
    sbs = _random_sbs(3)
    if sbs.nsuper < 2:
        pytest.skip("population too small")
    # force two superblocks with equal coordinates onto different threads
    sbs.scoords[0] = sbs.scoords[1]
    sched = schedule_mode(sbs, 0, 2)
    good = [list(b) for b in sched.assignment]
    bad = [list(b) for b in good]
    # move superblock 0 to the other thread than superblock 1
    for blocks in bad:
        if 0 in blocks:
            blocks.remove(0)
    owner1 = next(t for t, b in enumerate(good) if 1 in b)
    bad[(owner1 + 1) % 2].append(0)
    corrupted = Schedule(mode=0, nthreads=2, assignment=bad,
                         thread_nnz=sched.thread_nnz,
                         group_of=sched.group_of)
    with pytest.raises(AssertionError, match="split across"):
        corrupted.verify(sbs)


def test_verify_rejects_duplicate_and_missing():
    sbs = _random_sbs(7)
    if sbs.nsuper < 1:
        pytest.skip("population too small")
    sched = schedule_mode(sbs, 0, 2)
    dup = [list(b) for b in sched.assignment]
    dup[0] = dup[0] + [dup[0][0]] if dup[0] else [dup[1][0], dup[1][0]]
    with pytest.raises(AssertionError):
        Schedule(mode=0, nthreads=2, assignment=dup,
                 thread_nnz=sched.thread_nnz,
                 group_of=sched.group_of).verify(sbs)
    short = [list(b) for b in sched.assignment]
    for blocks in short:
        if blocks:
            blocks.pop()
            break
    with pytest.raises(AssertionError, match="covers"):
        Schedule(mode=0, nthreads=2, assignment=short,
                 thread_nnz=sched.thread_nnz,
                 group_of=sched.group_of).verify(sbs)


def test_zz_case_floor():
    """>= 200 randomized invariant checks must have executed."""
    assert CASES["count"] >= 200, (
        f"only {CASES['count']} scheduler property cases executed")
