"""Tests for the data substrate: generators, FROSTT I/O, registry."""

import io

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.data import registry
from repro.data.frostt import read_tns, write_tns
from repro.data.synthetic import (
    banded_tensor,
    clustered_tensor,
    graph_tensor,
    lowrank_tensor,
    power_law_tensor,
    random_tensor,
)
from repro.formats.coo import CooTensor


class TestGenerators:
    def test_random_basic(self):
        t = random_tensor((50, 60, 70), 500, seed=0)
        assert t.nnz == 500
        assert t.shape == (50, 60, 70)
        # coordinates distinct
        assert len({tuple(i) for i in t.indices}) == 500

    def test_random_reproducible(self):
        a = random_tensor((40, 40), 100, seed=7)
        b = random_tensor((40, 40), 100, seed=7)
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_random_overfull_rejected(self):
        with pytest.raises(ValueError):
            random_tensor((2, 2), 5, seed=0)

    def test_clustered_lowers_alpha(self):
        shape = (1024, 1024, 1024)
        tight = clustered_tensor(shape, 3000, nclusters=8, spread=2.0, seed=1)
        loose = random_tensor(shape, 3000, seed=1)
        a_tight = HicooTensor(tight, block_bits=5).block_ratio()
        a_loose = HicooTensor(loose, block_bits=5).block_ratio()
        assert a_tight < 0.5 * a_loose

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_tensor((10, 10), 5, nclusters=0)
        with pytest.raises(ValueError):
            clustered_tensor((10, 10), 5, spread=-1)

    def test_power_law_skew(self):
        t = power_law_tensor((500, 500, 500), 5000, exponent=1.5, seed=2)
        counts = np.sort(t.slice_counts(0))[::-1]
        nonzero_slices = counts[counts > 0]
        # heavy head: top 10% of slices hold far more than 10% of nonzeros
        top = nonzero_slices[: max(1, len(nonzero_slices) // 10)].sum()
        assert top > 0.3 * t.nnz

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            power_law_tensor((10, 10), 5, exponent=0.0)

    def test_graph_tensor(self):
        t = graph_tensor(200, 16, attach=3, seed=3)
        assert t.nmodes == 3
        assert t.shape == (200, 200, 16)
        assert t.nnz > 200  # BA graph has ~attach*n edges

    def test_graph_tensor_validation(self):
        with pytest.raises(ValueError):
            graph_tensor(3, 4, attach=5)

    def test_banded_near_diagonal(self):
        t = banded_tensor((200, 200, 200), 1000, bandwidth=4, seed=4)
        scaled = t.indices.astype(float)
        # all coordinates within bandwidth of the shared diagonal position
        spread = scaled.max(axis=1) - scaled.min(axis=1)
        assert np.all(spread <= 2 * 4 + 1)

    def test_lowrank_values_match_model(self):
        t = lowrank_tensor((20, 20, 20), 200, rank=2, noise=0.0, seed=5)
        assert t.nnz == 200
        assert np.all(t.values > 0)  # positive factors -> positive values


class TestFrosttIO:
    def test_roundtrip_via_buffer(self, small3d):
        buf = io.StringIO()
        write_tns(small3d, buf, header="test tensor")
        buf.seek(0)
        back = read_tns(buf, shape=small3d.shape)
        a = small3d.sort_lexicographic()
        b = back.sort_lexicographic()
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_roundtrip_via_file(self, small4d, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(small4d, path)
        back = read_tns(path, shape=small4d.shape)
        assert back.nnz == small4d.nnz

    def test_shape_inferred(self):
        buf = io.StringIO("1 1 1 5.0\n3 2 4 1.5\n")
        t = read_tns(buf)
        assert t.shape == (3, 2, 4)
        assert t.nnz == 2

    def test_comments_and_blanks_skipped(self):
        buf = io.StringIO("# header\n\n% other comment\n1 1 2.0\n")
        t = read_tns(buf)
        assert t.nnz == 1

    def test_duplicates_summed(self):
        buf = io.StringIO("1 1 2.0\n1 1 3.0\n")
        t = read_tns(buf)
        assert t.nnz == 1
        assert t.values[0] == 5.0

    def test_ragged_rejected(self):
        buf = io.StringIO("1 1 2.0\n1 1 1 3.0\n")
        with pytest.raises(ValueError, match="fields"):
            read_tns(buf)

    def test_non_numeric_rejected(self):
        buf = io.StringIO("1 x 2.0\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_tns(buf)

    def test_zero_based_rejected(self):
        buf = io.StringIO("0 1 2.0\n")
        with pytest.raises(ValueError, match="one-based"):
            read_tns(buf)

    def test_fractional_index_rejected(self):
        buf = io.StringIO("1.5 1 2.0\n")
        with pytest.raises(ValueError, match="integers"):
            read_tns(buf)

    def test_mode_count_checked(self):
        buf = io.StringIO("1 1 2.0\n")
        with pytest.raises(ValueError, match="modes"):
            read_tns(buf, nmodes=3)

    def test_empty_needs_shape(self):
        with pytest.raises(ValueError, match="empty"):
            read_tns(io.StringIO(""))
        t = read_tns(io.StringIO(""), shape=(3, 3))
        assert t.nnz == 0

    def test_value_precision_roundtrip(self, tmp_path):
        t = CooTensor((2, 2), [[0, 1]], [1.0 / 3.0])
        path = tmp_path / "p.tns"
        write_tns(t, path)
        back = read_tns(path, shape=(2, 2))
        assert back.values[0] == t.values[0]  # repr round-trips doubles


class TestRegistry:
    def test_names_nonempty(self):
        assert len(registry.names()) >= 12

    def test_load_reproducible(self):
        a = registry.load("uber")
        b = registry.load("uber")
        assert np.array_equal(a.indices, b.indices)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            registry.load("nope")

    def test_scale(self):
        small = registry.load("vast", scale=0.25)
        full = registry.load("vast")
        assert small.nnz < full.nnz

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            registry.REGISTRY["vast"].build(scale=0)

    @pytest.mark.parametrize("name", ["vast", "crime", "rand3d"])
    def test_loaded_tensor_usable(self, name):
        t = registry.load(name, scale=0.2)
        hic = HicooTensor(t, block_bits=4)
        assert hic.nnz == t.nnz

    def test_summary_rows(self):
        rows = registry.summary_rows(scale=0.1)
        assert len(rows) == len(registry.names())
        for row in rows:
            assert {"name", "order", "shape", "nnz", "density",
                    "regime"} <= set(row)

    def test_mix_of_orders(self):
        orders = {len(registry.REGISTRY[n].shape) for n in registry.names()}
        assert {3, 4} <= orders
