"""Tests for the CP-ALS solver."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.cpd.cp_als import cp_als
from repro.cpd.init import hosvd_init, initialize, random_init
from repro.cpd.ktensor import KruskalTensor
from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor
from repro.data.synthetic import lowrank_tensor


class TestRecovery:
    def test_planted_dense_tensor(self):
        rng = np.random.default_rng(0)
        true = KruskalTensor(np.ones(3), [rng.random((s, 3)) for s in (20, 15, 10)])
        coo = CooTensor.from_dense(true.full())
        res = cp_als(coo, 3, maxiters=80, tol=1e-10, seed=1)
        assert res.final_fit > 0.95

    def test_planted_mostly_dense_sample(self):
        # sampling 80% of the cells keeps the tensor approximately low-rank
        # (a sparse sample of a low-rank tensor is NOT low-rank in general,
        # since the implicit zeros are real zeros)
        coo = lowrank_tensor((15, 12, 10), 1440, rank=2, seed=2)
        res = cp_als(coo, 4, maxiters=60, seed=3)
        assert res.final_fit > 0.6

    def test_fit_monotone(self):
        coo = lowrank_tensor((30, 30, 30), 1500, rank=3, seed=4)
        res = cp_als(coo, 3, maxiters=30, tol=0.0, seed=5)
        diffs = np.diff(res.fits)
        assert np.all(diffs > -1e-8), res.fits

    def test_convergence_flag(self):
        coo = lowrank_tensor((20, 20, 20), 800, rank=2, seed=6)
        res = cp_als(coo, 2, maxiters=200, tol=1e-4, seed=7)
        assert res.converged
        assert res.iterations < 200


class TestFormatAgreement:
    def test_identical_iterates_across_formats(self, small3d, rng):
        init = [rng.random((s, 3)) for s in small3d.shape]
        runs = [
            cp_als(t, 3, maxiters=4, tol=0.0, init=init)
            for t in (small3d, CsfTensor(small3d),
                      HicooTensor(small3d, block_bits=3))
        ]
        for other in runs[1:]:
            np.testing.assert_allclose(runs[0].fits, other.fits, atol=1e-10)

    def test_parallel_matches_sequential(self, small3d, rng):
        init = [rng.random((s, 3)) for s in small3d.shape]
        hic = HicooTensor(small3d, block_bits=2)
        seq = cp_als(hic, 3, maxiters=3, tol=0.0, init=init)
        par = cp_als(hic, 3, maxiters=3, tol=0.0, init=init, nthreads=4)
        np.testing.assert_allclose(seq.fits, par.fits, atol=1e-10)

    def test_4d(self, small4d, rng):
        init = [rng.random((s, 2)) for s in small4d.shape]
        a = cp_als(small4d, 2, maxiters=3, tol=0.0, init=init)
        b = cp_als(HicooTensor(small4d, block_bits=2), 2, maxiters=3,
                   tol=0.0, init=init)
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-10)


class TestInterface:
    def test_bad_rank(self, small3d):
        with pytest.raises(ValueError):
            cp_als(small3d, 0)

    def test_bad_maxiters(self, small3d):
        with pytest.raises(ValueError):
            cp_als(small3d, 2, maxiters=0)

    def test_bad_init_rank(self, small3d, rng):
        init = [rng.random((s, 5)) for s in small3d.shape]
        with pytest.raises(ValueError, match="rank"):
            cp_als(small3d, 3, init=init)

    def test_callback_invoked(self, small3d):
        calls = []
        cp_als(small3d, 2, maxiters=3, tol=0.0, seed=0,
               callback=lambda it, fit: calls.append((it, fit)))
        assert [c[0] for c in calls] == [0, 1, 2]

    def test_timers_populated(self, small3d):
        res = cp_als(small3d, 2, maxiters=2, tol=0.0, seed=0)
        assert res.mttkrp_seconds > 0
        assert res.total_seconds >= res.mttkrp_seconds
        assert res.seconds_per_iteration() > 0

    def test_result_is_arranged(self, small3d):
        res = cp_als(small3d, 3, maxiters=3, tol=0.0, seed=0)
        w = np.abs(res.ktensor.weights)
        assert np.all(np.diff(w) <= 1e-12)

    def test_seed_reproducibility(self, small3d):
        a = cp_als(small3d, 2, maxiters=3, tol=0.0, seed=42)
        b = cp_als(small3d, 2, maxiters=3, tol=0.0, seed=42)
        np.testing.assert_allclose(a.fits, b.fits)


class TestInit:
    def test_random_shapes(self):
        fs = random_init((3, 4, 5), 2, np.random.default_rng(0))
        assert [f.shape for f in fs] == [(3, 2), (4, 2), (5, 2)]

    def test_random_bad_rank(self):
        with pytest.raises(ValueError):
            random_init((3,), 0)

    def test_hosvd_shapes(self, small3d):
        fs = hosvd_init(small3d, 4, np.random.default_rng(0))
        assert [f.shape for f in fs] == [(s, 4) for s in small3d.shape]

    def test_hosvd_helps_convergence(self):
        coo = lowrank_tensor((40, 40, 40), 4000, rank=3, seed=8)
        rand = cp_als(coo, 3, maxiters=5, tol=0.0, init="random", seed=9)
        hosvd = cp_als(coo, 3, maxiters=5, tol=0.0, init="hosvd", seed=9)
        # HOSVD should be at least competitive after few iterations
        assert hosvd.final_fit > rand.final_fit - 0.05

    def test_dispatch(self, small3d):
        assert len(initialize(small3d, 2, "random")) == 3
        with pytest.raises(ValueError, match="unknown init"):
            initialize(small3d, 2, "bogus")
