"""Repository hygiene guards.

Build artifacts (``__pycache__``, ``*.pyc``) were accidentally committed
once and purged; this test makes the regression structural instead of
relying on reviewer vigilance: the tracked file list must never contain
interpreter or packaging artifacts, and ``.gitignore`` must keep covering
the patterns that prevent them from being staged in the first place.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: path fragments / suffixes that must never be tracked
FORBIDDEN_FRAGMENTS = ("__pycache__",)
FORBIDDEN_SUFFIXES = (".pyc", ".pyo", ".pyd", ".coverage")

#: patterns .gitignore must carry so the artifacts can't be staged
REQUIRED_IGNORES = ("__pycache__/", "*.py[cod]", ".pytest_cache/",
                    "*.egg-info/")


def tracked_files():
    try:
        out = subprocess.run(["git", "ls-files"], cwd=REPO, timeout=60,
                             capture_output=True, text=True, check=True)
    except (OSError, subprocess.SubprocessError):
        pytest.skip("not a git checkout (or git unavailable)")
    return out.stdout.splitlines()


def test_no_build_artifacts_tracked():
    offenders = [
        f for f in tracked_files()
        if any(frag in f.split("/") for frag in FORBIDDEN_FRAGMENTS)
        or f.endswith(FORBIDDEN_SUFFIXES)
    ]
    assert not offenders, (
        f"build artifacts are tracked again (git rm -r --cached them): "
        f"{offenders[:10]}")


def test_gitignore_covers_artifact_patterns():
    gitignore = (REPO / ".gitignore").read_text().splitlines()
    lines = {line.strip() for line in gitignore}
    missing = [pat for pat in REQUIRED_IGNORES if pat not in lines]
    assert not missing, f".gitignore lost required patterns: {missing}"
