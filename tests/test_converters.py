"""Direct format converters: bitwise identity against the COO round-trip.

Every registered direct converter must produce storage *bitwise identical*
to ``convert_via_coo`` — the structural arrays of the target format (HiCOO
``bptr``/``binds``/``einds``, CSF levels, ALTO keys/``source_order``) and
the values, not merely the same tensor semantically.  The suite fuzzes the
property over orders 3–5, skewed and hyper-sparse distributions, and
shapes whose packed keys spill into a second 64-bit word, then pins the
fallback path (unregistered pairs round-trip through COO and tick
``convert.fallbacks``) and the serve-layer view plumbing on top.
"""

import numpy as np
import pytest

from repro.core import converters
from repro.core.converters import (convert, convert_via_coo,
                                   converter_matrix)
from repro.core.hicoo import DEFAULT_BLOCK_BITS
from repro.core.tuner import retarget
from repro.formats import FORMAT_NAMES, as_format
from repro.formats.coo import CooTensor
from repro.formats.levels import (describe, iterate_coords,
                                  level_signature)
from repro.obs import metrics
from tests.conftest import make_random_coo

NON_COO = ("csf", "hicoo", "alto")

#: registered direct pairs with distinct endpoints
DIRECT_PAIRS = [(s, d) for s in NON_COO for d in NON_COO if s != d]


def fuzz_tensor(kind: str, seed: int = 0) -> CooTensor:
    """Fuzz corpus: one named structural regime per kind."""
    rng = np.random.default_rng(seed)
    if kind == "dense3":  # order 3, blocks mostly populated
        return make_random_coo((48, 40, 32), 6000, seed=seed)
    if kind == "order4":
        return make_random_coo((30, 9, 17, 22), 2500, seed=seed)
    if kind == "order5":
        return make_random_coo((13, 8, 21, 6, 11), 1800, seed=seed)
    if kind == "skewed":  # power-law mode-0 slice sizes
        n0 = (rng.pareto(1.0, 3000) * 5).astype(np.int64) % 2000
        inds = np.column_stack([n0, rng.integers(0, 7, 3000),
                                rng.integers(0, 97, 3000)])
        return CooTensor((2000, 7, 97), inds, rng.normal(size=3000))
    if kind == "hyper_sparse":  # 3 modes x 2^22: multi-word ALTO keys
        shape = (1 << 22, 1 << 22, 1 << 22)
        inds = np.column_stack([rng.integers(0, s, 1500) for s in shape])
        return CooTensor(shape, inds, rng.normal(size=1500))
    if kind == "multiword5":  # 5 modes x 2^14 = 70 key bits
        shape = (1 << 14,) * 5
        inds = np.column_stack([rng.integers(0, s, 2000) for s in shape])
        return CooTensor(shape, inds, rng.normal(size=2000))
    raise ValueError(kind)


FUZZ_KINDS = ("dense3", "order4", "order5", "skewed", "hyper_sparse",
              "multiword5")


# ----------------------------------------------------------------------
# structural equality per target format
# ----------------------------------------------------------------------
def assert_same_hicoo(a, b):
    assert a.shape == b.shape and a.block_bits == b.block_bits
    for f in ("bptr", "binds", "einds", "values"):
        assert np.array_equal(getattr(a, f), getattr(b, f)), f


def assert_same_csf(a, b):
    assert a.shape == b.shape and a.mode_order == b.mode_order
    assert np.array_equal(a.values, b.values)
    assert len(a.levels) == len(b.levels)
    for la, lb in zip(a.levels, b.levels):
        assert np.array_equal(la.fids, lb.fids)
        assert np.array_equal(la.parent, lb.parent)
        assert (la.fptr is None) == (lb.fptr is None)
        if la.fptr is not None:
            assert np.array_equal(la.fptr, lb.fptr)


def assert_same_alto(a, b):
    assert a.shape == b.shape and a.widths == b.widths
    for f in ("keys", "values", "source_order"):
        assert np.array_equal(getattr(a, f), getattr(b, f)), f


ASSERT_SAME = {"hicoo": assert_same_hicoo, "csf": assert_same_csf,
               "alto": assert_same_alto}


def assert_same(a, b):
    assert a.format_name == b.format_name
    ASSERT_SAME[a.format_name](a, b)


# ----------------------------------------------------------------------
# the core property: direct == COO round-trip, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", FUZZ_KINDS)
@pytest.mark.parametrize("src,dst", DIRECT_PAIRS)
def test_direct_matches_roundtrip(kind, src, dst):
    coo = fuzz_tensor(kind)
    tensor = as_format(coo, src, **({"block_bits": 4} if src == "hicoo"
                                    else {}))
    kwargs = {"block_bits": 4} if dst == "hicoo" else {}
    assert_same(convert(tensor, dst, **kwargs),
                convert_via_coo(tensor, dst, **kwargs))


@pytest.mark.parametrize("src", NON_COO)
def test_direct_to_coo_matches_iteration_order(src):
    tensor = as_format(fuzz_tensor("order4"), src)
    direct = convert(tensor, "coo")
    inds, vals = iterate_coords(tensor)
    assert np.array_equal(direct.indices, inds)
    assert np.array_equal(direct.values, vals)


@pytest.mark.parametrize("kind", ["dense3", "hyper_sparse"])
def test_reblock_and_reroot_direct(kind):
    coo = fuzz_tensor(kind)
    hic = as_format(coo, "hicoo", block_bits=3)
    assert convert(hic, "hicoo", block_bits=3) is hic  # no-op re-block
    assert_same(convert(hic, "hicoo", block_bits=6),
                convert_via_coo(hic, "hicoo", block_bits=6))
    csf = as_format(coo, "csf")
    assert convert(csf, "csf", mode_order=csf.mode_order) is csf
    other = tuple(reversed(range(coo.nmodes)))
    assert_same(convert(csf, "csf", mode_order=other),
                convert_via_coo(csf, "csf", mode_order=other))


def test_empty_tensor_all_pairs():
    empty = CooTensor((9, 9, 9), np.empty((0, 3), np.int64), np.empty(0))
    for src in NON_COO:
        tensor = as_format(empty, src)
        for dst in FORMAT_NAMES:
            out = convert(tensor, dst)
            assert out.nnz == 0 and out.shape == (9, 9, 9)


def test_identity_short_circuit():
    for fmt in FORMAT_NAMES:
        t = as_format(fuzz_tensor("dense3"), fmt)
        assert as_format(t, fmt) is t


def test_default_block_bits_matches_constructor_default():
    csf = as_format(fuzz_tensor("dense3"), "csf")
    assert convert(csf, "hicoo").block_bits == DEFAULT_BLOCK_BITS


# ----------------------------------------------------------------------
# registry, fallback accounting, metrics
# ----------------------------------------------------------------------
def test_converter_matrix_every_pair_direct():
    matrix = converter_matrix()
    assert set(matrix) == {(s, d) for s in FORMAT_NAMES
                           for d in FORMAT_NAMES}
    # with all six cross-pairs registered plus the COO endpoints, nothing
    # in the shipped registry falls back
    assert "fallback" not in matrix.values()
    assert matrix[("alto", "alto")] == "identity"


def test_direct_conversions_tick_metric():
    tensor = as_format(fuzz_tensor("dense3"), "csf")
    before = metrics.value("convert.direct")
    convert(tensor, "hicoo", block_bits=4)
    assert metrics.value("convert.direct") == before + 1


def test_unregistered_pair_falls_back_and_ticks():
    tensor = as_format(fuzz_tensor("dense3"), "csf")
    removed = converters._REGISTRY.pop(("csf", "alto"))
    try:
        before = metrics.value("convert.fallbacks")
        out = convert(tensor, "alto")
        assert metrics.value("convert.fallbacks") == before + 1
        assert_same(out, removed(tensor))  # fallback result == direct result
    finally:
        converters._REGISTRY[("csf", "alto")] = removed


def test_convert_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown format"):
        convert(fuzz_tensor("dense3"), "dense")


def test_reblock_rejects_out_of_range_bits():
    hic = as_format(fuzz_tensor("dense3"), "hicoo", block_bits=4)
    with pytest.raises(ValueError, match="block_bits"):
        convert(hic, "hicoo", block_bits=9)


# ----------------------------------------------------------------------
# level descriptions
# ----------------------------------------------------------------------
def test_level_signatures():
    coo = fuzz_tensor("dense3")
    assert level_signature(coo) == (
        "compressed(m0)·singleton(m1)·singleton(m2)")
    hic = as_format(coo, "hicoo", block_bits=4)
    assert level_signature(hic) == (
        "blocked(m0,b=4)·blocked(m1,b=4)·blocked(m2,b=4)")
    csf = as_format(coo, "csf", mode_order=(2, 0, 1))
    assert level_signature(csf).startswith("compressed(m2)")
    alto = as_format(coo, "alto")
    assert all(lv.kind == "linearized" for lv in describe(alto).levels)


def test_level_capability_flags():
    coo = fuzz_tensor("dense3")
    desc = describe(as_format(coo, "csf"))
    for lv in desc.levels:  # CSF levels: ordered + unique + compact
        assert lv.flags() == "-OU-C"
    desc = describe(as_format(coo, "hicoo", block_bits=4))
    for lv in desc.levels:  # HiCOO levels: ordered + branchless + compact
        assert lv.flags() == "-O-BC"
        assert dict(lv.meta)["b"] == 4
    root, *rest = describe(coo).levels
    assert root.kind == "compressed" and not root.unique
    assert all(lv.branchless for lv in rest)


def test_describe_rejects_unknown_format():
    class Weird:
        format_name = "weird"

    with pytest.raises(ValueError, match="no level description"):
        describe(Weird())


# ----------------------------------------------------------------------
# tuner retarget
# ----------------------------------------------------------------------
def test_retarget_converts_to_chosen_format():
    # dense blocks -> the rule picks hicoo; retarget must deliver it
    # through the direct path regardless of the source format
    coo = make_random_coo((24, 24, 24), 6000, seed=5)
    fallbacks = metrics.value("convert.fallbacks")
    out = retarget(as_format(coo, "csf"))
    assert out.format_name == "hicoo"
    assert metrics.value("convert.fallbacks") == fallbacks
    assert_same_hicoo(out, as_format(coo, "hicoo"))


def test_retarget_identity_when_already_chosen():
    coo = make_random_coo((24, 24, 24), 6000, seed=5)
    hic = as_format(coo, "hicoo")
    assert retarget(hic) is hic


# ----------------------------------------------------------------------
# serve plumbing: resident views
# ----------------------------------------------------------------------
def test_tensor_entry_views_memoized_and_direct():
    from repro.serve.daemon import TensorEntry

    entry = TensorEntry("t", as_format(fuzz_tensor("dense3"), "hicoo",
                                       block_bits=4))
    fallbacks = metrics.value("convert.fallbacks")
    v1 = entry.view_as("alto")
    assert v1.format_name == "alto"
    assert entry.view_as("alto") is v1  # memoized
    assert entry.view_as(None) is entry.tensor
    assert entry.view_as("hicoo") is entry.tensor
    assert metrics.value("convert.fallbacks") == fallbacks
    desc = entry.describe()
    assert desc["views_cached"] == ["alto"]
    assert desc["levels"].startswith("blocked(m0,b=4)")
    entry.release()  # no sessions attached: must be a clean no-op


def test_job_batch_key_separates_formats():
    from repro.serve.jobs import Job

    a = Job(id="a", op="mttkrp", tensor="t", rank=4, seed=0, format="alto")
    b = Job(id="b", op="mttkrp", tensor="t", rank=4, seed=1, format="alto")
    c = Job(id="c", op="mttkrp", tensor="t", rank=4, seed=0, format="csf")
    d = Job(id="d", op="mttkrp", tensor="t", rank=4, seed=0)
    assert a.batch_key == b.batch_key  # same view, batchable
    assert len({a.batch_key, c.batch_key, d.batch_key}) == 3
    assert a.describe()["format"] == "alto"
    assert "format" not in d.describe()


def test_protocol_validates_format_field():
    from repro.serve.protocol import ProtocolError, validate_request

    ok = {"op": "mttkrp", "tensor": "t", "rank": 4, "mode": 0,
          "format": "alto"}
    assert validate_request(dict(ok))[0] == "mttkrp"
    for bad in ("dense", 3, ""):
        with pytest.raises(ProtocolError, match="format"):
            validate_request({**ok, "format": bad})
