"""Unit tests for the parallel substrate: partitioning, privatization,
executor, and the machine model."""

import numpy as np
import pytest

from repro.parallel.executor import run_tasks
from repro.parallel.machine import Machine
from repro.parallel.partition import balanced_ranges, lpt_assign, static_ranges
from repro.parallel.privatize import PrivateBuffers


class TestStaticRanges:
    def test_coverage_and_order(self):
        ranges = static_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_empty_parts(self):
        ranges = static_ranges(2, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == 2
        assert max(sizes) - min(sizes) <= 1

    def test_zero_items(self):
        assert static_ranges(0, 3) == [(0, 0)] * 3

    def test_bad_nparts(self):
        with pytest.raises(ValueError):
            static_ranges(10, 0)


class TestBalancedRanges:
    def test_uniform_weights(self):
        ranges = balanced_ranges(np.ones(12), 4)
        assert [hi - lo for lo, hi in ranges] == [3, 3, 3, 3]

    def test_skewed_weights(self):
        w = np.array([100, 1, 1, 1, 1, 1, 1, 1])
        ranges = balanced_ranges(w, 2)
        # the heavy item must sit alone-ish in the first part
        lo, hi = ranges[0]
        assert hi <= 2

    def test_coverage(self):
        rng = np.random.default_rng(0)
        w = rng.random(57)
        ranges = balanced_ranges(w, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 57
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            balanced_ranges([-1.0, 2.0], 2)

    def test_empty(self):
        assert balanced_ranges([], 3) == [(0, 0)] * 3


class TestLptAssign:
    def test_covers_all_items(self):
        parts = lpt_assign([5, 3, 3, 2, 2, 2], 2)
        items = sorted(i for p in parts for i in p)
        assert items == list(range(6))

    def test_classic_instance(self):
        # weights 5,3,3,2,2,2 on 2 parts: LPT gives 5+2+2 vs 3+3+2 -> makespan 9?
        # LPT: 5->p0, 3->p1, 3->p1(6? no, least loaded p1=3 -> p1), ...
        parts = lpt_assign([5, 3, 3, 2, 2, 2], 2)
        loads = [sum([5, 3, 3, 2, 2, 2][i] for i in p) for p in parts]
        assert max(loads) <= 9  # within 4/3 of optimum 8.5 -> <= 11, LPT gives 9

    def test_single_part(self):
        parts = lpt_assign([1, 2, 3], 1)
        assert sorted(parts[0]) == [0, 1, 2]

    def test_bad_nparts(self):
        with pytest.raises(ValueError):
            lpt_assign([1], 0)


class TestPrivateBuffers:
    def test_views_are_independent(self):
        bufs = PrivateBuffers.allocate(3, 4, 2)
        bufs.view(0)[1, 1] = 5.0
        assert bufs.view(1)[1, 1] == 0.0

    def test_reduce(self):
        bufs = PrivateBuffers.allocate(2, 2, 2)
        bufs.view(0)[:] = 1.0
        bufs.view(1)[:] = 2.0
        np.testing.assert_allclose(bufs.reduce(), np.full((2, 2), 3.0))

    def test_accounting(self):
        bufs = PrivateBuffers.allocate(4, 10, 3)
        assert bufs.reduction_flops() == 3 * 10 * 3
        assert bufs.extra_bytes() == 3 * 10 * 3 * 8

    def test_bad_nthreads(self):
        with pytest.raises(ValueError):
            PrivateBuffers.allocate(0, 1, 1)


class TestRunTasks:
    def test_sequential_results_ordered(self):
        report = run_tasks([lambda i=i: i * i for i in range(4)])
        assert report.values() == [0, 1, 4, 9]
        assert report.nthreads == 4

    def test_makespan_vs_total(self):
        report = run_tasks([lambda: sum(range(10000)) for _ in range(3)])
        assert report.makespan() <= report.total_work_time() + 1e-12

    def test_real_threads(self):
        report = run_tasks([lambda i=i: i for i in range(3)], real_threads=True)
        assert sorted(report.values()) == [0, 1, 2]
        assert report.real_threads

    def test_empty(self):
        report = run_tasks([])
        assert report.makespan() == 0.0
        assert report.load_imbalance() == 1.0


class TestMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(cores=0)
        with pytest.raises(ValueError):
            Machine(socket_bandwidth=-1)

    def test_memory_bound_prediction(self):
        m = Machine(cores=4, flops_per_core=1e12,
                    core_bandwidth=1e9, socket_bandwidth=2e9)
        p = m.predict(flops=1e6, bytes_moved=2e9, nthreads=1)
        assert p.bound == "memory"
        assert np.isclose(p.memory_seconds, 2.0)

    def test_compute_bound_prediction(self):
        m = Machine(cores=4, flops_per_core=1e9,
                    core_bandwidth=1e12, socket_bandwidth=1e12)
        p = m.predict(flops=2e9, bytes_moved=1e3, nthreads=1)
        assert p.bound == "compute"
        assert np.isclose(p.compute_seconds, 2.0)

    def test_bandwidth_saturation(self):
        m = Machine(cores=32, flops_per_core=1e15,
                    core_bandwidth=1e9, socket_bandwidth=4e9)
        t4 = m.predict(0, 4e9, nthreads=4).seconds
        t32 = m.predict(0, 4e9, nthreads=32).seconds
        assert np.isclose(t4, t32)  # 4 cores already saturate the socket

    def test_atomic_penalty_only_parallel(self):
        m = Machine()
        p1 = m.predict(1e6, 1e6, nthreads=1, atomic_updates=1e6)
        p2 = m.predict(1e6, 1e6, nthreads=2, atomic_updates=1e6)
        assert p1.serial_seconds == 0.0
        assert p2.serial_seconds > 0.0

    def test_threads_capped_at_cores(self):
        m = Machine(cores=4, core_bandwidth=1e9, socket_bandwidth=1e12)
        t4 = m.predict(0, 1e9, nthreads=4).seconds
        t8 = m.predict(0, 1e9, nthreads=8).seconds
        assert np.isclose(t4, t8)

    def test_speedup_positive(self):
        m = Machine()
        assert m.speedup(1e9, 1e6, 8) >= 1.0

    def test_detect_returns_plausible(self):
        m = Machine.detect()
        assert m.cores >= 1
        assert m.flops_per_core > 1e6
        assert m.socket_bandwidth >= m.core_bandwidth

    def test_bad_nthreads(self):
        with pytest.raises(ValueError):
            Machine().predict(1, 1, nthreads=0)
