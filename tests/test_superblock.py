"""Unit tests for superblock construction."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.core.superblock import build_superblocks
from repro.formats.coo import CooTensor
from tests.conftest import make_random_coo


@pytest.fixture
def hic(small3d):
    return HicooTensor(small3d, block_bits=2)


class TestBuild:
    def test_bits_constraint(self, hic):
        with pytest.raises(ValueError, match="superblock_bits"):
            build_superblocks(hic, hic.block_bits - 1)

    def test_equal_bits_is_identity_grouping(self, hic):
        sbs = build_superblocks(hic, hic.block_bits)
        assert sbs.nsuper == hic.nblocks
        np.testing.assert_array_equal(sbs.nnz_per_superblock, hic.block_nnz())

    def test_covers_all_blocks(self, hic):
        sbs = build_superblocks(hic, hic.block_bits + 2)
        assert sbs.sptr[0] == 0
        assert sbs.sptr[-1] == hic.nblocks
        assert np.all(np.diff(sbs.sptr) > 0)

    def test_nnz_conserved(self, hic):
        sbs = build_superblocks(hic, hic.block_bits + 2)
        assert sbs.nnz_per_superblock.sum() == hic.nnz

    def test_scoords_unique(self, hic):
        sbs = build_superblocks(hic, hic.block_bits + 1)
        keys = {tuple(c) for c in sbs.scoords}
        assert len(keys) == sbs.nsuper

    def test_members_match_scoord(self, hic):
        shift = 2
        sbs = build_superblocks(hic, hic.block_bits + shift)
        for sb in range(sbs.nsuper):
            lo, hi = sbs.block_range(sb)
            coords = hic.binds[lo:hi].astype(np.int64) >> shift
            assert np.all(coords == sbs.scoords[sb])

    def test_monotone_coarsening(self, hic):
        """More superblock bits -> fewer (or equal) superblocks."""
        counts = [
            build_superblocks(hic, bits).nsuper
            for bits in range(hic.block_bits, hic.block_bits + 5)
        ]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_empty(self):
        hic = HicooTensor(CooTensor.empty((8, 8)), block_bits=2)
        sbs = build_superblocks(hic, 4)
        assert sbs.nsuper == 0
        assert list(sbs.sptr) == [0]

    def test_output_range(self, hic):
        sbs = build_superblocks(hic, hic.block_bits + 1)
        L = 1 << sbs.superblock_bits
        for sb in range(min(sbs.nsuper, 5)):
            for mode in range(3):
                lo, hi = sbs.output_range(sb, mode)
                assert hi - lo == L
                assert lo % L == 0

    def test_whole_tensor_single_superblock(self):
        coo = make_random_coo((16, 16, 16), 100, seed=2)
        hic = HicooTensor(coo, block_bits=2)
        sbs = build_superblocks(hic, 4)  # superblock edge 16 covers all
        assert sbs.nsuper == 1
