"""Unit tests for the CSF (compressed sparse fiber) format."""

import numpy as np
import pytest

from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor
from repro.formats.dense import DenseTensor
from tests.conftest import make_random_coo


class TestConstruction:
    def test_known_small_tree(self):
        # tensor: (0,0,0)=1, (0,0,1)=2, (0,1,0)=3, (1,0,0)=4
        coo = CooTensor((2, 2, 2),
                        [[0, 0, 0], [0, 0, 1], [0, 1, 0], [1, 0, 0]],
                        [1.0, 2.0, 3.0, 4.0])
        csf = CsfTensor(coo, mode_order=[0, 1, 2])
        assert csf.fiber_counts() == [2, 3, 4]  # roots {0,1}, fibers {00,01,10}
        assert list(csf.levels[0].fids) == [0, 1]
        assert list(csf.levels[1].fids) == [0, 1, 0]
        assert list(csf.levels[0].fptr) == [0, 2, 3]

    def test_default_mode_order_smallest_first(self):
        coo = make_random_coo((50, 5, 20), 100, seed=1)
        csf = CsfTensor(coo)
        assert csf.mode_order == (1, 2, 0)

    def test_invalid_mode_order(self, small3d):
        with pytest.raises(ValueError, match="permutation"):
            CsfTensor(small3d, mode_order=[0, 0, 1])

    def test_type_check(self):
        with pytest.raises(TypeError):
            CsfTensor(np.zeros((2, 2)))

    def test_empty_tensor(self):
        coo = CooTensor.empty((4, 5, 6))
        csf = CsfTensor(coo)
        assert csf.nnz == 0
        assert csf.to_coo().nnz == 0

    def test_parent_pointers_consistent(self, small3d):
        csf = CsfTensor(small3d)
        for depth in range(1, 3):
            level = csf.levels[depth]
            prev = csf.levels[depth - 1]
            # every node's parent is valid and fptr ranges cover children
            assert level.parent.min() >= 0
            assert level.parent.max() < prev.nnodes
            for node in range(prev.nnodes):
                lo, hi = prev.fptr[node], prev.fptr[node + 1]
                assert np.all(level.parent[lo:hi] == node)


class TestRoundtrip:
    @pytest.mark.parametrize("order", [None, [0, 1, 2], [2, 1, 0], [1, 0, 2]])
    def test_to_coo_roundtrip(self, small3d, order):
        csf = CsfTensor(small3d, mode_order=order)
        back = csf.to_coo().sort_lexicographic()
        orig = small3d.sort_lexicographic()
        assert np.array_equal(back.indices, orig.indices)
        np.testing.assert_allclose(back.values, orig.values)

    def test_4d_roundtrip(self, small4d):
        csf = CsfTensor(small4d)
        back = csf.to_coo().sort_lexicographic()
        orig = small4d.sort_lexicographic()
        assert np.array_equal(back.indices, orig.indices)


class TestMttkrp:
    @pytest.mark.parametrize("order", [None, [0, 1, 2], [2, 0, 1]])
    def test_all_modes_match_dense(self, small3d, factors3d, order):
        dense = DenseTensor(small3d.to_dense())
        csf = CsfTensor(small3d, mode_order=order)
        for mode in range(3):
            np.testing.assert_allclose(
                csf.mttkrp(factors3d, mode),
                dense.mttkrp(factors3d, mode), atol=1e-10)

    def test_4d_all_modes(self, small4d, factors4d):
        dense = DenseTensor(small4d.to_dense())
        csf = CsfTensor(small4d)
        for mode in range(4):
            np.testing.assert_allclose(
                csf.mttkrp(factors4d, mode),
                dense.mttkrp(factors4d, mode), atol=1e-10)

    def test_empty(self):
        csf = CsfTensor(CooTensor.empty((3, 4)))
        out = csf.mttkrp([np.ones((3, 2)), np.ones((4, 2))], 0)
        assert np.all(out == 0)


class TestStorage:
    def test_compresses_structured_tensor(self):
        # all nonzeros share mode-0 index -> 1 root node
        inds = [[0, j, k] for j in range(10) for k in range(10)]
        coo = CooTensor((5, 10, 10), inds, np.ones(100))
        csf = CsfTensor(coo, mode_order=[0, 1, 2])
        assert csf.fiber_counts()[0] == 1
        assert csf.compression_ratio() > 1.0

    def test_ntrees_scales_indices_only(self, small3d):
        csf = CsfTensor(small3d)
        one = csf.storage_bytes(ntrees=1)
        three = csf.storage_bytes(ntrees=3)
        assert three["fids"] == 3 * one["fids"]
        assert three["fptr"] == 3 * one["fptr"]
        assert three["values"] == one["values"]

    def test_bad_ntrees(self, small3d):
        with pytest.raises(ValueError):
            CsfTensor(small3d).storage_bytes(ntrees=0)

    def test_leaf_count_equals_nnz(self, small3d):
        csf = CsfTensor(small3d)
        assert csf.fiber_counts()[-1] == small3d.nnz
