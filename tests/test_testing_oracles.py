"""Tests of the public verification oracles — both that the shipped
formats pass them and that the oracles catch broken formats."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor
from repro.testing import (
    assert_mttkrp_consistent,
    assert_roundtrip,
    assert_valid_format,
    check_format,
)


class TestShippedFormatsPass:
    def test_coo(self):
        report = check_format(lambda coo: coo)
        assert report["oracle_checks"] > 0

    def test_csf(self):
        check_format(lambda coo: CsfTensor(coo))

    def test_hicoo(self):
        check_format(lambda coo: HicooTensor(coo, block_bits=3))

    def test_hicoo_every_block_size(self):
        for bits in (1, 4, 8):
            check_format(lambda coo, b=bits: HicooTensor(coo, block_bits=b),
                         shapes=[(20, 12, 8)])


class _BrokenMttkrp(CooTensor):
    """COO with a corrupted MTTKRP (drops the last nonzero)."""

    def mttkrp(self, factors, mode):
        trimmed = CooTensor(self.shape, self.indices[:-1], self.values[:-1],
                            sum_duplicates=False)
        return CooTensor.mttkrp(trimmed, factors, mode)


class _BrokenRoundtrip(CooTensor):
    """COO whose to_coo doubles every value."""

    def to_coo(self):
        return CooTensor(self.shape, self.indices, self.values * 2,
                         sum_duplicates=False)


class TestOraclesCatchBugs:
    def test_broken_mttkrp_detected(self, small3d):
        broken = _BrokenMttkrp(small3d.shape, small3d.indices,
                               small3d.values, sum_duplicates=False)
        with pytest.raises(AssertionError, match="MTTKRP mismatch"):
            assert_mttkrp_consistent(broken)

    def test_broken_roundtrip_detected(self, small3d):
        broken = _BrokenRoundtrip(small3d.shape, small3d.indices,
                                  small3d.values, sum_duplicates=False)
        with pytest.raises(AssertionError, match="values changed"):
            assert_roundtrip(broken, small3d)

    def test_non_format_rejected(self):
        with pytest.raises(AssertionError, match="not a SparseTensorFormat"):
            assert_valid_format(np.zeros((2, 2)))

    def test_nnz_change_detected(self, small3d):
        smaller = CooTensor(small3d.shape, small3d.indices[:-1],
                            small3d.values[:-1], sum_duplicates=False)
        with pytest.raises(AssertionError, match="nnz changed"):
            assert_roundtrip(smaller, small3d)

    def test_check_format_propagates(self):
        def bad_factory(coo):
            return _BrokenMttkrp(coo.shape, coo.indices, coo.values,
                                 sum_duplicates=False)

        with pytest.raises(AssertionError):
            check_format(bad_factory, shapes=[(20, 12, 8)])
