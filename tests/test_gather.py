"""Tests for the gather/scatter kernel layer (repro.kernels.gather)."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.kernels.gather import (SCATTER_SMALL_N, build_task_gather,
                                  coalesce_runs, mttkrp_gather_chunk,
                                  runs_from_block_ids, scatter_add)
from tests.conftest import make_random_coo


def _reference_scatter(rows, idx, acc):
    out = (np.zeros(rows) if acc.ndim == 1
           else np.zeros((rows, acc.shape[1])))
    np.add.at(out, idx, acc)
    return out


class TestScatterAdd:
    @pytest.mark.parametrize("n,rows", [(10, 8), (500, 40), (500, 100_000),
                                        (2000, 2000)])
    @pytest.mark.parametrize("rank", [1, 7])
    @pytest.mark.parametrize("sort", [False, True])
    def test_matches_add_at(self, n, rows, rank, sort):
        rng = np.random.default_rng(n + rows + rank + sort)
        idx = rng.integers(0, rows, size=n)
        if sort:
            idx = np.sort(idx)
        acc = rng.normal(size=(n, rank)) if rank > 1 else rng.normal(size=n)
        out = np.zeros((rows, rank)) if rank > 1 else np.zeros(rows)
        backend = scatter_add(out, idx, acc)
        np.testing.assert_allclose(out, _reference_scatter(rows, idx, acc),
                                   atol=1e-12)
        assert backend in ("add_at", "reduceat", "bincount", "sort_reduceat")

    def test_backend_selection(self):
        rng = np.random.default_rng(0)
        # tiny input -> add_at
        out = np.zeros((10, 2))
        idx = rng.integers(0, 10, size=SCATTER_SMALL_N)
        assert scatter_add(out, idx, rng.normal(size=(len(idx), 2))) == "add_at"
        # sorted input -> reduceat
        out = np.zeros((50, 2))
        idx = np.sort(rng.integers(0, 50, size=400))
        assert scatter_add(out, idx, rng.normal(size=(400, 2))) == "reduceat"
        # unsorted, comparable output size -> bincount
        out = np.zeros((50, 2))
        idx = rng.permutation(np.repeat(np.arange(50), 8))
        assert scatter_add(out, idx, rng.normal(size=(400, 2))) == "bincount"
        # unsorted, output far larger than update count -> sort_reduceat
        out = np.zeros((100_000, 2))
        idx = rng.integers(0, 100_000, size=400)
        idx[::2] = idx[::-2]  # scramble so it is not sorted
        assert scatter_add(out, idx, rng.normal(size=(400, 2))) \
            == "sort_reduceat"

    def test_row_local_avoids_bincount(self):
        rng = np.random.default_rng(1)
        out = np.zeros((50, 2))
        idx = rng.permutation(np.repeat(np.arange(50), 8))
        acc = rng.normal(size=(400, 2))
        backend = scatter_add(out, idx, acc, row_local=True)
        assert backend == "sort_reduceat"
        np.testing.assert_allclose(out, _reference_scatter(50, idx, acc),
                                   atol=1e-12)

    def test_explicit_presorted_flag(self):
        rng = np.random.default_rng(2)
        idx = np.sort(rng.integers(0, 30, size=300))
        acc = rng.normal(size=(300, 3))
        out = np.zeros((30, 3))
        assert scatter_add(out, idx, acc, presorted=True) == "reduceat"
        np.testing.assert_allclose(out, _reference_scatter(30, idx, acc),
                                   atol=1e-12)

    def test_empty_and_int_accumulators(self):
        out = np.zeros((5, 2))
        assert scatter_add(out, np.empty(0, dtype=np.int64),
                           np.empty((0, 2))) == "noop"
        # int64 accumulators survive the reduceat path exactly
        up = np.zeros(4, dtype=np.int64)
        idx = np.sort(np.random.default_rng(3).integers(0, 4, size=200))
        counts = np.ones(200, dtype=np.int64)
        scatter_add(up, idx, counts, presorted=True)
        assert up.sum() == 200


class TestRunCoalescing:
    def test_coalesce_runs(self):
        assert coalesce_runs([(0, 3), (3, 5), (7, 9)]) == [(0, 5), (7, 9)]
        assert coalesce_runs([(2, 2), (4, 3)]) == []
        assert coalesce_runs([]) == []

    def test_runs_from_block_ids(self):
        assert runs_from_block_ids([0, 1, 2, 5, 6, 9]) == [(0, 3), (5, 7),
                                                           (9, 10)]
        assert runs_from_block_ids([]) == []
        assert runs_from_block_ids([4]) == [(4, 5)]


class TestTaskGather:
    @pytest.fixture
    def hic(self):
        return HicooTensor(make_random_coo((40, 30, 20), 500, seed=3),
                           block_bits=3)

    def test_full_tensor_matches_global_indices(self, hic):
        tg = build_task_gather(hic, [(0, hic.nblocks)])
        blk = np.repeat(np.arange(hic.nblocks), np.diff(hic.bptr))
        expect = (hic.binds[blk].astype(np.int64) << hic.block_bits) \
            + hic.einds.astype(np.int64)
        np.testing.assert_array_equal(tg.ginds, expect)
        np.testing.assert_array_equal(tg.values, hic.values)
        assert tg.nnz == hic.nnz
        assert tg.ginds.dtype == np.int64

    def test_sorted_modes_flags_are_true_claims(self, hic):
        tg = build_task_gather(hic, [(0, hic.nblocks)])
        for m in range(3):
            is_sorted = bool(np.all(np.diff(tg.ginds[:, m]) >= 0))
            assert bool(tg.sorted_modes[m]) == is_sorted

    def test_memoization(self, hic):
        a = hic.task_gather([0, 1, 2])
        b = hic.task_gather([(0, 3)])  # runs form of the same blocks
        assert a is b
        assert hic.gather_cache_bytes() > 0
        hic.clear_gather_cache()
        assert hic.gather_cache_bytes() == 0
        c = hic.task_gather([(0, 3)])
        assert c is not a
        np.testing.assert_array_equal(c.ginds, a.ginds)

    def test_partial_runs_concatenate(self, hic):
        full = hic.task_gather([(0, hic.nblocks)])
        mid = hic.nblocks // 2
        split = build_task_gather(hic, [(0, mid), (mid, hic.nblocks)])
        np.testing.assert_array_equal(split.ginds, full.ginds)

    def test_gather_chunk_matches_blocked_kernel(self, hic):
        rng = np.random.default_rng(5)
        factors = [rng.normal(size=(s, 6)) for s in hic.shape]
        for mode in range(3):
            ref = hic.mttkrp(factors, mode, kernel="blocked")
            out = np.zeros_like(ref)
            tg = hic.task_gather([(0, hic.nblocks)])
            backend = mttkrp_gather_chunk(tg, factors, mode, out)
            assert backend != "noop"
            np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_empty_task(self, hic):
        tg = hic.task_gather([])
        assert tg.nnz == 0
        out = np.zeros((hic.shape[0], 4))
        factors = [np.ones((s, 4)) for s in hic.shape]
        assert mttkrp_gather_chunk(tg, factors, 0, out) == "noop"
        assert not out.any()
