"""The serve daemon's correctness harness: differential, fuzz, chaos.

Three properties are pinned here, each stated as an executable contract:

1. **Differential equality** — every job a concurrent, batched,
   fault-injected daemon completes is *bitwise identical* (SHA-256 of the
   exact result bytes) to a fresh sequential execution of the same job by
   the same :func:`repro.serve.jobs.run_job` with ``backend="sim"`` and
   the same thread count.  This inherits the PR-4/PR-7 backend-equivalence
   contracts and extends them across the wire, the scheduler, and the
   batcher.
2. **Protocol robustness** — no byte sequence a client can send kills the
   daemon or elicits a traceback: every hostile frame from
   :func:`repro.testing.fuzz_frames` gets a structured error reply (or a
   clean close for desynchronizing frames), and the daemon still answers
   pings afterwards.
3. **Overload honesty** — a full bounded queue sheds load with an explicit
   ``overloaded`` (429) reply, never a silent drop, never unbounded queue
   growth, and ``/healthz`` stays green throughout.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro import testing
from repro.analysis.traffic import RequestStream
from repro.obs import metrics
from repro.serve import (AdmissionError, JobScheduler, ReproDaemon,
                         ServeClient)
from repro.serve.daemon import build_tensor
from repro.serve.jobs import Job, run_job
from repro.serve.protocol import ERROR_CODES, MAX_FRAME_BYTES

# ----------------------------------------------------------------------
# shared workload: three resident tensors across three formats
# ----------------------------------------------------------------------
SPECS = {
    "hot": {"kind": "random", "shape": [24, 20, 16], "nnz": 1200,
            "seed": 3, "format": "hicoo"},
    "skew": {"kind": "power_law", "shape": [30, 30, 30], "nnz": 1500,
             "seed": 5, "format": "alto"},
    "cold": {"kind": "clustered", "shape": [16, 16, 16], "nnz": 600,
             "seed": 9, "format": "csf"},
}


@pytest.fixture(scope="module")
def oracle_tensors():
    """The oracle's own copies, built from the identical specs."""
    return {name: build_tensor(dict(spec)) for name, spec in SPECS.items()}


def make_oracle(tensors, nthreads):
    """Sequential-oracle closure: same ``run_job``, ``backend="sim"``,
    same ``nthreads`` (the lock-free partition depends on it), with a
    per-(tensor, rank) plan cache so 200 oracle runs stay cheap."""
    from repro.kernels.plan import plan_mttkrp

    plans = {}

    def oracle(req):
        t = tensors[req["tensor"]]
        plan = None
        if (req["op"] == "mttkrp" and nthreads > 1
                and t.format_name == "hicoo"):
            key = (req["tensor"], req["rank"])
            if key not in plans:
                plans[key] = plan_mttkrp(t, req["rank"], nthreads,
                                         strategy="schedule")
            plan = plans[key]
        return run_job(req["op"], t, mode=req.get("mode", 0),
                       rank=req["rank"], seed=req.get("seed", 0),
                       iters=req.get("iters", 3), backend="sim",
                       nthreads=nthreads, plan=plan)

    return oracle


def _register_all(port):
    with ServeClient(port=port) as cli:
        for name, spec in SPECS.items():
            cli.register(name, spec)


def _healthz(http_port):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{http_port}/healthz") as resp:
        return json.loads(resp.read())


# ----------------------------------------------------------------------
# 1. the acceptance test: replay under concurrency + injected fault
# ----------------------------------------------------------------------
def test_chaos_differential_replay(oracle_tensors):
    """200-request seeded replay, 8 concurrent clients, process backend,
    one worker killed mid-replay: every completed job bitwise-equal to
    the sequential oracle, retries conserved, health green throughout."""
    from repro.parallel.procpool import shutdown_pools

    metrics.reset()
    requests = RequestStream({name: 3 for name in SPECS}, n=200, seed=42,
                             ranks=(2, 4), iters=(1, 2)).generate()
    daemon = ReproDaemon(backend="process", nthreads=2, executors=2,
                         fault_policy="degrade", max_queue=256,
                         http_port=0)
    daemon.start()
    try:
        _register_all(daemon.port)
        assert _healthz(daemon.http_port)["status"] == "ok"
        # arm exactly one worker kill; the next process-backend region
        # (some job mid-replay) consumes it
        testing.install_chaos(testing.chaos(testing.kill_at(0, at_task=1)))
        replies = testing.replay_requests(daemon.port, requests, nclients=8)
        assert _healthz(daemon.http_port)["status"] == "ok"
        stats = daemon._stats()
    finally:
        testing.clear_chaos()
        daemon.stop()
        shutdown_pools()

    assert len(replies) == len(requests)
    oracle = make_oracle(oracle_tensors, nthreads=2)
    failed = [r for r in replies if not (r and r.get("ok"))]
    assert not failed, f"jobs failed under chaos: {failed[:3]}"
    for req, rep in zip(requests, replies):
        expect = oracle(req)
        assert rep["digest"] == expect["digest"], (
            f"daemon diverged from oracle on {req}")
    # the injected kill really happened, and every supervisor retry was
    # attributed to exactly one job (conservation)
    assert metrics.value("serve.retries") >= 1
    assert (metrics.value("serve.retries")
            == metrics.value("supervisor.task_retries"))
    assert sum(r["retries"] for r in replies) == int(
        metrics.value("serve.retries"))
    assert stats["jobs_done"] == len(requests)
    assert stats["jobs_failed"] == 0


# ----------------------------------------------------------------------
# 2. batching changes scheduling, never numerics
# ----------------------------------------------------------------------
def test_batched_equals_unbatched(oracle_tensors):
    seeds = list(range(40))

    def drive(batch_limit):
        daemon = ReproDaemon(backend="sim", nthreads=2, executors=1,
                             batch_limit=batch_limit, max_queue=128)
        daemon.start()
        try:
            with ServeClient(port=daemon.port) as cli:
                cli.register("hot", SPECS["hot"])
            reqs = [{"op": "mttkrp", "tensor": "hot", "mode": 1,
                     "rank": 4, "seed": s} for s in seeds]
            replies = testing.replay_requests(daemon.port, reqs,
                                              nclients=8)
        finally:
            daemon.stop()
        assert all(r.get("ok") for r in replies)
        return replies

    batched = drive(batch_limit=8)
    unbatched = drive(batch_limit=1)
    # with 8 closed-loop clients and one executor, batches must form
    assert max(r["batch_size"] for r in batched) > 1
    assert all(r["batch_size"] == 1 for r in unbatched)
    oracle = make_oracle(oracle_tensors, nthreads=2)
    for s, rb, ru in zip(seeds, batched, unbatched):
        expect = oracle({"op": "mttkrp", "tensor": "hot", "mode": 1,
                         "rank": 4, "seed": s})["digest"]
        assert rb["digest"] == expect
        assert ru["digest"] == expect


# ----------------------------------------------------------------------
# 3. protocol fuzzing: structured errors, never death
# ----------------------------------------------------------------------
def test_protocol_fuzz_never_kills_daemon():
    daemon = ReproDaemon(backend="sim", nthreads=1, http_port=0)
    daemon.start()
    try:
        with ServeClient(port=daemon.port) as cli:
            cli.register("hot", SPECS["hot"])
        for label, payload in testing.fuzz_frames(seed=7, n=64):
            cli = ServeClient(port=daemon.port, timeout=30.0)
            try:
                cli.send_raw(payload)
                if not payload.endswith(b"\n"):
                    continue  # unterminated: disconnect is the reply
                try:
                    reply = cli.read_reply()
                except ConnectionError:
                    # clean close is acceptable only for desynchronizing
                    # frames (oversized)
                    assert len(payload) > MAX_FRAME_BYTES, (
                        f"{label}: connection dropped without a reply")
                    continue
                assert isinstance(reply, dict) and "ok" in reply, label
                if not reply["ok"]:
                    assert reply["error"]["code"] in ERROR_CODES, label
            finally:
                cli.close()
        # after the whole battery the daemon is unharmed
        with ServeClient(port=daemon.port) as cli:
            assert cli.ping()["pong"]
            r = cli.mttkrp("hot", mode=0, rank=2, seed=1)
            assert r["ok"]
        assert _healthz(daemon.http_port)["status"] == "ok"
    finally:
        daemon.stop()


def test_oversized_frame_gets_413_then_close():
    daemon = ReproDaemon(backend="sim")
    daemon.start()
    try:
        cli = ServeClient(port=daemon.port, timeout=30.0)
        cli.send_raw(b'{"op": "ping", "pad": "'
                     + b"B" * (MAX_FRAME_BYTES + 10) + b'"}\n')
        reply = cli.read_reply()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "frame_too_large"
        assert reply["error"]["status"] == 413
        with pytest.raises(ConnectionError):
            cli.read_reply()  # daemon closed the desynchronized stream
        cli.close()
        with ServeClient(port=daemon.port) as cli2:
            assert cli2.ping()["pong"]  # fresh connections unaffected
    finally:
        daemon.stop()


def test_disconnect_mid_frame_is_harmless():
    daemon = ReproDaemon(backend="sim")
    daemon.start()
    try:
        for _ in range(3):
            raw = socket.create_connection(("127.0.0.1", daemon.port))
            raw.sendall(b'{"op": "ping"')  # no terminator, then vanish
            raw.close()
        time.sleep(0.1)
        with ServeClient(port=daemon.port) as cli:
            assert cli.ping()["pong"]
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# 4. overload: bounded queue, explicit shedding, survival
# ----------------------------------------------------------------------
def test_overload_sheds_explicitly(oracle_tensors):
    metrics.reset()
    daemon = ReproDaemon(backend="sim", nthreads=1, executors=1,
                         max_queue=4, http_port=0)
    daemon.start()
    try:
        with ServeClient(port=daemon.port) as cli:
            cli.register("hot", SPECS["hot"])
        # slow heads keep the single executor busy; the tail overflows
        # the 4-slot queue
        reqs = ([{"op": "cp_als", "tensor": "hot", "rank": 8, "seed": s,
                  "iters": 4} for s in range(8)]
                + [{"op": "mttkrp", "tensor": "hot", "mode": 0, "rank": 4,
                    "seed": s} for s in range(48)])
        replies = testing.replay_requests(daemon.port, reqs, nclients=8)
        assert _healthz(daemon.http_port)["status"] == "ok"
        stats = daemon._stats()
    finally:
        daemon.stop()

    ok = [r for r in replies if r.get("ok")]
    shed = [r for r in replies if not r.get("ok")]
    assert shed, "queue never overflowed — overload path untested"
    for r in shed:  # every rejection is explicit and structured
        assert r["error"]["code"] == "overloaded"
        assert r["error"]["status"] == 429
    assert stats["rejected"] == len(shed)
    assert stats["queue_depth"] == 0  # drained, not grown without bound
    # accepted work is still bit-perfect under overload
    oracle = make_oracle(oracle_tensors, nthreads=1)
    by_key = {}
    for req, rep in zip(reqs, replies):
        if rep.get("ok"):
            key = json.dumps(req, sort_keys=True)
            if key not in by_key:
                by_key[key] = oracle(req)["digest"]
            assert rep["digest"] == by_key[key]


# ----------------------------------------------------------------------
# 5. registration lifecycle is isolated from in-flight traffic
# ----------------------------------------------------------------------
def test_registration_isolation(oracle_tensors):
    daemon = ReproDaemon(backend="sim", nthreads=2, executors=2,
                         max_queue=128)
    daemon.start()
    errors = []
    try:
        with ServeClient(port=daemon.port) as cli:
            cli.register("hot", SPECS["hot"])
        expect = make_oracle(oracle_tensors, nthreads=2)(
            {"op": "mttkrp", "tensor": "hot", "mode": 0, "rank": 4,
             "seed": 77})["digest"]

        def churn():
            try:
                with ServeClient(port=daemon.port) as c:
                    for i in range(6):
                        c.register(f"tmp{i}", SPECS["cold"])
                        r = c.mttkrp(f"tmp{i}", mode=0, rank=2, seed=i)
                        assert r["ok"]
                        c.unregister(f"tmp{i}")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        churner = threading.Thread(target=churn, daemon=True)
        churner.start()
        with ServeClient(port=daemon.port) as cli:
            for _ in range(30):
                r = cli.mttkrp("hot", mode=0, rank=4, seed=77)
                assert r["digest"] == expect, (
                    "registration churn perturbed an unrelated tensor")
        churner.join(timeout=60)
        assert not errors, errors
        with ServeClient(port=daemon.port) as cli:
            # the churned tensors are really gone, with structured errors
            bad = cli.mttkrp("tmp0", mode=0, rank=2, check=False)
            assert bad["error"]["code"] == "not_found"
            assert {t["name"] for t in cli.tensors()} == {"hot"}
    finally:
        daemon.stop()


# ----------------------------------------------------------------------
# 6. scheduler unit contracts
# ----------------------------------------------------------------------
def _job(i, *, op="cp_als", client="c", priority=1, tensor="t", rank=4,
         mode=0):
    return Job(id=f"u{i}", op=op, tensor=tensor, rank=rank, seed=i,
               mode=mode, priority=priority, client=client)


def test_scheduler_priority_and_fairness():
    sched = JobScheduler(max_queue=16)
    sched.submit(_job(0, priority=2, client="low"))
    sched.submit(_job(1, priority=0, client="hi"))
    sched.submit(_job(2, priority=1, client="mid"))
    order = [sched.next_batch(timeout=1)[0].priority for _ in range(3)]
    assert order == [0, 1, 2]

    # round-robin: a flooding client cannot starve a peer at its level
    for i in range(3):
        sched.submit(_job(10 + i, client="flood"))
    sched.submit(_job(20, client="polite"))
    served = [sched.next_batch(timeout=1)[0].client for _ in range(4)]
    assert served == ["flood", "polite", "flood", "flood"]


def test_scheduler_admission_and_close():
    sched = JobScheduler(max_queue=2)
    sched.submit(_job(0))
    sched.submit(_job(1))
    with pytest.raises(AdmissionError):
        sched.submit(_job(2))
    sched.close()
    with pytest.raises(AdmissionError):
        sched.submit(_job(3))
    assert sched.next_batch(timeout=1) is not None
    assert sched.next_batch(timeout=1) is not None
    assert sched.next_batch(timeout=1) is None  # closed and drained


def test_scheduler_batches_compatible_mttkrp_only():
    sched = JobScheduler(max_queue=16, batch_limit=4)
    for i in range(5):
        sched.submit(_job(i, op="mttkrp", client=f"c{i % 2}"))
    sched.submit(_job(9, op="mttkrp", rank=8))  # different key
    batch = sched.next_batch(timeout=1)
    assert len(batch) == 4  # capped at batch_limit
    assert len({j.batch_key for j in batch}) == 1
    # fairness rotation serves the other client's (incompatible) job next
    rest = sched.next_batch(timeout=1)
    assert [j.rank for j in rest] == [8]
    last = sched.next_batch(timeout=1)
    assert len(last) == 1 and last[0].rank == 4  # the 5th same-key job
    # cp_als never batches even with identical parameters
    sched2 = JobScheduler(max_queue=8, batch_limit=4)
    sched2.submit(_job(0, op="cp_als"))
    sched2.submit(_job(0, op="cp_als"))
    assert len(sched2.next_batch(timeout=1)) == 1


# ----------------------------------------------------------------------
# 7. HTTP introspection and the request stream generator
# ----------------------------------------------------------------------
def test_http_jobs_tensors_and_trace():
    daemon = ReproDaemon(backend="sim", http_port=0)
    daemon.start()
    try:
        with ServeClient(port=daemon.port) as cli:
            cli.register("hot", SPECS["hot"])
            job_id = cli.mttkrp("hot", mode=0, rank=2, seed=1)["job"]
        base = f"http://127.0.0.1:{daemon.http_port}"
        jobs = json.loads(urllib.request.urlopen(base + "/jobs").read())
        assert [j["id"] for j in jobs] == [job_id]
        assert jobs[0]["state"] == "done"
        one = json.loads(
            urllib.request.urlopen(f"{base}/jobs/{job_id}").read())
        assert one["id"] == job_id and "result" in one
        tr = json.loads(
            urllib.request.urlopen(f"{base}/jobs/{job_id}/trace").read())
        assert "traceEvents" in tr
        tensors = json.loads(
            urllib.request.urlopen(base + "/tensors").read())
        assert tensors[0]["name"] == "hot"
        body = urllib.request.urlopen(base + "/metrics").read().decode()
        assert "serve_jobs_done" in body.replace(".", "_")
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(base + "/jobs/nope")
    finally:
        daemon.stop()


def test_request_stream_is_deterministic_and_admissible():
    tensors = {"a": 3, "b": 4}
    stream = RequestStream(tensors, n=100, seed=11)
    first, second = stream.generate(), RequestStream(
        tensors, n=100, seed=11).generate()
    assert first == second
    arrivals = [r["arrival_s"] for r in first]
    assert arrivals == sorted(arrivals)
    from repro.serve.protocol import validate_request

    for req in first:
        wire = {k: v for k, v in req.items() if k != "arrival_s"}
        op, _ = validate_request(wire)  # every generated request is legal
        assert op == req["op"]
        if "mode" in req:
            assert 0 <= req["mode"] < tensors[req["tensor"]]
    # popularity is skewed toward earlier registrations (zipf)
    counts = [sum(1 for r in first if r["tensor"] == t) for t in tensors]
    assert counts[0] > counts[1]


def test_fuzz_frames_deterministic():
    assert testing.fuzz_frames(3, 32) == testing.fuzz_frames(3, 32)
    labels = [lbl for lbl, _ in testing.fuzz_frames(3, 32)]
    assert len(labels) == len(set(labels)) == 32
