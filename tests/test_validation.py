"""Unit tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    as_index_array,
    check_factors,
    check_indices,
    check_mode,
    check_shape,
)


class TestCheckShape:
    def test_valid(self):
        assert check_shape([3, 4, 5]) == (3, 4, 5)
        assert check_shape((1,)) == (1,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one mode"):
            check_shape(())

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            check_shape((3, 0, 5))
        with pytest.raises(ValueError):
            check_shape((-1,))


class TestAsIndexArray:
    def test_accepts_lists(self):
        arr = as_index_array([[0, 1], [2, 3]])
        assert arr.dtype == np.int64
        assert arr.shape == (2, 2)

    def test_accepts_integral_floats(self):
        arr = as_index_array(np.array([[1.0, 2.0]]))
        assert arr.dtype == np.int64

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            as_index_array(np.array([[1.5, 2.0]]))

    def test_rejects_1d_nonempty(self):
        with pytest.raises(ValueError):
            as_index_array(np.array([1, 2, 3]))

    def test_mode_count_checked(self):
        with pytest.raises(ValueError, match="modes"):
            as_index_array([[0, 1]], nmodes=3)


class TestCheckIndices:
    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_indices([[0, 5]], (3, 5))

    def test_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_indices([[-1, 0]], (3, 5))

    def test_valid_passes(self):
        arr = check_indices([[2, 4]], (3, 5))
        assert arr.tolist() == [[2, 4]]


class TestCheckMode:
    def test_positive(self):
        assert check_mode(0, 3) == 0
        assert check_mode(2, 3) == 2

    def test_negative_indexing(self):
        assert check_mode(-1, 3) == 2
        assert check_mode(-3, 3) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_mode(3, 3)
        with pytest.raises(ValueError):
            check_mode(-4, 3)


class TestCheckFactors:
    def test_valid(self):
        fs = check_factors([np.ones((3, 2)), np.ones((4, 2))], (3, 4))
        assert len(fs) == 2
        assert all(f.dtype == np.float64 for f in fs)

    def test_wrong_count(self):
        with pytest.raises(ValueError, match="expected 2"):
            check_factors([np.ones((3, 2))], (3, 4))

    def test_wrong_rows(self):
        with pytest.raises(ValueError, match="rows"):
            check_factors([np.ones((3, 2)), np.ones((5, 2))], (3, 4))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="rank"):
            check_factors([np.ones((3, 2)), np.ones((4, 3))], (3, 4))

    def test_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_factors([np.ones(3), np.ones((4, 2))], (3, 4))
