"""Tests for work counting and the predictive performance model."""

import numpy as np
import pytest

from repro.analysis.model import (
    build_format_suite,
    predict_all_modes,
    predict_mttkrp,
    speedup_over_coo,
    thread_scaling,
)
from repro.analysis.traffic import KernelWork, cp_als_iteration_work, mttkrp_work
from repro.core.hicoo import HicooTensor
from repro.formats.csf import CsfTensor
from repro.parallel.machine import Machine
from repro.data.synthetic import banded_tensor, clustered_tensor, random_tensor


MACHINE = Machine()  # deterministic defaults


class TestKernelWork:
    def test_addition(self):
        a = KernelWork(flops=1, bytes_moved=2, atomic_updates=3,
                       detail={"x": 1})
        b = KernelWork(flops=10, bytes_moved=20, atomic_updates=30,
                       detail={"x": 2, "y": 5})
        c = a + b
        assert c.flops == 11 and c.bytes_moved == 22 and c.atomic_updates == 33
        assert c.detail == {"x": 3, "y": 5}

    def test_arithmetic_intensity(self):
        w = KernelWork(flops=8, bytes_moved=2)
        assert w.arithmetic_intensity() == 4.0


class TestMttkrpWork:
    def test_coo_formulas(self, small3d):
        w = mttkrp_work(small3d, 0, rank=4)
        nnz = small3d.nnz
        assert w.detail["index_bytes"] == 4 * 3 * nnz + 4 * nnz
        assert w.detail["gather_bytes"] == 2 * 4 * 8 * nnz
        assert w.detail["scatter_bytes"] == 2 * 4 * 8 * nnz
        assert w.flops == 3 * 4 * nnz
        assert w.atomic_updates == 0

    def test_coo_parallel_atomics(self, small3d):
        w = mttkrp_work(small3d, 0, rank=4, parallel=True)
        assert w.atomic_updates == small3d.nnz

    def test_hicoo_le_coo_gather(self):
        """HiCOO's factor gathers never exceed COO's (block reuse)."""
        coo = clustered_tensor((512, 512, 512), 5000, nclusters=20,
                               spread=3.0, seed=0)
        hic = HicooTensor(coo, block_bits=5)
        wc = mttkrp_work(coo, 0, 16)
        wh = mttkrp_work(hic, 0, 16)
        assert wh.detail["gather_bytes"] <= wc.detail["gather_bytes"]
        assert wh.detail["index_bytes"] < wc.detail["index_bytes"]

    def test_hicoo_flops_equal_coo(self, small3d):
        hic = HicooTensor(small3d, block_bits=3)
        assert mttkrp_work(hic, 1, 8).flops == mttkrp_work(small3d, 1, 8).flops

    def test_csf_work_positive(self, small3d):
        csf = CsfTensor(small3d)
        for mode in range(3):
            w = mttkrp_work(csf, mode, 8)
            assert w.flops > 0 and w.bytes_moved > 0

    def test_csf_gather_le_coo(self, small3d):
        """The fiber tree loads one factor row per node, and every level has
        at most nnz nodes, so CSF's gather traffic never exceeds COO's."""
        csf = CsfTensor(small3d)
        for mode in range(3):
            assert mttkrp_work(csf, mode, 8).detail["gather_bytes"] <= \
                mttkrp_work(small3d, mode, 8).detail["gather_bytes"] + 1e-9

    def test_bad_rank(self, small3d):
        with pytest.raises(ValueError):
            mttkrp_work(small3d, 0, 0)

    def test_unknown_format(self):
        with pytest.raises(TypeError):
            mttkrp_work(object(), 0, 4)  # type: ignore[arg-type]

    def test_cp_als_iteration_sums_modes(self, small3d):
        total = cp_als_iteration_work(small3d, 8)
        per_mode = sum(
            (mttkrp_work(small3d, m, 8) for m in range(3)), KernelWork())
        assert total.flops > per_mode.flops  # includes the dense solves
        assert total.bytes_moved > per_mode.bytes_moved


class TestPredictions:
    def test_sequential_hicoo_beats_coo_on_blocked_data(self):
        coo = banded_tensor((2048, 2048, 2048), 20000, bandwidth=6, seed=2)
        speedups = speedup_over_coo(coo, 16, MACHINE, nthreads=1, block_bits=6)
        assert speedups["hicoo"] > 1.3
        assert speedups["coo"] == 1.0

    def test_random_data_near_parity(self):
        coo = random_tensor((4096, 4096, 4096), 5000, seed=3)
        speedups = speedup_over_coo(coo, 16, MACHINE, nthreads=1, block_bits=7)
        assert 0.5 < speedups["hicoo"] < 1.5

    def test_parallel_hicoo_widen_gap(self):
        """Atomics hurt parallel COO, so HiCOO's advantage grows with
        threads (the paper's parallel-figure shape)."""
        coo = clustered_tensor((512, 512, 512), 100_000, nclusters=50,
                               spread=4.0, seed=4)
        seq = speedup_over_coo(coo, 16, MACHINE, nthreads=1, block_bits=6)
        par = speedup_over_coo(coo, 16, MACHINE, nthreads=16, block_bits=6)
        assert par["hicoo"] > seq["hicoo"]

    def test_thread_scaling_monotone_hicoo(self):
        coo = clustered_tensor((2048, 2048, 2048), 20000, nclusters=50,
                               spread=4.0, seed=5)
        series = thread_scaling(coo, 16, MACHINE, (1, 2, 4, 8), block_bits=6)
        hic = series["hicoo"]
        assert hic[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(hic, hic[1:]))

    def test_coo_scaling_saturates(self):
        coo = random_tensor((1024, 1024, 1024), 10000, seed=6)
        series = thread_scaling(coo, 16, MACHINE, (1, 4, 16, 32))
        # COO saturates at the socket-bandwidth limit
        assert series["coo"][-1] == pytest.approx(series["coo"][-2], rel=0.2)

    def test_predict_all_modes_totals(self, small3d):
        ft = predict_all_modes(small3d, 8, MACHINE)
        assert len(ft.mode_seconds) == 3
        assert ft.total == pytest.approx(sum(ft.mode_seconds))

    def test_build_format_suite(self, small3d):
        suite = build_format_suite(small3d, block_bits=3)
        assert set(suite) == {"coo", "csf", "hicoo", "alto"}
        assert suite["hicoo"].block_bits == 3

    def test_predict_mttkrp_positive(self, small3d):
        for fmt in build_format_suite(small3d, block_bits=3).values():
            p = predict_mttkrp(fmt, 0, 8, MACHINE, nthreads=4)
            assert p.seconds > 0
