"""Integration tests: whole pipelines across modules."""

import io

import numpy as np
import pytest

from repro import (
    CooTensor,
    CsfTensor,
    HicooTensor,
    Machine,
    best_block_bits,
    compare_formats,
    cp_als,
    mttkrp_parallel,
)
from repro.analysis.model import predict_all_modes, speedup_over_coo
from repro.data import load, read_tns, write_tns
from repro.data.synthetic import clustered_tensor, lowrank_tensor


class TestEndToEndPipeline:
    def test_tns_to_cp_decomposition(self, tmp_path):
        """File -> COO -> HiCOO -> parallel CP-ALS -> sane fit."""
        src = lowrank_tensor((24, 20, 16), 1500, rank=3, seed=0)
        path = tmp_path / "tensor.tns"
        write_tns(src, path, header="integration test")
        coo = read_tns(path, shape=src.shape)

        bits = best_block_bits(coo)
        hic = HicooTensor(coo, block_bits=bits)
        res = cp_als(hic, rank=3, maxiters=15, seed=1, nthreads=4)
        assert 0.0 <= res.final_fit <= 1.0
        assert res.iterations >= 1

    def test_registry_dataset_full_comparison(self):
        """Registry tensor through storage + model + kernels, consistent."""
        coo = load("uber", scale=0.3)
        rows = compare_formats(coo, block_bits=5)
        assert {r.format_name for r in rows} == {"coo", "csf", "hicoo"}

        machine = Machine()
        speeds = speedup_over_coo(coo, rank=8, machine=machine,
                                  nthreads=4, block_bits=5)
        assert speeds["coo"] == pytest.approx(1.0)
        assert speeds["hicoo"] > 0

    def test_all_formats_identical_mttkrp_on_real_analog(self):
        coo = load("crime", scale=0.2)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 4)) for s in coo.shape]
        hic = HicooTensor(coo, block_bits=4)
        csf = CsfTensor(coo)
        for mode in range(coo.nmodes):
            ref = coo.mttkrp(factors, mode)
            np.testing.assert_allclose(hic.mttkrp(factors, mode), ref,
                                       atol=1e-8)
            np.testing.assert_allclose(csf.mttkrp(factors, mode), ref,
                                       atol=1e-8)
            run = mttkrp_parallel(hic, factors, mode, nthreads=4)
            np.testing.assert_allclose(run.output, ref, atol=1e-8)

    def test_cp_als_same_result_any_format_any_threads(self):
        coo = clustered_tensor((64, 48, 32), 1200, nclusters=16, spread=4.0,
                               seed=2)
        rng = np.random.default_rng(3)
        init = [rng.random((s, 3)) for s in coo.shape]
        fits = []
        for tensor in (coo, CsfTensor(coo), HicooTensor(coo, block_bits=4)):
            for nthreads in (1, 3):
                res = cp_als(tensor, 3, maxiters=4, tol=0.0, init=init,
                             nthreads=nthreads)
                fits.append(res.fits)
        for other in fits[1:]:
            np.testing.assert_allclose(fits[0], other, atol=1e-9)

    def test_model_predictions_cover_all_registry(self):
        machine = Machine()
        for name in ("vast", "nips"):
            coo = load(name, scale=0.2)
            for fmt in (coo, CsfTensor(coo), HicooTensor(coo, block_bits=4)):
                timing = predict_all_modes(fmt, 8, machine, nthreads=8)
                assert timing.total > 0

    def test_roundtrip_through_every_format(self):
        coo = load("vast", scale=0.2)
        canonical = coo.sort_lexicographic()
        for convert in (lambda t: CsfTensor(t).to_coo(),
                        lambda t: HicooTensor(t, 4).to_coo()):
            back = convert(coo).sort_lexicographic()
            assert np.array_equal(back.indices, canonical.indices)
            np.testing.assert_allclose(back.values, canonical.values)


class TestFailureInjection:
    def test_corrupt_tns_rejected(self):
        with pytest.raises(ValueError):
            read_tns(io.StringIO("1 2\n1 2 3 4\n"))

    def test_cp_als_on_empty_tensor(self):
        coo = CooTensor.empty((5, 5, 5))
        res = cp_als(coo, 2, maxiters=2, seed=0)
        assert res.final_fit == pytest.approx(1.0)  # zero tensor fits exactly

    def test_single_nonzero_tensor(self):
        coo = CooTensor((100, 100, 100), [[3, 4, 5]], [2.0])
        hic = HicooTensor(coo, block_bits=7)
        assert hic.nblocks == 1
        res = cp_als(hic, 1, maxiters=5, seed=0)
        assert res.final_fit > 0.99  # rank-1 tensor, rank-1 model

    def test_tensor_with_size_one_modes(self):
        coo = CooTensor((50, 1, 30), [[0, 0, 0], [10, 0, 20]], [1.0, 2.0])
        hic = HicooTensor(coo, block_bits=3)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, 2)) for s in coo.shape]
        np.testing.assert_allclose(hic.mttkrp(factors, 0),
                                   coo.mttkrp(factors, 0), atol=1e-12)

    def test_huge_mode_sizes_ok(self):
        # indices near 2^31: binds (uint32 of index >> b) must cope
        big = 2**31
        coo = CooTensor((big, 4), [[big - 1, 0], [0, 1]], [1.0, 2.0])
        hic = HicooTensor(coo, block_bits=8)
        back = hic.to_coo().sort_lexicographic()
        assert back.indices.max() == big - 1
