"""Round-trip and corruption tests for ``.hicoo`` serialization.

``load_hicoo`` must reject truncated, garbage, tampered, or
wrong-version files with a clear ``ValueError`` naming the problem —
never by leaking ``zipfile.BadZipFile``, ``zlib.error``, ``EOFError``,
``struct.error`` or other NumPy/zipfile internals at the caller.
Genuine filesystem errors (missing file, permissions) must still come
through as ``OSError`` so callers can distinguish the two failure
families.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.core.io import load_hicoo, save_hicoo
from tests.conftest import make_random_coo


def _random_hicoo(seed: int) -> HicooTensor:
    rng = np.random.default_rng(seed)
    order = 3 + seed % 3
    shape = tuple(int(rng.integers(8, 40)) for _ in range(order))
    coo = make_random_coo(shape, nnz=int(rng.integers(20, 200)), seed=seed)
    return HicooTensor(coo, block_bits=1 + seed % 4)


def _saved_bytes(hic: HicooTensor) -> bytes:
    buf = io.BytesIO()
    save_hicoo(hic, buf)
    return buf.getvalue()


# ----------------------------------------------------------------------
# round-trip property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_roundtrip_preserves_structure(seed, tmp_path):
    hic = _random_hicoo(seed)
    path = tmp_path / f"t{seed}.hicoo"
    save_hicoo(hic, path)
    back = load_hicoo(path)
    assert back.shape == hic.shape
    assert back.block_bits == hic.block_bits
    assert np.array_equal(back.bptr, hic.bptr)
    assert np.array_equal(back.binds, hic.binds)
    assert np.array_equal(back.einds, hic.einds)
    assert np.array_equal(back.values, hic.values)
    a, b = hic.to_coo(), back.to_coo()
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.values, b.values)


def test_roundtrip_empty_tensor(tmp_path):
    from repro.formats.coo import CooTensor

    coo = CooTensor((4, 4, 4), np.empty((0, 3), dtype=np.int64),
                    np.empty(0), sum_duplicates=False)
    hic = HicooTensor(coo, block_bits=2)
    path = tmp_path / "empty.hicoo"
    save_hicoo(hic, path)
    back = load_hicoo(path)
    assert back.nnz == 0 and back.shape == (4, 4, 4)


# ----------------------------------------------------------------------
# corruption: every failure is a clear ValueError
# ----------------------------------------------------------------------
def test_truncated_at_every_granularity(tmp_path):
    """Cut the file at many points; each cut must raise ValueError with a
    recognizable message, not a zip/zlib/struct internals error."""
    data = _saved_bytes(_random_hicoo(0))
    for frac in (0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99):
        cut = data[: int(len(data) * frac)]
        path = tmp_path / "trunc.hicoo"
        path.write_bytes(cut)
        with pytest.raises(ValueError) as ei:
            load_hicoo(path)
        msg = str(ei.value)
        assert ".hicoo" in msg or "corrupt" in msg, (
            f"cut at {frac}: unhelpful message {msg!r}")


def test_garbage_bytes(tmp_path):
    rng = np.random.default_rng(1)
    for size in (0, 1, 10, 1000):
        path = tmp_path / "garbage.hicoo"
        path.write_bytes(rng.bytes(size))
        with pytest.raises(ValueError, match="hicoo"):
            load_hicoo(path)


def test_valid_zip_wrong_contents(tmp_path):
    """A real npz that simply isn't a .hicoo archive."""
    path = tmp_path / "other.npz"
    np.savez(path, totally="unrelated", data=np.arange(3))
    with pytest.raises(ValueError, match="missing"):
        load_hicoo(path)


def test_wrong_version(tmp_path):
    hic = _random_hicoo(2)
    path = tmp_path / "future.hicoo"
    with open(path, "wb") as fh:  # np.savez appends .npz to bare paths
        np.savez_compressed(
            fh, version=np.int64(99),
            shape=np.asarray(hic.shape, dtype=np.int64),
            block_bits=np.int64(hic.block_bits),
            bptr=hic.bptr, binds=hic.binds, einds=hic.einds,
            values=hic.values)
    with pytest.raises(ValueError, match="version 99"):
        load_hicoo(path)


def _tampered(hic: HicooTensor, **overrides):
    fields = dict(
        version=np.int64(1),
        shape=np.asarray(hic.shape, dtype=np.int64),
        block_bits=np.int64(hic.block_bits),
        bptr=hic.bptr, binds=hic.binds, einds=hic.einds, values=hic.values)
    fields.update(overrides)
    buf = io.BytesIO()
    np.savez_compressed(buf, **fields)
    buf.seek(0)
    return buf


@pytest.mark.parametrize("overrides,match", [
    ({"block_bits": np.int64(0)}, "block_bits"),
    ({"block_bits": np.int64(40)}, "block_bits"),
    ({"bptr": np.array([0, 1], dtype=np.int64)}, "bptr"),
    ({"einds": np.zeros((1, 1), dtype=np.uint8)}, "einds"),
    ({"shape": np.asarray([2, 2, 2], dtype=np.int64)}, "corrupt"),
])
def test_tampered_structure_rejected(overrides, match):
    hic = _random_hicoo(3)
    assert hic.nnz > 1
    with pytest.raises(ValueError, match=match):
        load_hicoo(_tampered(hic, **overrides))


def test_nonmonotone_bptr_rejected():
    hic = _random_hicoo(4)
    if hic.nblocks < 2:
        pytest.skip("need at least two blocks")
    bad = hic.bptr.copy()
    bad[1] = bad[2] + 1  # break monotonicity without moving the endpoints
    with pytest.raises(ValueError, match="bptr"):
        load_hicoo(_tampered(hic, bptr=bad))


def test_offset_exceeding_block_edge_rejected():
    hic = _random_hicoo(5)
    bad = hic.einds.copy()
    bad[0, 0] = 1 << hic.block_bits
    with pytest.raises(ValueError, match="block edge"):
        load_hicoo(_tampered(hic, einds=bad))


def test_missing_file_stays_oserror(tmp_path):
    """ENOENT is a filesystem problem, not a format problem."""
    with pytest.raises(OSError):
        load_hicoo(tmp_path / "does-not-exist.hicoo")
