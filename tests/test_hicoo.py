"""Unit tests for the HiCOO format."""

import numpy as np
import pytest

from repro.core.hicoo import DEFAULT_BLOCK_BITS, HicooTensor, best_block_bits
from repro.formats.coo import CooTensor
from repro.formats.dense import DenseTensor
from tests.conftest import make_random_coo


class TestConstruction:
    def test_defaults(self, small3d):
        hic = HicooTensor(small3d)
        assert hic.block_bits == DEFAULT_BLOCK_BITS
        assert hic.block_size == 128
        assert hic.nnz == small3d.nnz

    def test_array_dtypes(self, small3d):
        hic = HicooTensor(small3d, block_bits=3)
        assert hic.bptr.dtype == np.int64
        assert hic.binds.dtype == np.uint32
        assert hic.einds.dtype == np.uint8

    def test_block_bits_bounds(self, small3d):
        with pytest.raises(ValueError):
            HicooTensor(small3d, block_bits=0)
        with pytest.raises(ValueError):
            HicooTensor(small3d, block_bits=9)

    def test_type_check(self):
        with pytest.raises(TypeError):
            HicooTensor(np.zeros((3, 3)))

    def test_empty(self):
        hic = HicooTensor(CooTensor.empty((10, 10)), block_bits=2)
        assert hic.nnz == 0
        assert hic.nblocks == 0
        assert hic.to_coo().nnz == 0

    def test_einds_bounded_by_block(self, small3d):
        for bits in (1, 3, 5):
            hic = HicooTensor(small3d, block_bits=bits)
            if hic.nnz:
                assert hic.einds.max() < (1 << bits)


class TestRoundtrip:
    @pytest.mark.parametrize("bits", [1, 2, 4, 7, 8])
    def test_to_coo(self, small3d, bits):
        hic = HicooTensor(small3d, block_bits=bits)
        back = hic.to_coo().sort_lexicographic()
        orig = small3d.sort_lexicographic()
        assert np.array_equal(back.indices, orig.indices)
        np.testing.assert_allclose(back.values, orig.values)

    def test_4d(self, small4d):
        hic = HicooTensor(small4d, block_bits=2)
        back = hic.to_coo().sort_lexicographic()
        orig = small4d.sort_lexicographic()
        assert np.array_equal(back.indices, orig.indices)

    def test_global_indices_in_range(self, small3d):
        hic = HicooTensor(small3d, block_bits=4)
        g = hic.global_indices()
        assert g.min() >= 0
        assert np.all(g.max(axis=0) < np.asarray(small3d.shape))


class TestMttkrp:
    @pytest.mark.parametrize("kernel", ["flat", "blocked"])
    def test_matches_dense(self, small3d, factors3d, kernel):
        dense = DenseTensor(small3d.to_dense())
        hic = HicooTensor(small3d, block_bits=3)
        for mode in range(3):
            np.testing.assert_allclose(
                hic.mttkrp(factors3d, mode, kernel=kernel),
                dense.mttkrp(factors3d, mode), atol=1e-10)

    def test_4d_both_kernels(self, small4d, factors4d):
        dense = DenseTensor(small4d.to_dense())
        hic = HicooTensor(small4d, block_bits=2)
        for mode in range(4):
            ref = dense.mttkrp(factors4d, mode)
            np.testing.assert_allclose(hic.mttkrp(factors4d, mode), ref, atol=1e-10)
            np.testing.assert_allclose(
                hic.mttkrp(factors4d, mode, kernel="blocked"), ref, atol=1e-10)

    def test_unknown_kernel(self, small3d, factors3d):
        hic = HicooTensor(small3d, block_bits=3)
        with pytest.raises(ValueError, match="kernel"):
            hic.mttkrp(factors3d, 0, kernel="nope")

    def test_empty(self):
        hic = HicooTensor(CooTensor.empty((4, 4)), block_bits=2)
        out = hic.mttkrp([np.ones((4, 2)), np.ones((4, 2))], 0)
        assert np.all(out == 0)


class TestStatistics:
    def test_alpha_b_range(self, small3d):
        hic = HicooTensor(small3d, block_bits=3)
        assert 0 < hic.block_ratio() <= 1.0

    def test_alpha_c_relationship(self, small3d):
        hic = HicooTensor(small3d, block_bits=4)
        # c_b == 1 / (alpha_b * B)
        assert np.isclose(hic.avg_slice_size(),
                          1.0 / (hic.block_ratio() * hic.block_size))

    def test_clustered_beats_random_alpha(self):
        from repro.data.synthetic import clustered_tensor, random_tensor

        clustered = clustered_tensor((512, 512, 512), 5000, nclusters=10,
                                     spread=3.0, seed=0)
        scattered = random_tensor((512, 512, 512), 5000, seed=0)
        a_c = HicooTensor(clustered, block_bits=5).block_ratio()
        a_r = HicooTensor(scattered, block_bits=5).block_ratio()
        assert a_c < a_r

    def test_geometry_keys(self, small3d):
        geo = HicooTensor(small3d, block_bits=3).geometry()
        for key in ("block_bits", "nblocks", "alpha_b", "c_b",
                    "max_block_nnz", "mean_block_nnz", "bytes_per_nnz"):
            assert key in geo


class TestStorage:
    def test_formula(self, small3d):
        hic = HicooTensor(small3d, block_bits=3)
        parts = hic.storage_bytes()
        assert parts["bptr"] == 8 * (hic.nblocks + 1)
        assert parts["binds"] == 4 * 3 * hic.nblocks
        assert parts["einds"] == 3 * hic.nnz
        assert parts["values"] == 4 * hic.nnz

    def test_beats_coo_on_dense_blocks(self):
        # fully dense 64^3 corner: every 8-edge block is full
        inds = [[i, j, k] for i in range(16) for j in range(16) for k in range(16)]
        coo = CooTensor((512, 512, 512), inds, np.ones(len(inds)))
        hic = HicooTensor(coo, block_bits=3)
        assert hic.total_bytes() < 0.6 * coo.total_bytes()

    def test_worst_case_overhead_bounded(self):
        # scattered tensor: HiCOO adds per-block overhead but the einds are
        # small, keeping total within ~2.3x of COO for 3 modes
        coo = make_random_coo((4096, 4096, 4096), 500, seed=5)
        hic = HicooTensor(coo, block_bits=7)
        assert hic.total_bytes() <= 2.5 * coo.total_bytes()


class TestBestBlockBits:
    def test_returns_valid(self, small3d):
        bits = best_block_bits(small3d)
        assert 1 <= bits <= 8

    def test_respects_candidates(self, small3d):
        bits = best_block_bits(small3d, candidates=[2, 3])
        assert bits in (2, 3)

    def test_prefers_larger_on_tie(self):
        coo = CooTensor((8, 8), [[0, 0]], [1.0])
        # single nonzero: all block sizes give 1 block, tie -> largest wins
        assert best_block_bits(coo, candidates=[2, 3]) == 3
