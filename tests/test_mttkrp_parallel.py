"""Tests for parallel MTTKRP strategies (correctness + accounting)."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.formats.csf import CsfTensor
from repro.kernels.mttkrp import mttkrp, mttkrp_parallel


@pytest.fixture
def suite(small3d):
    return {
        "coo": small3d,
        "csf": CsfTensor(small3d),
        "hicoo": HicooTensor(small3d, block_bits=2),
    }


class TestCorrectness:
    @pytest.mark.parametrize("nthreads", [1, 2, 4, 9])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_all_formats_auto(self, suite, factors3d, nthreads, mode):
        ref = mttkrp(suite["coo"], factors3d, mode)
        for name, tensor in suite.items():
            run = mttkrp_parallel(tensor, factors3d, mode, nthreads)
            np.testing.assert_allclose(run.output, ref, atol=1e-10,
                                       err_msg=f"{name} nthreads={nthreads}")

    @pytest.mark.parametrize("strategy", ["privatize", "atomic"])
    def test_coo_strategies(self, suite, factors3d, strategy):
        ref = mttkrp(suite["coo"], factors3d, 1)
        run = mttkrp_parallel(suite["coo"], factors3d, 1, 4, strategy=strategy)
        np.testing.assert_allclose(run.output, ref, atol=1e-10)
        assert run.strategy == strategy

    @pytest.mark.parametrize("strategy", ["schedule", "privatize"])
    def test_hicoo_strategies(self, suite, factors3d, strategy):
        ref = mttkrp(suite["coo"], factors3d, 0)
        run = mttkrp_parallel(suite["hicoo"], factors3d, 0, 4, strategy=strategy)
        np.testing.assert_allclose(run.output, ref, atol=1e-10)
        assert run.strategy == strategy

    @pytest.mark.parametrize("strategy", ["subtree", "privatize"])
    def test_csf_strategies(self, suite, factors3d, strategy):
        for mode in range(3):
            ref = mttkrp(suite["coo"], factors3d, mode)
            run = mttkrp_parallel(suite["csf"], factors3d, mode, 3,
                                  strategy=strategy)
            np.testing.assert_allclose(run.output, ref, atol=1e-10)

    def test_more_threads_than_work(self, suite, factors3d):
        ref = mttkrp(suite["coo"], factors3d, 0)
        for tensor in suite.values():
            run = mttkrp_parallel(tensor, factors3d, 0, 64)
            np.testing.assert_allclose(run.output, ref, atol=1e-10)

    def test_4d_hicoo_schedule(self, small4d, factors4d):
        hic = HicooTensor(small4d, block_bits=2)
        for mode in range(4):
            ref = mttkrp(small4d, factors4d, mode)
            run = mttkrp_parallel(hic, factors4d, mode, 4, strategy="schedule")
            np.testing.assert_allclose(run.output, ref, atol=1e-10)


class TestAccounting:
    def test_work_conserved(self, suite, factors3d):
        for tensor in suite.values():
            run = mttkrp_parallel(tensor, factors3d, 0, 4)
            assert run.thread_nnz.sum() == tensor.nnz

    def test_atomic_counting(self, suite, factors3d):
        run = mttkrp_parallel(suite["coo"], factors3d, 0, 4, strategy="atomic")
        assert run.atomic_updates == suite["coo"].nnz
        run1 = mttkrp_parallel(suite["coo"], factors3d, 0, 1, strategy="atomic")
        assert run1.atomic_updates == 0  # no contention single-threaded

    def test_schedule_attached(self, suite, factors3d):
        run = mttkrp_parallel(suite["hicoo"], factors3d, 0, 4,
                              strategy="schedule")
        assert run.schedule is not None
        assert run.schedule.nthreads == 4

    def test_privatize_reduction_flops(self, suite, factors3d):
        run = mttkrp_parallel(suite["hicoo"], factors3d, 0, 4,
                              strategy="privatize")
        rows, rank = suite["hicoo"].shape[0], factors3d[0].shape[1]
        assert run.reduction_flops == 3 * rows * rank

    def test_report_populated(self, suite, factors3d):
        run = mttkrp_parallel(suite["hicoo"], factors3d, 0, 3)
        assert run.report.nthreads == 3
        assert run.report.makespan() >= 0
        assert run.load_imbalance() >= 1.0

    def test_bad_inputs(self, suite, factors3d):
        with pytest.raises(ValueError):
            mttkrp_parallel(suite["coo"], factors3d, 0, 0)
        with pytest.raises(ValueError):
            mttkrp_parallel(suite["coo"], factors3d, 0, 2, strategy="schedule")
        with pytest.raises(ValueError):
            mttkrp_parallel(suite["hicoo"], factors3d, 0, 2, strategy="atomic")


class TestRealThreads:
    def test_schedule_with_real_threads(self, factors3d, small3d):
        hic = HicooTensor(small3d, block_bits=2)
        ref = mttkrp(small3d, factors3d, 0)
        run = mttkrp_parallel(hic, factors3d, 0, 4, strategy="schedule",
                              real_threads=True)
        np.testing.assert_allclose(run.output, ref, atol=1e-10)
        assert run.report.real_threads
