"""Tests for telemetry v2: labeled metrics, OpenMetrics export, the
sampling profiler, and the perf ledger.

The label/quantile semantics of the registry itself, the exporter's
bundled OpenMetrics validator (CI has no promtool), the ``/metrics``
HTTP endpoint, profiler stack collection, ledger regression detection,
and — the part most likely to rot silently — concurrent mutation during
``snapshot()``/``reset()`` plus conservation of merged worker series
under chaos faults.
"""

import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import urlopen

import numpy as np
import pytest

from repro import testing
from repro.core.hicoo import HicooTensor
from repro.kernels.mttkrp import mttkrp_parallel
from repro.obs import ledger, metrics, trace
from repro.obs.export import (MetricsServer, render_openmetrics,
                              sanitize_name, validate_openmetrics)
from repro.obs.metrics import Histogram, MetricsRegistry, format_series
from repro.obs.sampler import SamplingProfiler
from repro.parallel import procpool
from tests.conftest import make_random_coo

NW = 2


@pytest.fixture(autouse=True)
def _clean_obs():
    trace.disable()
    trace.clear()
    testing.clear_chaos()
    metrics.reset()
    metrics.enable()
    yield
    trace.disable()
    trace.clear()
    testing.clear_chaos()
    metrics.reset()
    metrics.enable()


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    procpool.shutdown_pools()


# ----------------------------------------------------------------------
# labeled registry semantics
# ----------------------------------------------------------------------
class TestLabels:
    def test_labels_create_series_and_aggregate(self):
        reg = MetricsRegistry()
        reg.inc("k.calls", labels={"format": "alto", "mode": 2})
        reg.inc("k.calls", 2, labels={"format": "hicoo", "mode": 2})
        reg.inc("k.calls")  # unlabeled series of the same family
        assert reg.value("k.calls") == 4  # bare name sums every series
        assert reg.value("k.calls", labels={"format": "alto", "mode": 2}) == 1
        assert reg.value("k.calls", labels={"format": "none"}) == 0
        labelsets = reg.series_labels("k.calls")
        assert {} in labelsets
        assert {"format": "alto", "mode": "2"} in labelsets

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("x", labels={"b": 1, "a": 2})
        reg.inc("x", labels={"a": 2, "b": 1})
        assert reg.value("x", labels={"b": 1, "a": 2}) == 2
        assert len(reg.series_labels("x")) == 1

    def test_snapshot_emits_bare_aggregate_plus_labeled(self):
        reg = MetricsRegistry()
        reg.inc("k.calls", labels={"format": "alto"})
        reg.inc("k.calls", labels={"format": "hicoo"})
        reg.inc("plain")
        snap = reg.snapshot()
        assert snap["k.calls"] == 2
        assert snap['k.calls{format="alto"}'] == 1
        assert snap['k.calls{format="hicoo"}'] == 1
        assert snap["plain"] == 1
        assert 'plain{' not in "".join(snap)

    def test_snapshot_prefix_filters_on_family_name(self):
        reg = MetricsRegistry()
        reg.inc("sup.a", labels={"w": 0})
        reg.inc("other.b")
        snap = reg.snapshot("sup.")
        assert set(snap) == {"sup.a", 'sup.a{w="0"}'}

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("m")
        with pytest.raises(TypeError, match="counter"):
            reg.observe("m", 1.0)
        with pytest.raises(TypeError, match="counter"):
            reg.set_gauge("m", 1.0, labels={"x": 1})

    def test_gauge_aggregate_is_last_write(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 5.0, labels={"w": 0})
        reg.set_gauge("g", 7.0, labels={"w": 1})
        assert reg.value("g") == 7.0
        assert reg.value("g", labels={"w": 0}) == 5.0

    def test_format_series(self):
        assert format_series("n", ()) == "n"
        assert format_series("n", (("a", "1"), ("b", "x"))) == 'n{a="1",b="x"}'

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry()
        reg.enabled = False
        reg.inc("a", labels={"x": 1})
        reg.observe("h", 1.0)
        reg.set_gauge("g", 2.0)
        assert reg.snapshot() == {}


class TestHistogramQuantiles:
    def test_summary_quantiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100 and s["min"] == 1.0 and s["max"] == 100.0
        assert s["p50"] == pytest.approx(50.5, abs=1.0)
        assert s["p95"] == pytest.approx(95.0, abs=1.5)
        assert s["p99"] == pytest.approx(99.0, abs=1.5)

    def test_reservoir_bounds_memory_and_stays_representative(self):
        h = Histogram()
        for v in range(20_000):
            h.observe(float(v))
        assert len(h._samples) == Histogram.RESERVOIR_SIZE
        assert h.count == 20_000
        # uniform 0..20k: the sampled median must land near the middle
        assert 5_000 < h.quantile(0.5) < 15_000

    def test_merge_preserves_quantile_capability(self):
        a, b = Histogram(), Histogram()
        for v in range(100):
            b.observe(float(v))
        a.merge(b.count, b.total, b.min, b.max, b._samples)
        assert a.count == 100
        assert a.summary()["p50"] == pytest.approx(49.5, abs=2.0)

    def test_report_renders_quantiles(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("h.t", v, labels={"backend": "sim"})
        line = next(ln for ln in reg.report()
                    if ln.startswith('h.t{backend="sim"}'))
        assert "p50=" in line and "p95=" in line and "p99=" in line


# ----------------------------------------------------------------------
# OpenMetrics rendering + bundled validator + HTTP endpoint
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def _registry(self):
        reg = MetricsRegistry()
        reg.inc("mttkrp.calls", 3, labels={"format": "alto", "mode": 0})
        reg.inc("mttkrp.calls", 1)
        reg.set_gauge("cache.bytes", 1024.0)
        for v in (0.1, 0.2, 0.3):
            reg.observe("task.seconds", v, labels={"backend": "thread"})
        return reg

    def test_render_validates_and_has_expected_series(self):
        text = render_openmetrics(self._registry())
        assert validate_openmetrics(text) == []
        assert text.endswith("# EOF\n")
        assert "# TYPE mttkrp_calls counter" in text
        assert 'mttkrp_calls_total{format="alto",mode="0"} 3' in text
        assert "mttkrp_calls_total 1" in text  # unlabeled series
        assert "cache_bytes 1024" in text
        assert 'task_seconds{backend="thread",quantile="0.5"}' in text
        assert 'task_seconds_count{backend="thread"} 3' in text
        assert 'task_seconds_sum{backend="thread"}' in text

    def test_sanitize_name(self):
        assert sanitize_name("mttkrp.calls") == "mttkrp_calls"
        assert sanitize_name("9lives") == "_9lives"

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("weird", labels={"path": 'a"b\\c', "nl": "x\ny"})
        text = render_openmetrics(reg)
        assert validate_openmetrics(text) == []

    def test_validator_rejects_broken_pages(self):
        assert validate_openmetrics("foo 1\n")  # no TYPE, no EOF
        good = render_openmetrics(self._registry())
        assert any("EOF" in p for p in
                   validate_openmetrics(good.replace("# EOF\n", "")))
        assert any("_total" in p for p in validate_openmetrics(
            "# TYPE c counter\nc 1\n# EOF\n"))
        assert any("duplicate series" in p for p in validate_openmetrics(
            "# TYPE g gauge\ng 1\ng 2\n# EOF\n"))
        assert any("unbalanced" in p for p in validate_openmetrics(
            '# TYPE g gauge\ng{a="b} 1\n# EOF\n'))

    def test_server_serves_metrics_healthz_and_404(self):
        metrics.inc("srv.test_counter", 7, labels={"who": "test"})
        with MetricsServer(port=0) as srv:
            assert srv.port != 0
            body = urlopen(srv.url + "/metrics", timeout=10).read().decode()
            assert validate_openmetrics(body) == []
            assert 'srv_test_counter_total{who="test"} 7' in body
            health = json.loads(
                urlopen(srv.url + "/healthz", timeout=10).read().decode())
            assert health["status"] == "ok"
            assert health["uptime_s"] >= 0
            with pytest.raises(HTTPError):
                urlopen(srv.url + "/nope", timeout=10)
        # stopped server refuses connections
        with pytest.raises(OSError):
            urlopen(srv.url + "/metrics", timeout=2)
        assert metrics.value("export.servers_started") == 1


# ----------------------------------------------------------------------
# sampling profiler
# ----------------------------------------------------------------------
def _spin(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        sum(i * i for i in range(500))


class TestSampler:
    def test_collects_scoped_stacks(self, tmp_path):
        prof = SamplingProfiler(interval=0.001, scope="unittest")
        prof.start()
        _spin(0.25)
        prof.stop()
        assert prof.nsamples > 10
        lines = prof.collapsed()
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert all(line.startswith("unittest;") for line in lines)
        assert any("_spin" in line for line in lines)
        out = tmp_path / "p.folded"
        prof.save(out)
        assert out.read_text().splitlines() == lines
        leaf, frac = prof.top(1)[0]
        assert 0 < frac <= 1.0
        assert metrics.value("sampler.runs") == 1
        assert metrics.value("sampler.samples") == prof.nsamples

    def test_span_prefix_when_tracing(self):
        trace.enable()
        prof = SamplingProfiler(interval=0.001)
        prof.start()
        with trace.span("hot.phase"):
            _spin(0.25)
        prof.stop()
        trace.disable()
        assert any(key.startswith("hot.phase;") for key in prof.samples), \
            list(prof.samples)[:3]

    def test_default_targets_only_starting_thread(self):
        stop = threading.Event()
        t = threading.Thread(target=lambda: stop.wait(2.0), daemon=True)
        t.start()
        prof = SamplingProfiler(interval=0.001)
        prof.start()
        _spin(0.1)
        prof.stop()
        stop.set()
        t.join()
        assert not any("stop.wait" in k or "Event.wait" in k
                       for k in prof.samples)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0.0)

    def test_open_spans_tracks_stack(self):
        trace.enable()
        ident = threading.get_ident()
        assert trace.open_spans(ident) == ()
        with trace.span("a"):
            with trace.span("b"):
                assert trace.open_spans(ident) == ("a", "b")
            assert trace.open_spans(ident) == ("a",)
        assert trace.open_spans(ident) == ()


# ----------------------------------------------------------------------
# perf ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        rec = ledger.append_record(path, {"a/b": 1.5}, labels={"x": 1},
                                   source="test", sha="abc")
        assert rec["series"] == {"a/b": 1.5}
        with open(path, "a") as fh:
            fh.write("not json\n{\"no_series\": 1}\n")
        history = ledger.read_history(path)
        assert len(history) == 1  # malformed + schema-less lines skipped
        assert history[0]["sha"] == "abc"
        assert history[0]["labels"] == {"x": "1"}

    def test_series_from_bench_geomeans(self):
        records = [
            {"op": "mttkrp", "variant": "cached", "time_s": 1.0},
            {"op": "mttkrp", "variant": "cached", "time_s": 4.0},
            {"op": "mttkrp", "variant": "cached", "time_s": "bad"},
            {"op": "conv", "variant": "cold", "time_s": 2.0},
            {"op": "conv", "time_s": 0.0},  # non-positive dropped
        ]
        series = ledger.series_from_bench(records)
        assert series["mttkrp/cached"] == pytest.approx(2.0)  # sqrt(1*4)
        assert series["conv/cold"] == pytest.approx(2.0)

    def test_detector_flags_slowdown_not_noise_or_new(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for i in range(5):
            ledger.append_record(path, {"s/x": 1.0 + 0.02 * (i % 2)},
                                 sha=f"c{i}")
        assert ledger.detect_regressions(ledger.read_history(path)) == []
        # a NEW series in the latest record is never flagged
        ledger.append_record(path, {"s/x": 2.5, "s/new": 9.0}, sha="bad")
        flagged = ledger.detect_regressions(ledger.read_history(path))
        assert [r.series for r in flagged] == ["s/x"]
        reg = flagged[0]
        assert reg.ratio > 2.0 and reg.pct > 100.0
        assert "s/x" in str(reg)

    def test_rolling_window_forgets_old_baseline(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # old fast era, then a slow era long enough to fill the window
        for v in [1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0]:
            ledger.append_record(path, {"s/x": v})
        ledger.append_record(path, {"s/x": 2.1})
        assert ledger.detect_regressions(ledger.read_history(path),
                                         window=5) == []

    def test_delta_table_and_cli(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        for v in (1.0, 1.0, 1.0):
            ledger.append_record(path, {"s/x": v})
        ledger.append_record(path, {"s/x": 3.0, "s/new": 1.0})
        table = ledger.delta_table(ledger.read_history(path))
        assert "| `s/x` |" in table and "REGRESSION" in table
        assert "NEW" in table
        assert ledger._main([str(path)]) == 0  # table-only never gates
        assert ledger._main([str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION: s/x" in out
        # empty/missing ledger renders gracefully and passes the gate
        assert ledger._main([str(tmp_path / "none.jsonl"), "--check"]) == 0

    def test_git_sha_in_repo(self):
        sha = ledger.git_sha()
        assert sha == "unknown" or (sha and len(sha) >= 7)


# ----------------------------------------------------------------------
# concurrency: mutation during snapshot()/reset(), worker-series
# conservation under the process backend and chaos faults
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_thread_mutation_during_snapshot_and_reset(self):
        reg = MetricsRegistry()
        NTHREADS, PER = 8, 2_000
        stop = threading.Event()

        def mutate(i):
            for k in range(PER):
                reg.inc("conc.calls", labels={"t": i % 3})
                if k % 50 == 0:
                    reg.observe("conc.seconds", 0.001 * k,
                                labels={"t": i % 3})

        def reader():
            while not stop.is_set():
                reg.snapshot()
                reg.report()
                reg.export_view()
                render_openmetrics(reg)

        threads = [threading.Thread(target=mutate, args=(i,))
                   for i in range(NTHREADS)]
        rd = threading.Thread(target=reader)
        rd.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        rd.join()
        # nothing lost, nothing double-counted
        assert reg.value("conc.calls") == NTHREADS * PER
        snap = reg.snapshot()
        assert sum(snap[f'conc.calls{{t="{i}"}}'] for i in range(3)) \
            == NTHREADS * PER

    def test_reset_during_mutation_is_safe(self):
        reg = MetricsRegistry()
        done = threading.Event()

        def mutate():
            while not done.is_set():
                reg.inc("r.calls", labels={"x": 1})
                reg.observe("r.h", 1.0)

        threads = [threading.Thread(target=mutate) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(200):
            reg.reset()
        done.set()
        for t in threads:
            t.join()
        # post-quiescence the registry is coherent and usable
        reg.reset()
        reg.inc("r.calls", 5, labels={"x": 1})
        assert reg.value("r.calls") == 5

    def _problem(self):
        coo = make_random_coo((30, 24, 20), nnz=600, seed=7)
        hic = HicooTensor(coo, block_bits=2)
        rng = np.random.default_rng(7)
        factors = [rng.random((s, 6)) for s in hic.shape]
        return hic, factors

    def test_process_backend_worker_series_conserved(self):
        """Merged worker series sum exactly to the work done: every
        nonzero of every mode run appears once under some proc-N label."""
        hic, factors = self._problem()
        try:
            for _ in range(2):
                mttkrp_parallel(hic, factors, 0, NW, backend="process")
            snap = metrics.snapshot()
            assert snap["mttkrp.nnz_processed"] == 2 * hic.nnz
            worker_series = [k for k in snap
                            if k.startswith('mttkrp.nnz_processed{')]
            assert worker_series, snap
            assert all('worker="proc-' in k for k in worker_series)
            assert sum(snap[k] for k in worker_series) == 2 * hic.nnz
            # scatter backend choices made inside workers surface too
            assert any(k.startswith("scatter.calls{") and 'worker=' in k
                       for k in snap)
        finally:
            procpool.release_shared(hic)

    @pytest.mark.parametrize("fault", ["kill", "hang"])
    def test_chaos_fault_neither_loses_nor_double_counts(self, fault):
        """A worker killed/hung mid-task ships no delta for that attempt;
        the retry re-measures on a fresh worker — totals stay exact."""
        hic, factors = self._problem()
        try:
            sim = mttkrp_parallel(hic, factors, 0, NW,
                                  backend="sim").output
            metrics.reset()
            if fault == "kill":
                testing.install_chaos(testing.chaos(testing.kill_at(0)))
                policy = "retry"
            else:
                testing.install_chaos(
                    testing.chaos(testing.hang_at(0, seconds=120.0)))
                from repro.parallel.supervisor import FaultConfig

                policy = FaultConfig(policy="retry", task_deadline=2.0,
                                     backoff_base=0.01, backoff_cap=0.05)
            run = mttkrp_parallel(hic, factors, 0, NW, backend="process",
                                  fault_policy=policy)
            assert np.array_equal(run.output, sim)
            snap = metrics.snapshot()
            assert snap.get("mttkrp.nnz_processed") == hic.nnz, snap
            worker_series = [k for k in snap
                            if k.startswith('mttkrp.nnz_processed{')]
            assert sum(snap[k] for k in worker_series) == hic.nnz
            assert metrics.value("supervisor.recoveries") >= 1
            # the PR 5 recovery counters are scrapeable through the exporter
            text = render_openmetrics()
            assert validate_openmetrics(text) == []
            assert "# TYPE supervisor_respawns counter" in text
            assert "supervisor_respawns_total 1" in text
            assert "supervisor_recoveries_total" in text
        finally:
            procpool.shutdown_pools()
            procpool.release_shared(hic)

    def test_compiled_tier_counters_scrapeable(self):
        """JIT/GPU-tier health surfaces in the scrape whichever way the
        host resolves the tier: compile cost when numba is present, the
        labeled fallback counter when it is not."""
        from repro.kernels.backends import (resolve_kernel_backend,
                                            tier_available)
        from repro.kernels.compiled import warmup_numba

        resolve_kernel_backend("numba")
        warmup_numba()
        text = render_openmetrics()
        assert validate_openmetrics(text) == []
        if tier_available("numba"):
            assert "# TYPE compiled_compile_seconds summary" in text
            assert 'compiled_compile_seconds_count{tier="numba"}' in text
        else:
            assert 'kernel_fallbacks_total{tier="numba"} 1' in text

    def test_scrape_during_process_backend_run(self):
        """A live scrape racing the process backend returns a coherent,
        valid page every time."""
        hic, factors = self._problem()
        stop = threading.Event()
        pages = []
        try:
            with MetricsServer(port=0) as srv:
                def scrape():
                    while not stop.is_set():
                        body = urlopen(srv.url + "/metrics",
                                       timeout=10).read().decode()
                        pages.append(body)

                t = threading.Thread(target=scrape)
                t.start()
                for _ in range(3):
                    mttkrp_parallel(hic, factors, 0, NW, backend="process")
                stop.set()
                t.join()
            assert pages
            for body in pages:
                assert validate_openmetrics(body) == [], \
                    validate_openmetrics(body)[:3]
            assert 'worker="proc-' in pages[-1]
        finally:
            stop.set()
            procpool.release_shared(hic)
