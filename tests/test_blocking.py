"""Unit tests for the block decomposition."""

import numpy as np
import pytest

from repro.core.blocking import MAX_BLOCK_BITS, decompose
from repro.formats.coo import CooTensor
from tests.conftest import make_random_coo


class TestDecompose:
    def test_block_limits_enforced(self, small3d):
        with pytest.raises(ValueError, match="block_bits"):
            decompose(small3d, 0)
        with pytest.raises(ValueError, match="block_bits"):
            decompose(small3d, MAX_BLOCK_BITS + 1)

    def test_type_check(self):
        with pytest.raises(TypeError):
            decompose(np.zeros((2, 2)), 3)

    def test_every_nonzero_covered_once(self, small3d):
        dec = decompose(small3d, 3)
        assert dec.nnz == small3d.nnz
        assert dec.block_ptr[0] == 0
        assert dec.block_ptr[-1] == small3d.nnz
        assert np.all(np.diff(dec.block_ptr) > 0)  # no empty blocks

    def test_offsets_within_block(self, small3d):
        bits = 3
        dec = decompose(small3d, bits)
        assert dec.elem_offsets.dtype == np.uint8
        assert dec.elem_offsets.max() < (1 << bits)

    def test_reconstruction(self, small3d):
        bits = 2
        dec = decompose(small3d, bits)
        blk = dec.nnz_block_of()
        global_inds = (dec.block_coords[blk] << bits) + dec.elem_offsets
        rebuilt = {tuple(i): v for i, v in zip(global_inds, dec.values)}
        orig = {tuple(i): v for i, v in zip(small3d.indices, small3d.values)}
        assert rebuilt == orig

    def test_blocks_unique(self, small3d):
        dec = decompose(small3d, 3)
        keys = {tuple(c) for c in dec.block_coords}
        assert len(keys) == dec.nblocks

    def test_block_coords_consistent_with_members(self, small3d):
        bits = 3
        dec = decompose(small3d, bits)
        blk = dec.nnz_block_of()
        # every nonzero's block coordinate matches its assigned block
        sorted_coo = small3d.sort_morton(block_bits=bits)
        expected = sorted_coo.indices >> bits
        np.testing.assert_array_equal(dec.block_coords[blk], expected)

    def test_empty_tensor(self):
        dec = decompose(CooTensor.empty((8, 8)), 2)
        assert dec.nblocks == 0
        assert dec.nnz == 0
        assert list(dec.block_ptr) == [0]

    def test_single_block_when_tensor_fits(self):
        coo = make_random_coo((8, 8, 8), 50, seed=3)
        dec = decompose(coo, 3)  # B=8 covers the whole tensor
        assert dec.nblocks == 1
        assert np.all(dec.block_coords == 0)

    def test_max_blocks_for_scattered(self):
        # one nonzero per block corner -> nblocks == nnz
        inds = [[i * 16, i * 16] for i in range(10)]
        coo = CooTensor((256, 256), inds, np.ones(10))
        dec = decompose(coo, 4)
        assert dec.nblocks == 10

    def test_block_nnz_sums(self, small4d):
        dec = decompose(small4d, 2)
        assert dec.block_nnz().sum() == small4d.nnz
