"""Tests for the sparse Tucker substrate (TTM chains + HOOI)."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.formats.coo import CooTensor
from repro.tucker import SemiSparse, TuckerTensor, hooi, ttm_chain


@pytest.fixture
def dense_and_coo(rng):
    shape = (12, 10, 8)
    dense = rng.normal(size=shape) * (rng.random(shape) < 0.3)
    return dense, CooTensor.from_dense(dense)


@pytest.fixture
def tucker_factors(rng):
    return [rng.normal(size=(s, r)) for s, r in zip((12, 10, 8), (3, 4, 2))]


class TestSemiSparse:
    def test_from_coo_preserves(self, dense_and_coo):
        _, coo = dense_and_coo
        semi = SemiSparse.from_coo(coo)
        assert semi.n == coo.nnz
        assert semi.ranks == (1,)
        np.testing.assert_allclose(semi.values.ravel(), coo.values)

    def test_contract_shape_check(self, dense_and_coo):
        _, coo = dense_and_coo
        semi = SemiSparse.from_coo(coo)
        with pytest.raises(ValueError, match="matrix"):
            semi.contract(0, np.ones((5, 2)))

    def test_double_contract_rejected(self, dense_and_coo, tucker_factors):
        _, coo = dense_and_coo
        semi = SemiSparse.from_coo(coo).contract(1, tucker_factors[1])
        with pytest.raises(ValueError, match="already contracted"):
            semi.contract(1, tucker_factors[1])

    def test_to_dense_matrix_requires_single_mode(self, dense_and_coo):
        _, coo = dense_and_coo
        with pytest.raises(ValueError, match="sparse modes remain"):
            SemiSparse.from_coo(coo).to_dense_matrix()

    def test_coordinates_merged(self, tucker_factors):
        # two nonzeros sharing all coordinates except the contracted mode
        coo = CooTensor((12, 10, 8), [[0, 3, 2], [5, 3, 2]], [1.0, 2.0])
        semi = SemiSparse.from_coo(coo).contract(0, tucker_factors[0])
        assert semi.n == 1


class TestTtmChain:
    def test_matches_dense_einsum(self, dense_and_coo, tucker_factors):
        dense, coo = dense_and_coo
        # skip mode 0, contract in the fixed order [1, 2]
        semi = ttm_chain(coo, tucker_factors, skip_mode=0, order=[1, 2])
        ref = np.einsum("ijk,jb,kc->ibc", dense,
                        tucker_factors[1], tucker_factors[2])
        np.testing.assert_allclose(semi.to_dense_matrix(),
                                   ref.reshape(dense.shape[0], -1),
                                   atol=1e-10)

    def test_contraction_order_irrelevant_to_content(self, dense_and_coo,
                                                     tucker_factors):
        dense, coo = dense_and_coo
        a = ttm_chain(coo, tucker_factors, skip_mode=1, order=[0, 2])
        b = ttm_chain(coo, tucker_factors, skip_mode=1, order=[2, 0])
        # same multiset of values after accounting for column permutation
        ma = a.to_dense_matrix()
        mb = b.to_dense_matrix()
        assert np.isclose(np.linalg.norm(ma), np.linalg.norm(mb))

    def test_every_skip_mode(self, dense_and_coo, tucker_factors):
        dense, coo = dense_and_coo
        for mode in range(3):
            semi = ttm_chain(coo, tucker_factors, skip_mode=mode)
            assert semi.modes == (mode,)
            expect_cols = np.prod(
                [tucker_factors[m].shape[1] for m in range(3) if m != mode])
            assert semi.to_dense_matrix().shape == (dense.shape[mode],
                                                    expect_cols)

    def test_bad_order_rejected(self, dense_and_coo, tucker_factors):
        _, coo = dense_and_coo
        with pytest.raises(ValueError, match="order"):
            ttm_chain(coo, tucker_factors, skip_mode=0, order=[1, 1])

    def test_factor_count_checked(self, dense_and_coo):
        _, coo = dense_and_coo
        with pytest.raises(ValueError, match="factors"):
            ttm_chain(coo, [np.ones((12, 2))], skip_mode=0)


class TestTuckerTensor:
    def test_full_matches_tensordot(self, rng):
        core = rng.normal(size=(2, 3, 2))
        factors = [rng.normal(size=(s, r))
                   for s, r in zip((5, 6, 4), core.shape)]
        tt = TuckerTensor(core, factors)
        ref = np.einsum("abc,ia,jb,kc->ijk", core, *factors)
        np.testing.assert_allclose(tt.full(), ref, atol=1e-12)

    def test_norm_identity_with_orthonormal_factors(self, rng):
        core = rng.normal(size=(2, 2, 2))
        factors = [np.linalg.qr(rng.normal(size=(s, 2)))[0]
                   for s in (6, 7, 8)]
        tt = TuckerTensor(core, factors)
        assert np.isclose(tt.norm(), np.linalg.norm(tt.full()))

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="factors"):
            TuckerTensor(np.zeros((2, 2)), [np.ones((3, 2))])
        with pytest.raises(ValueError, match="columns"):
            TuckerTensor(np.zeros((2, 2)), [np.ones((3, 2)), np.ones((4, 3))])


class TestHooi:
    def test_recovers_planted_tucker(self, rng):
        core = rng.normal(size=(3, 2, 3))
        factors = [np.linalg.qr(rng.normal(size=(s, r)))[0]
                   for s, r in zip((20, 18, 15), core.shape)]
        coo = CooTensor.from_dense(TuckerTensor(core, factors).full())
        res = hooi(coo, (3, 2, 3), maxiters=20, seed=0)
        assert res.final_fit > 1 - 1e-6
        assert res.converged

    def test_fit_monotone(self, dense_and_coo):
        _, coo = dense_and_coo
        res = hooi(coo, (4, 4, 4), maxiters=10, tol=0.0, seed=1)
        fits = np.array(res.fits)
        assert np.all(np.diff(fits) > -1e-8)

    def test_orthonormal_factors(self, dense_and_coo):
        _, coo = dense_and_coo
        res = hooi(coo, (3, 3, 3), maxiters=5, seed=2)
        for f in res.tucker.factors:
            np.testing.assert_allclose(f.T @ f, np.eye(f.shape[1]),
                                       atol=1e-10)

    def test_bigger_core_fits_better(self, dense_and_coo):
        _, coo = dense_and_coo
        small = hooi(coo, (2, 2, 2), maxiters=10, seed=3)
        big = hooi(coo, (6, 6, 6), maxiters=10, seed=3)
        assert big.final_fit >= small.final_fit - 1e-6

    def test_full_ranks_reproduce_exactly(self, dense_and_coo):
        dense, coo = dense_and_coo
        res = hooi(coo, dense.shape, maxiters=3, seed=4)
        np.testing.assert_allclose(res.tucker.full(), dense, atol=1e-8)

    def test_works_from_hicoo(self, dense_and_coo):
        _, coo = dense_and_coo
        hic = HicooTensor(coo, block_bits=2)
        a = hooi(coo, (3, 3, 3), maxiters=3, tol=0.0, seed=5)
        b = hooi(hic, (3, 3, 3), maxiters=3, tol=0.0, seed=5)
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-9)

    def test_validation(self, dense_and_coo):
        _, coo = dense_and_coo
        with pytest.raises(ValueError, match="ranks"):
            hooi(coo, (3, 3))
        with pytest.raises(ValueError, match="exceed"):
            hooi(coo, (100, 3, 3))
        with pytest.raises(ValueError, match="positive"):
            hooi(coo, (0, 3, 3))
        with pytest.raises(ValueError, match="maxiters"):
            hooi(coo, (2, 2, 2), maxiters=0)

    def test_4d(self, small4d):
        res = hooi(small4d, (3, 3, 3, 3), maxiters=4, seed=6)
        assert 0.0 <= res.final_fit <= 1.0
        assert res.tucker.ranks == (3, 3, 3, 3)
