"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.formats.coo import CooTensor
from repro.formats.dense import DenseTensor


class TestConstruction:
    def test_basic(self):
        t = CooTensor((3, 4), [[0, 1], [2, 3]], [1.0, 2.0])
        assert t.shape == (3, 4)
        assert t.nnz == 2
        assert t.nmodes == 2

    def test_duplicate_summing(self):
        t = CooTensor((3, 3), [[0, 0], [0, 0], [1, 1]], [1.0, 2.0, 5.0])
        assert t.nnz == 2
        dense = t.to_dense()
        assert dense[0, 0] == 3.0
        assert dense[1, 1] == 5.0

    def test_duplicates_kept_when_disabled(self):
        t = CooTensor((3, 3), [[0, 0], [0, 0]], [1.0, 2.0], sum_duplicates=False)
        assert t.nnz == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="values"):
            CooTensor((3,), [[0], [1]], [1.0])

    def test_out_of_range_index(self):
        with pytest.raises(ValueError, match="out of range"):
            CooTensor((3, 3), [[0, 3]], [1.0])

    def test_empty(self):
        t = CooTensor.empty((5, 5, 5))
        assert t.nnz == 0
        assert t.norm() == 0.0

    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(4, 5, 3)) * (rng.random((4, 5, 3)) < 0.3)
        t = CooTensor.from_dense(dense)
        assert np.allclose(t.to_dense(), dense)
        assert t.nnz == np.count_nonzero(dense)


class TestSorting:
    def test_lexicographic_default(self, small3d):
        s = small3d.sort_lexicographic()
        keys = s.indices
        for i in range(1, len(keys)):
            assert tuple(keys[i - 1]) <= tuple(keys[i])

    def test_lexicographic_custom_order(self, small3d):
        s = small3d.sort_lexicographic([2, 0, 1])
        reordered = s.indices[:, [2, 0, 1]]
        for i in range(1, len(reordered)):
            assert tuple(reordered[i - 1]) <= tuple(reordered[i])

    def test_sort_preserves_content(self, small3d):
        s = small3d.sort_morton(block_bits=3)
        a = {tuple(i): v for i, v in zip(small3d.indices, small3d.values)}
        b = {tuple(i): v for i, v in zip(s.indices, s.values)}
        assert a == b

    def test_morton_blocks_contiguous(self, small3d):
        bits = 2
        s = small3d.sort_morton(block_bits=bits)
        blocks = s.indices >> bits
        seen = set()
        prev = None
        for row in blocks:
            key = tuple(row)
            if key != prev:
                assert key not in seen
                seen.add(key)
                prev = key

    def test_bad_mode_order(self, small3d):
        with pytest.raises(ValueError, match="permutation"):
            small3d.sort_lexicographic([0, 0, 1])


class TestMttkrp:
    def test_matches_dense(self, small3d, factors3d):
        dense = DenseTensor(small3d.to_dense())
        for mode in range(3):
            got = small3d.mttkrp(factors3d, mode)
            ref = dense.mttkrp(factors3d, mode)
            np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_4d(self, small4d, factors4d):
        dense = DenseTensor(small4d.to_dense())
        for mode in range(4):
            np.testing.assert_allclose(
                small4d.mttkrp(factors4d, mode),
                dense.mttkrp(factors4d, mode), atol=1e-10)

    def test_empty_tensor(self):
        t = CooTensor.empty((4, 5))
        out = t.mttkrp([np.ones((4, 3)), np.ones((5, 3))], 0)
        assert out.shape == (4, 3)
        assert np.all(out == 0)

    def test_negative_mode(self, small3d, factors3d):
        np.testing.assert_allclose(
            small3d.mttkrp(factors3d, -1), small3d.mttkrp(factors3d, 2))


class TestTtv:
    def test_matches_dense(self, small3d, rng):
        v = rng.normal(size=small3d.shape[1])
        got = small3d.ttv(v, 1).to_dense()
        ref = np.tensordot(small3d.to_dense(), v, axes=(1, 0))
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_wrong_length(self, small3d):
        with pytest.raises(ValueError, match="length"):
            small3d.ttv(np.ones(small3d.shape[1] + 1), 1)

    def test_single_mode_rejected(self):
        t = CooTensor((5,), [[1]], [2.0])
        with pytest.raises(ValueError, match="only mode"):
            t.ttv(np.ones(5), 0)


class TestUtilities:
    def test_norm(self, small3d):
        assert np.isclose(small3d.norm(), np.linalg.norm(small3d.to_dense()))

    def test_slice_counts(self, small3d):
        counts = small3d.slice_counts(0)
        assert counts.sum() == small3d.nnz
        assert len(counts) == small3d.shape[0]

    def test_remove_empty_slices(self):
        t = CooTensor((100, 100), [[5, 7], [90, 7]], [1.0, 2.0])
        squeezed = t.remove_empty_slices()
        assert squeezed.shape == (2, 1)
        assert squeezed.nnz == 2

    def test_storage_accounting(self, small3d):
        parts = small3d.storage_bytes()
        assert parts["indices"] == 4 * 3 * small3d.nnz
        assert parts["values"] == 4 * small3d.nnz
        assert small3d.total_bytes() == sum(parts.values())

    def test_innerprod_ktensor(self, small3d, factors3d):
        w = np.ones(6)
        got = small3d.innerprod_ktensor(w, factors3d)
        from repro.cpd.ktensor import KruskalTensor

        full = KruskalTensor(w, factors3d).full()
        ref = float(np.sum(small3d.to_dense() * full))
        assert np.isclose(got, ref)

    def test_density(self):
        t = CooTensor((10, 10), [[0, 0]], [1.0])
        assert np.isclose(t.density(), 0.01)

    def test_to_dense_guard(self):
        t = CooTensor((100_000, 100_000, 100_000), [[0, 0, 0]], [1.0])
        with pytest.raises(MemoryError):
            t.to_dense()


class TestSumDuplicatesInternal:
    def test_many_duplicates(self):
        inds = np.array([[1, 1]] * 10 + [[0, 0]] * 5)
        vals = np.ones(15)
        t = CooTensor((2, 2), inds, vals)
        assert t.nnz == 2
        dense = t.to_dense()
        assert dense[1, 1] == 10
        assert dense[0, 0] == 5
