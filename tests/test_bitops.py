"""Unit tests for Morton codes and bit utilities."""

import numpy as np
import pytest

from repro.util.bitops import (
    bits_for,
    interleave_words,
    morton_decode,
    morton_encode,
    morton_sort_order,
)


class TestBitsFor:
    def test_small_values(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 2
        assert bits_for(255) == 8
        assert bits_for(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_for(-1)


class TestMortonEncode:
    def test_known_2d_values(self):
        # classic Z-order: (x=1, y=0) -> 0b01 = 1; (0,1) -> 0b10 = 2; (1,1) -> 3
        coords = np.array([[1, 0, 1], [0, 1, 1]])
        words = morton_encode(coords, nbits=1)
        assert words.shape == (1, 3)
        assert list(words[0]) == [1, 2, 3]

    def test_known_3d_value(self):
        # (1, 1, 1) with 2 bits: bits interleave to 0b000111 = 7
        words = morton_encode(np.array([[1], [1], [1]]), nbits=2)
        assert words[0, 0] == 7

    def test_mode0_varies_fastest(self):
        # increasing mode-0 coordinate flips the lowest bit first
        a = morton_encode(np.array([[0], [0]]), nbits=4)[0, 0]
        b = morton_encode(np.array([[1], [0]]), nbits=4)[0, 0]
        c = morton_encode(np.array([[0], [1]]), nbits=4)[0, 0]
        assert b == a + 1
        assert c == a + 2

    def test_multiword_output(self):
        # 3 modes x 30 bits = 90 bits -> 2 words
        coords = np.array([[(1 << 29)], [(1 << 29)], [(1 << 29)]], dtype=np.uint64)
        words = morton_encode(coords, nbits=30)
        assert words.shape[0] == 2
        assert words[0, 0] != 0  # high word is populated

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            morton_encode(np.array([[4]]), nbits=2)

    def test_bad_nbits_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[1]]), nbits=0)
        with pytest.raises(ValueError):
            morton_encode(np.array([[1]]), nbits=65)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1, 2, 3]), nbits=4)


class TestMortonRoundtrip:
    @pytest.mark.parametrize("nmodes,nbits", [(1, 8), (2, 5), (3, 10), (4, 7), (5, 13)])
    def test_roundtrip_random(self, nmodes, nbits):
        rng = np.random.default_rng(nmodes * 100 + nbits)
        coords = rng.integers(0, 1 << nbits, size=(nmodes, 200)).astype(np.uint64)
        words = morton_encode(coords, nbits)
        back = morton_decode(words, nmodes, nbits)
        assert np.array_equal(back, coords)

    def test_decode_shape_mismatch(self):
        words = np.zeros((1, 4), dtype=np.uint64)
        with pytest.raises(ValueError, match="expected"):
            morton_decode(words, nmodes=3, nbits=30)  # needs 2 words


class TestMortonSortOrder:
    def test_sorts_by_morton_code(self):
        rng = np.random.default_rng(3)
        coords = rng.integers(0, 64, size=(3, 500))
        order = morton_sort_order(coords, nbits=6)
        codes = morton_encode(coords.astype(np.uint64), 6)[0]
        assert np.all(np.diff(codes[order].astype(np.int64)) >= 0)

    def test_is_permutation(self):
        coords = np.array([[3, 1, 2, 0], [0, 0, 0, 0]])
        order = morton_sort_order(coords, nbits=2)
        assert sorted(order) == [0, 1, 2, 3]

    def test_stability_for_duplicates(self):
        coords = np.array([[1, 1, 0], [2, 2, 0]])
        order = morton_sort_order(coords, nbits=3)
        # the two identical points keep input order (stable sort)
        dup_positions = [int(np.where(order == i)[0][0]) for i in (0, 1)]
        assert dup_positions[0] < dup_positions[1]

    def test_groups_blocks_contiguously(self):
        # after Morton sorting, equal coordinates must be adjacent
        rng = np.random.default_rng(4)
        coords = rng.integers(0, 4, size=(3, 300))
        order = morton_sort_order(coords, nbits=2)
        sorted_c = coords[:, order]
        seen = set()
        prev = None
        for i in range(sorted_c.shape[1]):
            key = tuple(sorted_c[:, i])
            if key != prev:
                assert key not in seen, "block coordinates reappeared"
                seen.add(key)
                prev = key


class TestInterleaveWords:
    def test_stacks(self):
        hi = np.array([1, 2], dtype=np.uint64)
        lo = np.array([3, 4], dtype=np.uint64)
        out = interleave_words(hi, lo)
        assert out.shape == (2, 2)
        assert np.array_equal(out[0], hi)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            interleave_words(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))
