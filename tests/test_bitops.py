"""Unit tests for Morton codes and bit utilities."""

import numpy as np
import pytest

from repro.util.bitops import (
    bits_for,
    interleave_words,
    morton_decode,
    morton_encode,
    morton_key64,
    morton_sort_order,
    pack_key64,
    shift_right_words,
    stable_argsort_u64,
)


def reference_morton_encode(coords, nbits):
    """Per-bit reference encoder (the pre-magic-number implementation)."""
    coords = np.asarray(coords).astype(np.uint64, copy=False)
    nmodes, npoints = coords.shape
    nwords = (nmodes * nbits + 63) // 64
    words = np.zeros((nwords, npoints), dtype=np.uint64)
    for bit in range(nbits):
        for mode in range(nmodes):
            out_bit = bit * nmodes + mode
            word = nwords - 1 - (out_bit // 64)
            shift = np.uint64(out_bit % 64)
            src = (coords[mode] >> np.uint64(bit)) & np.uint64(1)
            words[word] |= src << shift
    return words


class TestBitsFor:
    def test_small_values(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 2
        assert bits_for(255) == 8
        assert bits_for(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_for(-1)


class TestMortonEncode:
    def test_known_2d_values(self):
        # classic Z-order: (x=1, y=0) -> 0b01 = 1; (0,1) -> 0b10 = 2; (1,1) -> 3
        coords = np.array([[1, 0, 1], [0, 1, 1]])
        words = morton_encode(coords, nbits=1)
        assert words.shape == (1, 3)
        assert list(words[0]) == [1, 2, 3]

    def test_known_3d_value(self):
        # (1, 1, 1) with 2 bits: bits interleave to 0b000111 = 7
        words = morton_encode(np.array([[1], [1], [1]]), nbits=2)
        assert words[0, 0] == 7

    def test_mode0_varies_fastest(self):
        # increasing mode-0 coordinate flips the lowest bit first
        a = morton_encode(np.array([[0], [0]]), nbits=4)[0, 0]
        b = morton_encode(np.array([[1], [0]]), nbits=4)[0, 0]
        c = morton_encode(np.array([[0], [1]]), nbits=4)[0, 0]
        assert b == a + 1
        assert c == a + 2

    def test_multiword_output(self):
        # 3 modes x 30 bits = 90 bits -> 2 words
        coords = np.array([[(1 << 29)], [(1 << 29)], [(1 << 29)]], dtype=np.uint64)
        words = morton_encode(coords, nbits=30)
        assert words.shape[0] == 2
        assert words[0, 0] != 0  # high word is populated

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            morton_encode(np.array([[4]]), nbits=2)

    def test_bad_nbits_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[1]]), nbits=0)
        with pytest.raises(ValueError):
            morton_encode(np.array([[1]]), nbits=65)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1, 2, 3]), nbits=4)


class TestMortonRoundtrip:
    @pytest.mark.parametrize("nmodes,nbits", [(1, 8), (2, 5), (3, 10), (4, 7), (5, 13)])
    def test_roundtrip_random(self, nmodes, nbits):
        rng = np.random.default_rng(nmodes * 100 + nbits)
        coords = rng.integers(0, 1 << nbits, size=(nmodes, 200)).astype(np.uint64)
        words = morton_encode(coords, nbits)
        back = morton_decode(words, nmodes, nbits)
        assert np.array_equal(back, coords)

    def test_decode_shape_mismatch(self):
        words = np.zeros((1, 4), dtype=np.uint64)
        with pytest.raises(ValueError, match="expected"):
            morton_decode(words, nmodes=3, nbits=30)  # needs 2 words


class TestMortonSortOrder:
    def test_sorts_by_morton_code(self):
        rng = np.random.default_rng(3)
        coords = rng.integers(0, 64, size=(3, 500))
        order = morton_sort_order(coords, nbits=6)
        codes = morton_encode(coords.astype(np.uint64), 6)[0]
        assert np.all(np.diff(codes[order].astype(np.int64)) >= 0)

    def test_is_permutation(self):
        coords = np.array([[3, 1, 2, 0], [0, 0, 0, 0]])
        order = morton_sort_order(coords, nbits=2)
        assert sorted(order) == [0, 1, 2, 3]

    def test_stability_for_duplicates(self):
        coords = np.array([[1, 1, 0], [2, 2, 0]])
        order = morton_sort_order(coords, nbits=3)
        # the two identical points keep input order (stable sort)
        dup_positions = [int(np.where(order == i)[0][0]) for i in (0, 1)]
        assert dup_positions[0] < dup_positions[1]

    def test_groups_blocks_contiguously(self):
        # after Morton sorting, equal coordinates must be adjacent
        rng = np.random.default_rng(4)
        coords = rng.integers(0, 4, size=(3, 300))
        order = morton_sort_order(coords, nbits=2)
        sorted_c = coords[:, order]
        seen = set()
        prev = None
        for i in range(sorted_c.shape[1]):
            key = tuple(sorted_c[:, i])
            if key != prev:
                assert key not in seen, "block coordinates reappeared"
                seen.add(key)
                prev = key


class TestMagicNumberVsReference:
    """The vectorized interleave must match the per-bit reference exactly,
    across every (nmodes, nbits) layout including multi-word codes."""

    @pytest.mark.parametrize("nmodes", [1, 2, 3, 4, 5])
    def test_fuzz_all_widths(self, nmodes):
        rng = np.random.default_rng(nmodes)
        for nbits in list(range(1, 18)) + [23, 31, 32, 33, 47, 63, 64]:
            hi = 1 << nbits
            coords = rng.integers(0, hi, size=(nmodes, 64), dtype=np.uint64)
            # force boundary values into every mode
            coords[:, 0] = 0
            coords[:, 1] = hi - 1
            words = morton_encode(coords, nbits)
            assert np.array_equal(words, reference_morton_encode(coords, nbits))
            assert np.array_equal(morton_decode(words, nmodes, nbits), coords)

    def test_multiword_boundary_spill(self):
        # 3 modes x 22 bits = 66 bits: the top 2 bits spill into word 0
        coords = np.array([[(1 << 22) - 1], [0], [(1 << 21)]], dtype=np.uint64)
        words = morton_encode(coords, 22)
        assert words.shape[0] == 2
        assert np.array_equal(words, reference_morton_encode(coords, 22))

    def test_int64_input_accepted_without_copy(self):
        coords = np.array([[5, 3], [2, 7]], dtype=np.int64)
        assert np.array_equal(morton_encode(coords, 4),
                              reference_morton_encode(coords, 4))


class TestMortonKey64:
    def test_matches_single_word_encode(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 1 << 10, size=(3, 100), dtype=np.uint64)
        assert np.array_equal(morton_key64(coords, 10),
                              morton_encode(coords, 10)[0])

    def test_rejects_multiword(self):
        with pytest.raises(ValueError, match="64-bit word"):
            morton_key64(np.zeros((3, 1), dtype=np.uint64), 30)


class TestPackKey64:
    def test_orders_like_lexsort(self):
        rng = np.random.default_rng(1)
        cols = [rng.integers(0, 50, 300), rng.integers(0, 9, 300),
                rng.integers(0, 1000, 300)]
        widths = [6, 4, 10]
        key = pack_key64(cols, widths)
        # column 0 is most significant -> same order as lexsort w/ col0 last
        expect = np.lexsort(tuple(cols[::-1]))
        assert np.array_equal(np.argsort(key, kind="stable"), expect)

    def test_rejects_over_64_bits(self):
        with pytest.raises(ValueError):
            pack_key64([np.zeros(2, dtype=np.uint64)] * 2, [33, 32])


class TestShiftRightWords:
    def test_matches_python_bigint_shift(self):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 1 << 63, size=(3, 50), dtype=np.uint64)
        for shift in [0, 1, 17, 64, 65, 100, 128, 150]:
            out = shift_right_words(words, shift)
            for j in range(words.shape[1]):
                big = 0
                for w in words[:, j]:
                    big = (big << 64) | int(w)
                big >>= shift
                got = 0
                for w in out[:, j]:
                    got = (got << 64) | int(w)
                assert got == big, (shift, j)


class TestStableArgsortU64:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 100, 5000).astype(np.uint64)  # many ties
        assert np.array_equal(stable_argsort_u64(keys),
                              np.argsort(keys, kind="stable"))

    def test_wide_keys_fall_back(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 1 << 62, 500).astype(np.uint64) << np.uint64(2)
        keys |= rng.integers(0, 4, 500).astype(np.uint64)
        assert np.array_equal(stable_argsort_u64(keys),
                              np.argsort(keys, kind="stable"))

    def test_empty(self):
        assert len(stable_argsort_u64(np.empty(0, dtype=np.uint64))) == 0


class TestInterleaveWords:
    def test_stacks(self):
        hi = np.array([1, 2], dtype=np.uint64)
        lo = np.array([3, 4], dtype=np.uint64)
        out = interleave_words(hi, lo)
        assert out.shape == (2, 2)
        assert np.array_equal(out[0], hi)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            interleave_words(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))
