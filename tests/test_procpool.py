"""Unit + regression tests for the process pool and executor backends.

Covers the parts of the process backend that the differential fuzz suite
does not exercise: exception propagation with original tracebacks
(fail-fast, every backend), the generic picklable-task entry, warm
pool/session reuse, shared-segment lifecycle (no leaks after release),
and per-worker observability export.
"""

from __future__ import annotations

import traceback
from functools import partial
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.kernels.mttkrp import mttkrp_parallel
from repro.obs import metrics, trace
from repro.parallel import procpool
from repro.parallel.executor import (BACKENDS, resolve_backend, run_tasks)
from tests.conftest import make_random_coo


@pytest.fixture(scope="module", autouse=True)
def _teardown():
    yield
    procpool.shutdown_pools()


# ----------------------------------------------------------------------
# module-level helpers (process tasks must be picklable)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom_worker():
    raise KeyError("exploded in a worker")


def _boom_local():
    raise KeyError("exploded locally")


def _sleep_return(x):
    return x + 1


# ----------------------------------------------------------------------
# resolve_backend
# ----------------------------------------------------------------------
def test_resolve_backend():
    assert resolve_backend(None) == "sim"
    assert resolve_backend(None, real_threads=True) == "thread"
    assert resolve_backend("seq") == "sim"
    assert resolve_backend("sequential") == "sim"
    for b in BACKENDS:
        assert resolve_backend(b) == b
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("mpi")


# ----------------------------------------------------------------------
# exception propagation: original traceback, fail fast, every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["sim", "thread"])
def test_run_tasks_propagates_with_original_traceback(backend):
    tasks = [partial(_sleep_return, 1), _boom_local, partial(_sleep_return, 2)]
    with pytest.raises(KeyError, match="exploded locally") as ei:
        run_tasks(tasks, backend=backend)
    # the frame that raised must be visible in the chained traceback
    tb = "".join(traceback.format_exception(ei.value))
    assert "_boom_local" in tb, f"original frame lost:\n{tb}"


def test_run_tasks_process_propagates_remote_traceback():
    tasks = [partial(_square, 3), _boom_worker, partial(_square, 4)]
    with pytest.raises(KeyError, match="exploded in a worker") as ei:
        run_tasks(tasks, backend="process", nworkers=2)
    # the worker-side traceback rides along as the __cause__
    cause = ei.value.__cause__
    assert cause is not None
    assert "_boom_worker" in str(cause)
    # the pool must survive a failed region and stay usable
    report = run_tasks([partial(_square, i) for i in range(3)],
                       backend="process", nworkers=2)
    assert report.values() == [0, 1, 4]


def test_run_tasks_thread_legacy_flag_still_works():
    report = run_tasks([partial(_sleep_return, i) for i in range(4)],
                       real_threads=True)
    assert report.backend == "thread"
    assert report.values() == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# generic process tasks
# ----------------------------------------------------------------------
def test_run_generic_tasks_results_in_task_order():
    report = run_tasks([partial(_square, i) for i in range(7)],
                       backend="process", nworkers=3)
    assert report.backend == "process"
    assert report.values() == [i * i for i in range(7)]
    assert report.nthreads == 7
    assert all(r.elapsed >= 0.0 for r in report.results)


def test_run_generic_tasks_rejects_closures():
    captured = {"x": 1}

    def closure():
        return captured["x"]

    with pytest.raises(TypeError, match="picklable"):
        run_tasks([closure], backend="process")


def test_run_tasks_empty():
    assert run_tasks([], backend="process").values() == []
    assert run_tasks([], backend="sim").values() == []


# ----------------------------------------------------------------------
# warm pool + shared-session lifecycle
# ----------------------------------------------------------------------
def _make_hicoo(seed=0):
    coo = make_random_coo((16, 14, 12), nnz=150, seed=seed)
    return HicooTensor(coo, block_bits=2)


def test_warm_pool_and_session_reuse_counters():
    hic = _make_hicoo()
    rng = np.random.default_rng(0)
    factors = [rng.random((s, 4)) for s in hic.shape]
    try:
        metrics.reset()
        metrics.enable()
        mttkrp_parallel(hic, factors, 0, 2, backend="process")
        mttkrp_parallel(hic, factors, 1, 2, backend="process")
        mttkrp_parallel(hic, factors, 2, 2, backend="process")
        # after the first call both the pool and the shared session are warm
        assert metrics.value("procpool.session_reuses") >= 2
        assert metrics.value("procpool.pool_reuses") >= 2
        # worker-side metrics merged into the parent registry
        assert metrics.value("procpool.tasks") >= 6
        assert metrics.value("mttkrp.nnz_processed") >= 3 * hic.nnz
    finally:
        metrics.reset()
        metrics.enable()
        procpool.release_shared(hic)


def test_release_shared_unlinks_segments():
    hic = _make_hicoo(seed=1)
    rng = np.random.default_rng(1)
    factors = [rng.random((s, 3)) for s in hic.shape]
    mttkrp_parallel(hic, factors, 0, 2, backend="process")
    sessions = hic.__dict__.get("_proc_sessions")
    assert sessions, "session should be cached on the tensor"
    names = [spec.name for spec in
             next(iter(sessions.values())).structure_specs()]
    assert names
    procpool.release_shared(hic)
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    assert not hic.__dict__.get("_proc_sessions")
    # releasing twice is a no-op
    procpool.release_shared(hic)


def test_worker_spans_merge_into_parent_trace():
    hic = _make_hicoo(seed=2)
    rng = np.random.default_rng(2)
    factors = [rng.random((s, 3)) for s in hic.shape]
    tracer = trace.get_tracer()
    try:
        tracer.enable()  # clears by default
        mttkrp_parallel(hic, factors, 0, 2, backend="process")
        events = tracer.events()
        worker_events = [e for e in events if e.name == "procpool.task"]
        assert len(worker_events) == 2
        # worker lanes are tagged with negative thread ids (proc-N lanes)
        assert {e.thread for e in worker_events} == {-1, -2}
        chrome = tracer.to_chrome_trace()
        lanes = {m["args"]["name"] for m in chrome["traceEvents"]
                 if m["name"] == "thread_name"}
        assert {"proc-0", "proc-1"} <= lanes
        assert not trace.validate_chrome_trace(chrome)
    finally:
        tracer.disable()
        tracer.clear()
        procpool.release_shared(hic)


def test_shutdown_pools_then_cold_restart():
    procpool.shutdown_pools()
    report = run_tasks([partial(_square, 5)], backend="process", nworkers=1)
    assert report.values() == [25]
