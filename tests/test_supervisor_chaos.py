"""Chaos suite: the fault-tolerant process backend under injected faults.

Every test arms a deterministic :class:`repro.testing.ChaosPlan` (kill /
hang / delay / corrupt-reply / raise-in-kernel, keyed to a worker slot and
task ordinal) and drives ``mttkrp_parallel(backend="process")`` or the
generic task executor through it:

* ``fault_policy="retry"`` must recover and produce output **bit-identical**
  to the ``sim`` backend — valid because superblock task partitions are
  row-disjoint, so a retried task re-runs its gather/scatter chunk
  idempotently into rows (or a privatized slab) it exclusively owns;
* ``fault_policy="degrade"`` must complete on a fallback backend and meter
  the degradation;
* ``fault_policy="fail-fast"`` must still propagate the original worker
  traceback.

Recovery accounting (killed/hung/respawned counters, degradation events)
must be visible in the ``obs.metrics`` snapshot and in the Chrome trace
export.  CI runs this file under ``pytest-timeout`` in the dedicated
``chaos-smoke`` job: a hung recovery fails the job instead of stalling it.
"""

from __future__ import annotations

import logging
from functools import partial

import numpy as np
import pytest

from repro import testing
from repro.core.hicoo import HicooTensor
from repro.cpd.cp_als import cp_als
from repro.kernels.mttkrp import mttkrp_parallel
from repro.obs import metrics, trace
from repro.parallel import procpool
from repro.parallel.executor import run_tasks
from repro.parallel.supervisor import (FAULT_POLICIES, FaultConfig,
                                       FaultToleranceExhausted, Supervisor)
from tests.conftest import make_random_coo

NW = 2  # worker slots; every scenario keeps one healthy worker

#: short deadline so hung-worker scenarios resolve in seconds, not minutes
FAST = dict(task_deadline=2.0, backoff_base=0.01, backoff_cap=0.05)


@pytest.fixture(autouse=True)
def _clean_state():
    testing.clear_chaos()
    metrics.reset()
    metrics.enable()
    yield
    testing.clear_chaos()
    metrics.reset()
    metrics.enable()


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    procpool.shutdown_pools()


@pytest.fixture()
def problem():
    coo = make_random_coo((30, 24, 20), nnz=600, seed=7)
    hic = HicooTensor(coo, block_bits=2)
    rng = np.random.default_rng(7)
    factors = [rng.random((s, 6)) for s in hic.shape]
    yield hic, factors
    procpool.release_shared(hic)


def _sim(hic, factors, mode, **kw):
    return mttkrp_parallel(hic, factors, mode, NW, backend="sim", **kw).output


def _proc(hic, factors, mode, policy, **kw):
    return mttkrp_parallel(hic, factors, mode, NW, backend="process",
                           fault_policy=policy, **kw)


# ----------------------------------------------------------------------
# config and plan plumbing
# ----------------------------------------------------------------------
def test_fault_config_resolution_and_validation():
    assert FaultConfig.resolve(None).policy == "fail-fast"
    for name in FAULT_POLICIES:
        assert FaultConfig.resolve(name).policy == name
    cfg = FaultConfig(policy="retry", max_task_retries=5)
    assert FaultConfig.resolve(cfg) is cfg
    with pytest.raises(ValueError, match="unknown fault policy"):
        FaultConfig.resolve("pray")
    # backoff is exponential and capped
    c = FaultConfig(backoff_base=0.1, backoff_cap=0.3)
    assert c.backoff(1) == pytest.approx(0.1)
    assert c.backoff(2) == pytest.approx(0.2)
    assert c.backoff(5) == pytest.approx(0.3)


def test_fault_policy_validated_on_every_backend(problem):
    hic, factors = problem
    with pytest.raises(ValueError, match="unknown fault policy"):
        mttkrp_parallel(hic, factors, 0, NW, backend="sim",
                        fault_policy="pray")
    with pytest.raises(ValueError, match="unknown fault policy"):
        run_tasks([partial(int, 1)], backend="thread", fault_policy="pray")
    # valid policies are accepted (and moot) on in-process backends
    out = mttkrp_parallel(hic, factors, 0, NW, backend="sim",
                          fault_policy="retry").output
    assert np.array_equal(out, _sim(hic, factors, 0))


def test_chaos_plan_is_one_shot_and_validated():
    plan = testing.chaos(testing.kill_at(0), testing.hang_at(1, seconds=9.0))
    assert [d.kind for d in plan.for_worker(0)] == ["kill"]
    assert plan.for_worker(1)[0].seconds == 9.0
    testing.install_chaos(plan)
    assert testing.take_chaos_plan() is plan
    assert testing.take_chaos_plan() is None  # consumed
    state = testing.ChaosState(plan, worker=0)
    assert state.draw(1).kind == "kill"
    assert state.draw(1) is None  # one-shot
    with pytest.raises(ValueError, match="unknown chaos kind"):
        testing.ChaosDirective("meteor", worker=0)
    with pytest.raises(ValueError, match="1-based"):
        testing.kill_at(0, at_task=0)


# ----------------------------------------------------------------------
# retry: recovered output is bit-identical to the sim backend
# ----------------------------------------------------------------------
def test_killed_worker_retry_bitwise_identical(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 0)
    # the kill fires *after* the task wrote its output rows — the retry
    # must zero what it owns before recomputing, or this comparison drifts
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    run = _proc(hic, factors, 0, "retry")
    assert np.array_equal(run.output, sim)
    snap = metrics.snapshot("supervisor.")
    assert snap["supervisor.workers_died"] == 1
    assert snap["supervisor.respawns"] == 1
    assert snap["supervisor.task_retries"] >= 1
    assert snap["supervisor.recoveries"] >= 1
    assert metrics.value("procpool.workers_respawned") == 1


def test_hung_worker_past_deadline_retry_bitwise_identical(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 1)
    cfg = FaultConfig(policy="retry", **FAST)
    testing.install_chaos(testing.chaos(testing.hang_at(1, seconds=120.0)))
    run = _proc(hic, factors, 1, cfg)
    assert np.array_equal(run.output, sim)
    snap = metrics.snapshot("supervisor.")
    assert snap["supervisor.workers_hung"] == 1
    assert snap["supervisor.respawns"] == 1
    assert snap["supervisor.recoveries"] >= 1


def test_raise_in_kernel_retry_same_worker(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 2)
    testing.install_chaos(testing.chaos(testing.raise_at(0)))
    run = _proc(hic, factors, 2, "retry")
    assert np.array_equal(run.output, sim)
    snap = metrics.snapshot("supervisor.")
    assert snap["supervisor.task_errors"] == 1
    # an in-task exception keeps the worker: no respawn was needed
    assert "supervisor.respawns" not in snap


def test_corrupt_reply_respawns_and_recovers(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 0)
    testing.install_chaos(testing.chaos(testing.corrupt_at(1)))
    run = _proc(hic, factors, 0, "retry")
    assert np.array_equal(run.output, sim)
    snap = metrics.snapshot("supervisor.")
    assert snap["supervisor.workers_corrupt"] == 1
    assert snap["supervisor.respawns"] == 1


def test_delay_is_not_a_fault(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 0)
    testing.install_chaos(testing.chaos(testing.delay_at(0, seconds=0.2)))
    run = _proc(hic, factors, 0, "retry")
    assert np.array_equal(run.output, sim)
    assert metrics.snapshot("supervisor.") == {}


def test_privatized_strategy_recovers_too(problem):
    hic, factors = problem
    sim = mttkrp_parallel(hic, factors, 0, NW, strategy="privatize",
                          backend="sim").output
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    run = mttkrp_parallel(hic, factors, 0, NW, strategy="privatize",
                          backend="process", fault_policy="retry")
    assert run.strategy == "privatize"
    assert np.array_equal(run.output, sim)
    assert metrics.value("supervisor.respawns") == 1


def test_multiple_faults_within_budget(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 0)
    testing.install_chaos(testing.chaos(testing.kill_at(0),
                                        testing.kill_at(1)))
    run = _proc(hic, factors, 0, "retry")
    assert np.array_equal(run.output, sim)
    assert metrics.value("supervisor.respawns") == 2


# ----------------------------------------------------------------------
# degradation: complete on the fallback backend, metered + logged
# ----------------------------------------------------------------------
def test_degrade_on_exhausted_respawn_budget(problem, caplog):
    hic, factors = problem
    sim = _sim(hic, factors, 0)
    cfg = FaultConfig(policy="degrade", respawn_budget=0)
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    # the repro logger does not propagate to root, so hook it directly
    logger = logging.getLogger("repro.supervisor")
    logger.addHandler(caplog.handler)
    try:
        run = _proc(hic, factors, 0, cfg)
    finally:
        logger.removeHandler(caplog.handler)
    assert np.array_equal(run.output, sim)
    # the region finished on the first fallback backend
    assert run.report.backend == cfg.fallback_backends[0] == "thread"
    snap = metrics.snapshot("supervisor.")
    assert snap["supervisor.degradations"] == 1
    assert snap["supervisor.gave_up"] == 1
    assert any("degraded" in r.getMessage() for r in caplog.records)


def test_degrade_on_exhausted_retries(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 1)
    cfg = FaultConfig(policy="degrade", max_task_retries=0,
                      fallback_backends=("sim",))
    testing.install_chaos(testing.chaos(testing.raise_at(0)))
    run = _proc(hic, factors, 1, cfg)
    assert np.array_equal(run.output, sim)
    assert run.report.backend == "sim"
    assert metrics.value("supervisor.degradations") == 1


def test_retry_policy_exhaustion_raises_with_cause(problem):
    hic, factors = problem
    cfg = FaultConfig(policy="retry", max_task_retries=0)
    testing.install_chaos(testing.chaos(testing.raise_at(0)))
    with pytest.raises(FaultToleranceExhausted, match="out of retries") as ei:
        _proc(hic, factors, 0, cfg)
    # the injected kernel exception is chained for post-mortems
    assert isinstance(ei.value.__cause__, testing.ChaosError)


def test_cp_als_completes_under_degradation(problem):
    hic, factors = problem
    cfg = FaultConfig(policy="degrade", respawn_budget=0)
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    ref = cp_als(hic, 3, maxiters=3, seed=0, nthreads=NW, backend="sim")
    res = cp_als(hic, 3, maxiters=3, seed=0, nthreads=NW, backend="process",
                 fault_policy=cfg)
    # one region degraded, the rest of the run kept going on process
    assert metrics.value("supervisor.degradations") == 1
    assert res.iterations == ref.iterations
    assert res.fits == pytest.approx(ref.fits, abs=1e-12)


# ----------------------------------------------------------------------
# fail-fast: unchanged contract
# ----------------------------------------------------------------------
def test_fail_fast_propagates_original_worker_traceback(problem):
    hic, factors = problem
    testing.install_chaos(testing.chaos(testing.raise_at(0)))
    with pytest.raises(testing.ChaosError, match="injected fault") as ei:
        _proc(hic, factors, 0, "fail-fast")
    assert "ChaosError" in str(ei.value.__cause__)  # remote traceback


def test_fail_fast_on_killed_worker(problem):
    hic, factors = problem
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    with pytest.raises(RuntimeError, match="worker died"):
        _proc(hic, factors, 0, "fail-fast")
    # the poisoned pool was torn down; the next call cold-starts cleanly
    out = _proc(hic, factors, 0, "fail-fast").output
    assert np.array_equal(out, _sim(hic, factors, 0))


# ----------------------------------------------------------------------
# recovery accounting: metrics snapshot + Chrome trace export
# ----------------------------------------------------------------------
def test_recovery_events_in_metrics_and_chrome_trace(problem):
    hic, factors = problem
    sim = _sim(hic, factors, 0)
    tracer = trace.get_tracer()
    try:
        tracer.enable()
        testing.install_chaos(testing.chaos(testing.kill_at(0)))
        run = _proc(hic, factors, 0, "retry")
        assert np.array_equal(run.output, sim)
        names = [e.name for e in tracer.events()]
        assert "supervisor.fault" in names
        assert "supervisor.respawn" in names
        assert "supervisor.retry" in names
        assert "supervisor.recovered" in names
        chrome = tracer.to_chrome_trace()
        assert not trace.validate_chrome_trace(chrome)
        chrome_names = {e["name"] for e in chrome["traceEvents"]}
        assert {"supervisor.fault", "supervisor.respawn",
                "supervisor.retry"} <= chrome_names
        fault = next(e for e in chrome["traceEvents"]
                     if e["name"] == "supervisor.fault")
        assert fault["args"]["kind"] == "died"
    finally:
        tracer.disable()
        tracer.clear()
    snap = metrics.snapshot("supervisor.")
    for key in ("supervisor.workers_died", "supervisor.respawns",
                "supervisor.task_retries", "supervisor.recoveries"):
        assert snap[key] >= 1, f"missing recovery counter {key}: {snap}"


def test_degradation_event_in_trace(problem):
    hic, factors = problem
    cfg = FaultConfig(policy="degrade", respawn_budget=0)
    tracer = trace.get_tracer()
    try:
        tracer.enable()
        testing.install_chaos(testing.chaos(testing.kill_at(0)))
        _proc(hic, factors, 0, cfg)
        names = [e.name for e in tracer.events()]
        assert "supervisor.gave_up" in names
        assert "supervisor.degrade" in names
        chrome = tracer.to_chrome_trace()
        assert not trace.validate_chrome_trace(chrome)
        degrade = next(e for e in chrome["traceEvents"]
                       if e["name"] == "supervisor.degrade")
        assert degrade["args"]["fallback"] == "thread"
    finally:
        tracer.disable()
        tracer.clear()


# ----------------------------------------------------------------------
# generic task regions (run_tasks backend="process")
# ----------------------------------------------------------------------
def test_generic_tasks_retry_after_worker_death():
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    report = run_tasks([partial(pow, i, 2) for i in range(6)],
                       backend="process", nworkers=NW, fault_policy="retry")
    assert report.values() == [i * i for i in range(6)]
    assert metrics.value("supervisor.respawns") == 1
    assert metrics.value("supervisor.recoveries") >= 1


def test_generic_tasks_degrade_to_inline():
    cfg = FaultConfig(policy="degrade", respawn_budget=0)
    testing.install_chaos(testing.chaos(testing.kill_at(0)))
    report = run_tasks([partial(pow, i, 2) for i in range(4)],
                       backend="process", nworkers=NW, fault_policy=cfg)
    assert report.values() == [i * i for i in range(4)]
    assert report.backend == "sim"
    assert metrics.value("supervisor.degradations") == 1


def test_supervisor_run_on_healthy_pool_is_plain_collect():
    pool = procpool.get_pool(NW)
    sup = Supervisor(pool, FaultConfig(policy="retry"))

    def builder(i):
        def build(reset):
            return ("generic", i, partial(pow, i, 3))
        return build

    results = sup.run({i: (i % NW, builder(i)) for i in range(5)})
    assert {i: r[1] for i, r in results.items()} == {i: i ** 3
                                                     for i in range(5)}
    assert sup.respawns_used == 0
    assert metrics.snapshot("supervisor.") == {}
