"""Tests for the model-driven tuner and streaming HiCOO construction."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.core.streaming import hicoo_from_chunks, read_tns_chunks, stream_tns
from repro.core.tuner import tune
from repro.data.frostt import write_tns
from repro.data.synthetic import clustered_tensor
from repro.parallel.machine import Machine

MACHINE = Machine()


class TestTuner:
    def test_best_is_min_score(self, small3d):
        out = tune(small3d, rank=4, machine=MACHINE, nthreads=4)
        board = out["scoreboard"]
        assert out["best"] is board[0]
        assert all(board[0].score <= c.score for c in board)

    def test_candidates_respected(self, small3d):
        out = tune(small3d, rank=4, machine=MACHINE,
                   block_candidates=[3, 4], superblock_offsets=[1])
        assert {c.block_bits for c in out["scoreboard"]} == {3, 4}
        assert all(c.superblock_bits == c.block_bits + 1
                   for c in out["scoreboard"])

    def test_strategies_per_mode(self, small3d):
        out = tune(small3d, rank=4, machine=MACHINE, nthreads=4)
        assert all(len(c.strategies) == 3 for c in out["scoreboard"])
        assert all(s in ("schedule", "privatize")
                   for c in out["scoreboard"] for s in c.strategies)

    def test_storage_weight_shifts_choice(self):
        """With a huge storage weight, the tuner picks the smallest-bytes
        configuration."""
        coo = clustered_tensor((512, 512, 512), 3000, nclusters=16,
                               spread=3.0, seed=0)
        fast = tune(coo, 8, MACHINE, storage_weight=0.0)
        small = tune(coo, 8, MACHINE, storage_weight=1e9)
        min_bytes = min(c.total_bytes for c in small["scoreboard"])
        assert small["best"].total_bytes == min_bytes
        assert fast["best"].predicted_seconds <= small["best"].predicted_seconds + 1e-12

    def test_validation(self, small3d):
        with pytest.raises(ValueError):
            tune(small3d, 0, MACHINE)
        with pytest.raises(ValueError):
            tune(small3d, 2, MACHINE, nthreads=0)
        with pytest.raises(ValueError):
            tune(small3d, 2, MACHINE, storage_weight=-1)


class TestStreaming:
    def _chunks_of(self, coo, size):
        for lo in range(0, coo.nnz, size):
            yield coo.indices[lo:lo + size], coo.values[lo:lo + size]

    def test_matches_inmemory_construction(self, small3d):
        streamed = hicoo_from_chunks(self._chunks_of(small3d, 37),
                                     block_bits=3, shape=small3d.shape)
        direct = HicooTensor(small3d, block_bits=3)
        np.testing.assert_array_equal(streamed.bptr, direct.bptr)
        np.testing.assert_array_equal(streamed.binds, direct.binds)
        np.testing.assert_array_equal(streamed.einds, direct.einds)
        np.testing.assert_allclose(streamed.values, direct.values)

    @pytest.mark.parametrize("chunk", [1, 7, 10_000])
    def test_chunk_size_irrelevant(self, small3d, chunk):
        streamed = hicoo_from_chunks(self._chunks_of(small3d, chunk),
                                     block_bits=2, shape=small3d.shape)
        back = streamed.to_coo().sort_lexicographic()
        orig = small3d.sort_lexicographic()
        assert np.array_equal(back.indices, orig.indices)
        np.testing.assert_allclose(back.values, orig.values)

    def test_duplicates_across_chunks_summed(self):
        a = (np.array([[1, 2], [3, 4]]), np.array([1.0, 2.0]))
        b = (np.array([[1, 2]]), np.array([10.0]))
        hic = hicoo_from_chunks([a, b], block_bits=2, shape=(8, 8))
        coo = hic.to_coo()
        assert coo.nnz == 2
        dense = coo.to_dense()
        assert dense[1, 2] == 11.0

    def test_shape_inferred(self):
        chunk = (np.array([[5, 9]]), np.array([1.0]))
        hic = hicoo_from_chunks([chunk], block_bits=2)
        assert hic.shape == (6, 10)

    def test_shape_violation_rejected(self):
        chunk = (np.array([[5, 9]]), np.array([1.0]))
        with pytest.raises(ValueError, match="out of declared shape"):
            hicoo_from_chunks([chunk], block_bits=2, shape=(6, 6))

    def test_empty_no_shape_rejected(self):
        with pytest.raises(ValueError, match="no chunks"):
            hicoo_from_chunks([], block_bits=2)

    def test_empty_with_shape(self):
        hic = hicoo_from_chunks([], block_bits=2, shape=(4, 4))
        assert hic.nnz == 0

    def test_ragged_chunk_rejected(self):
        good = (np.array([[1, 2]]), np.array([1.0]))
        bad = (np.array([[1, 2, 3]]), np.array([1.0]))
        with pytest.raises(ValueError, match="modes"):
            hicoo_from_chunks([good, bad], block_bits=2)

    def test_stream_tns_end_to_end(self, small3d, tmp_path):
        path = tmp_path / "s.tns"
        write_tns(small3d, path)
        hic = stream_tns(path, block_bits=3, chunk_nnz=50)
        # shapes may differ (stream infers from max index); compare content
        a = hic.to_coo().sort_lexicographic()
        b = small3d.sort_lexicographic()
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_read_tns_chunks_validation(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_text("1 1 2.0\n1 1 1 2.0\n")
        with pytest.raises(ValueError, match="fields"):
            list(read_tns_chunks(path))
        with pytest.raises(ValueError):
            list(read_tns_chunks(path, chunk_nnz=0))

    def test_mttkrp_on_streamed(self, small3d, rng):
        streamed = hicoo_from_chunks(self._chunks_of(small3d, 64),
                                     block_bits=3, shape=small3d.shape)
        factors = [rng.random((s, 3)) for s in small3d.shape]
        np.testing.assert_allclose(streamed.mttkrp(factors, 1),
                                   small3d.mttkrp(factors, 1), atol=1e-10)
