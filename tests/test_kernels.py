"""Unit tests for the kernels subpackage: Khatri-Rao, matricize, TTV, TTM."""

import numpy as np
import pytest

from repro.formats.coo import CooTensor
from repro.kernels.khatrirao import gram, hadamard_all, hadamard_grams, khatri_rao
from repro.kernels.matricize import column_index, unfold_coo, unfold_dense
from repro.kernels.ttm import ttm
from repro.kernels.ttv import mttkrp_via_ttv, ttv, ttv_chain


class TestKhatriRaoUtils:
    def test_hadamard_all(self):
        a = np.full((2, 2), 2.0)
        b = np.full((2, 2), 3.0)
        np.testing.assert_allclose(hadamard_all([a, b]), np.full((2, 2), 6.0))

    def test_hadamard_shape_mismatch(self):
        with pytest.raises(ValueError):
            hadamard_all([np.ones((2, 2)), np.ones((3, 2))])

    def test_hadamard_empty_rejected(self):
        with pytest.raises(ValueError):
            hadamard_all([])

    def test_gram(self):
        u = np.array([[1.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(gram(u), u.T @ u)

    def test_hadamard_grams_skip(self, rng):
        factors = [rng.normal(size=(d, 3)) for d in (4, 5, 6)]
        h = hadamard_grams(factors, skip_mode=1)
        ref = gram(factors[0]) * gram(factors[2])
        np.testing.assert_allclose(h, ref)

    def test_hadamard_grams_single_mode(self):
        h = hadamard_grams([np.ones((4, 3))], skip_mode=0)
        np.testing.assert_allclose(h, np.ones((3, 3)))

    def test_khatri_rao_reexport(self):
        a = np.ones((2, 2))
        assert khatri_rao([a, a]).shape == (4, 2)


class TestMatricize:
    def test_column_index_matches_dense_unfold(self, small3d):
        dense = small3d.to_dense()
        for mode in range(3):
            unfolded = unfold_dense(dense, mode)
            rows = small3d.indices[:, mode]
            cols = column_index(small3d.indices, small3d.shape, mode)
            np.testing.assert_allclose(unfolded[rows, cols], small3d.values)

    def test_unfold_coo_matches_dense(self, small3d):
        dense = small3d.to_dense()
        for mode in range(3):
            sparse_unf = unfold_coo(small3d, mode).toarray()
            np.testing.assert_allclose(sparse_unf, unfold_dense(dense, mode))

    def test_unfold_4d(self, small4d):
        dense = small4d.to_dense()
        for mode in range(4):
            np.testing.assert_allclose(
                unfold_coo(small4d, mode).toarray(),
                unfold_dense(dense, mode))


class TestTtv:
    def test_single(self, small3d, rng):
        v = rng.normal(size=small3d.shape[2])
        got = ttv(small3d, v, 2).to_dense()
        ref = np.tensordot(small3d.to_dense(), v, axes=(2, 0))
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_chain_two_modes(self, small3d, rng):
        v1 = rng.normal(size=small3d.shape[1])
        v2 = rng.normal(size=small3d.shape[2])
        got = ttv_chain(small3d, {1: v1, 2: v2}).to_dense()
        ref = np.tensordot(
            np.tensordot(small3d.to_dense(), v2, axes=(2, 0)), v1, axes=(1, 0))
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_chain_order_irrelevance(self, small3d, rng):
        """TTVs commute (Lemma in the dimension-tree literature)."""
        v0 = rng.normal(size=small3d.shape[0])
        v2 = rng.normal(size=small3d.shape[2])
        a = ttv_chain(small3d, {0: v0, 2: v2})
        b = ttv_chain(ttv_chain(small3d, {2: v2}), {0: v0})
        np.testing.assert_allclose(a.to_dense(), b.to_dense(), atol=1e-12)

    def test_duplicate_mode_rejected(self, small3d):
        with pytest.raises(ValueError, match="duplicate"):
            ttv_chain(small3d, {1: np.ones(small3d.shape[1]),
                                -2: np.ones(small3d.shape[1])})

    def test_mttkrp_via_ttv_oracle(self, small3d, factors3d):
        """The TTV-chain formulation equals the direct MTTKRP."""
        for mode in range(3):
            np.testing.assert_allclose(
                mttkrp_via_ttv(small3d, factors3d, mode),
                small3d.mttkrp(factors3d, mode), atol=1e-10)


class TestTtm:
    def test_matches_dense(self, small3d, rng):
        mat = rng.normal(size=(small3d.shape[1], 4))
        semi = ttm(small3d, mat, 1)
        ref = np.einsum("ijk,jr->ikr", small3d.to_dense(), mat)
        np.testing.assert_allclose(semi.to_dense(), ref, atol=1e-10)

    def test_all_modes(self, small3d, rng):
        for mode in range(3):
            mat = rng.normal(size=(small3d.shape[mode], 3))
            semi = ttm(small3d, mat, mode)
            moved = np.moveaxis(small3d.to_dense(), mode, -1)
            ref = moved @ mat
            np.testing.assert_allclose(semi.to_dense(), ref, atol=1e-10)

    def test_shape_check(self, small3d):
        with pytest.raises(ValueError, match="matrix"):
            ttm(small3d, np.ones((7, 3)), 0)

    def test_empty(self):
        t = CooTensor.empty((3, 4))
        semi = ttm(t, np.ones((4, 2)), 1)
        assert semi.nfibers == 0
        assert semi.to_dense().shape == (3, 2)

    def test_fibers_grouped(self, small3d, rng):
        """Coordinates in the result are unique (fibers merged)."""
        mat = rng.normal(size=(small3d.shape[0], 2))
        semi = ttm(small3d, mat, 0)
        keys = {tuple(i) for i in semi.indices}
        assert len(keys) == semi.nfibers
