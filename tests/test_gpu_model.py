"""Tests for the GPU execution-model extension."""

import pytest

from repro.analysis.model import build_format_suite
from repro.core.hicoo import HicooTensor
from repro.data.synthetic import clustered_tensor, random_tensor
from repro.parallel.gpu import (
    GpuProfile,
    gpu_speedup_over_coo,
    predict_gpu_mttkrp,
)


class TestGpuProfile:
    def test_defaults_valid(self):
        gpu = GpuProfile()
        assert gpu.bandwidth > 0 and gpu.flops > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuProfile(bandwidth=0)
        with pytest.raises(ValueError):
            GpuProfile(scattered_fraction=0.0)
        with pytest.raises(ValueError):
            GpuProfile(scattered_fraction=0.9, coalesced_fraction=0.5)


class TestPrediction:
    def test_positive_times(self, small3d):
        gpu = GpuProfile()
        for fmt in build_format_suite(small3d, block_bits=3).values():
            pred = predict_gpu_mttkrp(fmt, 0, 8, gpu)
            assert pred.seconds > 0
            assert pred.bound in ("compute", "memory", "atomics")

    def test_coo_pays_atomics(self, small3d):
        gpu = GpuProfile()
        coo_pred = predict_gpu_mttkrp(small3d, 0, 8, gpu)
        hic_pred = predict_gpu_mttkrp(HicooTensor(small3d, 3), 0, 8, gpu)
        assert coo_pred.atomic_seconds > 0
        assert hic_pred.atomic_seconds == 0

    def test_hicoo_gathers_coalesce(self, small3d):
        """With identical byte counts, HiCOO's gathers ride the faster
        coalesced path."""
        gpu = GpuProfile(coalesced_fraction=1.0, scattered_fraction=0.1)
        hic = HicooTensor(small3d, 3)
        hp = predict_gpu_mttkrp(hic, 0, 8, gpu)
        cp = predict_gpu_mttkrp(small3d, 0, 8, gpu)
        assert hp.memory_seconds < cp.memory_seconds

    def test_speedup_shape_blocked_vs_random(self):
        gpu = GpuProfile()
        blocked = clustered_tensor((1024, 1024, 1024), 8000, nclusters=32,
                                   spread=3.0, seed=0)
        scattered = random_tensor((1 << 20, 1 << 20, 1 << 20), 8000, seed=0)
        s_blocked = gpu_speedup_over_coo(
            build_format_suite(blocked, block_bits=5), 16, gpu)
        s_scattered = gpu_speedup_over_coo(
            build_format_suite(scattered, block_bits=5), 16, gpu)
        assert s_blocked["hicoo"] > s_scattered["hicoo"]
        assert s_blocked["coo"] == pytest.approx(1.0)

    def test_atomic_throughput_knob(self, small3d):
        """Cheaper atomics shrink COO's penalty and thus HiCOO's edge."""
        slow = GpuProfile(atomic_throughput=1e8)
        fast = GpuProfile(atomic_throughput=1e12)
        suite = build_format_suite(small3d, block_bits=3)
        assert gpu_speedup_over_coo(suite, 8, slow)["hicoo"] >= \
            gpu_speedup_over_coo(suite, 8, fast)["hicoo"]
