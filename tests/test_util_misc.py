"""Tests for timers, logging, and report rendering."""

import logging
import threading
import time

import pytest

from repro.analysis.report import fmt, render_series, render_table
from repro.util.log import get_logger
from repro.util.timing import Stopwatch, Timer, timed


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        t.start(); t.stop()
        t.start(); t.stop()
        assert t.count == 2
        assert t.elapsed >= 0
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_double_start(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_measures_time(self):
        t = Timer().start()
        time.sleep(0.01)
        dt = t.stop()
        assert dt >= 0.009


class TestStopwatch:
    def test_sections(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        with sw.section("a"):
            pass
        with sw.section("b"):
            pass
        assert sw.timers["a"].count == 2
        assert sw.timers["b"].count == 1

    def test_report_lines(self):
        sw = Stopwatch()
        with sw.section("x"):
            pass
        lines = sw.report()
        assert len(lines) == 1
        assert "x" in lines[0]

    def test_timed_context(self):
        with timed() as t:
            pass
        assert t.count == 1

    def test_section_yields_local_timer(self):
        sw = Stopwatch()
        with sw.section("a") as local:
            pass
        # the yielded timer is per-call; the accumulator is separate
        assert local is not sw.timers["a"]
        assert local.count == 1

    def test_concurrent_sections_accumulate_exactly(self):
        """Overlapping sections from many threads must not lose counts or
        corrupt elapsed totals (the old shared-Timer section raced)."""
        sw = Stopwatch()
        per_thread, nthreads = 200, 8

        def worker():
            for _ in range(per_thread):
                with sw.section("hot"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(nthreads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        t = sw.timers["hot"]
        assert t.count == per_thread * nthreads
        assert t.elapsed >= 0
        assert t.mean == pytest.approx(t.elapsed / t.count)


class TestLogger:
    def test_idempotent_handlers(self):
        a = get_logger("repro.test")
        b = get_logger("repro.test")
        assert a is b
        assert len(a.handlers) == 1

    def test_level_honored_after_first_call(self):
        log = get_logger("repro.test_lvl", level=logging.INFO)
        assert log.level == logging.INFO
        log = get_logger("repro.test_lvl", level=logging.DEBUG)
        assert log.level == logging.DEBUG
        log = get_logger("repro.test_lvl", level="WARNING")
        assert log.level == logging.WARNING

    def test_none_level_leaves_current(self):
        get_logger("repro.test_keep", level=logging.DEBUG)
        log = get_logger("repro.test_keep")
        assert log.level == logging.DEBUG

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
        log = get_logger("repro.test_env", level=logging.DEBUG)
        assert log.level == logging.ERROR
        monkeypatch.setenv("REPRO_LOG_LEVEL", "10")
        assert get_logger("repro.test_env").level == logging.DEBUG

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            get_logger("repro.test_bad", level="NOPE")


class TestFmt:
    def test_int(self):
        assert fmt(42, width=6) == "    42"

    def test_float(self):
        assert fmt(3.14159, width=8, prec=2) == "    3.14"

    def test_tiny_float_scientific(self):
        assert "e" in fmt(1e-9)

    def test_huge_float_scientific(self):
        assert "e" in fmt(1e9)

    def test_string(self):
        assert fmt("abc", width=5) == "  abc"

    def test_zero(self):
        assert fmt(0.0).strip() == "0.000"


class TestRenderTable:
    def test_structure(self):
        rows = [{"name": "a", "x": 1}, {"name": "b", "x": 2.5}]
        text = render_table(rows, ["name", "x"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 3 + 2

    def test_missing_cells(self):
        text = render_table([{"name": "a"}], ["name", "gone"])
        assert "-" in text.splitlines()[-1]


class TestRenderSeries:
    def test_structure(self):
        text = render_series("p", [1, 2], {"coo": [1.0, 1.9], "hicoo": [1.0, 2.0]})
        lines = text.splitlines()
        assert "coo" in lines[0] and "hicoo" in lines[0]
        assert len(lines) == 2 + 2
