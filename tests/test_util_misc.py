"""Tests for timers, logging, and report rendering."""

import time

import pytest

from repro.analysis.report import fmt, render_series, render_table
from repro.util.log import get_logger
from repro.util.timing import Stopwatch, Timer, timed


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        t.start(); t.stop()
        t.start(); t.stop()
        assert t.count == 2
        assert t.elapsed >= 0
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_double_start(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_measures_time(self):
        t = Timer().start()
        time.sleep(0.01)
        dt = t.stop()
        assert dt >= 0.009


class TestStopwatch:
    def test_sections(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        with sw.section("a"):
            pass
        with sw.section("b"):
            pass
        assert sw.timers["a"].count == 2
        assert sw.timers["b"].count == 1

    def test_report_lines(self):
        sw = Stopwatch()
        with sw.section("x"):
            pass
        lines = sw.report()
        assert len(lines) == 1
        assert "x" in lines[0]

    def test_timed_context(self):
        with timed() as t:
            pass
        assert t.count == 1


class TestLogger:
    def test_idempotent_handlers(self):
        a = get_logger("repro.test")
        b = get_logger("repro.test")
        assert a is b
        assert len(a.handlers) == 1


class TestFmt:
    def test_int(self):
        assert fmt(42, width=6) == "    42"

    def test_float(self):
        assert fmt(3.14159, width=8, prec=2) == "    3.14"

    def test_tiny_float_scientific(self):
        assert "e" in fmt(1e-9)

    def test_huge_float_scientific(self):
        assert "e" in fmt(1e9)

    def test_string(self):
        assert fmt("abc", width=5) == "  abc"

    def test_zero(self):
        assert fmt(0.0).strip() == "0.000"


class TestRenderTable:
    def test_structure(self):
        rows = [{"name": "a", "x": 1}, {"name": "b", "x": 2.5}]
        text = render_table(rows, ["name", "x"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 3 + 2

    def test_missing_cells(self):
        text = render_table([{"name": "a"}], ["name", "gone"])
        assert "-" in text.splitlines()[-1]


class TestRenderSeries:
    def test_structure(self):
        text = render_series("p", [1, 2], {"coo": [1.0, 1.9], "hicoo": [1.0, 2.0]})
        lines = text.splitlines()
        assert "coo" in lines[0] and "hicoo" in lines[0]
        assert len(lines) == 2 + 2
