"""Tests for the CSF-N suite and element-wise tensor algebra."""

import numpy as np
import pytest

from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor
from repro.formats.csf_suite import CsfSuite
from repro.kernels.elementwise import (
    add,
    allclose,
    multiply,
    residual_norm,
    scale,
    subtract,
)
from repro.testing import check_format
from tests.conftest import make_random_coo


class TestCsfSuite:
    def test_default_is_full_csf_n(self, small3d):
        suite = CsfSuite(small3d)
        assert suite.ntrees == 3
        # with one tree per mode, every mode is served from a root
        assert all(suite.depth_of(m) == 0 for m in range(3))
        assert suite.total_depth_cost() == 0

    def test_single_tree(self, small3d):
        suite = CsfSuite(small3d, ntrees=1)
        assert suite.ntrees == 1
        depths = sorted(suite.depth_of(m) for m in range(3))
        assert depths == [0, 1, 2]

    def test_intermediate_tree_counts(self, small4d):
        for k in (1, 2, 3, 4):
            suite = CsfSuite(small4d, ntrees=k)
            assert suite.ntrees == k
            # more trees never increase the total depth cost
        costs = [CsfSuite(small4d, ntrees=k).total_depth_cost()
                 for k in (1, 2, 3, 4)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_mttkrp_matches_single_tree(self, small3d, factors3d):
        suite = CsfSuite(small3d, ntrees=2)
        single = CsfTensor(small3d)
        for mode in range(3):
            np.testing.assert_allclose(
                suite.mttkrp(factors3d, mode),
                single.mttkrp(factors3d, mode), atol=1e-10)

    def test_storage_scales_with_trees(self, small3d):
        one = CsfSuite(small3d, ntrees=1).total_bytes()
        three = CsfSuite(small3d, ntrees=3).total_bytes()
        assert three > 2 * one - 4 * small3d.nnz  # values shared once

    def test_ntrees_validation(self, small3d):
        with pytest.raises(ValueError):
            CsfSuite(small3d, ntrees=0)
        with pytest.raises(ValueError):
            CsfSuite(small3d, ntrees=4)

    def test_type_check(self):
        with pytest.raises(TypeError):
            CsfSuite(np.zeros((2, 2)))

    def test_passes_format_oracles(self):
        check_format(lambda coo: CsfSuite(coo, ntrees=2),
                     shapes=[(20, 12, 8)])


class TestElementwise:
    def test_add_matches_dense(self, small3d):
        other = make_random_coo(small3d.shape, 200, seed=99)
        got = add(small3d, other).to_dense()
        np.testing.assert_allclose(got,
                                   small3d.to_dense() + other.to_dense())

    def test_subtract_self_is_zero(self, small3d):
        diff = subtract(small3d, small3d)
        assert diff.norm() == pytest.approx(0.0, abs=1e-12)

    def test_multiply_matches_dense(self, small3d):
        other = make_random_coo(small3d.shape, 250, seed=98)
        got = multiply(small3d, other).to_dense()
        np.testing.assert_allclose(got,
                                   small3d.to_dense() * other.to_dense())

    def test_multiply_disjoint_supports(self):
        a = CooTensor((4, 4), [[0, 0]], [2.0])
        b = CooTensor((4, 4), [[1, 1]], [3.0])
        assert multiply(a, b).nnz == 0

    def test_scale(self, small3d):
        doubled = scale(small3d, 2.0)
        np.testing.assert_allclose(doubled.to_dense(),
                                   2.0 * small3d.to_dense())
        assert scale(small3d, 0.0).nnz == 0

    def test_shape_mismatch(self, small3d):
        other = CooTensor((1, 2, 3), [[0, 0, 0]], [1.0])
        for op in (add, subtract, multiply):
            with pytest.raises(ValueError, match="shape"):
                op(small3d, other)

    def test_type_check(self, small3d):
        with pytest.raises(TypeError):
            add(small3d, np.zeros((2, 2)))

    def test_allclose_and_residual(self, small3d):
        assert allclose(small3d, small3d)
        perturbed = scale(small3d, 1.0 + 1e-3)
        assert not allclose(small3d, perturbed, atol=1e-9)
        assert residual_norm(small3d, perturbed) > 0

    def test_accepts_other_formats(self, small3d):
        from repro.core.hicoo import HicooTensor

        hic = HicooTensor(small3d, block_bits=3)
        assert allclose(hic, small3d)

    def test_linearity_identity(self, small3d):
        """a + a == 2a (exercises duplicate merging in add)."""
        assert allclose(add(small3d, small3d), scale(small3d, 2.0))
