"""Fuzzing the text parser and testing the benchmark-report assembler."""

import io
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.frostt import read_tns, write_tns


class TestTnsFuzz:
    @given(st.text(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """read_tns on garbage either parses or raises ValueError —
        never any other exception type."""
        try:
            tensor = read_tns(io.StringIO(text))
        except ValueError:
            return
        # if it parsed, the result must be a consistent tensor
        assert tensor.nnz >= 0
        assert all(s >= 1 for s in tensor.shape)

    @given(st.lists(
        st.tuples(st.integers(1, 50), st.integers(1, 50),
                  st.floats(-100, 100, allow_nan=False, allow_infinity=False)),
        min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_valid_files(self, rows):
        lines = "".join(f"{i} {j} {v!r}\n" for i, j, v in rows)
        tensor = read_tns(io.StringIO(lines))
        buf = io.StringIO()
        write_tns(tensor, buf)
        buf.seek(0)
        again = read_tns(buf, shape=tensor.shape)
        a = tensor.sort_lexicographic()
        b = again.sort_lexicographic()
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_huge_exact_coordinates(self):
        big = 2**53 + 1
        t = read_tns(io.StringIO(f"{big} 1 1.0\n"))
        assert int(t.indices[0, 0]) + 1 == big

    def test_scientific_notation_value_ok(self):
        t = read_tns(io.StringIO("1 1 1.5e-3\n"))
        assert t.values[0] == pytest.approx(1.5e-3)

    def test_scientific_notation_coordinate_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            read_tns(io.StringIO("1e2 1 1.0\n"))


class TestRunAllAssembler:
    def test_skip_pytest_assembles_existing(self, tmp_path, monkeypatch):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "run_all", Path(__file__).parent.parent / "benchmarks" / "run_all.py")
        run_all = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(run_all)

        results = tmp_path / "results"
        results.mkdir()
        (results / "E1_datasets.txt").write_text("table one")
        (results / "E2_storage.txt").write_text("table two")
        monkeypatch.setattr(run_all, "RESULTS", results)
        assert run_all.main(["--skip-pytest"]) == 0
        report = (results / "REPORT.txt").read_text()
        assert "table one" in report and "table two" in report

    def test_report_exists_after_bench_run(self):
        """The repository ships regenerated results (bench run in CI)."""
        results = Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.exists():
            pytest.skip("benchmarks not yet run in this checkout")
        assert (results / "E2_storage.txt").exists()


class TestExampleSmoke:
    def test_quickstart_runs(self):
        """The quickstart example is the README's first contact — run it
        for real as a subprocess."""
        proc = subprocess.run(
            [sys.executable, str(Path(__file__).parent.parent /
                                 "examples" / "quickstart.py")],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "CP-ALS" in proc.stdout
        assert "storage comparison" in proc.stdout
