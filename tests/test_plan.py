"""Tests for precomputed parallel MTTKRP plans."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.cpd.cp_als import cp_als
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp


@pytest.fixture
def hic(small3d):
    return HicooTensor(small3d, block_bits=2)


class TestPlanConstruction:
    def test_covers_all_modes(self, hic):
        plan = plan_mttkrp(hic, rank=4, nthreads=3)
        assert len(plan.modes) == 3
        for mode, mp in enumerate(plan.modes):
            assert mp.mode == mode
            assert mp.strategy in ("schedule", "privatize")
            assert mp.thread_nnz.sum() == hic.nnz

    def test_forced_strategy(self, hic):
        for strat in ("schedule", "privatize"):
            plan = plan_mttkrp(hic, rank=4, nthreads=3, strategy=strat)
            assert all(mp.strategy == strat for mp in plan.modes)

    def test_schedule_plans_carry_schedules(self, hic):
        plan = plan_mttkrp(hic, rank=4, nthreads=3, strategy="schedule")
        for mp in plan.modes:
            assert mp.schedule is not None
            assert len(mp.thread_blocks) == 3
            mp.schedule.verify(plan.superblocks)

    def test_validation(self, hic, small3d):
        with pytest.raises(TypeError):
            plan_mttkrp(small3d, rank=4, nthreads=2)
        with pytest.raises(ValueError):
            plan_mttkrp(hic, rank=0, nthreads=2)
        with pytest.raises(ValueError):
            plan_mttkrp(hic, rank=2, nthreads=0)
        with pytest.raises(ValueError):
            plan_mttkrp(hic, rank=2, nthreads=2, strategy="nope")


class TestPlannedExecution:
    @pytest.mark.parametrize("strategy", ["auto", "schedule", "privatize"])
    def test_matches_unplanned(self, hic, small3d, factors3d, strategy):
        plan = plan_mttkrp(hic, rank=6, nthreads=4, strategy=strategy)
        for mode in range(3):
            ref = small3d.mttkrp(factors3d, mode)
            run = mttkrp_parallel(hic, factors3d, mode, 4, plan=plan)
            np.testing.assert_allclose(run.output, ref, atol=1e-10)
            assert run.strategy == plan.for_mode(mode).strategy

    def test_plan_reusable_across_calls(self, hic, factors3d):
        plan = plan_mttkrp(hic, rank=6, nthreads=2)
        a = mttkrp_parallel(hic, factors3d, 0, 2, plan=plan).output
        b = mttkrp_parallel(hic, factors3d, 0, 2, plan=plan).output
        np.testing.assert_allclose(a, b)

    def test_cp_als_with_plan_matches_without(self, hic, small3d, rng):
        init = [rng.random((s, 3)) for s in small3d.shape]
        # nthreads>1 on a HiCOO tensor now goes through the plan path
        planned = cp_als(hic, 3, maxiters=3, tol=0.0, init=init, nthreads=4)
        serial = cp_als(hic, 3, maxiters=3, tol=0.0, init=init, nthreads=1)
        np.testing.assert_allclose(planned.fits, serial.fits, atol=1e-10)
