"""Tests for the ASCII block-density visualization."""

import numpy as np
import pytest

from repro.analysis.blockviz import block_density_grid, render_heatmap
from repro.core.hicoo import HicooTensor
from repro.formats.coo import CooTensor


@pytest.fixture
def hic(small3d):
    return HicooTensor(small3d, block_bits=2)


class TestBlockDensityGrid:
    def test_mass_conserved(self, hic):
        grid = block_density_grid(hic, 0, 1)
        assert grid.sum() == hic.nnz

    def test_grid_capped(self, hic):
        grid = block_density_grid(hic, 0, 1, max_cells=4)
        assert grid.shape[0] <= 4 and grid.shape[1] <= 4
        assert grid.sum() == hic.nnz

    def test_same_mode_rejected(self, hic):
        with pytest.raises(ValueError, match="differ"):
            block_density_grid(hic, 1, 1)

    def test_bad_max_cells(self, hic):
        with pytest.raises(ValueError):
            block_density_grid(hic, 0, 1, max_cells=0)

    def test_empty_tensor(self):
        hic = HicooTensor(CooTensor.empty((16, 16)), block_bits=2)
        grid = block_density_grid(hic, 0, 1)
        assert grid.sum() == 0

    def test_corner_concentration(self):
        """All nonzeros near the origin light up only the first cell."""
        inds = [[i, j, 0] for i in range(4) for j in range(4)]
        coo = CooTensor((256, 256, 4), inds, np.ones(16))
        hic = HicooTensor(coo, block_bits=2)
        grid = block_density_grid(hic, 0, 1, max_cells=8)
        assert grid[0, 0] == 16
        assert grid.sum() == 16


class TestRenderHeatmap:
    def test_basic_render(self):
        grid = np.array([[0.0, 1.0], [10.0, 100.0]])
        text = render_heatmap(grid, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 2 + 1  # title + rows + footer
        assert lines[1][0] == " "  # zero density renders as space

    def test_monotone_shading(self):
        grid = np.array([[0.0, 1.0, 10.0, 100.0]])
        row = render_heatmap(grid).splitlines()[0]
        shades = " .:-=+*#%@"
        levels = [shades.index(c) for c in row]
        assert levels == sorted(levels)

    def test_all_zero(self):
        text = render_heatmap(np.zeros((2, 2)))
        assert "0 nonzeros" in text

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(3))
