"""Extended property-based tests over the newer subsystems.

Invariants covered (hypothesis-driven):

* streaming construction is chunking-invariant and equals the in-memory
  constructor;
* sorted-COO MTTKRP equals the baseline for any tensor/mode/rank;
* MTTKRP is linear in the tensor values (all formats);
* reordering permutations never change the value multiset or the norm;
* CP-APR keeps factors non-negative and the log-likelihood finite;
* Tucker TTM chains conserve the Frobenius inner product with identity
  factors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hicoo import HicooTensor
from repro.core.streaming import hicoo_from_chunks
from repro.cpd.cp_apr import cp_apr
from repro.formats.coo import CooTensor
from repro.kernels.coo_variants import mttkrp_sorted
from repro.reorder import apply_permutations, random_permutations
from repro.tucker import ttm_chain
from tests.test_properties import sparse_tensor_strategy


@given(sparse_tensor_strategy(max_modes=3), st.integers(1, 8),
       st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_streaming_equals_inmemory(coo, block_bits, chunk):
    chunks = [
        (coo.indices[lo:lo + chunk], coo.values[lo:lo + chunk])
        for lo in range(0, coo.nnz, chunk)
    ]
    streamed = hicoo_from_chunks(chunks, block_bits=block_bits,
                                 shape=coo.shape)
    direct = HicooTensor(coo, block_bits=block_bits)
    assert np.array_equal(streamed.bptr, direct.bptr)
    assert np.array_equal(streamed.binds, direct.binds)
    assert np.array_equal(streamed.einds, direct.einds)
    np.testing.assert_allclose(streamed.values, direct.values)


@given(sparse_tensor_strategy(max_modes=4, max_dim=15, max_nnz=30),
       st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_sorted_mttkrp_equals_baseline(coo, rank):
    rng = np.random.default_rng(0)
    factors = [rng.normal(size=(s, rank)) for s in coo.shape]
    for mode in range(coo.nmodes):
        np.testing.assert_allclose(
            mttkrp_sorted(coo, factors, mode),
            coo.mttkrp(factors, mode), atol=1e-8)


@given(sparse_tensor_strategy(max_modes=3, max_dim=12, max_nnz=25),
       st.floats(-3, 3, allow_nan=False), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_mttkrp_linear_in_values(coo, scale, block_bits):
    rng = np.random.default_rng(1)
    factors = [rng.normal(size=(s, 3)) for s in coo.shape]
    scaled = CooTensor(coo.shape, coo.indices, coo.values * scale,
                       sum_duplicates=False)
    for tensor_a, tensor_b in [
        (coo, scaled),
        (HicooTensor(coo, block_bits), HicooTensor(scaled, block_bits)),
    ]:
        a = tensor_a.mttkrp(factors, 0)
        b = tensor_b.mttkrp(factors, 0)
        np.testing.assert_allclose(b, scale * a, atol=1e-8)


@given(sparse_tensor_strategy(max_modes=4), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_reordering_preserves_values_and_norm(coo, seed):
    perms = random_permutations(coo.shape, seed=seed)
    out = apply_permutations(coo, perms)
    np.testing.assert_allclose(np.sort(out.values), np.sort(coo.values))
    assert np.isclose(out.norm(), coo.norm())
    assert out.nnz == coo.nnz


@given(sparse_tensor_strategy(max_modes=3, max_dim=10, max_nnz=20),
       st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_cp_apr_stays_nonnegative(coo, rank):
    nonneg = CooTensor(coo.shape, coo.indices, np.abs(coo.values),
                       sum_duplicates=False)
    res = cp_apr(nonneg, rank, maxiters=3, inner_iters=2, seed=0)
    assert all(f.min() >= 0 for f in res.ktensor.factors)
    assert res.ktensor.weights.min() >= 0
    assert np.all(np.isfinite(res.log_likelihoods))


@given(sparse_tensor_strategy(max_modes=3, max_dim=10, max_nnz=20))
@settings(max_examples=20, deadline=None)
def test_ttm_chain_identity_factors_preserve_norm(coo):
    """Contracting with identity matrices is a reshuffle: the semi-sparse
    result holds exactly the original values."""
    if coo.nmodes < 2:
        return
    factors = [np.eye(s) for s in coo.shape]
    semi = ttm_chain(coo, factors, skip_mode=0)
    mat = semi.to_dense_matrix()
    assert np.isclose(np.linalg.norm(mat), coo.norm(), atol=1e-10)
