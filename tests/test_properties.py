"""Property-based tests (hypothesis) on the core data structures.

These encode the invariants DESIGN.md section 6 lists:

* Morton encode/decode round-trips for any mode count and bit width;
* HiCOO <-> COO conversion preserves every nonzero for any block size;
* blocking covers every nonzero exactly once with in-range offsets;
* schedules are conflict-free for any tensor/mode/thread combination;
* storage formulas match the structure sizes;
* MTTKRP agrees across every format on arbitrary tensors;
* CP fit is invariant under component permutation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import decompose
from repro.core.hicoo import HicooTensor
from repro.core.scheduler import schedule_mode
from repro.core.superblock import build_superblocks
from repro.cpd.ktensor import KruskalTensor
from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor
from repro.formats.dense import DenseTensor
from repro.util.bitops import morton_decode, morton_encode


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def coords_strategy(draw):
    nmodes = draw(st.integers(1, 5))
    nbits = draw(st.integers(1, 20))
    npoints = draw(st.integers(0, 60))
    coords = draw(
        st.lists(
            st.lists(st.integers(0, (1 << nbits) - 1),
                     min_size=nmodes, max_size=nmodes),
            min_size=npoints, max_size=npoints,
        )
    )
    arr = np.asarray(coords, dtype=np.uint64).reshape(npoints, nmodes).T
    return arr, nbits


@st.composite
def sparse_tensor_strategy(draw, max_modes=4, max_dim=24, max_nnz=40):
    nmodes = draw(st.integers(1, max_modes))
    shape = tuple(draw(st.integers(2, max_dim)) for _ in range(nmodes))
    nnz = draw(st.integers(0, max_nnz))
    coords = draw(
        st.lists(
            st.tuples(*[st.integers(0, s - 1) for s in shape]),
            min_size=nnz, max_size=nnz, unique=True,
        )
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False).filter(lambda v: abs(v) > 1e-6),
            min_size=len(coords), max_size=len(coords),
        )
    )
    inds = (np.asarray(coords, dtype=np.int64).reshape(len(coords), nmodes)
            if coords else np.empty((0, nmodes), dtype=np.int64))
    return CooTensor(shape, inds, np.asarray(values), sum_duplicates=False)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@given(coords_strategy())
@settings(max_examples=60, deadline=None)
def test_morton_roundtrip(data):
    coords, nbits = data
    words = morton_encode(coords, nbits)
    back = morton_decode(words, coords.shape[0], nbits)
    assert np.array_equal(back, coords)


@given(sparse_tensor_strategy(), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_hicoo_roundtrip(coo, block_bits):
    hic = HicooTensor(coo, block_bits=block_bits)
    back = hic.to_coo()
    orig_map = {tuple(i): v for i, v in zip(coo.indices, coo.values)}
    back_map = {tuple(i): v for i, v in zip(back.indices, back.values)}
    assert orig_map == back_map


@given(sparse_tensor_strategy(), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_blocking_partitions_nonzeros(coo, block_bits):
    dec = decompose(coo, block_bits)
    assert dec.block_ptr[-1] == coo.nnz
    assert np.all(np.diff(dec.block_ptr) >= 1) or dec.nblocks == 0
    if dec.nnz:
        assert dec.elem_offsets.max() < (1 << block_bits)
    # block coordinates unique
    assert len({tuple(c) for c in dec.block_coords}) == dec.nblocks


@given(sparse_tensor_strategy(max_modes=3), st.integers(1, 6),
       st.integers(1, 8), st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_schedule_always_safe(coo, block_bits, nthreads, extra_bits):
    hic = HicooTensor(coo, block_bits=block_bits)
    sbs = build_superblocks(hic, block_bits + extra_bits)
    for mode in range(coo.nmodes):
        sched = schedule_mode(sbs, mode, nthreads)
        sched.verify(sbs)
        assert sched.thread_nnz.sum() == coo.nnz


@given(sparse_tensor_strategy(), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_storage_formula_matches_structures(coo, block_bits):
    hic = HicooTensor(coo, block_bits=block_bits)
    parts = hic.storage_bytes()
    assert parts["bptr"] == 8 * (len(hic.bptr))
    assert parts["binds"] == 4 * hic.binds.size
    assert parts["einds"] == hic.einds.size
    assert parts["values"] == 4 * len(hic.values)


@given(sparse_tensor_strategy(max_modes=3, max_dim=12, max_nnz=25),
       st.integers(1, 4), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_mttkrp_cross_format_agreement(coo, rank, block_bits):
    rng = np.random.default_rng(0)
    factors = [rng.normal(size=(s, rank)) for s in coo.shape]
    dense = DenseTensor(coo.to_dense())
    csf = CsfTensor(coo)
    hic = HicooTensor(coo, block_bits=block_bits)
    for mode in range(coo.nmodes):
        ref = dense.mttkrp(factors, mode)
        for tensor in (coo, csf, hic):
            got = tensor.mttkrp(factors, mode)
            np.testing.assert_allclose(got, ref, atol=1e-8)


@given(st.integers(1, 4), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_ktensor_fit_permutation_invariant(rank, seed):
    rng = np.random.default_rng(seed)
    shape = (6, 5, 4)
    kt = KruskalTensor(rng.random(rank) + 0.5,
                       [rng.normal(size=(s, rank)) for s in shape])
    coo = CooTensor.from_dense(
        rng.normal(size=shape) * (rng.random(shape) < 0.4))
    perm = rng.permutation(rank)
    kt2 = KruskalTensor(kt.weights[perm], [f[:, perm] for f in kt.factors])
    assert np.isclose(kt.fit(coo), kt2.fit(coo), atol=1e-10)


@given(sparse_tensor_strategy(max_modes=4, max_dim=30, max_nnz=50),
       st.integers(1, 8), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_superblocks_partition_blocks(coo, block_bits, extra_bits):
    hic = HicooTensor(coo, block_bits=block_bits)
    sbs = build_superblocks(hic, block_bits + extra_bits)
    assert sbs.sptr[-1] == hic.nblocks
    assert sbs.nnz_per_superblock.sum() == hic.nnz
    # every superblock's blocks agree on the superblock coordinate
    shift = extra_bits
    for sb in range(sbs.nsuper):
        lo, hi = sbs.block_range(sb)
        assert np.all(
            (hic.binds[lo:hi].astype(np.int64) >> shift) == sbs.scoords[sb])
