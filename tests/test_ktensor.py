"""Unit tests for Kruskal tensors."""

import numpy as np
import pytest

from repro.cpd.ktensor import KruskalTensor
from repro.formats.coo import CooTensor


def random_kt(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return KruskalTensor(rng.random(rank) + 0.5,
                         [rng.normal(size=(s, rank)) for s in shape])


class TestConstruction:
    def test_properties(self):
        kt = random_kt((4, 5, 6), 3)
        assert kt.rank == 3
        assert kt.shape == (4, 5, 6)
        assert kt.nmodes == 3

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            KruskalTensor(np.ones(2), [np.ones((3, 2)), np.ones((4, 3))])

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            KruskalTensor(np.ones(3), [np.ones((3, 2)), np.ones((4, 2))])

    def test_no_factors(self):
        with pytest.raises(ValueError):
            KruskalTensor(np.ones(1), [])


class TestFull:
    def test_rank1_outer_product(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0, 5.0])
        kt = KruskalTensor(np.array([2.0]), [a[:, None], b[:, None]])
        np.testing.assert_allclose(kt.full(), 2.0 * np.outer(a, b))

    def test_sum_of_components(self):
        kt = random_kt((3, 4), 2, seed=1)
        full = kt.full()
        ref = sum(
            kt.weights[r] * np.outer(kt.factors[0][:, r], kt.factors[1][:, r])
            for r in range(2)
        )
        np.testing.assert_allclose(full, ref)

    def test_memory_guard(self):
        kt = KruskalTensor(np.ones(1), [np.ones((10**4, 1))] * 3)
        with pytest.raises(MemoryError):
            kt.full()


class TestNormAndInner:
    def test_norm_matches_dense(self):
        kt = random_kt((4, 5, 6), 3, seed=2)
        assert np.isclose(kt.norm(), np.linalg.norm(kt.full()))

    def test_innerprod_matches_dense(self, small3d):
        kt = random_kt(small3d.shape, 4, seed=3)
        ref = float(np.sum(small3d.to_dense() * kt.full()))
        assert np.isclose(kt.innerprod(small3d), ref)

    def test_fit_perfect_recovery(self):
        kt = random_kt((5, 6, 7), 2, seed=4)
        coo = CooTensor.from_dense(kt.full())
        assert kt.fit(coo) > 1 - 1e-9

    def test_fit_zero_tensor(self):
        kt = KruskalTensor(np.zeros(1), [np.zeros((2, 1)), np.zeros((3, 1))])
        assert kt.fit(CooTensor.empty((2, 3))) == 1.0

    def test_fit_bounded(self, small3d):
        kt = random_kt(small3d.shape, 2, seed=5)
        assert kt.fit(small3d) <= 1.0


class TestNormalizeArrange:
    def test_normalize_preserves_tensor(self):
        kt = random_kt((3, 4, 5), 3, seed=6)
        np.testing.assert_allclose(kt.normalize().full(), kt.full(), atol=1e-10)

    def test_unit_columns(self):
        kt = random_kt((3, 4), 2, seed=7).normalize()
        for f in kt.factors:
            np.testing.assert_allclose(np.linalg.norm(f, axis=0), 1.0)

    def test_arrange_sorts_weights(self):
        kt = random_kt((4, 4, 4), 4, seed=8).arrange()
        w = np.abs(kt.weights)
        assert np.all(np.diff(w) <= 1e-12)

    def test_arrange_preserves_tensor(self):
        kt = random_kt((3, 4, 5), 3, seed=9)
        np.testing.assert_allclose(kt.arrange().full(), kt.full(), atol=1e-10)


class TestCongruence:
    def test_self_congruence(self):
        kt = random_kt((4, 5, 6), 3, seed=10)
        assert np.isclose(kt.congruence(kt), 1.0)

    def test_permutation_invariance(self):
        kt = random_kt((4, 5, 6), 3, seed=11)
        perm = [2, 0, 1]
        kt2 = KruskalTensor(kt.weights[perm], [f[:, perm] for f in kt.factors])
        assert np.isclose(kt.congruence(kt2), 1.0)

    def test_sign_invariance(self):
        kt = random_kt((4, 5), 2, seed=12)
        kt2 = KruskalTensor(kt.weights,
                            [-kt.factors[0], -kt.factors[1]])
        assert np.isclose(kt.congruence(kt2), 1.0)

    def test_different_tensors_low_score(self):
        a = random_kt((30, 30, 30), 2, seed=13)
        b = random_kt((30, 30, 30), 2, seed=14)
        assert a.congruence(b) < 0.9

    def test_incomparable(self):
        a = random_kt((3, 4), 2)
        b = random_kt((3, 5), 2)
        with pytest.raises(ValueError):
            a.congruence(b)
