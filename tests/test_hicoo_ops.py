"""Tests for TTV/TTM and block statistics on HiCOO storage."""

import numpy as np
import pytest

from repro.core.hicoo import HicooTensor
from repro.formats.coo import CooTensor
from repro.kernels.hicoo_ops import (
    block_norms,
    densest_blocks,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.kernels.ttm import ttm


@pytest.fixture
def hic(small3d):
    return HicooTensor(small3d, block_bits=2)


class TestHicooTtv:
    def test_matches_coo_ttv(self, small3d, hic, rng):
        for mode in range(3):
            v = rng.normal(size=small3d.shape[mode])
            a = hicoo_ttv(hic, v, mode).sort_lexicographic()
            b = small3d.ttv(v, mode).sort_lexicographic()
            assert np.array_equal(a.indices, b.indices)
            np.testing.assert_allclose(a.values, b.values, atol=1e-12)

    def test_4d(self, small4d, rng):
        hic = HicooTensor(small4d, block_bits=2)
        v = rng.normal(size=small4d.shape[1])
        a = hicoo_ttv(hic, v, 1).sort_lexicographic()
        b = small4d.ttv(v, 1).sort_lexicographic()
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values, atol=1e-12)

    def test_wrong_length(self, hic):
        with pytest.raises(ValueError, match="length"):
            hicoo_ttv(hic, np.ones(3), 0)

    def test_1mode_rejected(self):
        hic = HicooTensor(CooTensor((16,), [[3]], [1.0]), block_bits=2)
        with pytest.raises(ValueError, match="only mode"):
            hicoo_ttv(hic, np.ones(16), 0)

    def test_empty(self):
        hic = HicooTensor(CooTensor.empty((8, 8)), block_bits=2)
        out = hicoo_ttv(hic, np.ones(8), 0)
        assert out.nnz == 0
        assert out.shape == (8,)


class TestHicooTtm:
    def test_matches_coo_ttm(self, small3d, hic, rng):
        for mode in range(3):
            mat = rng.normal(size=(small3d.shape[mode], 3))
            a = hicoo_ttm(hic, mat, mode)
            b = ttm(small3d, mat, mode)
            np.testing.assert_allclose(a.to_dense(), b.to_dense(), atol=1e-10)

    def test_fibers_unique(self, hic, rng, small3d):
        mat = rng.normal(size=(small3d.shape[0], 2))
        semi = hicoo_ttm(hic, mat, 0)
        keys = {tuple(i) for i in semi.indices}
        assert len(keys) == semi.nfibers

    def test_shape_check(self, hic):
        with pytest.raises(ValueError, match="matrix"):
            hicoo_ttm(hic, np.ones((5, 2)), 0)

    def test_empty(self):
        hic = HicooTensor(CooTensor.empty((8, 8, 8)), block_bits=2)
        semi = hicoo_ttm(hic, np.ones((8, 2)), 1)
        assert semi.nfibers == 0


class TestBlockStatistics:
    def test_block_norms_l2(self, hic):
        norms = block_norms(hic)
        assert len(norms) == hic.nblocks
        assert np.isclose(np.sqrt((norms ** 2).sum()),
                          np.linalg.norm(hic.values))

    def test_block_norms_l1_inf(self, hic):
        l1 = block_norms(hic, ord=1.0)
        linf = block_norms(hic, ord=np.inf)
        assert np.isclose(l1.sum(), np.abs(hic.values).sum())
        assert np.isclose(linf.max(), np.abs(hic.values).max())
        assert np.all(linf <= l1 + 1e-12)

    def test_block_norms_bad_order(self, hic):
        with pytest.raises(ValueError, match="norm order"):
            block_norms(hic, ord=3.0)

    def test_block_norms_empty(self):
        hic = HicooTensor(CooTensor.empty((4, 4)), block_bits=2)
        assert len(block_norms(hic)) == 0

    def test_densest_blocks(self, hic):
        top = densest_blocks(hic, k=3)
        assert len(top) == min(3, hic.nblocks)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == int(hic.block_nnz().max())

    def test_densest_blocks_k_validation(self, hic):
        with pytest.raises(ValueError):
            densest_blocks(hic, k=0)

    def test_densest_blocks_k_exceeds(self, hic):
        top = densest_blocks(hic, k=10 ** 6)
        assert len(top) == hic.nblocks
