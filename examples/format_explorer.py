#!/usr/bin/env python
"""Format explorer: how tensor structure decides the COO/CSF/HiCOO contest.

Generates tensors across the structural spectrum (banded -> clustered ->
power-law -> uniform random), measures HiCOO's predictive parameters
(alpha_b, c_b), the storage of every format, and the model-predicted MTTKRP
speedups — a compact, self-contained rendition of the paper's analysis
narrative.

Run:  python examples/format_explorer.py
"""

from repro import HicooTensor, Machine, best_block_bits, compare_formats
from repro.analysis.model import speedup_over_coo
from repro.analysis.report import render_table
from repro.data import synthetic

# a large index space (1M per mode) so that even the maximal block edge
# (B=256) leaves a 4096^3 block grid — block coordinates are then genuinely
# expensive and structure decides the contest, as at FROSTT scale
SHAPE = (1 << 20, 1 << 20, 1 << 20)
NNZ = 30_000

WORKLOADS = {
    "banded": lambda: synthetic.banded_tensor(SHAPE, NNZ, bandwidth=6, seed=1),
    "clustered": lambda: synthetic.clustered_tensor(SHAPE, NNZ, nclusters=64,
                                                    spread=4.0, seed=1),
    "power-law": lambda: synthetic.power_law_tensor(SHAPE, NNZ, exponent=1.3,
                                                    seed=1),
    "pl-shuffled": lambda: synthetic.power_law_tensor(
        SHAPE, NNZ, exponent=1.3, shuffle_labels=True, seed=1),
    "uniform": lambda: synthetic.random_tensor(SHAPE, NNZ, seed=1),
}

machine = Machine()  # deterministic default node; swap for Machine.detect()

rows = []
for name, build in WORKLOADS.items():
    coo = build()
    bits = best_block_bits(coo)
    hic = HicooTensor(coo, block_bits=bits)
    storage = {r.format_name: r for r in compare_formats(coo, block_bits=bits)}
    speeds = speedup_over_coo(coo, rank=16, machine=machine, nthreads=1,
                              block_bits=bits)
    rows.append({
        "structure": name,
        "best_B": hic.block_size,
        "alpha_b": hic.block_ratio(),
        "c_b": hic.avg_slice_size(),
        "hicoo_B/nnz": storage["hicoo"].bytes_per_nnz,
        "vs_coo": storage["hicoo"].compression_vs_coo(),
        "mttkrp_speedup": speeds["hicoo"],
    })

print(render_table(
    rows,
    ["structure", "best_B", "alpha_b", "c_b", "hicoo_B/nnz", "vs_coo",
     "mttkrp_speedup"],
    title=f"structure -> HiCOO behaviour ({SHAPE[0]}^3 tensors, "
          f"{NNZ} nonzeros; speedup = predicted sequential MTTKRP vs COO)",
    widths={"structure": 12, "mttkrp_speedup": 15},
))

print("""
reading the table:
  * alpha_b (blocks per nonzero) is the paper's master knob: banded and
    clustered tensors pack many nonzeros per block (alpha_b << 1), so both
    the 1-byte offsets and the in-block factor reuse pay off;
  * frequency-ordered power-law tensors still cluster near the origin;
    shuffling the labels (pl-shuffled) destroys that locality and pushes
    alpha_b toward 1, where HiCOO degenerates to COO plus overhead;
  * uniform random is the worst case: HiCOO stores MORE than COO and wins
    nothing — the honest boundary of the paper's claims.""")
