#!/usr/bin/env python
"""Quickstart: build a sparse tensor, store it as HiCOO, run CP-ALS.

Covers the 90% use case of the library in ~40 lines:

1. create (or load) a COO tensor,
2. convert to HiCOO at the storage-optimal block size,
3. compare storage against COO and CSF,
4. factorize with CP-ALS.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (HicooTensor, best_block_bits, compare_formats, cp_als,
                   format_table)
from repro.data.synthetic import clustered_tensor

# 1. a clustered 3-mode tensor (the regime HiCOO is designed for)
coo = clustered_tensor((2000, 1500, 800), nnz=30_000, nclusters=64,
                       spread=5.0, seed=42)
print(f"input: {coo!r}  density={coo.density():.2e}")

# 2. choose the block size that minimizes storage, build HiCOO
bits = best_block_bits(coo)
hicoo = HicooTensor(coo, block_bits=bits)
print(f"HiCOO: B={hicoo.block_size} ({hicoo.nblocks} blocks, "
      f"alpha_b={hicoo.block_ratio():.3f}, c_b={hicoo.avg_slice_size():.3f})")

# 3. storage comparison (the paper's headline claim: ~2x smaller than COO)
print()
print(format_table(compare_formats(coo, block_bits=bits),
                   title="storage comparison"))

# 4. rank-8 CP decomposition; the solver is format-generic, so the HiCOO
#    tensor drops straight in.  nthreads routes MTTKRP through the
#    lock-free superblock scheduler / privatization heuristic.
result = cp_als(hicoo, rank=8, maxiters=10, tol=1e-4, seed=0, nthreads=4)
print()
print(f"CP-ALS: fit={result.final_fit:.4f} after {result.iterations} "
      f"iterations (converged={result.converged})")
print(f"        {result.mttkrp_seconds:.3f}s in MTTKRP of "
      f"{result.total_seconds:.3f}s total "
      f"({100 * result.mttkrp_seconds / result.total_seconds:.0f}%)")

# the result is a Kruskal tensor: weights + one factor matrix per mode
kt = result.ktensor
print(f"        components (weights): {np.round(kt.weights, 2)}")
