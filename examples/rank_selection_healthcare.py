#!/usr/bin/env python
"""Rank selection on a healthcare-style tensor (patient, diagnosis, visit).

The paper's CHOA case study factorizes an electronic-health-records tensor
to find phenotypes; choosing the CP rank there requires *many* CP-ALS runs
— the exact workload that amortizes HiCOO's one-time construction cost.
This example runs that workflow end to end:

1. build the `choa` registry analog and visualize its block structure;
2. sweep CP ranks with restarts (every run reuses the same HiCOO tensor);
3. report the fit-vs-rank elbow and the "phenotypes" (top diagnoses per
   component) of the chosen model.

Run:  python examples/rank_selection_healthcare.py
"""

import numpy as np

from repro import HicooTensor, best_block_bits
from repro.analysis.blockviz import block_density_grid, render_heatmap
from repro.analysis.report import render_series
from repro.cpd.model_selection import cp_als_restarts, rank_sweep
from repro.data import load

# 1. patient x diagnosis x visit-window tensor.  The registry analog gives
#    realistic *coordinates* (clustered, like real EHR data); we plant a
#    rank-4 "phenotype" model on the values so rank selection has a ground
#    truth to find.
PLANTED_RANK = 4
coo_coords = load("choa")
rng = np.random.default_rng(99)
phenotypes = [rng.random((s, PLANTED_RANK)) ** 3 for s in coo_coords.shape]
vals = np.ones(coo_coords.nnz)
acc = np.ones((coo_coords.nnz, PLANTED_RANK))
for m, f in enumerate(phenotypes):
    acc *= f[coo_coords.indices[:, m]]
vals = acc.sum(axis=1) + rng.normal(0, 0.01, coo_coords.nnz)

from repro import CooTensor

coo = CooTensor(coo_coords.shape, coo_coords.indices, vals,
                sum_duplicates=False)
print(f"EHR-style tensor: {coo!r} (patients x diagnoses x visit windows, "
      f"planted rank {PLANTED_RANK})")

bits = best_block_bits(coo)
hicoo = HicooTensor(coo, block_bits=bits)
print(f"HiCOO: B={hicoo.block_size}, alpha_b={hicoo.block_ratio():.3f}, "
      f"{hicoo.bytes_per_nnz():.1f} B/nnz vs COO {coo.bytes_per_nnz():.1f}\n")
print(render_heatmap(block_density_grid(hicoo, 0, 1, max_cells=32),
                     title="block density (patients x diagnoses)"))

# 2. rank sweep — the construction above is reused by every run below
ranks = [1, 2, 4, 8, 12]
profile = rank_sweep(hicoo, ranks, restarts=2, maxiters=10, tol=1e-4, seed=0)
print()
print(render_series("rank", profile.ranks,
                    {"fit": profile.fits,
                     "seconds": profile.seconds},
                    title="CP-ALS rank sweep (best of 2 restarts each)"))
chosen = profile.knee(tolerance=0.02)
print(f"\nelbow criterion picks rank {chosen}")
print("(absolute fits are small: with sparse data the implicit zeros "
      "dominate the norm; the elbow and factor recovery below are the "
      "meaningful signals)")

# 3. the chosen model's "phenotypes": top diagnoses per component
result = cp_als_restarts(hicoo, chosen, restarts=3, maxiters=15, tol=1e-4,
                         seed=1)
diag_factor = result.ktensor.factors[1]
print(f"final fit at rank {chosen}: {result.final_fit:.4f}")
for r in range(min(chosen, 4)):
    top = np.argsort(np.abs(diag_factor[:, r]))[::-1][:5]
    print(f"  component {r}: weight={result.ktensor.weights[r]:.3f}, "
          f"top diagnoses {[int(d) for d in top]}")
