#!/usr/bin/env python
"""Tag recommendation from a (user, item, tag) tensor — the social-tagging
workload (Delicious/Flickr) that motivates the paper's evaluation.

Pipeline:

1. synthesize a power-law tagging tensor (the `deli` analog from the
   dataset registry);
2. store it as HiCOO and factorize with CP-ALS;
3. for a user-item pair, score every tag with the learned factors and
   recommend the top-k — checking that tags the user actually used rank
   highly.

Run:  python examples/tag_recommendation.py
"""

import numpy as np

from repro import HicooTensor, cp_als
from repro.data import load

RANK = 16
TOP_K = 5

# 1. the registry's scaled analog of the Delicious tensor
coo = load("deli")
nusers, nitems, ntags = coo.shape
print(f"tagging tensor: {nusers} users x {nitems} items x {ntags} tags, "
      f"{coo.nnz} assignments")

# 2. HiCOO + CP-ALS
hicoo = HicooTensor(coo, block_bits=4)
print(f"HiCOO: {hicoo.nblocks} blocks, "
      f"{hicoo.bytes_per_nnz():.1f} bytes/nnz "
      f"(COO: {coo.bytes_per_nnz():.1f})")
result = cp_als(hicoo, rank=RANK, maxiters=12, tol=1e-4, seed=7, nthreads=4)
print(f"CP-ALS: fit={result.final_fit:.4f} in {result.iterations} iterations")

users, items, tags = result.ktensor.factors
weights = result.ktensor.weights

# 3. recommend tags for the most active (user, item) pairs
def recommend(user: int, item: int, k: int = TOP_K) -> np.ndarray:
    """Scores[tag] = sum_r w_r * U[user,r] * I[item,r] * T[tag,r]."""
    blend = weights * users[user] * items[item]  # (R,)
    scores = tags @ blend
    return np.argsort(scores)[::-1][:k]


# pick pairs that actually have tags, so we can sanity-check the output
pair_counts = {}
for (u, i, t) in coo.indices:
    pair_counts.setdefault((u, i), []).append(t)
busy_pairs = sorted(pair_counts, key=lambda p: -len(pair_counts[p]))[:3]

print()
hits = total = 0
for user, item in busy_pairs:
    truth = {int(t) for t in pair_counts[(user, item)]}
    top = [int(t) for t in recommend(user, item)]
    overlap = [t for t in top if t in truth]
    hits += len(overlap)
    total += min(TOP_K, len(truth))
    print(f"user {user:5d}, item {item:5d}: "
          f"{len(truth)} observed tags, "
          f"recommended {top}, hits {len(overlap)}")

print(f"\nhit rate on the busiest pairs: {hits}/{total}")
