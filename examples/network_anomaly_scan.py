#!/usr/bin/env python
"""Network-interaction analysis on a (source, destination, time) tensor —
the DARPA/Facebook-style workload of the paper's evaluation, exercising the
parallel MTTKRP machinery explicitly.

1. build a scale-free interaction tensor (preferential-attachment graph
   whose edges fire over time);
2. inspect the superblock schedule the lock-free parallel MTTKRP uses;
3. factorize and flag the time slices whose temporal-factor activity is
   most anomalous (largest deviation across components).

Run:  python examples/network_anomaly_scan.py
"""

import numpy as np

from repro import HicooTensor, build_superblocks, cp_als, schedule_mode
from repro.data.synthetic import graph_tensor
from repro.kernels.mttkrp import mttkrp_parallel

NTHREADS = 8
RANK = 8

# 1. interactions: 4000 hosts over 48 time steps
coo = graph_tensor(4000, 48, attach=3, seed=11)
print(f"interaction tensor: {coo!r}")

hicoo = HicooTensor(coo, block_bits=4)
print(f"HiCOO: {hicoo.nblocks} blocks, alpha_b={hicoo.block_ratio():.3f}")

# 2. look at the parallel schedule for the source mode (mode 0): superblocks
#    are grouped by their mode-0 coordinate so threads never write the same
#    output rows — no locks, no atomics.
sbs = build_superblocks(hicoo, superblock_bits=6)
sched = schedule_mode(sbs, mode=0, nthreads=NTHREADS)
print(f"schedule(mode=0): {sbs.nsuper} superblocks in {sched.ngroups} "
      f"independent groups, load imbalance "
      f"{sched.load_imbalance():.2f}, effective parallelism "
      f"{sched.effective_parallelism():.1f}/{NTHREADS}")
sched.verify(sbs)  # raises if two threads could collide

# the time mode only has 48 indices — one superblock group — so the
# strategy heuristic falls back to privatization there, exactly the case
# the paper's two-strategy design anticipates:
sched_t = schedule_mode(sbs, mode=2, nthreads=NTHREADS)
print(f"schedule(mode=2): only {sched_t.ngroups} group(s) -> the kernel "
      "will privatize instead")

# run one parallel MTTKRP through the public kernel API
rng = np.random.default_rng(0)
factors = [rng.random((s, RANK)) for s in coo.shape]
run = mttkrp_parallel(hicoo, factors, mode=2, nthreads=NTHREADS)
print(f"parallel MTTKRP used strategy={run.strategy!r}, "
      f"per-thread nnz max/mean = {run.load_imbalance():.2f}")

# 3. factorize and scan the temporal factor
result = cp_als(hicoo, rank=RANK, maxiters=10, tol=1e-4, seed=3,
                nthreads=NTHREADS)
print(f"CP-ALS fit = {result.final_fit:.4f}")

temporal = result.ktensor.factors[2]  # (ntime, R)
activity = np.abs(temporal) @ result.ktensor.weights
zscores = (activity - activity.mean()) / (activity.std() + 1e-12)
flagged = np.argsort(zscores)[::-1][:5]
print("\nmost active time slices (z-score of component activity):")
for t in flagged:
    print(f"  t={int(t):3d}  z={zscores[t]:+.2f}  "
          f"nnz in slice={int((coo.indices[:, 2] == t).sum())}")
