"""E2 — storage comparison of COO / CSF / CSF-N / HiCOO.

Regenerates the paper's storage table: total bytes, bytes per nonzero and
the ratio to COO for every dataset.  Expected shape (paper): HiCOO smallest
on blockable tensors (~2x smaller than COO on average); CSF between; the
mode-generic CSF-N costs ~N single trees; HiCOO ~matches or slightly
exceeds COO on unstructured tensors (alpha_b ~ 1).
"""

import pytest

from repro.analysis.report import render_table
from repro.core.storage import compare_formats

from conftest import BENCH_BLOCK_BITS, TIMED_DATASETS, all_dataset_names, dataset, write_result


def _storage_rows():
    from repro.formats.csf_suite import CsfSuite

    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        comparison = compare_formats(coo, block_bits=BENCH_BLOCK_BITS)
        row = {"dataset": name, "nnz": coo.nnz}
        for entry in comparison:
            row[f"{entry.format_name}_B/nnz"] = entry.bytes_per_nnz
            row[f"{entry.format_name}_vs_coo"] = entry.compression_vs_coo()
        # mode-generic CSF-N, with each tree's true structure (mode orders
        # differ per tree, so this is more accurate than N x one tree)
        suite = CsfSuite(coo)
        row["csfN_B/nnz"] = suite.total_bytes() / max(1, coo.nnz)
        rows.append(row)
    return rows


def test_e2_storage_table(benchmark):
    rows = _storage_rows()
    cols = ["dataset", "nnz", "coo_B/nnz", "csf_B/nnz", "csfN_B/nnz",
            "hicoo_B/nnz", "hicoo_vs_coo"]
    text = render_table(rows, cols,
                        title=f"E2: storage (b={BENCH_BLOCK_BITS}; "
                              "'vs_coo' > 1 means smaller than COO)",
                        widths={"dataset": 10})
    write_result("E2_storage.txt", text)

    hicoo_wins = [r for r in rows if r["hicoo_vs_coo"] > 1.0]
    assert len(hicoo_wins) >= len(rows) // 2, \
        "HiCOO should compress the majority of datasets"
    benchmark(compare_formats, dataset("uber"), block_bits=BENCH_BLOCK_BITS)


@pytest.mark.parametrize("name", TIMED_DATASETS)
def test_storage_accounting_speed(benchmark, name):
    coo = dataset(name)
    rows = benchmark(compare_formats, coo, block_bits=BENCH_BLOCK_BITS)
    assert len(rows) == 3
