"""E7 — block-size sensitivity.

Regenerates the paper's B-sweep figure: storage, alpha_b, and predicted
sequential MTTKRP time as the block edge grows from 4 to 256.  Expected
shape: tiny blocks pay per-block overhead (bptr/binds dominate); block
growth first improves both storage and time; the curve flattens once most
nonzeros share blocks.  B > 256 is impossible (8-bit offsets) — the sweep
itself documents the constraint.
"""

import pytest

from repro.analysis.model import predict_all_modes
from repro.analysis.report import render_table
from repro.core.blocking import MAX_BLOCK_BITS
from repro.core.hicoo import HicooTensor
from repro.core.params import analyze_block_sizes

from conftest import RANK, dataset, write_result

SWEEP_DATASETS = ["vast", "uber", "deli"]


def test_e7_block_size_sweep(machine, benchmark):
    chunks = []
    for name in SWEEP_DATASETS:
        coo = dataset(name)
        rows = []
        for params in analyze_block_sizes(coo, range(2, MAX_BLOCK_BITS + 1)):
            hic = HicooTensor(coo, block_bits=params.block_bits)
            pred = predict_all_modes(hic, RANK, machine, nthreads=1)
            rows.append({
                "B": params.block_size,
                "nblocks": params.nblocks,
                "alpha_b": params.alpha_b,
                "B/nnz": params.bytes_per_nnz,
                "pred_ms": pred.total * 1e3,
            })
        chunks.append(render_table(
            rows, ["B", "nblocks", "alpha_b", "B/nnz", "pred_ms"],
            title=f"E7: block-size sweep on {name} (R={RANK})"))
        # alpha_b decreases monotonically with B (blocks only merge)
        alphas = [r["alpha_b"] for r in rows]
        assert all(a >= b for a, b in zip(alphas, alphas[1:]))
    write_result("E7_block_size.txt", "\n\n".join(chunks))
    benchmark(analyze_block_sizes, dataset("uber"), range(2, 9))


def test_e7_offset_constraint():
    """The einds byte-width makes b > 8 invalid — the design constraint the
    sweep stops at."""
    coo = dataset("vast")
    with pytest.raises(ValueError):
        HicooTensor(coo, block_bits=MAX_BLOCK_BITS + 1)
