"""E13 (extension) — predicted GPU MTTKRP comparison, and the compiled-tier
measured-vs-predicted join.

The paper's follow-on work ports HiCOO to GPUs; this bench regenerates the
predicted *shape* of that comparison with the GPU roofline profile: on an
accelerator, COO's per-nonzero atomics and uncoalesced gathers hurt more
than on a CPU, so HiCOO's relative advantage should grow wherever its
blocks coalesce (alpha_b small), and collapse on scattered tensors.

When a compiled kernel tier (numba / cupy) is importable, a second
experiment *measures* it: steady-state compiled MTTKRP (compile/upload
excluded and recorded separately) against the NumPy sequential kernel and
against the analytic profile's prediction — the measured/predicted ratio
is what makes the model falsifiable.  Results land in
``BENCH_mttkrp_jit.json``; the pure-model experiment above runs unchanged
on every host.
"""

import math
import os
import time

import numpy as np
import pytest

from repro.analysis.model import build_format_suite, speedup_over_coo
from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.kernels.backends import tier_available, tier_reason
from repro.kernels.mttkrp import mttkrp, mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from repro.parallel.gpu import (GpuProfile, gpu_speedup_over_coo,
                                measured_vs_predicted)

from conftest import (BENCH_BLOCK_BITS, RANK, TIMED_DATASETS,
                      all_dataset_names, best_time, dataset, write_bench_json,
                      write_result)

JIT_BENCH_FILE = "BENCH_mttkrp_jit.json"


def test_e13_gpu_speedup_figure(machine, benchmark):
    gpu = GpuProfile()
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        suite = build_format_suite(coo, block_bits=BENCH_BLOCK_BITS)
        gpu_speeds = gpu_speedup_over_coo(suite, RANK, gpu)
        cpu_speeds = speedup_over_coo(coo, RANK, machine,
                                      nthreads=machine.cores,
                                      block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "cpu_hicoo": cpu_speeds["hicoo"],
            "gpu_hicoo": gpu_speeds["hicoo"],
            "gpu_csf": gpu_speeds["csf"],
        })
    text = render_table(
        rows, ["dataset", "cpu_hicoo", "gpu_hicoo", "gpu_csf"],
        title=f"E13 (ext): predicted MTTKRP speedup over COO, CPU (P="
              f"{machine.cores}) vs GPU profile (R={RANK}, "
              f"b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10})
    write_result("E13_gpu.txt", text)

    gpu_hicoo = np.array([r["gpu_hicoo"] for r in rows])
    # HiCOO wins on the GPU wherever it wins on the CPU, typically by more
    assert (gpu_hicoo > 1.0).sum() >= len(rows) // 2
    wins = [r for r in rows if r["cpu_hicoo"] > 1.5]
    grew = sum(1 for r in wins if r["gpu_hicoo"] > r["cpu_hicoo"])
    assert grew >= len(wins) // 2, "GPU should amplify HiCOO's advantage"
    benchmark(gpu_speedup_over_coo,
              build_format_suite(dataset("vast"), block_bits=BENCH_BLOCK_BITS),
              RANK, gpu)


# ----------------------------------------------------------------------
# compiled-tier measurement (only when a tier is importable)
# ----------------------------------------------------------------------
def _tier_profile(tier: str, nthreads: int) -> GpuProfile:
    return GpuProfile.cpu_jit(nthreads) if tier == "numba" else GpuProfile()


def bench_compiled_tier(tier: str = "numba", repeat: int = 5,
                        nthreads: int | None = None):
    """Measure the compiled tier on the timed datasets; returns
    ``(records, rows)`` — machine-readable bench records and the
    measured-vs-predicted table rows.

    Steady-state only: the plan's gather arrays are materialized and the
    JIT warmed *before* timing, so ``time_s`` is what a CP-ALS iteration
    pays; the one-time compile cost is reported in its own record
    (``variant="<tier>_compile"``), never folded into the kernel times.
    """
    from repro.kernels.compiled import warmup_numba

    nthreads = nthreads or min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    compile_s = warmup_numba() if tier == "numba" else 0.0
    setup_s = time.perf_counter() - t0
    records = [{"op": "mttkrp", "format": "hicoo", "strategy": "compile",
                "dataset": "-", "variant": f"{tier}_compile",
                "time_s": max(compile_s, setup_s, 1e-9)}]
    rows = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        plan = plan_mttkrp(hic, RANK, nthreads)
        plan.ensure_gathers(hic)
        measured = {}
        for mode in range(coo.nmodes):
            t_seq = best_time(mttkrp, hic, factors, mode,
                              repeat=repeat, warmup=1)
            t_jit = best_time(
                lambda m=mode: mttkrp_parallel(hic, factors, m, nthreads,
                                               plan=plan, backend=tier),
                repeat=repeat, warmup=2)
            measured[mode] = t_jit
            records.append({
                "op": "mttkrp", "format": "hicoo", "strategy": "planned",
                "dataset": name, "mode": mode, "variant": tier,
                "time_s": t_jit, "seq_time_s": t_seq,
                "speedup_vs_seq": t_seq / t_jit if t_jit else float("inf"),
            })
        for row in measured_vs_predicted(hic, RANK,
                                         _tier_profile(tier, nthreads),
                                         measured):
            rows.append({"dataset": name, **row})
    return records, rows


def compiled_geomean_speedup(records) -> float:
    """Geomean of the per-(dataset, mode) speedups over the NumPy
    sequential kernel (compile records excluded)."""
    speeds = [r["speedup_vs_seq"] for r in records if "speedup_vs_seq" in r]
    return math.exp(sum(math.log(s) for s in speeds) / len(speeds))


@pytest.mark.parametrize("tier", ["numba", "cupy"])
def test_bench_json_jit(tier, benchmark):
    """Measured-vs-predicted for a compiled tier (auto-skips without it)."""
    if not tier_available(tier):
        pytest.skip(tier_reason(tier) or f"{tier} unavailable")
    records, rows = bench_compiled_tier(tier=tier)
    for row in rows:
        row["measured_ms"] = row.pop("measured_s") * 1e3
        row["predicted_ms"] = row.pop("predicted_s") * 1e3
    text = render_table(
        rows, ["dataset", "mode", "measured_ms", "predicted_ms", "ratio",
               "bound"],
        title=f"E13b: {tier} MTTKRP measured vs model-predicted "
              f"(R={RANK}, b={BENCH_BLOCK_BITS}; steady state, compile "
              "excluded)",
        widths={"dataset": 10})
    write_result(f"E13b_{tier}.txt", text)
    write_bench_json(records, JIT_BENCH_FILE)
    geomean = compiled_geomean_speedup(records)
    print(f"[{tier} geomean speedup over sequential NumPy: {geomean:.2f}x]")
    benchmark(mttkrp_parallel, HicooTensor(dataset("vast"),
                                           block_bits=BENCH_BLOCK_BITS),
              [np.random.default_rng(0).random((s, RANK))
               for s in dataset("vast").shape], 0, 2, backend=tier)
