"""E13 (extension) — predicted GPU MTTKRP comparison.

The paper's follow-on work ports HiCOO to GPUs; this bench regenerates the
predicted *shape* of that comparison with the GPU roofline profile: on an
accelerator, COO's per-nonzero atomics and uncoalesced gathers hurt more
than on a CPU, so HiCOO's relative advantage should grow wherever its
blocks coalesce (alpha_b small), and collapse on scattered tensors.
"""

import numpy as np

from repro.analysis.model import build_format_suite, speedup_over_coo
from repro.analysis.report import render_table
from repro.parallel.gpu import GpuProfile, gpu_speedup_over_coo

from conftest import BENCH_BLOCK_BITS, RANK, all_dataset_names, dataset, write_result


def test_e13_gpu_speedup_figure(machine, benchmark):
    gpu = GpuProfile()
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        suite = build_format_suite(coo, block_bits=BENCH_BLOCK_BITS)
        gpu_speeds = gpu_speedup_over_coo(suite, RANK, gpu)
        cpu_speeds = speedup_over_coo(coo, RANK, machine,
                                      nthreads=machine.cores,
                                      block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "cpu_hicoo": cpu_speeds["hicoo"],
            "gpu_hicoo": gpu_speeds["hicoo"],
            "gpu_csf": gpu_speeds["csf"],
        })
    text = render_table(
        rows, ["dataset", "cpu_hicoo", "gpu_hicoo", "gpu_csf"],
        title=f"E13 (ext): predicted MTTKRP speedup over COO, CPU (P="
              f"{machine.cores}) vs GPU profile (R={RANK}, "
              f"b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10})
    write_result("E13_gpu.txt", text)

    gpu_hicoo = np.array([r["gpu_hicoo"] for r in rows])
    # HiCOO wins on the GPU wherever it wins on the CPU, typically by more
    assert (gpu_hicoo > 1.0).sum() >= len(rows) // 2
    wins = [r for r in rows if r["cpu_hicoo"] > 1.5]
    grew = sum(1 for r in wins if r["gpu_hicoo"] > r["cpu_hicoo"])
    assert grew >= len(wins) // 2, "GPU should amplify HiCOO's advantage"
    benchmark(gpu_speedup_over_coo,
              build_format_suite(dataset("vast"), block_bits=BENCH_BLOCK_BITS),
              RANK, gpu)
