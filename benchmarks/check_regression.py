#!/usr/bin/env python
"""CI regression guard for the HiCOO fast paths.

Two families of live baselines (see ``benchmarks/legacy.py``):

* **MTTKRP** — times HiCOO MTTKRP on a small registry tensor three ways and
  fails if the planned path (warm gather cache — what CP-ALS iterations pay)
  is slower than the unplanned per-call path or the legacy baseline;
* **conversion** — times the magic-number Morton encode, cold HicooTensor
  construction, and the ``best_block_bits`` sweep against their pre-
  MortonContext replicas, and fails if any new path is slower (speedup < 1)
  or produces a different block structure.

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py

``--summary`` runs no benchmark at all: it reads the committed
``benchmarks/results/BENCH_*.json`` records and prints a one-row-per-group
geomean table in Markdown — CI appends it to ``$GITHUB_STEP_SUMMARY`` so
every run shows the perf trajectory at a glance.
"""

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for `legacy`

import numpy as np

from legacy import (legacy_best_block_bits, legacy_hicoo_construct,
                    legacy_morton_encode, legacy_parallel_hicoo)
from repro.core.hicoo import HicooTensor, best_block_bits
from repro.data import load
from repro.kernels.backends import tier_available, tier_reason
from repro.kernels.mttkrp import mttkrp, mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from repro.obs import metrics
from repro.util.bitops import bits_for, morton_encode

DATASET = "vast"
BLOCK_BITS = 4
RANK = 16
NTHREADS = 4
REPEAT = 5

#: wall-clock floor for the process backend over sequential at NTHREADS
#: workers — only enforceable on a host that actually has the cores
PROC_SPEEDUP_FLOOR = 1.5

#: the timed registry tensors of the bench harness (conftest.TIMED_DATASETS)
CACHE_DATASETS = ("vast", "deli", "uber")
#: a plan warmed by >= 2 further runs must hit at least this often
MIN_GATHER_HIT_RATE = 0.5

#: steady-state geomean wall-clock floor for the numba tier over the
#: sequential NumPy kernel (compile cost excluded — it is warmed up front
#: and recorded in its own bench record / the compiled.* metrics)
JIT_SPEEDUP_FLOOR = 2.0

#: ALTO-vs-HiCOO geomean floors on the warm unplanned parallel dispatch:
#: the skewed/hyper-sparse suite is where HiCOO's superblock schedule
#: degenerates and ALTO must win; the regular registry suite only needs
#: parity (HiCOO keeps its home-turf advantage there)
ALTO_SPEEDUP_FLOOR = 1.3
ALTO_PARITY_FLOOR = 0.95

#: geomean wall-clock floor for the direct format-to-format converters
#: over the COO round-trip they replace (all registered pairs, all timed
#: datasets) — the ISSUE-10 acceptance gate
DIRECT_SPEEDUP_FLOOR = 1.5

#: every bench file a guard family can contribute; ``--summary`` renders a
#: visible SKIP row (instead of silently omitting the file) when a guard's
#: optional dependency or benchmark run is absent
EXPECTED_BENCH_FILES = {
    "BENCH_mttkrp.json": "run bench_mttkrp_seq.py / bench_mttkrp_par.py",
    "BENCH_mttkrp_proc.json": "run bench_mttkrp_par.py --backend process",
    "BENCH_mttkrp_jit.json": "requires numba (jit-smoke job)",
    "BENCH_convert.json": "run bench_convert.py",
    "BENCH_gather.json": "run bench_gather.py",
    "BENCH_alto.json": "run bench_mttkrp_par.py --alto",
    "BENCH_serve.json": "run bench_serve.py",
}


def best_of(fn, repeat=REPEAT):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def check_conversion(coo) -> bool:
    """New-vs-legacy conversion pipeline: equivalence + speedup >= 1."""
    coords = np.ascontiguousarray(coo.indices.T)
    nbits = bits_for(int(coords.max()) if coords.size else 0)

    if not np.array_equal(morton_encode(coords, nbits),
                          legacy_morton_encode(coords, nbits)):
        print("FAIL: magic-number Morton encode differs from per-bit encode")
        return False
    t_enc = best_of(lambda: morton_encode(coords, nbits))
    t_enc_legacy = best_of(lambda: legacy_morton_encode(coords, nbits))

    def construct_cold():
        coo.clear_convert_cache()
        return HicooTensor(coo, block_bits=BLOCK_BITS)

    new, old = construct_cold(), legacy_hicoo_construct(coo, BLOCK_BITS)
    if not (np.array_equal(new.bptr, old.bptr)
            and np.array_equal(new.binds, old.binds)
            and np.array_equal(new.einds, old.einds)
            and np.array_equal(new.values, old.values)):
        print("FAIL: one-sort construction differs from the legacy path")
        return False
    t_con = best_of(construct_cold)
    t_con_legacy = best_of(lambda: legacy_hicoo_construct(coo, BLOCK_BITS))

    def sweep_cold():
        coo.clear_convert_cache()
        return best_block_bits(coo)

    if sweep_cold() != legacy_best_block_bits(coo):
        print("FAIL: best_block_bits choice differs from the legacy sweep")
        return False
    t_sweep = best_of(sweep_cold)
    t_sweep_legacy = best_of(lambda: legacy_best_block_bits(coo))

    print(f"  morton encode        : {t_enc_legacy * 1e3:8.2f} ms legacy, "
          f"{t_enc * 1e3:8.2f} ms new ({t_enc_legacy / t_enc:.2f}x)")
    print(f"  hicoo construction   : {t_con_legacy * 1e3:8.2f} ms legacy, "
          f"{t_con * 1e3:8.2f} ms new ({t_con_legacy / t_con:.2f}x)")
    print(f"  best_block_bits sweep: {t_sweep_legacy * 1e3:8.2f} ms legacy, "
          f"{t_sweep * 1e3:8.2f} ms new ({t_sweep_legacy / t_sweep:.2f}x)")

    ok = True
    if t_enc > t_enc_legacy:
        print("FAIL: magic-number Morton encode is slower than per-bit")
        ok = False
    if t_con > t_con_legacy:
        print("FAIL: one-sort construction is slower than the legacy path")
        ok = False
    if t_sweep > t_sweep_legacy:
        print("FAIL: shared-context sweep is slower than the legacy sweep")
        ok = False
    return ok


def check_direct_convert() -> bool:
    """Guard the direct converter registry: bitwise identity + the geomean
    speedup floor over the COO round-trip.

    ``bench_direct_convert`` asserts every pair's output bit-identical to
    the round-trip before timing it (a fast-but-wrong converter trips an
    AssertionError, not a soft FAIL), then the geomean across all
    (dataset, pair) cells must reach DIRECT_SPEEDUP_FLOOR and no single
    pair may be slower than the round-trip it replaces.
    """
    from bench_convert import bench_direct_convert, direct_convert_geomean
    from conftest import write_bench_json

    records, speedups = bench_direct_convert(repeat=REPEAT)
    write_bench_json(records, "BENCH_convert.json")
    for (name, pair), s in sorted(speedups.items()):
        print(f"  {name:<6s} {pair:<14s}: {s:.2f}x")
    ok = True
    geomean = direct_convert_geomean(speedups)
    if geomean < DIRECT_SPEEDUP_FLOOR:
        print(f"FAIL: direct-converter geomean {geomean:.2f}x < "
              f"{DIRECT_SPEEDUP_FLOOR}x over the COO round-trip")
        ok = False
    else:
        print(f"  geomean {geomean:.2f}x >= {DIRECT_SPEEDUP_FLOOR}x floor")
    slower = {f"{n}:{p}": s for (n, p), s in speedups.items() if s < 0.9}
    if slower:
        print(f"FAIL: pairs slower than the round-trip they replace: "
              f"{ {k: round(v, 2) for k, v in slower.items()} }")
        ok = False
    return ok


def check_cache_efficiency() -> bool:
    """Metrics-registry guard: the caches must actually get reused.

    For every timed registry tensor: one HiCOO construction plus a
    ``best_block_bits`` sweep must produce MortonContext cache *hits* (the
    one-sort pipeline sharing its encode+sort), and a warmed MTTKRP plan run
    three times must hit the gather cache at rate >= MIN_GATHER_HIT_RATE.
    """
    ok = True
    for name in CACHE_DATASETS:
        metrics.reset()
        coo = load(name)
        hic = HicooTensor(coo, block_bits=BLOCK_BITS)
        best_block_bits(coo)  # must reuse the construction's MortonContext
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        plan = plan_mttkrp(hic, RANK, NTHREADS, strategy="schedule")
        plan.ensure_gathers(hic)
        for _ in range(3):
            mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan)
        snap = metrics.snapshot()
        ctx_hits = snap.get("convert.context_hits", 0)
        hits = snap.get("gather.cache_hits", 0)
        misses = snap.get("gather.cache_misses", 0)
        rate = hits / max(1, hits + misses)
        print(f"  {name:<6s} context hits={ctx_hits} gather hit rate="
              f"{hits}/{hits + misses} ({rate:.2f})")
        if ctx_hits < 1:
            print(f"FAIL: {name}: MortonContext was rebuilt instead of "
                  "reused across construction + block-size sweep")
            ok = False
        if rate < MIN_GATHER_HIT_RATE:
            print(f"FAIL: {name}: gather-cache hit rate {rate:.2f} < "
                  f"{MIN_GATHER_HIT_RATE} on a warmed plan")
            ok = False
    return ok


def check_process_backend() -> bool:
    """Guard the true-multicore backend: correctness always, speed when
    the host can express it.

    * the process backend must be bit-identical to the sim backend (same
      partition, same kernels) and tightly close to the sequential kernel
      on every mode — any drift means shared-memory corruption;
    * on a host with >= NTHREADS cores, wall-clock geomean speedup over
      sequential across the timed datasets must reach PROC_SPEEDUP_FLOOR.
      On smaller hosts the numbers are recorded (BENCH_mttkrp_proc.json)
      but the floor is skipped — a process pool cannot beat sequential
      wall clock on one core.
    """
    from bench_mttkrp_par import (PROC_BENCH_FILE, bench_process_backend,
                                  process_speedups)
    from conftest import write_bench_json
    from repro.parallel import procpool

    ok = True
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    plan = plan_mttkrp(hic, RANK, NTHREADS)
    for mode in range(coo.nmodes):
        seq = mttkrp(hic, factors, mode)
        sim = mttkrp_parallel(hic, factors, mode, NTHREADS, plan=plan,
                              backend="sim").output
        proc = mttkrp_parallel(hic, factors, mode, NTHREADS, plan=plan,
                               backend="process").output
        if not np.array_equal(proc, sim):
            print(f"FAIL: mode {mode}: process backend differs bitwise "
                  "from the sim backend")
            ok = False
        if not np.allclose(proc, seq, rtol=1e-12, atol=0):
            print(f"FAIL: mode {mode}: process backend drifts from the "
                  "sequential kernel")
            ok = False
    procpool.release_shared(hic)
    if ok:
        print("  process == sim (bitwise), == sequential (1e-12) "
              f"on all {coo.nmodes} modes")

    records = bench_process_backend(nworkers=NTHREADS, repeat=REPEAT)
    write_bench_json(records, PROC_BENCH_FILE)
    speeds = process_speedups(records)
    geomean = math.exp(sum(math.log(s) for s in speeds.values())
                       / len(speeds))
    for name, s in speeds.items():
        print(f"  {name:<6s} process vs sequential: {s:.2f}x")
    cores = os.cpu_count() or 1
    if cores >= NTHREADS:
        if geomean < PROC_SPEEDUP_FLOOR:
            print(f"FAIL: process-backend geomean speedup {geomean:.2f}x < "
                  f"{PROC_SPEEDUP_FLOOR}x at {NTHREADS} workers "
                  f"({cores} cores)")
            ok = False
        else:
            print(f"  geomean {geomean:.2f}x >= {PROC_SPEEDUP_FLOOR}x "
                  f"floor at {NTHREADS} workers")
    else:
        print(f"  SKIP speedup floor: host has {cores} core(s) < "
              f"{NTHREADS} workers (geomean recorded: {geomean:.2f}x)")
    return ok


def check_compiled_tier() -> bool:
    """Guard the Numba JIT tier: correctness always, speed when compiled.

    Skipped (visibly, not silently) on hosts without numba — the default CI
    job proves the NumPy fallback, and the jit-smoke job runs this check
    with the dependency installed.  With numba present:

    * the compiled kernel must agree with the sequential oracle within the
      8-ULP budget on every mode and both strategies;
    * the steady-state geomean speedup over the sequential NumPy kernel
      across the timed datasets must reach JIT_SPEEDUP_FLOOR (compile time
      is warmed before timing and recorded separately).
    """
    from bench_gpu import (JIT_BENCH_FILE, bench_compiled_tier,
                           compiled_geomean_speedup)
    from conftest import write_bench_json

    if not tier_available("numba"):
        print(f"  SKIP compiled tier: {tier_reason('numba')}")
        return True

    ok = True
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    for strategy in ("schedule", "privatize"):
        plan = plan_mttkrp(hic, RANK, NTHREADS, strategy=strategy)
        for mode in range(coo.nmodes):
            seq = mttkrp(hic, factors, mode)
            run = mttkrp_parallel(hic, factors, mode, NTHREADS, plan=plan,
                                  backend="numba")
            if run.report.backend != "numba":
                print(f"FAIL: mode {mode} ({strategy}): numba requested but "
                      f"backend={run.report.backend}")
                ok = False
            scale = np.maximum(np.abs(seq), np.abs(run.output))
            ulp = np.spacing(np.maximum(scale, np.finfo(seq.dtype).tiny))
            max_ulp = float(np.max(np.abs(run.output - seq) / ulp))
            if max_ulp > 8.0:
                print(f"FAIL: mode {mode} ({strategy}): compiled kernel "
                      f"drifts {max_ulp:.1f} ULP (> 8) from the oracle")
                ok = False
    if ok:
        print("  numba == sequential oracle (<= 8 ULP) on all modes, "
              "both strategies")

    records, _ = bench_compiled_tier(tier="numba", repeat=REPEAT)
    write_bench_json(records, JIT_BENCH_FILE)
    compile_s = next(r["time_s"] for r in records
                     if r["variant"] == "numba_compile")
    geomean = compiled_geomean_speedup(records)
    for r in records:
        if "speedup_vs_seq" in r:
            print(f"  {r['dataset']:<6s} mode {r['mode']}: "
                  f"{r['speedup_vs_seq']:.2f}x vs sequential")
    print(f"  one-time compile: {compile_s * 1e3:.0f} ms (excluded from "
          "kernel times)")
    if geomean < JIT_SPEEDUP_FLOOR:
        print(f"FAIL: numba-tier geomean speedup {geomean:.2f}x < "
              f"{JIT_SPEEDUP_FLOOR}x steady-state floor")
        ok = False
    else:
        print(f"  geomean {geomean:.2f}x >= {JIT_SPEEDUP_FLOOR}x floor")
    return ok


def check_alto() -> bool:
    """Guard the ALTO format: bitwise correctness + the suite speed floors.

    * sequential and parallel-schedule ALTO MTTKRP must be *bit-identical*
      to the sequential COO oracle (``np.add.at`` in original input order)
      on every mode — ALTO pins its scatters to that order, so any drift
      means the sequential-scatter contract broke;
    * warm unplanned parallel dispatch must reach ALTO_SPEEDUP_FLOOR
      geomean over HiCOO on the skewed/hyper-sparse suite and
      ALTO_PARITY_FLOOR on the regular registry suite.
    """
    from bench_mttkrp_par import (ALTO_BENCH_FILE, alto_dataset, alto_geomean,
                                  alto_speedups, bench_alto)
    from conftest import write_bench_json
    from repro.formats.alto import AltoTensor
    from repro.formats.coo import _row_products

    ok = True
    coo = alto_dataset("zipf")
    alto = AltoTensor(coo)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    for mode in range(coo.nmodes):
        oracle = np.zeros((coo.shape[mode], RANK))
        acc = coo.values[:, None] * _row_products(factors, coo.indices, mode)
        np.add.at(oracle, coo.indices[:, mode], acc)
        if not np.array_equal(alto.mttkrp(factors, mode), oracle):
            print(f"FAIL: mode {mode}: sequential ALTO differs bitwise "
                  "from the COO oracle")
            ok = False
        par = mttkrp_parallel(alto, factors, mode, NTHREADS,
                              strategy="schedule").output
        if not np.array_equal(par, oracle):
            print(f"FAIL: mode {mode}: parallel ALTO (schedule) differs "
                  "bitwise from the COO oracle")
            ok = False
    if ok:
        print(f"  alto == COO oracle (bitwise) on all {coo.nmodes} modes, "
              "sequential + schedule")

    records = bench_alto(nthreads=NTHREADS, repeat=REPEAT)
    write_bench_json(records, ALTO_BENCH_FILE)
    for suite, floor in (("skewed", ALTO_SPEEDUP_FLOOR),
                         ("regular", ALTO_PARITY_FLOOR)):
        for name, s in alto_speedups(records, suite).items():
            print(f"  {suite:<8s} {name:<6s} hicoo/alto: {s:.2f}x")
        geomean = alto_geomean(records, suite)
        if geomean < floor:
            print(f"FAIL: alto {suite}-suite geomean {geomean:.2f}x < "
                  f"{floor}x floor")
            ok = False
        else:
            print(f"  {suite} geomean {geomean:.2f}x >= {floor}x floor")
    return ok


#: conservative serving-throughput floor (req/s, closed loop, sim backend)
#: — we measure ~500 req/s on a laptop-class host; 25 only catches a
#: serving path that collapsed (per-request pool respawn, lost batching,
#: lock convoy), not host noise
SERVE_REQS_FLOOR = 25.0


def check_serve() -> bool:
    """Guard the serving path: differential equality + a throughput floor.

    A short closed-loop replay (8 clients) against a live daemon must (a)
    answer every request with a digest bitwise-equal to the sequential
    oracle's, and (b) clear a very conservative req/s floor — the serving
    overhead (framing, validation, scheduling, digesting) must stay
    amortizable, or the resident-daemon economics argument dies.
    """
    from bench_serve import NCLIENTS, SPEC, replay_timed
    from repro.analysis.traffic import RequestStream
    from repro.serve.client import ServeClient
    from repro.serve.daemon import ReproDaemon, build_tensor
    from repro.serve.jobs import run_job

    requests = RequestStream({"hot": 3}, n=64, seed=23,
                             ranks=(2, 4), iters=(1, 2)).generate()
    daemon = ReproDaemon(backend="sim", nthreads=2, executors=2,
                         max_queue=256)
    daemon.start()
    try:
        with ServeClient(port=daemon.port) as cli:
            cli.register("hot", SPEC)
            replies = [cli.submit({k: v for k, v in r.items()
                                   if k != "arrival_s"})
                       for r in requests[:8]]  # warm + correctness sample
        wall, lat = replay_timed(daemon.port, requests, NCLIENTS)
    finally:
        daemon.stop()

    ok = True
    oracle_tensor = build_tensor(dict(SPEC))
    for req, rep in zip(requests[:8], replies):
        expect = run_job(req["op"], oracle_tensor, mode=req.get("mode", 0),
                         rank=req["rank"], seed=req.get("seed", 0),
                         iters=req.get("iters", 3), backend="sim",
                         nthreads=2)
        if rep["digest"] != expect["digest"]:
            print(f"FAIL: daemon reply diverges from the sequential "
                  f"oracle on {req}")
            ok = False
    if ok:
        print("  daemon == sequential oracle (bitwise) on the sampled jobs")
    reqs_per_s = len(lat) / wall
    print(f"  closed-loop throughput: {reqs_per_s:.0f} req/s "
          f"({NCLIENTS} clients, {len(lat)} requests)")
    if reqs_per_s < SERVE_REQS_FLOOR:
        print(f"FAIL: serving throughput {reqs_per_s:.0f} req/s < "
              f"{SERVE_REQS_FLOOR} req/s floor")
        ok = False
    return ok


def summarize() -> int:
    """Markdown geomean table over the recorded bench JSON (no timing runs).

    One row per (file, op, variant): the geometric mean of ``time_s``
    across datasets/strategies, plus the record count behind it.  Expected
    files with no recorded results get a visible SKIP row so a guard whose
    optional dependency (numba, cupy) or bench run is absent is never
    silently dropped from the table.
    """
    results_dir = Path(__file__).parent / "results"
    files = sorted(results_dir.glob("BENCH_*.json"))
    missing = [name for name in sorted(EXPECTED_BENCH_FILES)
               if not (results_dir / name).exists()]
    if not files and not missing:
        print(f"no BENCH_*.json under {results_dir} — run the benches first")
        return 0
    print("### Benchmark geomeans\n")
    print("| file | op | variant | records | geomean |")
    print("|---|---|---|---:|---:|")
    for path in files:
        groups = {}
        for r in json.loads(path.read_text()):
            t = r.get("time_s")
            if not isinstance(t, (int, float)) or t <= 0:
                continue
            groups.setdefault((r.get("op", "?"), r.get("variant", "?")),
                              []).append(float(t))
        for (op, variant), times in sorted(groups.items()):
            gm = math.exp(sum(math.log(t) for t in times) / len(times))
            print(f"| {path.name} | {op} | {variant} | {len(times)} | "
                  f"{gm * 1e3:.2f} ms |")
        if not groups:
            print(f"| {path.name} | — | — | 0 | SKIP (no timed records) |")
    for name in missing:
        print(f"| {name} | — | — | 0 | "
              f"SKIP ({EXPECTED_BENCH_FILES[name]}) |")

    # perf-ledger trajectory: rolling-baseline deltas over history.jsonl
    # (appended by write_bench_json on every bench contribution)
    from repro.obs import ledger

    history = ledger.read_history(results_dir / "history.jsonl")
    if history:
        print()
        print(ledger.delta_table(history))
    return 0


def main() -> int:
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]

    def unplanned_cold():
        hic.clear_gather_cache()
        mttkrp_parallel(hic, factors, 0, NTHREADS, strategy="schedule")

    t_unplanned = best_of(unplanned_cold)
    t_legacy = best_of(
        lambda: legacy_parallel_hicoo(hic, factors, 0, NTHREADS, "schedule"))

    plan = plan_mttkrp(hic, RANK, NTHREADS, strategy="schedule")
    plan.ensure_gathers(hic)
    t_planned = best_of(
        lambda: mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan))

    print(f"dataset={DATASET} nnz={coo.nnz} P={NTHREADS} R={RANK}")
    print(f"  legacy per-call path : {t_legacy * 1e3:8.2f} ms")
    print(f"  unplanned (cold)     : {t_unplanned * 1e3:8.2f} ms")
    print(f"  planned (warm)       : {t_planned * 1e3:8.2f} ms")
    print(f"  planned vs unplanned : {t_unplanned / t_planned:.2f}x")
    print(f"  planned vs legacy    : {t_legacy / t_planned:.2f}x")

    ok = True
    if t_planned > t_unplanned:
        print("FAIL: planned HiCOO MTTKRP is slower than the unplanned path")
        ok = False
    if t_planned > t_legacy:
        print("FAIL: planned HiCOO MTTKRP is slower than the legacy baseline")
        ok = False
    if ok:
        print("OK: planned path is the fastest")

    print("conversion pipeline:")
    conv_ok = check_conversion(coo)
    if conv_ok:
        print("OK: conversion fast paths beat their legacy baselines")

    print("direct format converters (vs COO round-trip):")
    direct_ok = check_direct_convert()
    if direct_ok:
        print("OK: direct converters are bit-identical to the round-trip "
              "and meet the geomean floor")

    print("cache efficiency (obs.metrics):")
    cache_ok = check_cache_efficiency()
    if cache_ok:
        print("OK: MortonContext is reused and warmed plans hit the "
              "gather cache")

    print("process backend (true multicore):")
    proc_ok = check_process_backend()
    if proc_ok:
        print("OK: process backend is correct"
              + ("" if (os.cpu_count() or 1) < NTHREADS
                 else " and meets the speedup floor"))

    print("compiled tier (numba JIT):")
    jit_ok = check_compiled_tier()
    if jit_ok:
        print("OK: compiled tier"
              + (" is correct and meets the speedup floor"
                 if tier_available("numba")
                 else " check skipped (no numba)"))

    print("alto format (skewed + regular suites):")
    alto_ok = check_alto()
    if alto_ok:
        print("OK: alto is bit-identical to the COO oracle and meets "
              "both suite floors")

    print("serving path (daemon differential + throughput floor):")
    serve_ok = check_serve()
    if serve_ok:
        print("OK: daemon matches the oracle bitwise and clears the "
              "throughput floor")
    return (0 if ok and conv_ok and direct_ok and cache_ok and proc_ok
            and jit_ok and alto_ok and serve_ok else 1)


#: --only names -> (section header, check thunk)
ONLY_CHECKS = {
    "conversion": ("conversion pipeline:",
                   lambda: check_conversion(load(DATASET))),
    "direct-convert": ("direct format converters (vs COO round-trip):",
                       check_direct_convert),
    "cache": ("cache efficiency (obs.metrics):", check_cache_efficiency),
    "process": ("process backend (true multicore):", check_process_backend),
    "jit": ("compiled tier (numba JIT):", check_compiled_tier),
    "alto": ("alto format (skewed + regular suites):", check_alto),
    "serve": ("serving path (daemon differential + throughput floor):",
              check_serve),
}


def run_only(name: str) -> int:
    header, thunk = ONLY_CHECKS[name]
    print(header)
    ok = thunk()
    print(("OK: " if ok else "FAILED: ") + name)
    return 0 if ok else 1


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--summary", action="store_true",
                        help="print a Markdown geomean table of the recorded "
                             "BENCH_*.json results and exit (no benchmarks)")
    parser.add_argument("--only", choices=sorted(ONLY_CHECKS), default=None,
                        help="run a single guard family instead of the "
                             "full suite")
    args = parser.parse_args()
    if args.summary:
        sys.exit(summarize())
    sys.exit(run_only(args.only) if args.only else main())
