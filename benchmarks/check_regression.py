#!/usr/bin/env python
"""CI regression guard for the gather/scatter kernel layer.

Times HiCOO MTTKRP on a small registry tensor three ways and fails (exit 1)
if the planned path (warm gather cache — what CP-ALS iterations pay) is
slower than the unplanned per-call path (cold symbolic work every call), or
slower than the frozen legacy baseline.  Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for `legacy`

import numpy as np

from legacy import legacy_parallel_hicoo
from repro.core.hicoo import HicooTensor
from repro.data import load
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp

DATASET = "vast"
BLOCK_BITS = 4
RANK = 16
NTHREADS = 4
REPEAT = 5


def best_of(fn, repeat=REPEAT):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]

    def unplanned_cold():
        hic.clear_gather_cache()
        mttkrp_parallel(hic, factors, 0, NTHREADS, strategy="schedule")

    t_unplanned = best_of(unplanned_cold)
    t_legacy = best_of(
        lambda: legacy_parallel_hicoo(hic, factors, 0, NTHREADS, "schedule"))

    plan = plan_mttkrp(hic, RANK, NTHREADS, strategy="schedule")
    plan.ensure_gathers(hic)
    t_planned = best_of(
        lambda: mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan))

    print(f"dataset={DATASET} nnz={coo.nnz} P={NTHREADS} R={RANK}")
    print(f"  legacy per-call path : {t_legacy * 1e3:8.2f} ms")
    print(f"  unplanned (cold)     : {t_unplanned * 1e3:8.2f} ms")
    print(f"  planned (warm)       : {t_planned * 1e3:8.2f} ms")
    print(f"  planned vs unplanned : {t_unplanned / t_planned:.2f}x")
    print(f"  planned vs legacy    : {t_legacy / t_planned:.2f}x")

    ok = True
    if t_planned > t_unplanned:
        print("FAIL: planned HiCOO MTTKRP is slower than the unplanned path")
        ok = False
    if t_planned > t_legacy:
        print("FAIL: planned HiCOO MTTKRP is slower than the legacy baseline")
        ok = False
    if ok:
        print("OK: planned path is the fastest")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
