#!/usr/bin/env python
"""Serving-path benchmark: request throughput and latency percentiles.

Stands up a real :class:`repro.serve.daemon.ReproDaemon` (sim backend —
this measures the *serving* overhead: framing, validation, scheduling,
batching, digesting — not kernel scaling, which has its own benches),
replays a seeded closed-loop request stream with concurrent clients, and
reports req/s plus p50/p95/p99 client-observed latency per op.

Two variants land in ``BENCH_serve.json`` (and the perf ledger):

* ``closed_loop_8c`` — 8 clients, mixed MTTKRP/CP-ALS/TTM stream;
* ``batched_mttkrp`` — 8 clients, one hot (tensor, mode, rank) so the
  scheduler's compatible-batch path dominates.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.traffic import RequestStream
from repro.serve.client import ServeClient
from repro.serve.daemon import ReproDaemon

from conftest import write_bench_json, write_result

NCLIENTS = 8
NREQUESTS = 160
SPEC = {"kind": "random", "shape": [40, 36, 32], "nnz": 6000, "seed": 3,
        "format": "hicoo"}


def replay_timed(port, requests, nclients):
    """Closed-loop replay measuring per-request client-observed latency."""
    lat = [None] * len(requests)
    assigned = [[] for _ in range(nclients)]
    for i in range(len(requests)):
        assigned[i % nclients].append(i)

    def worker(indices):
        with ServeClient(port=port) as cli:
            for i in indices:
                req = {k: v for k, v in requests[i].items()
                       if k != "arrival_s"}
                t0 = time.perf_counter()
                reply = cli.submit(req)
                lat[i] = (requests[i]["op"], time.perf_counter() - t0,
                          reply.get("batch_size", 1))

    threads = [threading.Thread(target=worker, args=(idx,))
               for idx in assigned if idx]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, lat


def percentiles(samples):
    arr = np.sort(np.array(samples))
    return {f"p{q}_ms": float(np.percentile(arr, q) * 1e3)
            for q in (50, 95, 99)}


def run_variant(variant, requests, batch_limit=8):
    daemon = ReproDaemon(backend="sim", nthreads=2, executors=2,
                         batch_limit=batch_limit, max_queue=512)
    daemon.start()
    try:
        with ServeClient(port=daemon.port) as cli:
            cli.register("hot", SPEC)
            # warm the symbolic state so the measurement is steady-state
            cli.mttkrp("hot", mode=0, rank=4, seed=0)
        wall, lat = replay_timed(daemon.port, requests, NCLIENTS)
    finally:
        daemon.stop()

    rows, records = [], []
    by_op = {}
    for op, seconds, batch in lat:
        by_op.setdefault(op, []).append(seconds)
    for op, samples in sorted(by_op.items()):
        pct = percentiles(samples)
        rows.append({"variant": variant, "op": op, "n": len(samples),
                     "req_s": len(samples) / wall, **pct})
        records.append({"op": f"serve_{op}", "format": "hicoo",
                        "strategy": "daemon", "dataset": "synthetic",
                        "variant": variant, "nclients": NCLIENTS,
                        "req_s": len(samples) / wall,
                        "time_s": float(np.median(samples)), **pct})
    total = {"variant": variant, "op": "ALL", "n": len(lat),
             "req_s": len(lat) / wall, **percentiles(
                 [s for _, s, _ in lat])}
    rows.append(total)
    records.append({"op": "serve_all", "format": "hicoo",
                    "strategy": "daemon", "dataset": "synthetic",
                    "variant": variant, "nclients": NCLIENTS,
                    "req_s": total["req_s"],
                    "time_s": float(np.median([s for _, s, _ in lat])),
                    "batched_jobs": sum(1 for _, _, b in lat if b > 1),
                    **{k: total[k] for k in ("p50_ms", "p95_ms",
                                             "p99_ms")}})
    return rows, records


def main():
    mixed = RequestStream({"hot": 3}, n=NREQUESTS, seed=17,
                          ranks=(2, 4), iters=(1, 2)).generate()
    hot = [{"op": "mttkrp", "tensor": "hot", "mode": 0, "rank": 4,
            "seed": s} for s in range(NREQUESTS)]

    all_rows, all_records = [], []
    for variant, reqs, blim in (("closed_loop_8c", mixed, 8),
                                ("batched_mttkrp", hot, 8),
                                ("unbatched_mttkrp", hot, 1)):
        rows, records = run_variant(variant, reqs, batch_limit=blim)
        all_rows.extend(rows)
        all_records.extend(records)

    table = render_table(
        all_rows, ["variant", "op", "n", "req_s", "p50_ms", "p95_ms",
                   "p99_ms"],
        title=f"serve daemon: {NREQUESTS} requests, {NCLIENTS} clients "
              f"(closed loop, sim backend)")
    print(table)
    write_result("BENCH_serve.txt", table)
    write_bench_json(all_records, "BENCH_serve.json")


if __name__ == "__main__":
    main()
