"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see the E#
index in DESIGN.md).  Tables/series are printed and also written to
``benchmarks/results/`` so EXPERIMENTS.md can quote them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

import pytest

from repro.data import load, names
from repro.obs import trace as obs_trace
from repro.parallel.machine import Machine

RESULTS_DIR = Path(__file__).parent / "results"

#: with REPRO_TRACE=1 in the environment (``run_all.py --trace``), every
#: experiment's spans are exported as a Chrome-trace sidecar next to its
#: ``E*.txt`` result file (``E10_convert.txt`` -> ``E10_convert.trace.json``)
TRACE_SIDECARS = os.environ.get("REPRO_TRACE", "") not in ("", "0")
if TRACE_SIDECARS:
    obs_trace.enable()

#: datasets used for wall-clock (pytest-benchmark) measurements — one per
#: structural regime, kept small so a full bench run stays in minutes.
TIMED_DATASETS = ["vast", "deli", "uber"]

#: block bits used throughout the harness.  The paper's default is b=7
#: (B=128) at full dataset scale; the registry analogs are ~1000x smaller in
#: volume (~10x per mode), so the structurally equivalent default is b=4.
BENCH_BLOCK_BITS = 4

RANK = 16  # the paper's MTTKRP/CP-ALS evaluation rank


@functools.lru_cache(maxsize=None)
def dataset(name: str):
    """Cached registry tensor (construction cost amortized across benches)."""
    return load(name)


def all_dataset_names():
    return names()


#: the paper's parallel evaluation ran on multicore Xeons; parallel-shape
#: figures therefore model a 16-core node whose per-core rates are
#: calibrated on this host (ratios depend only on counted work).
MODEL_CORES = 16


@pytest.fixture(scope="session")
def machine():
    """Machine model: host-calibrated rates, paper-scale core count.

    Falls back to library defaults if calibration misbehaves (e.g. a heavily
    loaded host)."""
    try:
        return Machine.detect(cores=MODEL_CORES)
    except Exception:  # pragma: no cover - calibration is best-effort
        return Machine(cores=MODEL_CORES)


def write_result(filename: str, text: str) -> None:
    """Persist a table/series under benchmarks/results/ and echo it.

    Under ``REPRO_TRACE=1`` the spans recorded since the previous result
    are written as a Chrome-trace sidecar next to the text file, then the
    tracer is cleared so each experiment gets its own trace.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    if TRACE_SIDECARS:
        sidecar = path.with_suffix(".trace.json")
        obs_trace.save(sidecar)
        obs_trace.clear()
        print(f"[trace sidecar written to {sidecar}]")


def best_time(fn, *args, repeat: int = 5, warmup: int = 1, **kwargs) -> float:
    """Best-of-``repeat`` wall-clock seconds of ``fn(*args, **kwargs)``.

    ``warmup`` unrecorded calls absorb one-time costs (cache fills, lazy
    allocations) so warm and cold paths can be timed separately.
    """
    for _ in range(warmup):
        fn(*args, **kwargs)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def write_bench_json(records, filename: str = "BENCH_mttkrp.json") -> Path:
    """Merge machine-readable bench records into ``results/<filename>``.

    Each record is a dict with at least (op, format, strategy, dataset,
    variant); records with the same key replace earlier ones, so the seq
    and par benches can contribute to one file across separate runs.  The
    perf trajectory across PRs is tracked by committing the file.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename

    def key(r):
        return (r.get("op"), r.get("format"), r.get("strategy"),
                r.get("dataset"), r.get("variant"))

    merged = {}
    if path.exists():
        for r in json.loads(path.read_text()):
            merged[key(r)] = r
    for r in records:
        merged[key(r)] = r
    out = sorted(merged.values(),
                 key=lambda r: tuple(str(k) for k in key(r)))
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[{len(records)} records merged into {path}]")

    # every bench contribution also lands in the perf ledger: one JSONL
    # record of per-(op/variant) geomeans, so the regression detector has
    # a rolling history even between committed BENCH_*.json snapshots
    from repro.obs import ledger

    series = ledger.series_from_bench(records)
    if series:
        ledger.append_record(RESULTS_DIR / "history.jsonl", series,
                             source=filename)
    return path
