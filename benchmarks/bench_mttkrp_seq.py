"""E4 — sequential MTTKRP: HiCOO vs COO vs CSF.

Regenerates the paper's sequential-speedup figure.  Two views:

* **model** — predicted all-mode MTTKRP speedup over COO from exactly
  counted work + the host-calibrated machine model (the reproduction of the
  figure's *shape*: HiCOO up to ~3.5x over COO, ~1x on unstructured data);
* **measured** — real wall-clock of the NumPy kernels (pytest-benchmark) on
  the timed subset.  Absolute NumPy times do not mirror C kernel ratios
  (documented substitution, DESIGN.md section 2) but are reported for
  completeness.
"""

import numpy as np
import pytest

from repro.analysis.model import speedup_over_coo
from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.formats.csf import CsfTensor

from conftest import (BENCH_BLOCK_BITS, RANK, TIMED_DATASETS,
                      all_dataset_names, best_time, dataset, write_bench_json,
                      write_result)
from legacy import legacy_seq_flat


def test_e4_sequential_speedup_figure(machine, benchmark):
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        speeds = speedup_over_coo(coo, RANK, machine, nthreads=1,
                                  block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "coo": speeds["coo"],
            "csf": speeds["csf"],
            "hicoo": speeds["hicoo"],
        })
    text = render_table(
        rows, ["dataset", "coo", "csf", "hicoo"],
        title=f"E4: sequential MTTKRP speedup over COO (model, R={RANK}, "
              f"b={BENCH_BLOCK_BITS}; all modes summed)",
        widths={"dataset": 10},
    )
    write_result("E4_mttkrp_seq.txt", text)

    hicoo = np.array([r["hicoo"] for r in rows])
    # paper shape: HiCOO wins on most tensors, up to ~3.5x
    assert (hicoo > 1.0).sum() >= len(rows) // 2
    assert hicoo.max() > 2.0
    benchmark(speedup_over_coo, dataset("vast"), RANK, machine, 1,
              BENCH_BLOCK_BITS)


@pytest.fixture(scope="module")
def factors_for():
    rng = np.random.default_rng(0)
    cache = {}

    def get(name):
        if name not in cache:
            coo = dataset(name)
            cache[name] = [rng.random((s, RANK)) for s in coo.shape]
        return cache[name]

    return get


def test_bench_json_sequential(factors_for):
    """Machine-readable sequential MTTKRP timings -> BENCH_mttkrp.json.

    ``legacy`` is the pre-gather-layer per-call path (index rebuild +
    np.add.at every call); ``cached`` is the production path, timed warm so
    the symbolic work is amortized the way CP-ALS amortizes it.
    """
    records = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        factors = factors_for(name)
        tensors = {
            "coo": coo,
            "csf": CsfTensor(coo),
            "hicoo": HicooTensor(coo, block_bits=BENCH_BLOCK_BITS),
        }
        for fmt, tensor in tensors.items():
            t = best_time(tensor.mttkrp, factors, 0)
            records.append({
                "op": "mttkrp_seq", "format": fmt, "strategy": "sequential",
                "dataset": name, "variant": "cached",
                "nnz": coo.nnz, "rank": RANK, "time_s": t,
            })
        t_legacy = best_time(legacy_seq_flat, tensors["hicoo"], factors, 0)
        records.append({
            "op": "mttkrp_seq", "format": "hicoo", "strategy": "sequential",
            "dataset": name, "variant": "legacy",
            "nnz": coo.nnz, "rank": RANK, "time_s": t_legacy,
        })
    write_bench_json(records)
    by = {(r["dataset"], r["variant"]): r["time_s"] for r in records
          if r["format"] == "hicoo"}
    speedups = {n: by[(n, "legacy")] / by[(n, "cached")]
                for n in TIMED_DATASETS}
    print(f"sequential HiCOO cached-vs-legacy speedups: {speedups}")
    # sequential MTTKRP is numeric-dominated, so the win is modest (~1.2x);
    # the >=2x planned-path claim is enforced by the parallel bench + guard
    assert all(s > 0.95 for s in speedups.values())


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("fmt", ["coo", "csf", "hicoo"])
def test_measured_mttkrp_seq(benchmark, name, fmt, factors_for):
    coo = dataset(name)
    tensor = {
        "coo": lambda: coo,
        "csf": lambda: CsfTensor(coo),
        "hicoo": lambda: HicooTensor(coo, block_bits=BENCH_BLOCK_BITS),
    }[fmt]()
    factors = factors_for(name)
    out = benchmark(tensor.mttkrp, factors, 0)
    assert out.shape == (coo.shape[0], RANK)
