"""Ablations of HiCOO's design choices (DESIGN.md section 5).

Not a single paper figure, but the design discussion the evaluation section
walks through:

* **Morton vs lexicographic block ordering** — same blocks, different
  traversal order; Morton keeps consecutive blocks close in *every* mode,
  which we quantify with the mean inter-block coordinate jump (a locality
  proxy for cache behaviour on the factor matrices).
* **Strategy crossover** — for growing output-matrix sizes, where the
  privatization/scheduling heuristic flips.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.core.scheduler import choose_strategy
from repro.core.superblock import build_superblocks

from conftest import BENCH_BLOCK_BITS, RANK, dataset, write_result


def _mean_jump(block_coords: np.ndarray) -> float:
    """Average L1 distance between consecutive blocks' coordinates."""
    if len(block_coords) < 2:
        return 0.0
    return float(np.abs(np.diff(block_coords, axis=0)).sum(axis=1).mean())


def test_ablation_block_ordering(benchmark):
    rows = []
    for name in ["vast", "deli", "uber"]:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        morton_jump = _mean_jump(hic.binds.astype(np.int64))

        # lexicographic ordering of the same blocks
        order = np.lexsort(tuple(
            hic.binds[:, m] for m in reversed(range(coo.nmodes))))
        lex_jump = _mean_jump(hic.binds[order].astype(np.int64))
        rows.append({
            "dataset": name,
            "nblocks": hic.nblocks,
            "morton_jump": morton_jump,
            "lex_jump": lex_jump,
            "morton/lex": morton_jump / lex_jump if lex_jump else 1.0,
        })
    text = render_table(
        rows, ["dataset", "nblocks", "morton_jump", "lex_jump", "morton/lex"],
        title="Ablation: mean inter-block coordinate jump (lower = better "
              "locality across ALL modes)",
        widths={"dataset": 10})
    write_result("ablation_ordering.txt", text)

    # Morton should not be dramatically worse than lexicographic anywhere
    # (lexicographic optimizes mode 0 only; the jump sums all modes)
    for row in rows:
        assert row["morton/lex"] < 2.0
    benchmark(_mean_jump, HicooTensor(dataset("vast"),
                                      BENCH_BLOCK_BITS).binds.astype(np.int64))


def test_ablation_sorted_coo_kernel(benchmark):
    """Sorted-COO segment reduction vs the plain scatter-add COO kernel —
    the one ablation where real NumPy timings are meaningful, because both
    kernels share the gather code and differ only in the reduction
    (np.add.reduceat vs np.add.at).  The sorted kernel should not lose."""
    import time

    import numpy as np

    from repro.kernels.coo_variants import build_sort_plan, mttkrp_sorted

    rows = []
    rng = np.random.default_rng(0)
    for name in ["vast", "deli", "uber"]:
        coo = dataset(name)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        plan = build_sort_plan(coo, 0)
        baseline_out = coo.mttkrp(factors, 0)
        sorted_out = mttkrp_sorted(coo, factors, 0, plan=plan)
        assert np.allclose(baseline_out, sorted_out)

        t0 = time.perf_counter()
        for _ in range(3):
            coo.mttkrp(factors, 0)
        t_base = (time.perf_counter() - t0) / 3
        t0 = time.perf_counter()
        for _ in range(3):
            mttkrp_sorted(coo, factors, 0, plan=plan)
        t_sorted = (time.perf_counter() - t0) / 3
        rows.append({
            "dataset": name,
            "scatter_ms": t_base * 1e3,
            "segment_ms": t_sorted * 1e3,
            "speedup": t_base / t_sorted,
        })
    text = render_table(
        rows, ["dataset", "scatter_ms", "segment_ms", "speedup"],
        title=f"Ablation: COO scatter-add vs sorted segment reduction "
              f"(measured, mode 0, R={RANK})",
        widths={"dataset": 10})
    write_result("ablation_sorted_coo.txt", text)
    # identical math; the sorted kernel must be at worst marginally slower
    assert all(r["speedup"] > 0.5 for r in rows)
    coo = dataset("vast")
    rng2 = np.random.default_rng(1)
    factors = [rng2.random((s, RANK)) for s in coo.shape]
    plan = build_sort_plan(coo, 0)
    benchmark(mttkrp_sorted, coo, factors, 0, plan)


def test_ablation_strategy_crossover(benchmark):
    coo = dataset("deli")
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    sbs = build_superblocks(hic, BENCH_BLOCK_BITS + 2)
    rows = []
    for rows_out in (1_000, 10_000, 100_000, 1_000_000, 10_000_000):
        strat = choose_strategy(sbs, 0, 16, rows_out, RANK,
                                privatize_limit_bytes=1 << 24)
        rows.append({"output_rows": rows_out, "strategy": strat})
    text = render_table(
        rows, ["output_rows", "strategy"],
        title="Ablation: privatize/schedule crossover vs output size "
              "(P=16, 16 MB privatization budget)",
        widths={"output_rows": 12})
    write_result("ablation_strategy.txt", text)

    strategies = [r["strategy"] for r in rows]
    assert strategies[0] == "privatize"
    assert strategies[-1] == "schedule"
    # the heuristic flips exactly once (monotone in output size)
    flips = sum(a != b for a, b in zip(strategies, strategies[1:]))
    assert flips == 1
    benchmark(choose_strategy, sbs, 0, 16, 100_000, RANK)
