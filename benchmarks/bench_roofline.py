"""E12 (analysis) — arithmetic intensity and traffic breakdown.

The paper's performance argument is a traffic argument: HiCOO moves fewer
index bytes and reuses factor rows inside blocks.  This bench prints the
counted per-format traffic breakdown (index / gather / scatter bytes) and
the resulting arithmetic intensity for every dataset — the roofline
coordinates behind figures E4–E6.

Expected shape: HiCOO has the highest arithmetic intensity wherever
alpha_b is small (fewer bytes for the same flops); on scattered tensors all
formats converge.
"""

from repro.analysis.report import render_table
from repro.analysis.traffic import mttkrp_work
from repro.core.hicoo import HicooTensor
from repro.formats.csf import CsfTensor

from conftest import BENCH_BLOCK_BITS, RANK, all_dataset_names, dataset, write_result


def test_e12_traffic_breakdown(benchmark):
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        suite = {
            "coo": coo,
            "csf": CsfTensor(coo),
            "hicoo": HicooTensor(coo, block_bits=BENCH_BLOCK_BITS),
        }
        for fmt, tensor in suite.items():
            total_work = None
            for mode in range(coo.nmodes):
                w = mttkrp_work(tensor, mode, RANK)
                total_work = w if total_work is None else total_work + w
            rows.append({
                "dataset": name,
                "format": fmt,
                "MB_index": total_work.detail["index_bytes"] / 1e6,
                "MB_gather": total_work.detail["gather_bytes"] / 1e6,
                "MB_scatter": total_work.detail["scatter_bytes"] / 1e6,
                "flop/B": total_work.arithmetic_intensity(),
            })
    text = render_table(
        rows,
        ["dataset", "format", "MB_index", "MB_gather", "MB_scatter", "flop/B"],
        title=f"E12: counted MTTKRP traffic, all modes summed (R={RANK}, "
              f"b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10})
    write_result("E12_roofline.txt", text)

    by = {(r["dataset"], r["format"]): r for r in rows}
    # HiCOO's index traffic is below COO's everywhere (1-byte offsets)
    for name in all_dataset_names():
        coo_row, hic_row = by[(name, "coo")], by[(name, "hicoo")]
        if HicooTensor(dataset(name), block_bits=BENCH_BLOCK_BITS).block_ratio() < 0.5:
            assert hic_row["MB_index"] < coo_row["MB_index"]
            assert hic_row["flop/B"] > coo_row["flop/B"]
    benchmark(mttkrp_work, dataset("vast"), 0, RANK)
