"""E9 — end-to-end CP-ALS.

Regenerates the paper's CP-ALS comparison: measured per-iteration time for
the same solver running over COO, CSF and HiCOO (identical initialization,
identical fits — the difference is purely the MTTKRP kernel), the MTTKRP
share of the runtime, and the fit trajectory.  The paper's expectation:
MTTKRP dominates each iteration and the format ranking carries over from E4.
"""

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.cpd.cp_als import cp_als
from repro.formats.csf import CsfTensor

from conftest import BENCH_BLOCK_BITS, dataset, write_result

CP_RANK = 8
ITERS = 3
CP_DATASETS = ["vast", "uber"]


def _suite(coo):
    return {
        "coo": coo,
        "csf": CsfTensor(coo),
        "hicoo": HicooTensor(coo, block_bits=BENCH_BLOCK_BITS),
    }


def test_e9_cpals_table(benchmark):
    rows = []
    fits_reference = {}
    for name in CP_DATASETS:
        coo = dataset(name)
        rng = np.random.default_rng(0)
        init = [rng.random((s, CP_RANK)) for s in coo.shape]
        for fmt_name, tensor in _suite(coo).items():
            res = cp_als(tensor, CP_RANK, maxiters=ITERS, tol=0.0, init=init)
            rows.append({
                "dataset": name,
                "format": fmt_name,
                "s/iter": res.seconds_per_iteration(),
                "mttkrp_frac": res.mttkrp_seconds / res.total_seconds,
                "final_fit": res.final_fit,
            })
            key = (name,)
            if key not in fits_reference:
                fits_reference[key] = res.fits
            else:
                np.testing.assert_allclose(res.fits, fits_reference[key],
                                           atol=1e-9)
    text = render_table(
        rows, ["dataset", "format", "s/iter", "mttkrp_frac", "final_fit"],
        title=f"E9: CP-ALS (R={CP_RANK}, {ITERS} iterations, identical init; "
              "identical fits certify kernel equivalence)",
        widths={"dataset": 10})
    write_result("E9_cpals.txt", text)

    # MTTKRP dominates the iteration, as the paper reports
    assert all(r["mttkrp_frac"] > 0.5 for r in rows)
    coo = dataset("uber")
    benchmark(cp_als, HicooTensor(coo, block_bits=BENCH_BLOCK_BITS),
              CP_RANK, maxiters=1, tol=0.0, seed=0)


@pytest.mark.parametrize("fmt", ["coo", "csf", "hicoo"])
def test_measured_cpals_iteration(benchmark, fmt):
    coo = dataset("uber")
    tensor = _suite(coo)[fmt]
    res = benchmark(cp_als, tensor, CP_RANK, maxiters=1, tol=0.0, seed=1)
    assert res.iterations == 1
