"""E3 — HiCOO's predictive parameters alpha_b and c_b per dataset.

Regenerates the paper's parameter table: for each tensor, the block ratio
alpha_b, average slice size c_b, block count, and the storage-optimal block
size.  Expected shape: clustered tensors have small alpha_b (large c_b) and
compress; scattered tensors approach alpha_b = 1.
"""

from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.core.params import analyze_block_sizes, recommend_block_bits

from conftest import BENCH_BLOCK_BITS, all_dataset_names, dataset, write_result


def test_e3_parameter_table(benchmark):
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        best = recommend_block_bits(coo, candidates=range(2, 9))["chosen"]
        rows.append({
            "dataset": name,
            "nnz": coo.nnz,
            "nblocks": hic.nblocks,
            "alpha_b": hic.block_ratio(),
            "c_b": hic.avg_slice_size(),
            "best_b": best.block_bits,
            "best_B/nnz": best.bytes_per_nnz,
        })
    text = render_table(
        rows,
        ["dataset", "nnz", "nblocks", "alpha_b", "c_b", "best_b", "best_B/nnz"],
        title=f"E3: HiCOO parameters at b={BENCH_BLOCK_BITS} "
              "(alpha_b = nblocks/nnz; c_b = nnz/(nblocks*B))",
        widths={"dataset": 10},
    )
    write_result("E3_parameters.txt", text)

    by_name = {r["dataset"]: r for r in rows}
    # structural expectations from the paper's analysis
    assert by_name["rand3d"]["alpha_b"] > 0.9, "uniform-random -> alpha_b ~ 1"
    assert by_name["uber"]["alpha_b"] < 0.3, "clustered -> small alpha_b"
    benchmark(analyze_block_sizes, dataset("vast"), range(2, 9))
