"""E15 (validation) — does the model track the real kernels?

The reproduction's parallel/figure shapes come from the counted-work +
machine model (DESIGN.md §2); this bench audits that substitution on the
one axis where a ground truth exists in pure Python: *sequential* MTTKRP
wall-clock of the real NumPy kernels across all (dataset, format) pairs.

Absolute agreement is not expected (NumPy's interpreter overhead is not in
the model); what must hold for the substitution to be trustworthy is
*rank* agreement — heavier-predicted kernels measure slower.  The bench
reports Spearman's rho over all pairs and asserts it is strongly positive.
"""

import time

import numpy as np
from scipy import stats

from repro.analysis.model import build_format_suite, predict_all_modes
from repro.analysis.report import render_table

from conftest import BENCH_BLOCK_BITS, RANK, all_dataset_names, dataset, write_result


def test_e15_model_vs_measured(machine, benchmark):
    rng = np.random.default_rng(0)
    rows = []
    measured_all, predicted_all = [], []
    for name in all_dataset_names():
        coo = dataset(name)
        suite = build_format_suite(coo, block_bits=BENCH_BLOCK_BITS)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        for fmt, tensor in suite.items():
            tensor.mttkrp(factors, 0)  # warm any lazy caches
            t0 = time.perf_counter()
            for mode in range(coo.nmodes):
                tensor.mttkrp(factors, mode)
            measured = time.perf_counter() - t0
            predicted = predict_all_modes(tensor, RANK, machine, 1).total
            measured_all.append(measured)
            predicted_all.append(predicted)
            rows.append({
                "dataset": name,
                "format": fmt,
                "measured_ms": measured * 1e3,
                "predicted_ms": predicted * 1e3,
            })
    rho = stats.spearmanr(measured_all, predicted_all)
    rows.append({
        "dataset": "SPEARMAN",
        "format": "-",
        "measured_ms": float(rho.statistic),
        "predicted_ms": float(rho.pvalue),
    })
    text = render_table(
        rows, ["dataset", "format", "measured_ms", "predicted_ms"],
        title=f"E15: measured NumPy kernel vs model prediction "
              f"(seq, R={RANK}; final row = Spearman rho / p-value)",
        widths={"dataset": 10, "measured_ms": 13, "predicted_ms": 13})
    write_result("E15_validation.txt", text)

    assert rho.statistic > 0.4, (
        f"model does not rank-track measurements (rho={rho.statistic:.2f})")
    assert rho.pvalue < 0.01
    benchmark(predict_all_modes, dataset("vast"), RANK, machine, 1)
