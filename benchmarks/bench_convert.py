"""E10 — format construction (conversion) cost.

Regenerates the paper's conversion-time table: the one-time cost of sorting
a COO tensor into each format.  HiCOO construction = Morton sort + block
scan; CSF = lexicographic sort + tree build.  Expected shape: both are a
small constant factor over a plain sort and amortize over CP-ALS iterations.

This file also tracks the conversion fast paths against their live legacy
replicas (``benchmarks/legacy.py``) and writes the machine-readable
``BENCH_convert.json``:

* magic-number Morton encode vs the old per-bit loop;
* cold HicooTensor construction (one-sort MortonContext pipeline) vs the
  old per-(tensor, b) lexsort path — outputs asserted bit-identical;
* the block-size sweep ``best_block_bits`` (boundary counting on shared
  codes) vs the old build-a-tensor-per-candidate sweep;
* the direct format-to-format converters (``repro.core.converters``) vs
  the COO round-trip they replace, over every registered CSF/HiCOO/ALTO
  pair — outputs asserted bit-identical, the speedup gate lives in
  ``check_regression.check_direct_convert``.  ``python bench_convert.py
  --direct`` runs just this family and writes ``BENCH_convert.json``.
"""

import math
import time
from functools import partial

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor, best_block_bits
from repro.formats.csf import CsfTensor
from repro.util.bitops import bits_for, morton_encode

from conftest import (BENCH_BLOCK_BITS, TIMED_DATASETS, all_dataset_names,
                      best_time, dataset, write_bench_json, write_result)
from legacy import (legacy_best_block_bits, legacy_hicoo_construct,
                    legacy_morton_encode)


def cold_construct(coo, block_bits):
    """HicooTensor construction with the shared context dropped first —
    what a fresh tensor pays (warm rebuilds are a cache hit)."""
    coo.clear_convert_cache()
    return HicooTensor(coo, block_bits=block_bits)


def test_e10_conversion_table(benchmark):
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        t0 = time.perf_counter()
        coo.sort_lexicographic()
        t_sort = time.perf_counter() - t0
        t0 = time.perf_counter()
        CsfTensor(coo)
        t_csf = time.perf_counter() - t0
        coo.clear_convert_cache()
        t0 = time.perf_counter()
        HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        t_hicoo = time.perf_counter() - t0
        rows.append({
            "dataset": name,
            "nnz": coo.nnz,
            "sort_ms": t_sort * 1e3,
            "csf_ms": t_csf * 1e3,
            "hicoo_ms": t_hicoo * 1e3,
            "hicoo/sort": t_hicoo / t_sort if t_sort else float("nan"),
        })
    text = render_table(
        rows, ["dataset", "nnz", "sort_ms", "csf_ms", "hicoo_ms", "hicoo/sort"],
        title=f"E10: one-time format construction (b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10})
    write_result("E10_convert.txt", text)
    benchmark(cold_construct, dataset("vast"), BENCH_BLOCK_BITS)


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("fmt", ["csf", "hicoo"])
def test_measured_conversion(benchmark, name, fmt):
    coo = dataset(name)
    if fmt == "csf":
        out = benchmark(CsfTensor, coo)
    else:
        out = benchmark(cold_construct, coo, BENCH_BLOCK_BITS)
    assert out.nnz == coo.nnz


def test_bench_json_convert():
    """New-vs-legacy conversion timings -> BENCH_convert.json.

    Asserts output equivalence (block structure bit-identical, same sweep
    choice) alongside the speedups, so a fast-but-wrong path cannot pass.
    """
    records = []
    encode_speedups, construct_speedups, sweep_speedups = {}, {}, {}
    for name in TIMED_DATASETS:
        coo = dataset(name)
        coords = np.ascontiguousarray(coo.indices.T)
        nbits = bits_for(int(coords.max()) if coords.size else 0)
        common = {"dataset": name, "nnz": coo.nnz, "nmodes": coo.nmodes,
                  "format": "hicoo", "strategy": "convert"}

        t_enc = best_time(morton_encode, coords, nbits)
        t_enc_legacy = best_time(legacy_morton_encode, coords, nbits)
        assert np.array_equal(morton_encode(coords, nbits),
                              legacy_morton_encode(coords, nbits))
        records.append({**common, "op": "morton_encode", "variant": "new",
                        "nbits": nbits, "time_s": t_enc})
        records.append({**common, "op": "morton_encode", "variant": "legacy",
                        "nbits": nbits, "time_s": t_enc_legacy})
        encode_speedups[name] = t_enc_legacy / t_enc

        t_con = best_time(cold_construct, coo, BENCH_BLOCK_BITS)
        t_con_legacy = best_time(legacy_hicoo_construct, coo,
                                 BENCH_BLOCK_BITS)
        new = cold_construct(coo, BENCH_BLOCK_BITS)
        old = legacy_hicoo_construct(coo, BENCH_BLOCK_BITS)
        assert np.array_equal(new.bptr, old.bptr)
        assert np.array_equal(new.binds, old.binds)
        assert np.array_equal(new.einds, old.einds)
        assert np.array_equal(new.values, old.values)
        records.append({**common, "op": "hicoo_construct", "variant": "new",
                        "block_bits": BENCH_BLOCK_BITS, "time_s": t_con})
        records.append({**common, "op": "hicoo_construct",
                        "variant": "legacy",
                        "block_bits": BENCH_BLOCK_BITS,
                        "time_s": t_con_legacy})
        construct_speedups[name] = t_con_legacy / t_con

        def sweep_cold():
            coo.clear_convert_cache()
            return best_block_bits(coo)

        t_sweep = best_time(sweep_cold)
        t_sweep_legacy = best_time(legacy_best_block_bits, coo)
        assert sweep_cold() == legacy_best_block_bits(coo)
        records.append({**common, "op": "best_block_bits", "variant": "new",
                        "candidates": "1..8", "time_s": t_sweep})
        records.append({**common, "op": "best_block_bits",
                        "variant": "legacy", "candidates": "1..8",
                        "time_s": t_sweep_legacy})
        sweep_speedups[name] = t_sweep_legacy / t_sweep

    write_bench_json(records, "BENCH_convert.json")
    print(f"morton encode speedups  : { {k: round(v, 2) for k, v in encode_speedups.items()} }")
    print(f"construction speedups   : { {k: round(v, 2) for k, v in construct_speedups.items()} }")
    print(f"block-size sweep speedups: { {k: round(v, 2) for k, v in sweep_speedups.items()} }")
    # floors from ISSUE acceptance criteria (measured margins are larger)
    assert max(encode_speedups.values()) >= 3.0
    assert max(construct_speedups.values()) >= 2.0
    assert max(sweep_speedups.values()) >= 4.0
    # and no dataset may regress outright
    assert all(s >= 1.0 for s in encode_speedups.values())
    assert all(s >= 1.0 for s in construct_speedups.values())
    assert all(s >= 1.0 for s in sweep_speedups.values())


# ----------------------------------------------------------------------
# direct format-to-format converters vs the COO round-trip
# ----------------------------------------------------------------------
#: every registered cross-format pair (src != dst)
DIRECT_PAIRS = [(s, d) for s in ("csf", "hicoo", "alto")
                for d in ("csf", "hicoo", "alto") if s != d]


def _assert_same_structure(a, b):
    """Bitwise structural identity — a fast-but-wrong path cannot pass."""
    fields = {"hicoo": ("bptr", "binds", "einds", "values"),
              "csf": ("values",),
              "alto": ("keys", "values", "source_order")}
    assert a.format_name == b.format_name
    for f in fields[a.format_name]:
        assert np.array_equal(getattr(a, f), getattr(b, f)), \
            f"{a.format_name}.{f} differs between direct and round-trip"
    if a.format_name == "csf":
        assert a.mode_order == b.mode_order
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.fids, lb.fids)
            assert np.array_equal(la.parent, lb.parent)
            if la.fptr is not None:
                assert np.array_equal(la.fptr, lb.fptr)


def bench_direct_convert(repeat=5, datasets=TIMED_DATASETS):
    """Time every registered direct pair against its COO round-trip.

    Returns ``(records, speedups)`` where ``speedups`` is keyed by
    ``(dataset, "src->dst")``.  Identity of the two outputs is asserted
    before timing.  Source read caches (HiCOO block-of, ALTO
    delinearization) are warmed by the timing helper's warmup pass, which
    both variants share — the comparison isolates the conversion itself,
    matching the resident-tensor re-format scenario of the serve daemon.
    """
    from repro.core.converters import convert, convert_via_coo
    from repro.formats import as_format

    records, speedups = [], {}
    for name in datasets:
        coo = dataset(name)
        sources = {
            "csf": as_format(coo, "csf"),
            "hicoo": as_format(coo, "hicoo", block_bits=BENCH_BLOCK_BITS),
            "alto": as_format(coo, "alto"),
        }
        for src, dst in DIRECT_PAIRS:
            tensor = sources[src]
            kwargs = ({"block_bits": BENCH_BLOCK_BITS} if dst == "hicoo"
                      else {})
            _assert_same_structure(convert(tensor, dst, **kwargs),
                                   convert_via_coo(tensor, dst, **kwargs))
            t_direct = best_time(partial(convert, tensor, dst, **kwargs),
                                 repeat=repeat)
            t_round = best_time(partial(convert_via_coo, tensor, dst,
                                        **kwargs), repeat=repeat)
            common = {"dataset": name, "nnz": coo.nnz,
                      "op": "direct_convert", "format": dst,
                      "strategy": f"{src}->{dst}"}
            records.append({**common, "variant": "direct",
                            "time_s": t_direct})
            records.append({**common, "variant": "roundtrip",
                            "time_s": t_round})
            speedups[(name, f"{src}->{dst}")] = t_round / t_direct
    return records, speedups


def direct_convert_geomean(speedups) -> float:
    vals = list(speedups.values())
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def test_bench_json_direct_convert():
    """Direct-converter timings -> BENCH_convert.json (merged by record
    key, so the legacy-replica records above are preserved).

    The hard >= 1.5x geomean gate lives in
    ``check_regression.check_direct_convert`` (the convert-smoke job);
    here a loose sanity floor catches a direct path that silently fell
    back to round-tripping.
    """
    records, speedups = bench_direct_convert(repeat=3)
    write_bench_json(records, "BENCH_convert.json")
    for (name, pair), s in sorted(speedups.items()):
        print(f"  {name:<6s} {pair:<14s}: {s:.2f}x")
    geomean = direct_convert_geomean(speedups)
    print(f"direct-convert geomean: {geomean:.2f}x")
    assert geomean >= 1.1


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--direct", action="store_true",
                    help="time the direct converters vs the COO round-trip "
                         "and write BENCH_convert.json")
    ap.add_argument("--repeat", type=int, default=5)
    args = ap.parse_args()
    if not args.direct:
        ap.error("nothing to do: pass --direct "
                 "(the other benches run under pytest)")
    recs, ups = bench_direct_convert(repeat=args.repeat)
    write_bench_json(recs, "BENCH_convert.json")
    for (nm, pair), s in sorted(ups.items()):
        print(f"  {nm:<6s} {pair:<14s}: {s:.2f}x")
    print(f"geomean: {direct_convert_geomean(ups):.2f}x")
