"""E10 — format construction (conversion) cost.

Regenerates the paper's conversion-time table: the one-time cost of sorting
a COO tensor into each format.  HiCOO construction = Morton sort + block
scan; CSF = lexicographic sort + tree build.  Expected shape: both are a
small constant factor over a plain sort and amortize over CP-ALS iterations.
"""

import time

import pytest

from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.formats.csf import CsfTensor

from conftest import (BENCH_BLOCK_BITS, TIMED_DATASETS, all_dataset_names,
                      dataset, write_result)


def test_e10_conversion_table(benchmark):
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        t0 = time.perf_counter()
        coo.sort_lexicographic()
        t_sort = time.perf_counter() - t0
        t0 = time.perf_counter()
        CsfTensor(coo)
        t_csf = time.perf_counter() - t0
        t0 = time.perf_counter()
        HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        t_hicoo = time.perf_counter() - t0
        rows.append({
            "dataset": name,
            "nnz": coo.nnz,
            "sort_ms": t_sort * 1e3,
            "csf_ms": t_csf * 1e3,
            "hicoo_ms": t_hicoo * 1e3,
            "hicoo/sort": t_hicoo / t_sort if t_sort else float("nan"),
        })
    text = render_table(
        rows, ["dataset", "nnz", "sort_ms", "csf_ms", "hicoo_ms", "hicoo/sort"],
        title=f"E10: one-time format construction (b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10})
    write_result("E10_convert.txt", text)
    benchmark(HicooTensor, dataset("vast"), BENCH_BLOCK_BITS)


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("fmt", ["csf", "hicoo"])
def test_measured_conversion(benchmark, name, fmt):
    coo = dataset(name)
    if fmt == "csf":
        out = benchmark(CsfTensor, coo)
    else:
        out = benchmark(HicooTensor, coo, BENCH_BLOCK_BITS)
    assert out.nnz == coo.nnz
