"""E1 — the paper's dataset table.

Prints order / dimensions / nonzeros / density for every registry tensor
(the analog of the paper's "Description of sparse tensors" table, with the
real datasets' published sizes alongside), and benchmarks tensor
construction for the timed subset.
"""

import pytest

from repro.analysis.report import render_table
from repro.data import load, summary_rows

from conftest import TIMED_DATASETS, write_result


def test_e1_dataset_table(benchmark):
    rows = summary_rows()
    text = render_table(
        rows,
        columns=["name", "order", "shape", "nnz", "density", "regime",
                 "paper_shape", "paper_nnz"],
        title="E1: evaluation datasets (scaled analogs of the paper's table)",
        widths={"name": 10, "shape": 26, "paper_shape": 24, "density": 12},
    )
    write_result("E1_datasets.txt", text)
    benchmark(lambda: summary_rows(scale=0.1))


@pytest.mark.parametrize("name", TIMED_DATASETS)
def test_generate_dataset(benchmark, name):
    tensor = benchmark(load, name)
    assert tensor.nnz > 0
