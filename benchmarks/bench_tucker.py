"""E14 (extension) — sparse Tucker (HOOI) on HiCOO-backed tensors.

ParTI!, the paper's reference library, pairs HiCOO with a Tucker solver;
this bench exercises that substrate: fit versus core size on a registry
tensor, the identical-fit certificate across formats, and the wall-clock
of one HOOI sweep.
"""

import numpy as np

from repro.analysis.report import render_series
from repro.core.hicoo import HicooTensor
from repro.tucker import hooi

from conftest import BENCH_BLOCK_BITS, dataset, write_result

CORE_SIZES = [2, 4, 8, 12]


def test_e14_tucker_fit_vs_core(benchmark):
    coo = dataset("vast")
    fits, seconds = [], []
    for r in CORE_SIZES:
        ranks = tuple(min(r, s) for s in coo.shape)
        res = hooi(coo, ranks, maxiters=4, tol=1e-4, seed=0)
        fits.append(res.final_fit)
        seconds.append(res.total_seconds)
    text = render_series(
        "core", CORE_SIZES, {"fit": fits, "seconds": seconds},
        title="E14 (ext): HOOI fit vs core size on vast (maxiters=4)")
    write_result("E14_tucker.txt", text)

    # a bigger core can only improve the best fit
    assert all(b >= a - 1e-6 for a, b in zip(fits, fits[1:]))
    benchmark(hooi, coo, tuple(min(4, s) for s in coo.shape),
              maxiters=1, seed=0)


def test_e14_format_equivalence():
    coo = dataset("uber")
    ranks = tuple(min(3, s) for s in coo.shape)
    a = hooi(coo, ranks, maxiters=2, tol=0.0, seed=1)
    b = hooi(HicooTensor(coo, block_bits=BENCH_BLOCK_BITS), ranks,
             maxiters=2, tol=0.0, seed=1)
    np.testing.assert_allclose(a.fits, b.fits, atol=1e-9)
