"""Scatter-add backend micro-benchmark: np.add.at vs bincount vs reduceat.

Quantifies why :func:`repro.kernels.gather.scatter_add` picks its backends:
``np.add.at`` is NumPy's slowest scatter primitive (a buffered inner loop),
per-column ``np.bincount`` wins for wide outputs, and a segmented
``np.add.reduceat`` wins outright once the indices are presorted — which
HiCOO's Morton-ordered tasks know symbolically, for free.

Emits a table plus machine-readable ``BENCH_gather.json``.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.kernels.gather import scatter_add

from conftest import RANK, best_time, write_bench_json, write_result

#: (label, number of updates, output rows)
SCENARIOS = [
    ("small", 1_000, 500),
    ("medium", 50_000, 5_000),
    ("large", 200_000, 20_000),
    ("sparse-out", 20_000, 1_000_000),
]


def _bench_one(n, rows, rank, rng):
    idx = rng.integers(0, rows, size=n)
    idx_sorted = np.sort(idx)
    acc = rng.normal(size=(n, rank))

    def run_add_at():
        np.add.at(np.zeros((rows, rank)), idx, acc)

    def run_bincount():
        out = np.zeros((rows, rank))
        for r in range(rank):
            out[:, r] += np.bincount(idx, weights=acc[:, r], minlength=rows)

    def run_reduceat():
        out = np.zeros((rows, rank))
        scatter_add(out, idx_sorted, acc, presorted=True)

    def run_sort_reduceat():
        out = np.zeros((rows, rank))
        scatter_add(out, idx, acc, row_local=True)

    def run_auto():
        out = np.zeros((rows, rank))
        scatter_add(out, idx, acc)

    return {
        "add_at": best_time(run_add_at, repeat=3),
        "bincount": best_time(run_bincount, repeat=3),
        "reduceat": best_time(run_reduceat, repeat=3),
        "sort_reduceat": best_time(run_sort_reduceat, repeat=3),
        "auto": best_time(run_auto, repeat=3),
    }


def test_scatter_backend_microbench():
    rng = np.random.default_rng(0)
    rows_out, records = [], []
    for label, n, rows in SCENARIOS:
        times = _bench_one(n, rows, RANK, rng)
        rows_out.append({"scenario": label, "n": n, "rows": rows, **{
            k: f"{v * 1e3:.2f}ms" for k, v in times.items()}})
        for backend, t in times.items():
            records.append({
                "op": "scatter_add", "format": "dense-out",
                "strategy": backend, "dataset": label, "variant": backend,
                "n_updates": n, "rows": rows, "rank": RANK,
                "time_s": t,
            })
        # the auto backend must never lose badly to the best hand-picked one
        best_fixed = min(times["add_at"], times["bincount"],
                         times["reduceat"], times["sort_reduceat"])
        assert times["auto"] <= 5 * best_fixed + 1e-4
    text = render_table(
        rows_out,
        ["scenario", "n", "rows", "add_at", "bincount", "reduceat",
         "sort_reduceat", "auto"],
        title=f"scatter_add backends, best-of-3 (R={RANK})",
        widths={"scenario": 11},
    )
    write_result("BENCH_gather.txt", text)
    write_bench_json(records, filename="BENCH_gather.json")
