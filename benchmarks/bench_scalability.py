"""E6 — thread-scaling curves.

Regenerates the paper's scalability figure: predicted speedup of each
format relative to its own single-thread time at 1..32 threads, for one
representative tensor per regime.  Expected shape: HiCOO scales
near-linearly until memory bandwidth saturates; COO's curve flattens early
(atomic serialization + bandwidth); CSF sits between.
"""

from repro.analysis.model import thread_scaling
from repro.analysis.report import render_series

from conftest import BENCH_BLOCK_BITS, RANK, dataset, write_result

THREADS = (1, 2, 4, 8, 16, 32)
REPRESENTATIVES = ["vast", "deli", "rand3d"]


def test_e6_thread_scaling_figure(machine, benchmark):
    chunks = []
    for name in REPRESENTATIVES:
        coo = dataset(name)
        series = thread_scaling(coo, RANK, machine, THREADS,
                                block_bits=BENCH_BLOCK_BITS)
        chunks.append(render_series(
            "threads", THREADS, series,
            title=f"E6: self-relative speedup on {name} (model, R={RANK})"))
        # self-speedup must start at 1 and never fall below 1
        for fmt, values in series.items():
            assert abs(values[0] - 1.0) < 1e-9, (name, fmt)
            assert min(values) >= 0.99, (name, fmt)
    write_result("E6_scalability.txt", "\n\n".join(chunks))
    benchmark(thread_scaling, dataset("vast"), RANK, machine, THREADS,
              BENCH_BLOCK_BITS)
