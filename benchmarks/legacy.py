"""Faithful replicas of superseded HiCOO code paths.

Two generations of fast paths are benchmarked against live baselines kept
here instead of numbers frozen in a doc:

* the pre-gather-layer MTTKRP paths (per-call symbolic index
  materialization + ``np.add.at`` scatter), replaced in the previous PR by
  the cached gather/scatter kernel layer;
* the pre-magic-number conversion pipeline (per-bit Morton encode loops,
  one full ``lexsort`` per block size), replaced by the vectorized
  bit-interleave and the shared one-sort :class:`repro.MortonContext`.

Each replica preserves the old behaviour bit-for-bit — same ordering, same
tie-breaking — so equivalence can be asserted alongside the speedup.
"""

import numpy as np

from repro.core.blocking import MAX_BLOCK_BITS, BlockDecomposition
from repro.core.convert import hicoo_storage_bytes
from repro.core.hicoo import HicooTensor
from repro.core.scheduler import choose_strategy, schedule_mode
from repro.core.superblock import build_superblocks
from repro.kernels.mttkrp import _hicoo_block_range_chunk
from repro.parallel.partition import balanced_ranges
from repro.parallel.privatize import PrivateBuffers
from repro.util.bitops import bits_for


def legacy_seq_flat(tensor, factors, mode):
    """The old sequential HiCOO flat kernel: rebuilds the fused global
    coordinates (casting the whole binds array) and scatters via np.add.at
    on every call."""
    rank = factors[0].shape[1]
    out = np.zeros((tensor.shape[mode], rank))
    if tensor.nnz == 0:
        return out
    blk = np.repeat(np.arange(tensor.nblocks), np.diff(tensor.bptr))
    base = tensor.binds.astype(np.int64)[blk] << tensor.block_bits
    ginds = base + tensor.einds.astype(np.int64)
    acc = np.repeat(tensor.values[:, None], rank, axis=1)
    for m, f in enumerate(factors):
        if m != mode:
            acc *= f[ginds[:, m]]
    np.add.at(out, ginds[:, mode], acc)
    return out


def legacy_parallel_hicoo(tensor, factors, mode, nthreads, strategy="auto",
                          superblock_bits=None):
    """The old per-call parallel HiCOO path: rebuilds superblocks and the
    schedule, then runs the per-block-loop chunk kernel per thread."""
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    sb_bits = superblock_bits if superblock_bits is not None else min(
        tensor.block_bits + 3, 20)
    sbs = build_superblocks(tensor, sb_bits)
    if strategy == "auto":
        strategy = choose_strategy(sbs, mode, nthreads, rows, rank)

    if strategy == "schedule":
        sched = schedule_mode(sbs, mode, nthreads)
        out = np.zeros((rows, rank))
        for sb_list in sched.assignment:
            blocks = []
            for sb in sb_list:
                lo, hi = sbs.block_range(sb)
                blocks.extend(range(lo, hi))
            _hicoo_block_range_chunk(tensor, blocks, factors, mode, out)
        return out

    ranges = balanced_ranges(sbs.nnz_per_superblock, nthreads)
    bufs = PrivateBuffers.allocate(nthreads, rows, rank)
    for tid, (lo, hi) in enumerate(ranges):
        if lo < hi:
            blocks = list(range(int(sbs.sptr[lo]), int(sbs.sptr[hi])))
            _hicoo_block_range_chunk(tensor, blocks, factors, mode,
                                     bufs.view(tid))
    return bufs.reduce()


# ----------------------------------------------------------------------
# pre-magic-number conversion pipeline
# ----------------------------------------------------------------------
def legacy_morton_encode(coords, nbits):
    """The old per-bit Morton encoder: one masked shift-OR pass per
    (bit, mode) pair — O(nmodes * nbits) passes over the data."""
    coords = np.asarray(coords).astype(np.uint64, copy=False)
    nmodes, npoints = coords.shape
    total_bits = nmodes * nbits
    nwords = (total_bits + 63) // 64
    words = np.zeros((nwords, npoints), dtype=np.uint64)
    for bit in range(nbits):
        for mode in range(nmodes):
            out_bit = bit * nmodes + mode
            word = nwords - 1 - (out_bit // 64)
            shift = np.uint64(out_bit % 64)
            src = (coords[mode] >> np.uint64(bit)) & np.uint64(1)
            words[word] |= src << shift
    return words


def legacy_morton_decode(words, nmodes, nbits):
    """The old per-bit Morton decoder (inverse of the encoder above)."""
    words = np.asarray(words, dtype=np.uint64)
    nwords, npoints = words.shape
    coords = np.zeros((nmodes, npoints), dtype=np.uint64)
    for bit in range(nbits):
        for mode in range(nmodes):
            in_bit = bit * nmodes + mode
            word = nwords - 1 - (in_bit // 64)
            shift = np.uint64(in_bit % 64)
            src = (words[word] >> shift) & np.uint64(1)
            coords[mode] |= src << np.uint64(bit)
    return coords


def legacy_morton_sort_order(coords, nbits):
    """Old Morton ordering: always a multi-key lexsort, even when the code
    fits a single word."""
    return np.lexsort(legacy_morton_encode(coords, nbits)[::-1])


def legacy_sort_morton_order(coo, block_bits):
    """The old ``CooTensor.sort_morton`` permutation: Morton-lexsort the
    block coordinates, then a second lexsort restoring within-block
    lexicographic offset order."""
    inds = coo.indices
    if len(inds) == 0:
        return np.empty(0, dtype=np.int64)
    coords = inds.T >> block_bits if block_bits else inds.T
    nbits = bits_for(int(coords.max()) if coords.size else 0)
    order = legacy_morton_sort_order(coords, nbits)
    if block_bits:
        permuted = inds[order]
        blocks = permuted >> block_bits
        offsets = permuted & ((1 << block_bits) - 1)
        changed = np.any(blocks[1:] != blocks[:-1], axis=1)
        run_id = np.concatenate([[0], np.cumsum(changed)])
        keys = tuple(offsets[:, m] for m in reversed(range(coo.nmodes)))
        order = order[np.lexsort(keys + (run_id,))]
    return order


def legacy_decompose(coo, block_bits):
    """The old one-shot block decomposition: a fresh Morton sort for this
    (tensor, b) pair, nothing shared or cached."""
    order = legacy_sort_morton_order(coo, block_bits)
    inds = coo.indices[order]
    values = coo.values[order]
    bcoords = inds >> block_bits
    offsets = (inds & ((1 << block_bits) - 1)).astype(np.uint8)
    if len(inds) == 0:
        block_ptr = np.zeros(1, dtype=np.int64)
        bcoords = np.empty((0, coo.nmodes), dtype=np.int64)
    else:
        changed = np.any(bcoords[1:] != bcoords[:-1], axis=1)
        starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
        block_ptr = np.concatenate([starts, [len(inds)]]).astype(np.int64)
        bcoords = bcoords[starts]
    return BlockDecomposition(
        block_bits=block_bits, block_ptr=block_ptr, block_coords=bcoords,
        elem_offsets=offsets, values=values, shape=coo.shape)


def legacy_hicoo_construct(coo, block_bits):
    """End-to-end old construction: legacy decomposition assembled into a
    HicooTensor (bypassing the new cached-context constructor)."""
    dec = legacy_decompose(coo, block_bits)
    out = HicooTensor.__new__(HicooTensor)
    out._shape = coo.shape
    out.block_bits = int(block_bits)
    out.bptr = dec.block_ptr
    out.binds = dec.block_coords.astype(np.uint32)
    out.einds = dec.elem_offsets
    out.values = dec.values
    out._gather_cache = {}
    return out


def legacy_best_block_bits(coo, candidates=None):
    """The old block-size sweep: one full construction per candidate — the
    8-sorts-for-8-block-sizes pattern the MortonContext removes."""
    if candidates is None:
        candidates = range(1, MAX_BLOCK_BITS + 1)
    best, best_bytes = None, None
    for bits in candidates:
        hic = legacy_hicoo_construct(coo, bits)
        total = int(sum(hicoo_storage_bytes(
            hic.nblocks, hic.nnz, hic.nmodes).values()))
        if best_bytes is None or total <= best_bytes:
            best, best_bytes = bits, total
    return int(best)
