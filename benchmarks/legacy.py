"""Faithful replicas of the pre-gather-layer HiCOO MTTKRP paths.

The gather/scatter kernel layer replaced the per-call symbolic work
(per-block ``arange``/``full``/``concatenate`` index materialization, whole-
array ``binds`` casts) and the ``np.add.at`` scatter everywhere.  These
replicas preserve the old behaviour bit-for-bit so the benchmarks and the CI
regression guard can report the speedup of the cached path against a live
baseline instead of a number frozen in a doc.
"""

import numpy as np

from repro.core.scheduler import choose_strategy, schedule_mode
from repro.core.superblock import build_superblocks
from repro.kernels.mttkrp import _hicoo_block_range_chunk
from repro.parallel.partition import balanced_ranges
from repro.parallel.privatize import PrivateBuffers


def legacy_seq_flat(tensor, factors, mode):
    """The old sequential HiCOO flat kernel: rebuilds the fused global
    coordinates (casting the whole binds array) and scatters via np.add.at
    on every call."""
    rank = factors[0].shape[1]
    out = np.zeros((tensor.shape[mode], rank))
    if tensor.nnz == 0:
        return out
    blk = np.repeat(np.arange(tensor.nblocks), np.diff(tensor.bptr))
    base = tensor.binds.astype(np.int64)[blk] << tensor.block_bits
    ginds = base + tensor.einds.astype(np.int64)
    acc = np.repeat(tensor.values[:, None], rank, axis=1)
    for m, f in enumerate(factors):
        if m != mode:
            acc *= f[ginds[:, m]]
    np.add.at(out, ginds[:, mode], acc)
    return out


def legacy_parallel_hicoo(tensor, factors, mode, nthreads, strategy="auto",
                          superblock_bits=None):
    """The old per-call parallel HiCOO path: rebuilds superblocks and the
    schedule, then runs the per-block-loop chunk kernel per thread."""
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    sb_bits = superblock_bits if superblock_bits is not None else min(
        tensor.block_bits + 3, 20)
    sbs = build_superblocks(tensor, sb_bits)
    if strategy == "auto":
        strategy = choose_strategy(sbs, mode, nthreads, rows, rank)

    if strategy == "schedule":
        sched = schedule_mode(sbs, mode, nthreads)
        out = np.zeros((rows, rank))
        for sb_list in sched.assignment:
            blocks = []
            for sb in sb_list:
                lo, hi = sbs.block_range(sb)
                blocks.extend(range(lo, hi))
            _hicoo_block_range_chunk(tensor, blocks, factors, mode, out)
        return out

    ranges = balanced_ranges(sbs.nnz_per_superblock, nthreads)
    bufs = PrivateBuffers.allocate(nthreads, rows, rank)
    for tid, (lo, hi) in enumerate(ranges):
        if lo < hi:
            blocks = list(range(int(sbs.sptr[lo]), int(sbs.sptr[hi])))
            _hicoo_block_range_chunk(tensor, blocks, factors, mode,
                                     bufs.view(tid))
    return bufs.reduce()
