#!/usr/bin/env python
"""CI guard for the observability layer (see docs/observability.md).

Three checks, any failure exits nonzero:

1. **Traced smoke** — runs a small CP-ALS through the real CLI with
   ``--trace``, then validates the emitted file against the Chrome
   trace-event schema, requires span coverage >= 95% of wall time, and
   requires the per-mode kernel spans, per-task executor spans, and
   per-iteration CP-ALS spans to be present.
2. **Metrics smoke** — after the traced run (plus a planned MTTKRP warm
   loop), the registry must show nonzero MortonContext and gather-cache
   hit counters.
3. **Disabled-overhead guard** — measures the cost of a disabled
   ``trace.span`` call, multiplies by the spans one planned parallel MTTKRP
   emits, and fails if that overhead exceeds 3% of the measured MTTKRP
   median (the instrumentation must be effectively free when tracing is
   off).

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_obs.py
"""

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.hicoo import HicooTensor
from repro.data import load
from repro.data.frostt import write_tns
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from repro.obs import metrics, trace
from repro.obs.trace import validate_chrome_trace
from repro.tools.cli import main as cli_main

DATASET = "uber"
BLOCK_BITS = 4
RANK = 8
NTHREADS = 2
MIN_COVERAGE = 0.95
MAX_DISABLED_OVERHEAD = 0.03

#: span names the acceptance criteria require in a traced CP-ALS run
REQUIRED_SPANS = ("cli.cpd", "cpals.iter", "mttkrp.parallel",
                  "executor.task", "hicoo.construct")


def check_traced_cpd(tmp: Path) -> bool:
    tns = tmp / "smoke.tns"
    out = tmp / "smoke.trace.json"
    write_tns(load(DATASET), tns, header="obs smoke tensor")
    metrics.reset()
    # no --block-bits: the default storage-optimal sweep shares (and so
    # exercises) the MortonContext cache with the HiCOO construction
    rc = cli_main(["cpd", str(tns), "-r", str(RANK), "--maxiters", "3",
                   "-t", str(NTHREADS), "--trace", str(out), "--metrics"])
    ok = True
    if rc != 0:
        print(f"FAIL: traced cpd exited with {rc}")
        return False

    doc = json.loads(out.read_text())
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems[:10]:
            print(f"FAIL: trace schema: {p}")
        ok = False

    names = {e["name"] for e in doc["traceEvents"]}
    for required in REQUIRED_SPANS:
        if required not in names:
            print(f"FAIL: required span {required!r} missing from the trace")
            ok = False

    cover = trace.coverage()
    print(f"  trace: {len(doc['traceEvents'])} events, "
          f"coverage {cover * 100:.1f}%")
    if cover < MIN_COVERAGE:
        print(f"FAIL: span coverage {cover:.3f} < {MIN_COVERAGE}")
        ok = False

    snap = metrics.snapshot()
    for counter in ("convert.context_hits", "gather.cache_hits"):
        if snap.get(counter, 0) < 1:
            print(f"FAIL: metrics counter {counter} is zero after a traced "
                  "CP-ALS run")
            ok = False
    return ok


def check_disabled_overhead() -> bool:
    """Disabled instrumentation must cost < 3% of an MTTKRP call."""
    trace.disable()
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    plan = plan_mttkrp(hic, RANK, NTHREADS, strategy="schedule")
    plan.ensure_gathers(hic)

    times = []
    for _ in range(9):
        t0 = time.perf_counter()
        mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan)
        times.append(time.perf_counter() - t0)
    mttkrp_median = statistics.median(times)

    # count the spans one warm planned call would emit when enabled
    trace.enable()
    mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan)
    spans_per_call = trace.get_tracer().nevents
    trace.disable()
    trace.clear()

    # per-call cost of a disabled span (the hot-path guard: one global
    # load, one attribute check, no allocation)
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with trace.span("overhead.probe", mode=0):
            pass
    per_span = (time.perf_counter() - t0) / n

    overhead = spans_per_call * per_span
    frac = overhead / mttkrp_median if mttkrp_median else 0.0
    print(f"  disabled span: {per_span * 1e9:.0f} ns/call x "
          f"{spans_per_call} spans = {overhead * 1e6:.1f} us "
          f"vs {mttkrp_median * 1e3:.2f} ms MTTKRP median "
          f"({frac * 100:.2f}%)")
    if frac > MAX_DISABLED_OVERHEAD:
        print(f"FAIL: disabled-tracing overhead {frac * 100:.2f}% > "
              f"{MAX_DISABLED_OVERHEAD * 100:.0f}%")
        return False
    return True


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        print("traced CP-ALS smoke:")
        smoke_ok = check_traced_cpd(Path(tmp))
    if smoke_ok:
        print("OK: trace is schema-valid, covering, and cache counters "
              "are live")
    print("disabled-mode overhead:")
    overhead_ok = check_disabled_overhead()
    if overhead_ok:
        print("OK: instrumentation is free when tracing is disabled")
    return 0 if smoke_ok and overhead_ok else 1


if __name__ == "__main__":
    sys.exit(main())
