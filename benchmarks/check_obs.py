#!/usr/bin/env python
"""CI guard for the observability layer (see docs/observability.md).

Six checks, any failure exits nonzero:

1. **Traced smoke** — runs a small CP-ALS through the real CLI with
   ``--trace``, then validates the emitted file against the Chrome
   trace-event schema, requires span coverage >= 95% of wall time, and
   requires the per-mode kernel spans, per-task executor spans, and
   per-iteration CP-ALS spans to be present.
2. **Metrics smoke** — after the traced run (plus a planned MTTKRP warm
   loop), the registry must show nonzero MortonContext and gather-cache
   hit counters.
3. **Disabled-overhead guard** — measures the cost of a disabled
   ``trace.span`` call, multiplies by the spans one planned parallel MTTKRP
   emits, and fails if that overhead exceeds 3% of the measured MTTKRP
   median (the instrumentation must be effectively free when tracing is
   off).
4. **Exporter scrape** — starts the OpenMetrics HTTP server, runs CP-ALS
   under two formats and two backends (one of them the process backend),
   scrapes ``/metrics`` mid-run, and requires the exposition to validate
   against the bundled OpenMetrics parser with labeled series for >= 2
   formats, >= 2 backends, and merged ``worker="proc-N"`` series shipped
   up from the worker processes.
5. **Profiler overhead** — the sampling profiler must cost < 5% wall
   clock on a warm planned MTTKRP loop.
6. **Ledger detector** — a synthetic perf history with stable timings
   must pass the rolling-baseline regression detector, and the same
   history with a 2x slowdown appended must be flagged.

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_obs.py
"""

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from urllib.request import urlopen

import numpy as np

from repro.core.hicoo import HicooTensor
from repro.data import load
from repro.data.frostt import write_tns
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp
from repro.obs import ledger, metrics, trace
from repro.obs.export import MetricsServer, validate_openmetrics
from repro.obs.sampler import SamplingProfiler
from repro.obs.trace import validate_chrome_trace
from repro.tools.cli import main as cli_main

DATASET = "uber"
BLOCK_BITS = 4
RANK = 8
NTHREADS = 2
MIN_COVERAGE = 0.95
MAX_DISABLED_OVERHEAD = 0.03

#: span names the acceptance criteria require in a traced CP-ALS run
REQUIRED_SPANS = ("cli.cpd", "cpals.iter", "mttkrp.parallel",
                  "executor.task", "hicoo.construct")


def check_traced_cpd(tmp: Path) -> bool:
    tns = tmp / "smoke.tns"
    out = tmp / "smoke.trace.json"
    write_tns(load(DATASET), tns, header="obs smoke tensor")
    metrics.reset()
    # no --block-bits: the default storage-optimal sweep shares (and so
    # exercises) the MortonContext cache with the HiCOO construction
    rc = cli_main(["cpd", str(tns), "-r", str(RANK), "--maxiters", "3",
                   "-t", str(NTHREADS), "--trace", str(out), "--metrics"])
    ok = True
    if rc != 0:
        print(f"FAIL: traced cpd exited with {rc}")
        return False

    doc = json.loads(out.read_text())
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems[:10]:
            print(f"FAIL: trace schema: {p}")
        ok = False

    names = {e["name"] for e in doc["traceEvents"]}
    for required in REQUIRED_SPANS:
        if required not in names:
            print(f"FAIL: required span {required!r} missing from the trace")
            ok = False

    cover = trace.coverage()
    print(f"  trace: {len(doc['traceEvents'])} events, "
          f"coverage {cover * 100:.1f}%")
    if cover < MIN_COVERAGE:
        print(f"FAIL: span coverage {cover:.3f} < {MIN_COVERAGE}")
        ok = False

    snap = metrics.snapshot()
    for counter in ("convert.context_hits", "gather.cache_hits"):
        if snap.get(counter, 0) < 1:
            print(f"FAIL: metrics counter {counter} is zero after a traced "
                  "CP-ALS run")
            ok = False
    return ok


def check_disabled_overhead() -> bool:
    """Disabled instrumentation must cost < 3% of an MTTKRP call."""
    trace.disable()
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    plan = plan_mttkrp(hic, RANK, NTHREADS, strategy="schedule")
    plan.ensure_gathers(hic)

    times = []
    for _ in range(9):
        t0 = time.perf_counter()
        mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan)
        times.append(time.perf_counter() - t0)
    mttkrp_median = statistics.median(times)

    # count the spans one warm planned call would emit when enabled
    trace.enable()
    mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan)
    spans_per_call = trace.get_tracer().nevents
    trace.disable()
    trace.clear()

    # per-call cost of a disabled span (the hot-path guard: one global
    # load, one attribute check, no allocation)
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with trace.span("overhead.probe", mode=0):
            pass
    per_span = (time.perf_counter() - t0) / n

    overhead = spans_per_call * per_span
    frac = overhead / mttkrp_median if mttkrp_median else 0.0
    print(f"  disabled span: {per_span * 1e9:.0f} ns/call x "
          f"{spans_per_call} spans = {overhead * 1e6:.1f} us "
          f"vs {mttkrp_median * 1e3:.2f} ms MTTKRP median "
          f"({frac * 100:.2f}%)")
    if frac > MAX_DISABLED_OVERHEAD:
        print(f"FAIL: disabled-tracing overhead {frac * 100:.2f}% > "
              f"{MAX_DISABLED_OVERHEAD * 100:.0f}%")
        return False
    return True


def _series_label_values(text: str, prefix: str, label: str) -> set:
    """All values of ``label`` across sample lines starting ``prefix``."""
    import re

    out = set()
    for line in text.splitlines():
        if not line.startswith(prefix) or line.startswith("#"):
            continue
        for k, v in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"', line):
            if k == label:
                out.add(v)
    return out


def check_exporter() -> bool:
    """Scrape ``/metrics`` during process-backend CP-ALS runs.

    The exposition must validate against the bundled OpenMetrics parser
    and carry labeled series spanning >= 2 formats and >= 2 backends,
    including ``worker="proc-N"`` series merged up from the worker
    processes over the reply pipe.
    """
    from repro.cpd.cp_als import cp_als
    from repro.parallel import procpool

    metrics.reset()
    metrics.enable()
    coo = load(DATASET)
    ok = True
    with MetricsServer() as srv:
        health = json.loads(
            urlopen(srv.url + "/healthz", timeout=10).read().decode())
        if health.get("status") != "ok":
            print(f"FAIL: /healthz returned {health!r}")
            ok = False
        # two formats x two backends: hicoo over the process pool (worker
        # metrics merge up) and alto on the in-process sim backend
        cp_als(coo, RANK, maxiters=2, nthreads=NTHREADS,
               backend="process", format="hicoo", seed=0)
        cp_als(coo, RANK, maxiters=2, format="alto", seed=0)
        text = urlopen(srv.url + "/metrics", timeout=10).read().decode()
    procpool.shutdown_pools()
    metrics.disable()

    problems = validate_openmetrics(text)
    for p in problems[:10]:
        print(f"FAIL: openmetrics: {p}")
    ok = ok and not problems

    formats = _series_label_values(text, "cpals_iterations_total", "format")
    backends = _series_label_values(text, "cpals_iterations_total", "backend")
    workers = _series_label_values(text, "mttkrp_nnz_processed_total",
                                   "worker")
    nlines = len(text.splitlines())
    print(f"  scrape: {nlines} lines, formats={sorted(formats)} "
          f"backends={sorted(backends)} workers={sorted(workers)}")
    if len(formats) < 2:
        print(f"FAIL: scrape shows {len(formats)} format label(s), need >= 2")
        ok = False
    if len(backends) < 2:
        print(f"FAIL: scrape shows {len(backends)} backend label(s), "
              "need >= 2")
        ok = False
    if not any(w.startswith("proc-") for w in workers):
        print("FAIL: no merged worker=\"proc-N\" series in the scrape — "
              "worker metric deltas did not reach the parent registry")
        ok = False
    return ok


MAX_PROFILER_OVERHEAD = 0.05
PROFILE_REPEAT = 20


def check_profiler_overhead() -> bool:
    """The sampling profiler must cost < 5% on a warm MTTKRP loop."""
    coo = load(DATASET)
    hic = HicooTensor(coo, block_bits=BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    plan = plan_mttkrp(hic, RANK, NTHREADS, strategy="schedule")
    plan.ensure_gathers(hic)

    def loop():
        t0 = time.perf_counter()
        for _ in range(PROFILE_REPEAT):
            mttkrp_parallel(hic, factors, 0, NTHREADS, plan=plan)
        return time.perf_counter() - t0

    loop()  # warm
    base = min(loop() for _ in range(3))
    prof = SamplingProfiler(interval=0.005, scope="overhead-check")
    prof.start()
    timed = min(loop() for _ in range(3))
    prof.stop()
    frac = timed / base - 1.0
    print(f"  warm loop: {base * 1e3:.1f} ms bare, {timed * 1e3:.1f} ms "
          f"profiled ({prof.nsamples} samples, {frac * 100:+.2f}%)")
    if prof.nsamples < 1:
        print("FAIL: profiler collected zero samples over the timed loop")
        return False
    if frac > MAX_PROFILER_OVERHEAD:
        print(f"FAIL: profiler overhead {frac * 100:.1f}% > "
              f"{MAX_PROFILER_OVERHEAD * 100:.0f}%")
        return False
    return True


def check_ledger(tmp: Path) -> bool:
    """Rolling-baseline detector: clean history passes, 2x slowdown flags."""
    path = tmp / "history.jsonl"
    # six stable records with mild noise — a clean trajectory
    for i in range(6):
        ledger.append_record(path, {"mttkrp/planned": 0.010 + 0.0002 * (i % 3),
                                    "convert/cold": 0.050},
                             source="synthetic", sha=f"aaa{i}")
    clean = ledger.detect_regressions(ledger.read_history(path))
    if clean:
        for r in clean:
            print(f"FAIL: clean history flagged: {r}")
        return False
    print("  clean 6-record history: no regressions flagged")

    # inject a 2x slowdown on one series
    ledger.append_record(path, {"mttkrp/planned": 0.021,
                                "convert/cold": 0.050},
                         source="synthetic", sha="bad0")
    flagged = ledger.detect_regressions(ledger.read_history(path))
    names = {r.series for r in flagged}
    if "mttkrp/planned" not in names:
        print("FAIL: injected 2x slowdown on mttkrp/planned not flagged "
              f"(flagged: {sorted(names)})")
        return False
    if "convert/cold" in names:
        print("FAIL: stable series convert/cold falsely flagged")
        return False
    for r in flagged:
        print(f"  detector: {r}")
    print(ledger.delta_table(ledger.read_history(path)))
    return True


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        print("traced CP-ALS smoke:")
        smoke_ok = check_traced_cpd(Path(tmp))
        if smoke_ok:
            print("OK: trace is schema-valid, covering, and cache counters "
                  "are live")
        print("disabled-mode overhead:")
        overhead_ok = check_disabled_overhead()
        if overhead_ok:
            print("OK: instrumentation is free when tracing is disabled")
        print("openmetrics exporter (process-backend scrape):")
        export_ok = check_exporter()
        if export_ok:
            print("OK: /metrics validates with >= 2 formats, >= 2 backends, "
                  "and merged worker series")
        print("sampling-profiler overhead:")
        prof_ok = check_profiler_overhead()
        if prof_ok:
            print("OK: profiler costs < 5% on the warm MTTKRP loop")
        print("perf-ledger regression detector:")
        ledger_ok = check_ledger(Path(tmp))
        if ledger_ok:
            print("OK: detector passes clean history and flags the "
                  "synthetic 2x slowdown")
    return (0 if smoke_ok and overhead_ok and export_ok and prof_ok
            and ledger_ok else 1)


if __name__ == "__main__":
    sys.exit(main())
