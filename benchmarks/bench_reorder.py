"""E11 (extension) — index reordering to improve HiCOO blocking.

The paper names poor index locality as HiCOO's failure mode (alpha_b -> 1)
and the authors' follow-up work introduces reorderings to repair it.  This
bench regenerates that analysis: for each dataset, alpha_b and HiCOO bytes
before/after Lexi-order and BFS-MCS, plus the random-permutation control.

Expected shape: on tensors whose labels already encode locality the
reorderings are ~neutral; on scattered/shuffled tensors they recover most
of the lost blocking; random permutation always degrades.
"""


from repro.analysis.report import render_table
from repro.data.synthetic import power_law_tensor
from repro.reorder import alpha_effect, bfs_mcs, lexi_order, random_permutations

from conftest import BENCH_BLOCK_BITS, dataset, write_result

REORDER_DATASETS = ["vast", "deli", "nips", "rand3d"]


def test_e11_reordering_table(benchmark):
    rows = []
    cases = [("registry:" + n, dataset(n)) for n in REORDER_DATASETS]
    cases.append((
        "pl-shuffled",
        power_law_tensor((2000, 2000, 2000), 20_000, exponent=1.3,
                         shuffle_labels=True, seed=1),
    ))
    for name, coo in cases:
        methods = {
            "lexi": lexi_order(coo),
            "bfs": bfs_mcs(coo),
            "random": random_permutations(coo.shape, seed=0),
        }
        base = None
        for method, perms in methods.items():
            effect = alpha_effect(coo, perms, block_bits=BENCH_BLOCK_BITS)
            base = effect["before"]["alpha_b"]
            rows.append({
                "dataset": name,
                "method": method,
                "alpha_before": base,
                "alpha_after": effect["after"]["alpha_b"],
                "alpha_ratio": effect["alpha_ratio"],
                "bytes_ratio": effect["bytes_ratio"],
            })
    text = render_table(
        rows,
        ["dataset", "method", "alpha_before", "alpha_after", "alpha_ratio",
         "bytes_ratio"],
        title=f"E11 (ext): reordering effect on HiCOO (b={BENCH_BLOCK_BITS}; "
              "ratio < 1 = improvement)",
        widths={"dataset": 21})
    write_result("E11_reorder.txt", text)

    by = {(r["dataset"], r["method"]): r for r in rows}
    # the shuffled tensor must be substantially repaired by both orderings
    assert by[("pl-shuffled", "lexi")]["alpha_ratio"] < 0.6
    assert by[("pl-shuffled", "bfs")]["alpha_ratio"] < 0.6
    # random permutation never improves blocking (within noise)
    for name, _ in [("registry:" + n, None) for n in REORDER_DATASETS]:
        assert by[(name, "random")]["alpha_ratio"] > 0.95
    benchmark(lexi_order, dataset("vast"))
