#!/usr/bin/env python
"""Run the full benchmark harness and assemble one combined report.

Equivalent to ``pytest benchmarks/ --benchmark-only`` followed by
concatenating ``benchmarks/results/*.txt`` in experiment order into
``benchmarks/results/REPORT.txt``.  Use this to regenerate every paper
table/figure in one command:

    python benchmarks/run_all.py [--skip-pytest]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).parent
RESULTS = HERE / "results"

#: experiment order for the combined report
ORDER = [
    "E1_datasets.txt",
    "E2_storage.txt",
    "E3_parameters.txt",
    "E4_mttkrp_seq.txt",
    "E5_mttkrp_par.txt",
    "E6_scalability.txt",
    "E7_block_size.txt",
    "E8_superblock.txt",
    "E9_cpals.txt",
    "E10_convert.txt",
    "E11_reorder.txt",
    "E12_roofline.txt",
    "E13_gpu.txt",
    "E14_tucker.txt",
    "E15_validation.txt",
    "ablation_ordering.txt",
    "ablation_sorted_coo.txt",
    "ablation_strategy.txt",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-pytest", action="store_true",
                        help="only reassemble the report from existing "
                             "results/ files")
    parser.add_argument("--trace", action="store_true",
                        help="record spans and write a Chrome-trace sidecar "
                             "(E*.trace.json) next to each result file")
    args = parser.parse_args(argv)

    if not args.skip_pytest:
        cmd = [sys.executable, "-m", "pytest", str(HERE),
               "--benchmark-only", "-q"]
        env = os.environ.copy()
        if args.trace:
            env["REPRO_TRACE"] = "1"
        print("+", " ".join(cmd))
        proc = subprocess.run(cmd, env=env)
        if proc.returncode != 0:
            print("benchmark run failed", file=sys.stderr)
            return proc.returncode

    chunks = []
    missing = []
    for name in ORDER:
        path = RESULTS / name
        if path.exists():
            chunks.append(path.read_text().rstrip())
        else:
            missing.append(name)
    report = "\n\n" + ("\n\n" + "=" * 72 + "\n\n").join(chunks) + "\n"
    out = RESULTS / "REPORT.txt"
    out.write_text(report)
    print(f"combined report: {out} ({len(chunks)} experiments)")
    if missing:
        print(f"warning: missing result files: {', '.join(missing)}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
