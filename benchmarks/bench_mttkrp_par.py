"""E5 — parallel MTTKRP at full machine width.

Regenerates the paper's multicore figure: predicted all-mode MTTKRP speedup
of each format over *parallel COO* at P = machine cores.  Expected shape:
HiCOO's advantage over COO grows versus the sequential case because COO's
atomic scatter updates serialize, while HiCOO's superblock schedule is
lock-free and its privatized fallback only pays a small reduction.

The measured part times the real parallel kernels (strategy dispatch +
per-thread execution) on the timed subset.
"""

import numpy as np
import pytest

from repro.analysis.model import speedup_over_coo
from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.kernels.mttkrp import mttkrp_parallel
from repro.kernels.plan import plan_mttkrp

from conftest import (BENCH_BLOCK_BITS, RANK, TIMED_DATASETS,
                      all_dataset_names, best_time, dataset, write_bench_json,
                      write_result)
from legacy import legacy_parallel_hicoo


def test_e5_parallel_speedup_figure(machine, benchmark):
    nthreads = machine.cores
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        speeds = speedup_over_coo(coo, RANK, machine, nthreads=nthreads,
                                  block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "coo": speeds["coo"],
            "csf": speeds["csf"],
            "hicoo": speeds["hicoo"],
        })
    text = render_table(
        rows, ["dataset", "coo", "csf", "hicoo"],
        title=f"E5: parallel MTTKRP speedup over parallel COO "
              f"(model, P={nthreads}, R={RANK}, b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10},
    )
    write_result("E5_mttkrp_par.txt", text)

    hicoo = np.array([r["hicoo"] for r in rows])
    assert (hicoo > 1.0).sum() >= len(rows) // 2
    benchmark(speedup_over_coo, dataset("vast"), RANK, machine, nthreads,
              BENCH_BLOCK_BITS)


def test_bench_json_parallel():
    """Machine-readable simulated-parallel HiCOO MTTKRP -> BENCH_mttkrp.json.

    Three variants per (dataset, strategy): ``legacy`` (the old per-call
    path: superblock + schedule rebuild, per-block index loop, np.add.at),
    ``unplanned`` (production dispatch without a plan — still hits the
    tensor's memoized gather cache when warm), and ``planned`` (explicit
    plan, warm — what CP-ALS iterations 2..K pay)."""
    nthreads = 4
    records = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        for strategy in ("schedule", "privatize"):
            t_legacy = best_time(legacy_parallel_hicoo, hic, factors, 0,
                                 nthreads, strategy)
            t_unplanned = best_time(
                lambda: mttkrp_parallel(hic, factors, 0, nthreads, strategy))
            plan = plan_mttkrp(hic, RANK, nthreads, strategy=strategy)
            plan.ensure_gathers(hic)
            t_planned = best_time(
                lambda: mttkrp_parallel(hic, factors, 0, nthreads, plan=plan))
            for variant, t in (("legacy", t_legacy),
                               ("unplanned", t_unplanned),
                               ("planned", t_planned)):
                records.append({
                    "op": "mttkrp_par", "format": "hicoo",
                    "strategy": strategy, "dataset": name, "variant": variant,
                    "nnz": coo.nnz, "rank": RANK, "nthreads": nthreads,
                    "time_s": t,
                })
            assert t_planned < t_legacy, (
                f"{name}/{strategy}: planned path slower than legacy")
    write_bench_json(records)
    by = {(r["dataset"], r["strategy"], r["variant"]): r["time_s"]
          for r in records}
    speedups = {
        f"{n}/{s}": by[(n, s, "legacy")] / by[(n, s, "planned")]
        for n in TIMED_DATASETS for s in ("schedule", "privatize")}
    print(f"parallel HiCOO planned-vs-legacy speedups: {speedups}")


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("strategy", ["schedule", "privatize"])
def test_measured_parallel_hicoo(benchmark, name, strategy):
    coo = dataset(name)
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    run = benchmark(mttkrp_parallel, hic, factors, 0, 4, strategy)
    assert run.thread_nnz.sum() == coo.nnz
