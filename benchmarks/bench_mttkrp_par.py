"""E5 — parallel MTTKRP at full machine width.

Regenerates the paper's multicore figure: predicted all-mode MTTKRP speedup
of each format over *parallel COO* at P = machine cores.  Expected shape:
HiCOO's advantage over COO grows versus the sequential case because COO's
atomic scatter updates serialize, while HiCOO's superblock schedule is
lock-free and its privatized fallback only pays a small reduction.

The measured part times the real parallel kernels (strategy dispatch +
per-thread execution) on the timed subset.
"""

import functools
import os

import numpy as np
import pytest

from repro.analysis.model import speedup_over_coo
from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.formats.alto import AltoTensor
from repro.formats.coo import CooTensor
from repro.kernels.mttkrp import mttkrp, mttkrp_parallel
from repro.kernels.plan import plan_mttkrp

from conftest import (BENCH_BLOCK_BITS, RANK, TIMED_DATASETS,
                      all_dataset_names, best_time, dataset, write_bench_json,
                      write_result)
from legacy import legacy_parallel_hicoo

#: file holding the true-multicore wall-clock records (kept separate from
#: BENCH_mttkrp.json because these numbers are core-count dependent)
PROC_BENCH_FILE = "BENCH_mttkrp_proc.json"

#: file holding the ALTO-vs-HiCOO records on the skewed + regular suites
ALTO_BENCH_FILE = "BENCH_alto.json"


def test_e5_parallel_speedup_figure(machine, benchmark):
    nthreads = machine.cores
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        speeds = speedup_over_coo(coo, RANK, machine, nthreads=nthreads,
                                  block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "coo": speeds["coo"],
            "csf": speeds["csf"],
            "hicoo": speeds["hicoo"],
        })
    text = render_table(
        rows, ["dataset", "coo", "csf", "hicoo"],
        title=f"E5: parallel MTTKRP speedup over parallel COO "
              f"(model, P={nthreads}, R={RANK}, b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10},
    )
    write_result("E5_mttkrp_par.txt", text)

    hicoo = np.array([r["hicoo"] for r in rows])
    assert (hicoo > 1.0).sum() >= len(rows) // 2
    benchmark(speedup_over_coo, dataset("vast"), RANK, machine, nthreads,
              BENCH_BLOCK_BITS)


def test_bench_json_parallel():
    """Machine-readable simulated-parallel HiCOO MTTKRP -> BENCH_mttkrp.json.

    Three variants per (dataset, strategy): ``legacy`` (the old per-call
    path: superblock + schedule rebuild, per-block index loop, np.add.at),
    ``unplanned`` (production dispatch without a plan — still hits the
    tensor's memoized gather cache when warm), and ``planned`` (explicit
    plan, warm — what CP-ALS iterations 2..K pay)."""
    nthreads = 4
    records = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        for strategy in ("schedule", "privatize"):
            t_legacy = best_time(legacy_parallel_hicoo, hic, factors, 0,
                                 nthreads, strategy)
            t_unplanned = best_time(
                lambda: mttkrp_parallel(hic, factors, 0, nthreads, strategy))
            plan = plan_mttkrp(hic, RANK, nthreads, strategy=strategy)
            plan.ensure_gathers(hic)
            t_planned = best_time(
                lambda: mttkrp_parallel(hic, factors, 0, nthreads, plan=plan))
            for variant, t in (("legacy", t_legacy),
                               ("unplanned", t_unplanned),
                               ("planned", t_planned)):
                records.append({
                    "op": "mttkrp_par", "format": "hicoo",
                    "strategy": strategy, "dataset": name, "variant": variant,
                    "nnz": coo.nnz, "rank": RANK, "nthreads": nthreads,
                    "time_s": t,
                })
            assert t_planned < t_legacy, (
                f"{name}/{strategy}: planned path slower than legacy")
    write_bench_json(records)
    by = {(r["dataset"], r["strategy"], r["variant"]): r["time_s"]
          for r in records}
    speedups = {
        f"{n}/{s}": by[(n, s, "legacy")] / by[(n, s, "planned")]
        for n in TIMED_DATASETS for s in ("schedule", "privatize")}
    print(f"parallel HiCOO planned-vs-legacy speedups: {speedups}")


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("strategy", ["schedule", "privatize"])
def test_measured_parallel_hicoo(benchmark, name, strategy):
    coo = dataset(name)
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    run = benchmark(mttkrp_parallel, hic, factors, 0, 4, strategy)
    assert run.thread_nnz.sum() == coo.nnz


# ----------------------------------------------------------------------
# true multicore: the process backend against sequential wall clock
# ----------------------------------------------------------------------
def bench_process_backend(nworkers: int = 4, repeat: int = 5,
                          backends=("thread", "process")):
    """Wall-clock sequential vs real-parallel MTTKRP on the timed subset.

    Unlike the simulated numbers above these are *elapsed* times: the
    process backend runs the superblock partition on ``nworkers`` worker
    processes over shared memory, so on a multicore host the speedup over
    ``sequential`` is genuine.  Records carry ``cores`` so the regression
    guard can tell an expected single-core result from a real regression.
    """
    from repro.parallel import procpool

    cores = os.cpu_count() or 1
    records = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        plan = plan_mttkrp(hic, RANK, nworkers)
        plan.ensure_gathers(hic)
        strategy = mttkrp_parallel(hic, factors, 0, nworkers,
                                   plan=plan).strategy
        times = {"sequential": best_time(mttkrp, hic, factors, 0,
                                         repeat=repeat)}
        for backend in backends:
            times[backend] = best_time(
                lambda b=backend: mttkrp_parallel(hic, factors, 0, nworkers,
                                                  plan=plan, backend=b),
                repeat=repeat)
        procpool.release_shared(hic)
        for variant, t in times.items():
            records.append({
                "op": "mttkrp_wall", "format": "hicoo", "strategy": strategy,
                "dataset": name, "variant": variant, "nnz": coo.nnz,
                "rank": RANK, "nthreads": nworkers, "cores": cores,
                "time_s": t,
            })
    return records


def process_speedups(records, variant: str = "process"):
    """Per-dataset sequential/variant speedups from bench records."""
    by = {(r["dataset"], r["variant"]): r["time_s"] for r in records}
    return {name: by[(name, "sequential")] / by[(name, variant)]
            for name in sorted({r["dataset"] for r in records})
            if (name, variant) in by}


def test_bench_json_process():
    """True-multicore wall-clock records -> BENCH_mttkrp_proc.json.

    Always records; the >= 1.5x speedup floor is enforced by
    ``check_regression.py`` (and CI), gated on a host with enough cores —
    on a single-core box a process pool cannot beat sequential wall clock.
    """
    records = bench_process_backend(nworkers=4)
    write_bench_json(records, PROC_BENCH_FILE)
    speeds = process_speedups(records)
    print(f"process-backend wall-clock speedup over sequential "
          f"(cores={os.cpu_count()}): {speeds}")
    for r in records:
        assert r["time_s"] > 0


# ----------------------------------------------------------------------
# ALTO vs HiCOO: skewed/hyper-sparse synthetics + the regular registry suite
# ----------------------------------------------------------------------
#: skewed/hyper-sparse synthetic regime — nonzeros scatter across a huge,
#: unevenly-populated index space, so HiCOO degenerates to ~1-nnz blocks
#: and its per-call superblock schedule dominates; ALTO's equal-nnz
#: partition over linearized keys is structure-oblivious
ALTO_SKEWED_SUITE = ("zipf", "hyper", "tail")
#: regular regime — the registry tensors HiCOO was designed for (parity gate)
ALTO_REGULAR_SUITE = tuple(TIMED_DATASETS)


def _skewed_coo(shape, nnz, seed, a=1.3):
    """Hyper-sparse COO with a Zipf-skewed mode 0 (a few hot rows)."""
    rng = np.random.default_rng(seed)
    r = np.minimum((rng.zipf(a, nnz) - 1) % shape[0], shape[0] - 1)
    idx = np.stack([r] + [rng.integers(0, s, nnz) for s in shape[1:]],
                   axis=1)
    return CooTensor(shape, idx, rng.standard_normal(nnz).astype(np.float32))


@functools.lru_cache(maxsize=None)
def alto_dataset(name: str):
    """Tensor behind one ALTO-suite name: synthetic regimes + registry."""
    if name == "zipf":   # skewed rows, mid-size modes
        return _skewed_coo((200000, 8000, 800), 60000, seed=21)
    if name == "hyper":  # uniformly hyper-sparse: nnz << volume
        rng = np.random.default_rng(22)
        shape, nnz = (100000, 50000, 20000), 50000
        idx = np.stack([rng.integers(0, s, nnz) for s in shape], axis=1)
        return CooTensor(shape, idx,
                         rng.standard_normal(nnz).astype(np.float32))
    if name == "tail":   # long-tailed mode 0 with tiny trailing modes
        return _skewed_coo((500000, 300, 40), 40000, seed=23, a=1.1)
    return dataset(name)


def bench_alto(nthreads: int = 4, repeat: int = 5):
    """Warm unplanned parallel MTTKRP, ALTO vs HiCOO, both suites.

    The unplanned dispatch is what one-shot callers (and the tuner's
    auto-pick) pay per call; warmup fills each format's memoized caches so
    the numbers isolate steady-state dispatch + kernel cost.
    """
    records = []
    for suite, names in (("skewed", ALTO_SKEWED_SUITE),
                         ("regular", ALTO_REGULAR_SUITE)):
        for name in names:
            coo = alto_dataset(name)
            rng = np.random.default_rng(0)
            factors = [rng.random((s, RANK)) for s in coo.shape]
            tensors = {"hicoo": HicooTensor(coo, block_bits=BENCH_BLOCK_BITS),
                       "alto": AltoTensor(coo)}
            for fmt, tensor in tensors.items():
                t = best_time(
                    lambda t=tensor: mttkrp_parallel(t, factors, 0, nthreads,
                                                     "schedule"),
                    repeat=repeat)
                records.append({
                    "op": "mttkrp_alto", "format": fmt,
                    "strategy": "schedule", "dataset": name,
                    "variant": "unplanned", "suite": suite, "nnz": coo.nnz,
                    "rank": RANK, "nthreads": nthreads, "time_s": t,
                })
    return records


def alto_speedups(records, suite: str):
    """Per-dataset HiCOO/ALTO time ratios for one suite (>1 = ALTO wins)."""
    by = {(r["dataset"], r["format"]): r["time_s"]
          for r in records if r.get("suite") == suite}
    return {name: by[(name, "hicoo")] / by[(name, "alto")]
            for name in sorted({k[0] for k in by})
            if (name, "alto") in by and (name, "hicoo") in by}


def alto_geomean(records, suite: str) -> float:
    import math

    speeds = alto_speedups(records, suite)
    if not speeds:
        return float("nan")
    return math.exp(sum(math.log(s) for s in speeds.values()) / len(speeds))


def test_bench_json_alto():
    """ALTO-vs-HiCOO records -> BENCH_alto.json.

    Always records; the >= 1.3x skewed-suite floor and the >= 0.95x
    regular-suite parity gate are enforced by ``check_regression.py``.
    """
    records = bench_alto(nthreads=4)
    write_bench_json(records, ALTO_BENCH_FILE)
    for suite in ("skewed", "regular"):
        print(f"alto-vs-hicoo {suite} suite: {alto_speedups(records, suite)} "
              f"(geomean {alto_geomean(records, suite):.2f}x)")
    for r in records:
        assert r["time_s"] > 0


def main(argv=None) -> int:
    """Script mode: ``python benchmarks/bench_mttkrp_par.py --backend process``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="wall-clock parallel MTTKRP benchmark")
    parser.add_argument("--backend", choices=["thread", "process"],
                        default="process", help="parallel backend to time")
    parser.add_argument("--nworkers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--alto", action="store_true",
                        help="run the ALTO-vs-HiCOO suite instead of the "
                             "process-backend bench")
    args = parser.parse_args(argv)

    if args.alto:
        records = bench_alto(nthreads=args.nworkers, repeat=args.repeat)
        path = write_bench_json(records, ALTO_BENCH_FILE)
        for suite in ("skewed", "regular"):
            for name, speed in alto_speedups(records, suite).items():
                print(f"  {suite:<8s} {name:<6s} hicoo/alto {speed:.2f}x")
            print(f"  {suite} geomean: {alto_geomean(records, suite):.2f}x")
        print(f"[records in {path}]")
        return 0

    records = bench_process_backend(nworkers=args.nworkers,
                                    repeat=args.repeat,
                                    backends=(args.backend,))
    path = write_bench_json(records, PROC_BENCH_FILE)
    cores = os.cpu_count() or 1
    print(f"cores={cores} nworkers={args.nworkers} backend={args.backend}")
    by = {(r["dataset"], r["variant"]): r["time_s"] for r in records}
    for name, speed in process_speedups(records, args.backend).items():
        t_seq = by[(name, "sequential")]
        t_par = by[(name, args.backend)]
        print(f"  {name:<6s} sequential {t_seq * 1e3:8.2f} ms  "
              f"{args.backend} {t_par * 1e3:8.2f} ms  ({speed:.2f}x)")
    print(f"[records in {path}]")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
