"""E5 — parallel MTTKRP at full machine width.

Regenerates the paper's multicore figure: predicted all-mode MTTKRP speedup
of each format over *parallel COO* at P = machine cores.  Expected shape:
HiCOO's advantage over COO grows versus the sequential case because COO's
atomic scatter updates serialize, while HiCOO's superblock schedule is
lock-free and its privatized fallback only pays a small reduction.

The measured part times the real parallel kernels (strategy dispatch +
per-thread execution) on the timed subset.
"""

import numpy as np
import pytest

from repro.analysis.model import speedup_over_coo
from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.kernels.mttkrp import mttkrp_parallel

from conftest import (BENCH_BLOCK_BITS, RANK, TIMED_DATASETS,
                      all_dataset_names, dataset, write_result)


def test_e5_parallel_speedup_figure(machine, benchmark):
    nthreads = machine.cores
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        speeds = speedup_over_coo(coo, RANK, machine, nthreads=nthreads,
                                  block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "coo": speeds["coo"],
            "csf": speeds["csf"],
            "hicoo": speeds["hicoo"],
        })
    text = render_table(
        rows, ["dataset", "coo", "csf", "hicoo"],
        title=f"E5: parallel MTTKRP speedup over parallel COO "
              f"(model, P={nthreads}, R={RANK}, b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10},
    )
    write_result("E5_mttkrp_par.txt", text)

    hicoo = np.array([r["hicoo"] for r in rows])
    assert (hicoo > 1.0).sum() >= len(rows) // 2
    benchmark(speedup_over_coo, dataset("vast"), RANK, machine, nthreads,
              BENCH_BLOCK_BITS)


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("strategy", ["schedule", "privatize"])
def test_measured_parallel_hicoo(benchmark, name, strategy):
    coo = dataset(name)
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    run = benchmark(mttkrp_parallel, hic, factors, 0, 4, strategy)
    assert run.thread_nnz.sum() == coo.nnz
