"""E5 — parallel MTTKRP at full machine width.

Regenerates the paper's multicore figure: predicted all-mode MTTKRP speedup
of each format over *parallel COO* at P = machine cores.  Expected shape:
HiCOO's advantage over COO grows versus the sequential case because COO's
atomic scatter updates serialize, while HiCOO's superblock schedule is
lock-free and its privatized fallback only pays a small reduction.

The measured part times the real parallel kernels (strategy dispatch +
per-thread execution) on the timed subset.
"""

import os

import numpy as np
import pytest

from repro.analysis.model import speedup_over_coo
from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.kernels.mttkrp import mttkrp, mttkrp_parallel
from repro.kernels.plan import plan_mttkrp

from conftest import (BENCH_BLOCK_BITS, RANK, TIMED_DATASETS,
                      all_dataset_names, best_time, dataset, write_bench_json,
                      write_result)
from legacy import legacy_parallel_hicoo

#: file holding the true-multicore wall-clock records (kept separate from
#: BENCH_mttkrp.json because these numbers are core-count dependent)
PROC_BENCH_FILE = "BENCH_mttkrp_proc.json"


def test_e5_parallel_speedup_figure(machine, benchmark):
    nthreads = machine.cores
    rows = []
    for name in all_dataset_names():
        coo = dataset(name)
        speeds = speedup_over_coo(coo, RANK, machine, nthreads=nthreads,
                                  block_bits=BENCH_BLOCK_BITS)
        rows.append({
            "dataset": name,
            "coo": speeds["coo"],
            "csf": speeds["csf"],
            "hicoo": speeds["hicoo"],
        })
    text = render_table(
        rows, ["dataset", "coo", "csf", "hicoo"],
        title=f"E5: parallel MTTKRP speedup over parallel COO "
              f"(model, P={nthreads}, R={RANK}, b={BENCH_BLOCK_BITS})",
        widths={"dataset": 10},
    )
    write_result("E5_mttkrp_par.txt", text)

    hicoo = np.array([r["hicoo"] for r in rows])
    assert (hicoo > 1.0).sum() >= len(rows) // 2
    benchmark(speedup_over_coo, dataset("vast"), RANK, machine, nthreads,
              BENCH_BLOCK_BITS)


def test_bench_json_parallel():
    """Machine-readable simulated-parallel HiCOO MTTKRP -> BENCH_mttkrp.json.

    Three variants per (dataset, strategy): ``legacy`` (the old per-call
    path: superblock + schedule rebuild, per-block index loop, np.add.at),
    ``unplanned`` (production dispatch without a plan — still hits the
    tensor's memoized gather cache when warm), and ``planned`` (explicit
    plan, warm — what CP-ALS iterations 2..K pay)."""
    nthreads = 4
    records = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        for strategy in ("schedule", "privatize"):
            t_legacy = best_time(legacy_parallel_hicoo, hic, factors, 0,
                                 nthreads, strategy)
            t_unplanned = best_time(
                lambda: mttkrp_parallel(hic, factors, 0, nthreads, strategy))
            plan = plan_mttkrp(hic, RANK, nthreads, strategy=strategy)
            plan.ensure_gathers(hic)
            t_planned = best_time(
                lambda: mttkrp_parallel(hic, factors, 0, nthreads, plan=plan))
            for variant, t in (("legacy", t_legacy),
                               ("unplanned", t_unplanned),
                               ("planned", t_planned)):
                records.append({
                    "op": "mttkrp_par", "format": "hicoo",
                    "strategy": strategy, "dataset": name, "variant": variant,
                    "nnz": coo.nnz, "rank": RANK, "nthreads": nthreads,
                    "time_s": t,
                })
            assert t_planned < t_legacy, (
                f"{name}/{strategy}: planned path slower than legacy")
    write_bench_json(records)
    by = {(r["dataset"], r["strategy"], r["variant"]): r["time_s"]
          for r in records}
    speedups = {
        f"{n}/{s}": by[(n, s, "legacy")] / by[(n, s, "planned")]
        for n in TIMED_DATASETS for s in ("schedule", "privatize")}
    print(f"parallel HiCOO planned-vs-legacy speedups: {speedups}")


@pytest.mark.parametrize("name", TIMED_DATASETS)
@pytest.mark.parametrize("strategy", ["schedule", "privatize"])
def test_measured_parallel_hicoo(benchmark, name, strategy):
    coo = dataset(name)
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    rng = np.random.default_rng(0)
    factors = [rng.random((s, RANK)) for s in coo.shape]
    run = benchmark(mttkrp_parallel, hic, factors, 0, 4, strategy)
    assert run.thread_nnz.sum() == coo.nnz


# ----------------------------------------------------------------------
# true multicore: the process backend against sequential wall clock
# ----------------------------------------------------------------------
def bench_process_backend(nworkers: int = 4, repeat: int = 5,
                          backends=("thread", "process")):
    """Wall-clock sequential vs real-parallel MTTKRP on the timed subset.

    Unlike the simulated numbers above these are *elapsed* times: the
    process backend runs the superblock partition on ``nworkers`` worker
    processes over shared memory, so on a multicore host the speedup over
    ``sequential`` is genuine.  Records carry ``cores`` so the regression
    guard can tell an expected single-core result from a real regression.
    """
    from repro.parallel import procpool

    cores = os.cpu_count() or 1
    records = []
    for name in TIMED_DATASETS:
        coo = dataset(name)
        hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
        rng = np.random.default_rng(0)
        factors = [rng.random((s, RANK)) for s in coo.shape]
        plan = plan_mttkrp(hic, RANK, nworkers)
        plan.ensure_gathers(hic)
        strategy = mttkrp_parallel(hic, factors, 0, nworkers,
                                   plan=plan).strategy
        times = {"sequential": best_time(mttkrp, hic, factors, 0,
                                         repeat=repeat)}
        for backend in backends:
            times[backend] = best_time(
                lambda b=backend: mttkrp_parallel(hic, factors, 0, nworkers,
                                                  plan=plan, backend=b),
                repeat=repeat)
        procpool.release_shared(hic)
        for variant, t in times.items():
            records.append({
                "op": "mttkrp_wall", "format": "hicoo", "strategy": strategy,
                "dataset": name, "variant": variant, "nnz": coo.nnz,
                "rank": RANK, "nthreads": nworkers, "cores": cores,
                "time_s": t,
            })
    return records


def process_speedups(records, variant: str = "process"):
    """Per-dataset sequential/variant speedups from bench records."""
    by = {(r["dataset"], r["variant"]): r["time_s"] for r in records}
    return {name: by[(name, "sequential")] / by[(name, variant)]
            for name in sorted({r["dataset"] for r in records})
            if (name, variant) in by}


def test_bench_json_process():
    """True-multicore wall-clock records -> BENCH_mttkrp_proc.json.

    Always records; the >= 1.5x speedup floor is enforced by
    ``check_regression.py`` (and CI), gated on a host with enough cores —
    on a single-core box a process pool cannot beat sequential wall clock.
    """
    records = bench_process_backend(nworkers=4)
    write_bench_json(records, PROC_BENCH_FILE)
    speeds = process_speedups(records)
    print(f"process-backend wall-clock speedup over sequential "
          f"(cores={os.cpu_count()}): {speeds}")
    for r in records:
        assert r["time_s"] > 0


def main(argv=None) -> int:
    """Script mode: ``python benchmarks/bench_mttkrp_par.py --backend process``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="wall-clock parallel MTTKRP benchmark")
    parser.add_argument("--backend", choices=["thread", "process"],
                        default="process", help="parallel backend to time")
    parser.add_argument("--nworkers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=5)
    args = parser.parse_args(argv)

    records = bench_process_backend(nworkers=args.nworkers,
                                    repeat=args.repeat,
                                    backends=(args.backend,))
    path = write_bench_json(records, PROC_BENCH_FILE)
    cores = os.cpu_count() or 1
    print(f"cores={cores} nworkers={args.nworkers} backend={args.backend}")
    by = {(r["dataset"], r["variant"]): r["time_s"] for r in records}
    for name, speed in process_speedups(records, args.backend).items():
        t_seq = by[(name, "sequential")]
        t_par = by[(name, args.backend)]
        print(f"  {name:<6s} sequential {t_seq * 1e3:8.2f} ms  "
              f"{args.backend} {t_par * 1e3:8.2f} ms  ({speed:.2f}x)")
    print(f"[records in {path}]")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
