"""E8 — superblock size and parallel-strategy ablation.

Regenerates the paper's scheduling analysis: for a sweep of superblock
sizes, the number of superblocks, independent groups per mode, the lock-free
schedule's load imbalance, and which strategy the heuristic picks.  Expected
shape: small superblocks give many groups (good parallelism, more scheduling
state); very large superblocks starve the scheduler and force privatization.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.hicoo import HicooTensor
from repro.core.scheduler import choose_strategy, schedule_mode
from repro.core.superblock import build_superblocks

from conftest import BENCH_BLOCK_BITS, RANK, dataset, write_result

NTHREADS = 8


def test_e8_superblock_sweep(benchmark):
    coo = dataset("deli")
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    rows = []
    for sb_bits in range(BENCH_BLOCK_BITS, BENCH_BLOCK_BITS + 6):
        sbs = build_superblocks(hic, sb_bits)
        sched = schedule_mode(sbs, 0, NTHREADS)
        rows.append({
            "L": 1 << sb_bits,
            "nsuper": sbs.nsuper,
            "groups_m0": sched.ngroups,
            "imbalance": sched.load_imbalance(),
            "eff_par": sched.effective_parallelism(),
            "strategy": choose_strategy(sbs, 0, NTHREADS, coo.shape[0], RANK,
                                        privatize_limit_bytes=1 << 16),
        })
    text = render_table(
        rows, ["L", "nsuper", "groups_m0", "imbalance", "eff_par", "strategy"],
        title=f"E8: superblock sweep on deli (b={BENCH_BLOCK_BITS}, "
              f"P={NTHREADS}, mode 0)")
    write_result("E8_superblock.txt", text)

    # coarsening is monotone and eventually starves the scheduler
    nsupers = [r["nsuper"] for r in rows]
    assert all(a >= b for a, b in zip(nsupers, nsupers[1:]))
    sbs = build_superblocks(hic, BENCH_BLOCK_BITS + 2)
    benchmark(schedule_mode, sbs, 0, NTHREADS)


@pytest.mark.parametrize("mode", [0, 1, 2])
def test_e8_schedule_safety_at_scale(mode):
    """Every wave of the lock-free schedule keeps output ranges disjoint —
    verified on a full-size analog, all modes."""
    coo = dataset("deli")
    hic = HicooTensor(coo, block_bits=BENCH_BLOCK_BITS)
    sbs = build_superblocks(hic, BENCH_BLOCK_BITS + 2)
    sched = schedule_mode(sbs, mode, NTHREADS)
    sched.verify(sbs)
    assert sched.thread_nnz.sum() == coo.nnz
