"""Decomposition of a tensor's index space into B × … × B blocks.

HiCOO splits every coordinate ``i`` into a block coordinate ``i >> b`` and an
element offset ``i & (B-1)`` with ``B = 2**b``.  Offsets are stored in one
byte, which imposes the paper's hard constraint ``B <= 256`` (b <= 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.coo import CooTensor

__all__ = ["MAX_BLOCK_BITS", "BlockDecomposition", "decompose"]

#: element offsets are stored as uint8, so a block edge cannot exceed 256
MAX_BLOCK_BITS = 8


@dataclass
class BlockDecomposition:
    """Nonzeros of a COO tensor grouped into Morton-ordered index blocks.

    Attributes
    ----------
    block_bits : b, with block edge B = 2**b.
    block_ptr : (nblocks + 1,) int64 — nonzero range of each block.
    block_coords : (nblocks, nmodes) int64 — block coordinates (index >> b).
    elem_offsets : (nnz, nmodes) uint8 — within-block offsets, aligned with
        ``values``.
    values : (nnz,) float64 — nonzero values in block-grouped order.
    shape : logical tensor shape.
    """

    block_bits: int
    block_ptr: np.ndarray
    block_coords: np.ndarray
    elem_offsets: np.ndarray
    values: np.ndarray
    shape: tuple

    @property
    def nblocks(self) -> int:
        return len(self.block_coords)

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def nmodes(self) -> int:
        return len(self.shape)

    def block_nnz(self) -> np.ndarray:
        """Nonzeros per block, length ``nblocks``."""
        return np.diff(self.block_ptr)

    def nnz_block_of(self) -> np.ndarray:
        """Block id of every nonzero (length ``nnz``)."""
        return np.repeat(np.arange(self.nblocks), self.block_nnz())


def decompose(coo: CooTensor, block_bits: int) -> BlockDecomposition:
    """Group the nonzeros of ``coo`` into 2**block_bits-edge blocks.

    Nonzeros are sorted in Z-Morton order of their block coordinates (offsets
    ordered lexicographically inside each block), then consecutive runs with
    equal block coordinates become blocks.
    """
    if not isinstance(coo, CooTensor):
        raise TypeError(f"expected a CooTensor, got {type(coo).__name__}")
    if not 1 <= block_bits <= MAX_BLOCK_BITS:
        raise ValueError(
            f"block_bits must be in [1, {MAX_BLOCK_BITS}] so that offsets fit "
            f"in one byte, got {block_bits}"
        )
    ordered = coo.sort_morton(block_bits=block_bits)
    inds = ordered.indices
    bcoords = inds >> block_bits
    offsets = (inds & ((1 << block_bits) - 1)).astype(np.uint8)

    if len(inds) == 0:
        return BlockDecomposition(
            block_bits=block_bits,
            block_ptr=np.zeros(1, dtype=np.int64),
            block_coords=np.empty((0, coo.nmodes), dtype=np.int64),
            elem_offsets=offsets,
            values=ordered.values,
            shape=coo.shape,
        )

    changed = np.any(bcoords[1:] != bcoords[:-1], axis=1)
    starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
    block_ptr = np.concatenate([starts, [len(inds)]]).astype(np.int64)
    return BlockDecomposition(
        block_bits=block_bits,
        block_ptr=block_ptr,
        block_coords=bcoords[starts],
        elem_offsets=offsets,
        values=ordered.values,
        shape=coo.shape,
    )
