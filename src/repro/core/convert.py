"""One-sort, multi-block-size HiCOO conversion (the construction pipeline).

The paper's conversion experiment (E10) treats HiCOO construction as a
one-time cost amortized across MTTKRP iterations; its block-size study (E7)
sweeps ``b`` in [1..8] per tensor.  The naive pipeline pays a full Morton
encode + sort + block scan for *every* block size, even though all of those
orders derive from a single key: with the Morton code taken over the full
coordinates, the code of the block coordinates at any ``b`` is just the code
shifted right by ``b * nmodes`` bits.  One encode + one sort therefore makes
the blocks of every block size contiguous runs at once.

:class:`MortonContext` captures that shared work: it encodes and sorts a COO
tensor once, then derives per-``b`` block boundaries (a vectorized compare on
the precomputed codes), storage totals (from boundary counts alone — no
tensor materialization), and full :class:`~repro.core.blocking.BlockDecomposition`
objects (one cheap within-block offset ordering per ``b``).  ``best_block_bits``,
the tuner, and the block-size benchmarks all reuse one context, turning the
former 8 sorts of a full sweep into 1.

Per-``b`` results are memoized on the context (and the context itself on the
:class:`~repro.formats.coo.CooTensor`, mirroring the ``task_gather`` cache of
the kernel layer), with explicit ``clear()`` / ``nbytes()`` accounting.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..obs import metrics, trace
from ..util.bitops import (bits_for, morton_encode, pack_key64,
                           shift_right_words, stable_argsort_u64)
from .blocking import MAX_BLOCK_BITS, BlockDecomposition

__all__ = ["MortonContext", "hicoo_storage_bytes", "within_block_order"]


def within_block_order(run_id: np.ndarray, offsets: np.ndarray, b: int,
                       nruns: int) -> np.ndarray:
    """Stable permutation ordering each block's elements lexicographically
    by offset (mode 0 most significant); blocks stay in place.

    ``run_id`` is the non-decreasing block index of every nonzero,
    ``offsets`` the (nnz, N) element offsets inside each block.  Shared by
    :class:`MortonContext` and the direct converters of
    :mod:`repro.core.converters` — both must restore the exact HiCOO
    within-block element order from a block-grouped sequence.
    """
    nmodes = offsets.shape[1]
    off_bits = b * nmodes
    if off_bits <= 64:
        off_key = pack_key64([offsets[:, m] for m in range(nmodes)],
                             [b] * nmodes)
        run_bits = bits_for(nruns - 1)
        if run_bits + off_bits <= 64:
            key = (run_id.view(np.uint64) << np.uint64(off_bits)) | off_key
            return stable_argsort_u64(key)
        return np.lexsort((off_key, run_id))
    keys = tuple(offsets[:, m] for m in reversed(range(nmodes)))
    return np.lexsort(keys + (run_id,))


def hicoo_storage_bytes(nblocks: int, nnz: int, nmodes: int) -> Dict[str, int]:
    """HiCOO storage accounting from counts alone (paper notation: 8-byte
    bptr, 4-byte binds, 1-byte einds, 4-byte values) — must stay in lockstep
    with :meth:`repro.core.hicoo.HicooTensor.storage_bytes`."""
    return {
        "bptr": 8 * (nblocks + 1),
        "binds": 4 * nmodes * nblocks,
        "einds": 1 * nmodes * nnz,
        "values": 4 * nnz,
    }


class MortonContext:
    """One Morton encode + sort of a COO tensor, reusable across block sizes.

    Parameters
    ----------
    coo : the source :class:`~repro.formats.coo.CooTensor`.  Its ``indices``
        and ``values`` are treated as immutable for the lifetime of the
        context (the same contract as the ``task_gather`` cache).

    Attributes
    ----------
    nbits : bits per coordinate of the full-index Morton code.
    codes : (W, nnz) uint64 code words of the sorted nonzeros, msb first.
    order : permutation taking the source tensor into full Morton order.
    indices / values : the source nonzeros in full Morton order.
    """

    def __init__(self, coo):
        indices = np.asarray(coo.indices)
        if indices.ndim != 2:
            raise ValueError(
                f"indices must be 2-D (nnz, nmodes), got shape {indices.shape}")
        self.shape = tuple(coo.shape)
        self.nmodes = indices.shape[1]
        self.nnz = len(indices)
        self.nbits = bits_for(int(indices.max()) if indices.size else 0)
        if self.nnz:
            with trace.span("convert.encode", nnz=self.nnz, nbits=self.nbits):
                words = morton_encode(indices.T, self.nbits)
            with trace.span("convert.sort", nnz=self.nnz, words=len(words)):
                if len(words) == 1:
                    order = stable_argsort_u64(words[0])
                else:
                    order = np.lexsort(words[::-1])
        else:
            words = np.zeros((1, 0), dtype=np.uint64)
            order = np.empty(0, dtype=np.int64)
        self.order = order
        self.codes = np.ascontiguousarray(words[:, order])
        self.indices = indices[order]
        self.values = np.asarray(coo.values)[order]
        self._starts: Dict[int, np.ndarray] = {}
        self._decompositions: Dict[int, BlockDecomposition] = {}
        metrics.inc("convert.context_nnz", self.nnz)

    # ------------------------------------------------------------------
    # per-block-size structure
    # ------------------------------------------------------------------
    def block_starts(self, block_bits: int) -> np.ndarray:
        """First-nonzero positions of every block at ``block_bits``.

        The block Morton code is ``codes >> (block_bits * nmodes)``, so the
        boundaries are wherever those high bits change between consecutive
        sorted nonzeros — no re-sort, no re-encode.
        """
        b = self._check_bits(block_bits, MAX_BLOCK_BITS)
        starts = self._starts.get(b)
        if starts is None:
            with trace.span("convert.boundaries", b=b, nnz=self.nnz):
                if self.nnz == 0:
                    starts = np.empty(0, dtype=np.int64)
                else:
                    high = shift_right_words(self.codes, b * self.nmodes)
                    changed = np.zeros(self.nnz - 1, dtype=bool)
                    for word in high:
                        changed |= word[1:] != word[:-1]
                    starts = np.concatenate(
                        [[0], np.flatnonzero(changed) + 1]).astype(np.int64)
            self._starts[b] = starts
        return starts

    def nblocks(self, block_bits: int) -> int:
        return len(self.block_starts(block_bits))

    def storage_bytes(self, block_bits: int) -> Dict[str, int]:
        """HiCOO storage at ``block_bits`` from boundary counts alone."""
        return hicoo_storage_bytes(self.nblocks(block_bits), self.nnz,
                                   self.nmodes)

    def total_bytes(self, block_bits: int) -> int:
        return int(sum(self.storage_bytes(block_bits).values()))

    def decompose(self, block_bits: int) -> BlockDecomposition:
        """Block decomposition at ``block_bits``, bit-identical to the direct
        :func:`repro.core.blocking.decompose` path.

        Blocks are already contiguous runs of the precomputed order; the only
        per-``b`` work is restoring HiCOO's within-block element order
        (lexicographic by offset, mode 0 most significant) — one stable sort
        keyed by (block run, packed offsets), no re-encode.

        The result is memoized; callers must treat its arrays as read-only.
        """
        b = self._check_bits(block_bits, MAX_BLOCK_BITS)
        dec = self._decompositions.get(b)
        if dec is None:
            metrics.inc("convert.decompose_builds", labels={"b": b})
            with trace.span("convert.decompose", b=b, nnz=self.nnz):
                dec = self._build_decomposition(b)
            self._decompositions[b] = dec
        else:
            metrics.inc("convert.decompose_hits", labels={"b": b})
        return dec

    def _build_decomposition(self, b: int) -> BlockDecomposition:
        nnz, nmodes = self.nnz, self.nmodes
        starts = self.block_starts(b)
        block_ptr = np.concatenate([starts, [nnz]]).astype(np.int64)
        if nnz == 0:
            return BlockDecomposition(
                block_bits=b,
                block_ptr=block_ptr,
                block_coords=np.empty((0, nmodes), dtype=np.int64),
                elem_offsets=np.empty((0, nmodes), dtype=np.uint8),
                values=self.values,
                shape=self.shape,
            )
        mask = (1 << b) - 1
        offsets = self.indices & mask
        run_id = np.zeros(nnz, dtype=np.int64)
        run_id[starts[1:]] = 1
        np.cumsum(run_id, out=run_id)
        order = self._within_block_order(run_id, offsets, b, len(starts))
        indices = self.indices[order]
        block_coords = indices >> b
        return BlockDecomposition(
            block_bits=b,
            block_ptr=block_ptr,
            block_coords=block_coords[starts],
            elem_offsets=(indices & mask).astype(np.uint8),
            values=self.values[order],
            shape=self.shape,
        )

    def _within_block_order(self, run_id: np.ndarray, offsets: np.ndarray,
                            b: int, nruns: int) -> np.ndarray:
        return within_block_order(run_id, offsets, b, nruns)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every memoized per-``b`` structure (keeps the sorted codes)."""
        self._starts.clear()
        self._decompositions.clear()

    def nbytes(self) -> int:
        """Total footprint: sorted codes/indices/values plus cached per-``b``
        boundary arrays and decompositions."""
        total = (self.codes.nbytes + self.order.nbytes +
                 self.indices.nbytes + self.values.nbytes)
        total += sum(s.nbytes for s in self._starts.values())
        for dec in self._decompositions.values():
            total += (dec.block_ptr.nbytes + dec.block_coords.nbytes +
                      dec.elem_offsets.nbytes + dec.values.nbytes)
        return int(total)

    @staticmethod
    def _check_bits(block_bits: int, max_bits: int) -> int:
        b = int(block_bits)
        if not 1 <= b <= max_bits:
            raise ValueError(
                f"block_bits must be in [1, {max_bits}] so that offsets fit "
                f"in one byte, got {block_bits}")
        return b
