"""Exact storage accounting and cross-format comparison (experiment E2).

All formats account storage with the paper's canonical element widths:
``beta_long = 8`` bytes for pointer arrays, ``beta_int = 4`` bytes for
coordinates/fids, ``beta_byte = 1`` byte for HiCOO element offsets, and
4-byte values — independent of the (float64) in-memory dtypes used for
computation, so the numbers are comparable with the paper's Table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..formats.coo import CooTensor
from ..formats.csf import CsfTensor
from ..core.hicoo import HicooTensor

__all__ = ["StorageRow", "compare_formats", "format_table"]


@dataclass
class StorageRow:
    """One line of the storage-comparison table."""

    format_name: str
    total_bytes: int
    index_bytes: int
    value_bytes: int
    bytes_per_nnz: float
    ratio_to_coo: float  # total / COO total; < 1 means smaller than COO

    def compression_vs_coo(self) -> float:
        """COO / this — the paper reports this as 'x smaller than COO'."""
        return 1.0 / self.ratio_to_coo if self.ratio_to_coo else float("inf")


def compare_formats(coo: CooTensor,
                    block_bits: int = 7,
                    csf_trees: Sequence[int] = (1,),
                    mode_order: Optional[Sequence[int]] = None) -> List[StorageRow]:
    """Build COO / CSF / HiCOO instances of one tensor and account storage.

    ``csf_trees`` selects which CSF variants appear — e.g. ``(1, coo.nmodes)``
    reports both one-tree CSF and the mode-generic CSF-N.
    """
    rows: List[StorageRow] = []
    nnz = max(1, coo.nnz)

    coo_parts = coo.storage_bytes()
    coo_total = sum(coo_parts.values())
    rows.append(StorageRow(
        format_name="coo",
        total_bytes=coo_total,
        index_bytes=coo_parts["indices"],
        value_bytes=coo_parts["values"],
        bytes_per_nnz=coo_total / nnz,
        ratio_to_coo=1.0,
    ))

    csf = CsfTensor(coo, mode_order=mode_order)
    for ntrees in csf_trees:
        parts = csf.storage_bytes(ntrees=ntrees)
        total = sum(parts.values())
        name = "csf" if ntrees == 1 else f"csf-{ntrees}"
        rows.append(StorageRow(
            format_name=name,
            total_bytes=total,
            index_bytes=parts["fids"] + parts["fptr"],
            value_bytes=parts["values"],
            bytes_per_nnz=total / nnz,
            ratio_to_coo=total / coo_total if coo_total else float("inf"),
        ))

    hic = HicooTensor(coo, block_bits=block_bits)
    parts = hic.storage_bytes()
    total = sum(parts.values())
    rows.append(StorageRow(
        format_name="hicoo",
        total_bytes=total,
        index_bytes=parts["bptr"] + parts["binds"] + parts["einds"],
        value_bytes=parts["values"],
        bytes_per_nnz=total / nnz,
        ratio_to_coo=total / coo_total if coo_total else float("inf"),
    ))
    return rows


def format_table(rows: Sequence[StorageRow], title: str = "") -> str:
    """Render storage rows as the aligned text table the benches print."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'format':<8s} {'total(B)':>12s} {'index(B)':>12s} {'B/nnz':>8s} {'vs COO':>8s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.format_name:<8s} {row.total_bytes:>12d} {row.index_bytes:>12d} "
            f"{row.bytes_per_nnz:>8.2f} {row.compression_vs_coo():>7.2f}x"
        )
    return "\n".join(lines)
