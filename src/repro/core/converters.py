"""Direct format-to-format converters (taco conversion-routines paper).

"Automatic Generation of Efficient Sparse Tensor Format Conversion
Routines" (arXiv:2001.02609) decomposes any conversion into *coordinate
remapping* (derive the target's sort order from the source's, reusing
whatever order the source already maintains) and *assembly* (build the
target's level structures from the remapped coordinates).  This module is
that decomposition over the level descriptions of
:mod:`repro.formats.levels`:

* the **remapping half** expands the source through the generic
  level-driven iterator (or reads its memoized delinearization) and reuses
  source order wherever the proof allows — CSF's natural-mode lex order is
  already HiCOO's within-block element order, and uniform-width ALTO keys
  *are* zero-extended Morton codes, so ALTO→HiCOO needs a boundary scan
  instead of a sort;
* the **assembly half** is one shared routine per target format
  (:func:`hicoo_parts_from_coords` / :func:`csf_parts_from_coords` /
  :func:`alto_parts_from_coords`) feeding the formats' ``from_parts``
  constructors — no COO tensor is ever materialized on a direct path.

Because every stored format is a *deterministic* function of its
coordinate/value set (blocks in Morton order + offset-lex elements; lex
fiber tree; sorted keys), a direct conversion is bitwise-identical to the
COO round-trip — the property suite in ``tests/test_converters.py`` pins
this for every registered pair.

Pairs with no registered routine fall back to the COO round-trip and tick
the ``convert.fallbacks`` counter; all conversions are traced
(``convert.direct`` / ``convert.fallback`` spans) and timed into the
``convert.seconds`` histogram so conversion cost shows up in the ledger.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

import numpy as np

from ..formats import FORMAT_NAMES
from ..formats.alto import AltoTensor
from ..formats.coo import lex_sort_order_of
from ..formats.csf import CsfTensor, _build_levels
from ..formats.levels import iterate_coords
from ..obs import metrics, trace
from ..util.bitops import (bits_for, morton_encode, shift_right_words,
                           stable_argsort_u64)
from ..util.bitops import alto_encode, alto_widths
from .blocking import MAX_BLOCK_BITS
from .convert import within_block_order
from .hicoo import DEFAULT_BLOCK_BITS, HicooTensor

__all__ = [
    "convert",
    "convert_via_coo",
    "converter_matrix",
    "register_converter",
    "hicoo_parts_from_coords",
    "csf_parts_from_coords",
    "alto_parts_from_coords",
]

#: (src_format, dst_format) -> direct conversion routine
_REGISTRY: Dict[Tuple[str, str], Callable] = {}


def register_converter(src: str, dst: str):
    """Class decorator registering a direct ``src`` → ``dst`` routine.

    Routines take ``(tensor, *, block_bits=None, mode_order=None)`` and
    must produce a tensor bitwise-identical to the COO round-trip —
    the contract the property suite enforces per registered pair.
    """

    def deco(fn):
        _REGISTRY[(src, dst)] = fn
        return fn

    return deco


def convert(tensor, name: str, *, block_bits=None, mode_order=None):
    """Convert ``tensor`` to the format called ``name``.

    Resolution order: identity (same format, no constructor arguments) →
    registered direct routine → COO constructor (a COO source pays no
    round-trip by definition) → COO round-trip fallback (ticks
    ``convert.fallbacks``).  ``block_bits`` applies to ``"hicoo"``,
    ``mode_order`` to ``"csf"``.
    """
    name = str(name).lower()
    if name not in FORMAT_NAMES:
        raise ValueError(
            f"unknown format {name!r}; expected one of {FORMAT_NAMES}")
    src = tensor.format_name
    if src == name and block_bits is None and mode_order is None:
        return tensor
    t0 = time.perf_counter()
    if name == "coo":
        # every format iterates directly (levels.iterate_coords)
        with trace.span("convert.direct", src=src, dst=name):
            out = tensor.to_coo()
        _account("direct", src, name, t0)
        return out
    fn = _REGISTRY.get((src, name))
    if fn is not None:
        with trace.span("convert.direct", src=src, dst=name):
            out = fn(tensor, block_bits=block_bits, mode_order=mode_order)
        _account("direct", src, name, t0)
        return out
    if src == "coo":
        # the target constructors consume COO natively — still no round-trip
        with trace.span("convert.direct", src=src, dst=name):
            out = _from_coo(tensor, name, block_bits, mode_order)
        _account("direct", src, name, t0)
        return out
    return convert_via_coo(tensor, name, block_bits=block_bits,
                           mode_order=mode_order)


def convert_via_coo(tensor, name: str, *, block_bits=None, mode_order=None):
    """The COO round-trip everyone used to pay: materialize, re-sort,
    rebuild.  Kept as the universal fallback; every use is counted."""
    src = tensor.format_name
    t0 = time.perf_counter()
    metrics.inc("convert.fallbacks", labels={"src": src, "dst": name})
    with trace.span("convert.fallback", src=src, dst=name):
        out = _from_coo(tensor.to_coo(), name, block_bits, mode_order)
    _account("fallback", src, name, t0)
    return out


def converter_matrix() -> Dict[Tuple[str, str], str]:
    """``{(src, dst): "direct" | "fallback" | "identity"}`` over every
    ordered format pair (the docs/CLI conversion matrix)."""
    out = {}
    for src in FORMAT_NAMES:
        for dst in FORMAT_NAMES:
            if (src, dst) in _REGISTRY or dst == "coo" or src == "coo":
                out[(src, dst)] = "direct"
            elif src == dst:
                out[(src, dst)] = "identity"
            else:
                out[(src, dst)] = "fallback"
    return out


def _account(path: str, src: str, dst: str, t0: float) -> None:
    labels = {"src": src, "dst": dst}
    metrics.inc(f"convert.{path}", labels=labels)
    metrics.observe("convert.seconds", time.perf_counter() - t0,
                    labels={**labels, "path": path})


def _from_coo(coo, name, block_bits, mode_order):
    if name == "coo":
        return coo
    if name == "csf":
        return CsfTensor(coo, mode_order=mode_order)
    if name == "hicoo":
        if block_bits is None:
            return HicooTensor(coo)
        return HicooTensor(coo, block_bits=block_bits)
    return AltoTensor(coo)


# ----------------------------------------------------------------------
# assembly: coordinates -> target structure (shared by all direct routines)
# ----------------------------------------------------------------------
def _check_block_bits(block_bits) -> int:
    b = DEFAULT_BLOCK_BITS if block_bits is None else int(block_bits)
    if not 1 <= b <= MAX_BLOCK_BITS:
        raise ValueError(
            f"block_bits must be in [1, {MAX_BLOCK_BITS}] so that offsets "
            f"fit in one byte, got {block_bits}")
    return b


def _sort_words(words: np.ndarray) -> np.ndarray:
    """Stable argsort of an msb-first (W, nnz) uint64 key array."""
    if len(words) == 1:
        return stable_argsort_u64(words[0])
    return np.lexsort(words[::-1])


def _block_starts_of(words: np.ndarray, nnz: int) -> np.ndarray:
    """First-row positions of every distinct key in a sorted key array."""
    changed = np.zeros(nnz - 1, dtype=bool)
    for word in words:
        changed |= word[1:] != word[:-1]
    return np.concatenate([[0], np.flatnonzero(changed) + 1]).astype(np.int64)


def hicoo_parts_from_coords(shape, coords, values, block_bits, *,
                            offsets_presorted: bool = False) -> HicooTensor:
    """Assemble a HiCOO tensor from (nnz, N) global coordinates.

    One stable sort by the *block* Morton code — ``(nbits - b) * N`` key
    bits instead of the round-trip's full-width code, so the single-word
    radix path applies far more often — then the shared within-block
    offset ordering.  ``offsets_presorted`` skips that second sort when the
    source sequence is already offset-lexicographic inside each block
    (a natural-mode-order CSF walk restricted to one block is exactly
    HiCOO's element order).
    """
    b = _check_block_bits(block_bits)
    nnz, nmodes = coords.shape
    values = np.asarray(values, dtype=np.float64)
    if nnz == 0:
        return HicooTensor.from_parts(
            shape, b, np.zeros(1, dtype=np.int64),
            np.empty((0, nmodes), dtype=np.uint32),
            np.empty((0, nmodes), dtype=np.uint8), values)
    blocks = coords >> b
    nbits = bits_for(int(blocks.max()))
    words = morton_encode(np.ascontiguousarray(blocks.T), nbits)
    order = _sort_words(words)
    sc = coords[order]
    values = values[order]
    starts = _block_starts_of(words[:, order], nnz)
    mask = (1 << b) - 1
    if not offsets_presorted:
        run_id = np.zeros(nnz, dtype=np.int64)
        run_id[starts[1:]] = 1
        np.cumsum(run_id, out=run_id)
        sub = within_block_order(run_id, sc & mask, b, len(starts))
        sc = sc[sub]
        values = values[sub]
    bptr = np.concatenate([starts, [nnz]]).astype(np.int64)
    return HicooTensor.from_parts(
        shape, b, bptr, (sc >> b)[starts].astype(np.uint32),
        (sc & mask).astype(np.uint8), values)


def csf_parts_from_coords(shape, coords, values, mode_order) -> CsfTensor:
    """Assemble a CSF tensor from (nnz, N) global coordinates: one stable
    lex sort (single-word radix when the packed widths fit) + tree build."""
    nmodes = coords.shape[1]
    if mode_order is None:
        mode_order = CsfTensor.default_mode_order(shape)
    mode_order = tuple(int(m) for m in mode_order)
    if sorted(mode_order) != list(range(nmodes)):
        raise ValueError(
            f"mode_order must be a permutation, got {list(mode_order)}")
    order = lex_sort_order_of(coords, shape, mode_order)
    return CsfTensor.from_parts(
        shape, mode_order,
        _build_levels(coords[order], list(mode_order)),
        np.asarray(values, dtype=np.float64)[order])


def alto_parts_from_coords(shape, coords, values) -> AltoTensor:
    """Assemble an ALTO tensor from (nnz, N) global coordinates: adaptive
    encode + one stable sort, mirroring ``AltoContext`` bit for bit."""
    widths = alto_widths(tuple(shape))
    values = np.asarray(values, dtype=np.float64)
    if len(coords) == 0:
        nwords = (int(sum(widths)) + 63) // 64
        return AltoTensor.from_parts(
            shape, np.zeros((nwords, 0), dtype=np.uint64), values,
            np.empty(0, dtype=np.int64))
    words = alto_encode(np.ascontiguousarray(coords.T), widths)
    order = _sort_words(words)
    return AltoTensor.from_parts(
        shape, np.ascontiguousarray(words[:, order]), values[order], order)


# ----------------------------------------------------------------------
# direct routines
# ----------------------------------------------------------------------
@register_converter("csf", "hicoo")
def _csf_to_hicoo(csf, *, block_bits=None, mode_order=None):
    coords, values = iterate_coords(csf)
    # natural tree order: the lex walk restricted to one block is already
    # offset-lexicographic, so the within-block sort is free to skip
    presorted = csf.mode_order == tuple(range(csf.nmodes))
    return hicoo_parts_from_coords(csf.shape, coords, values, block_bits,
                                   offsets_presorted=presorted)


@register_converter("csf", "alto")
def _csf_to_alto(csf, *, block_bits=None, mode_order=None):
    coords, values = iterate_coords(csf)
    return alto_parts_from_coords(csf.shape, coords, values)


@register_converter("csf", "csf")
def _csf_reroot(csf, *, block_bits=None, mode_order=None):
    order = (CsfTensor.default_mode_order(csf.shape) if mode_order is None
             else tuple(int(m) for m in mode_order))
    if order == csf.mode_order:
        return csf
    coords, values = iterate_coords(csf)
    return csf_parts_from_coords(csf.shape, coords, values, order)


@register_converter("hicoo", "csf")
def _hicoo_to_csf(hic, *, block_bits=None, mode_order=None):
    coords, values = iterate_coords(hic)
    return csf_parts_from_coords(hic.shape, coords, values, mode_order)


@register_converter("hicoo", "alto")
def _hicoo_to_alto(hic, *, block_bits=None, mode_order=None):
    coords, values = iterate_coords(hic)
    return alto_parts_from_coords(hic.shape, coords, values)


@register_converter("hicoo", "hicoo")
def _hicoo_reblock(hic, *, block_bits=None, mode_order=None):
    b = _check_block_bits(block_bits)
    if b == hic.block_bits:
        return hic
    coords, values = iterate_coords(hic)
    return hicoo_parts_from_coords(hic.shape, coords, values, b)


@register_converter("alto", "csf")
def _alto_to_csf(alto, *, block_bits=None, mode_order=None):
    # the memoized delinearization is read-only; csf_parts_from_coords only
    # fancy-indexes it, so no copy is needed here
    return csf_parts_from_coords(alto.shape, alto.delinearized(),
                                 alto.values, mode_order)


@register_converter("alto", "hicoo")
def _alto_to_hicoo(alto, *, block_bits=None, mode_order=None):
    b = _check_block_bits(block_bits)
    nnz = alto.nnz
    if nnz and len(set(alto.widths)) == 1:
        # uniform widths: bit i of mode m sits at i*N + m in both the ALTO
        # key and the Morton code, so the sorted keys ARE zero-extended
        # Morton codes — block boundaries fall out of a shifted-key scan
        # and only the within-block offset order needs restoring.  No sort
        # over the full key width at all.
        coords = alto.delinearized()
        high = shift_right_words(alto.keys, b * alto.nmodes)
        starts = _block_starts_of(high, nnz)
        mask = (1 << b) - 1
        run_id = np.zeros(nnz, dtype=np.int64)
        run_id[starts[1:]] = 1
        np.cumsum(run_id, out=run_id)
        sub = within_block_order(run_id, coords & mask, b, len(starts))
        sc = coords[sub]
        values = np.asarray(alto.values, dtype=np.float64)[sub]
        metrics.inc("convert.alto_block_scans")
        return HicooTensor.from_parts(
            alto.shape, b,
            np.concatenate([starts, [nnz]]).astype(np.int64),
            (sc >> b)[starts].astype(np.uint32),
            (sc & mask).astype(np.uint8), values)
    return hicoo_parts_from_coords(alto.shape, alto.delinearized(),
                                   alto.values, b)
