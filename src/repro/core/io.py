"""Binary serialization of HiCOO tensors.

A `.hicoo` file is a NumPy ``.npz`` archive holding the four structure
arrays plus shape/block-size metadata — loading one skips the Morton sort
entirely, which is the point: the paper amortizes construction cost across
many CP-ALS runs, and persisting the structure amortizes it across
processes.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Union

import numpy as np

from .hicoo import HicooTensor

__all__ = ["save_hicoo", "load_hicoo"]

_FORMAT_VERSION = 1

PathLike = Union[str, Path, _io.IOBase]


def save_hicoo(tensor: HicooTensor, dest: PathLike) -> None:
    """Write a HiCOO tensor to ``dest`` (path or binary file object)."""
    if not isinstance(tensor, HicooTensor):
        raise TypeError(f"expected a HicooTensor, got {type(tensor).__name__}")
    # np.savez appends ".npz" to bare paths; open the file ourselves so the
    # destination name is exactly what the caller asked for.
    if isinstance(dest, (str, Path)):
        with open(dest, "wb") as fh:
            save_hicoo(tensor, fh)
        return
    np.savez_compressed(
        dest,
        version=np.int64(_FORMAT_VERSION),
        shape=np.asarray(tensor.shape, dtype=np.int64),
        block_bits=np.int64(tensor.block_bits),
        bptr=tensor.bptr,
        binds=tensor.binds,
        einds=tensor.einds,
        values=tensor.values,
    )


def load_hicoo(source: PathLike) -> HicooTensor:
    """Load a HiCOO tensor written by :func:`save_hicoo`.

    Validates the structural invariants (monotone ``bptr`` covering all
    nonzeros, offsets within the block edge) so a corrupted file fails
    loudly instead of producing silent garbage.  Every decode failure —
    truncated file, non-zip garbage, missing arrays, wrong version — is
    reported as a ``ValueError`` naming the problem, never as a NumPy or
    zipfile internals error.
    """
    try:
        archive = np.load(source)
    except ValueError as exc:
        raise ValueError(f"not a .hicoo archive: {exc}") from exc
    except Exception as exc:
        # np.load surfaces zipfile.BadZipFile, zlib.error, EOFError,
        # struct.error... on truncated or garbage input; translate all of
        # them into one clear diagnostic
        if isinstance(exc, OSError) and getattr(exc, "errno", None):
            raise  # genuine filesystem error (ENOENT, EACCES, ...)
        raise ValueError(
            f"not a .hicoo archive (corrupt or truncated): {exc}") from exc
    with archive:
        required = {"version", "shape", "block_bits", "bptr", "binds",
                    "einds", "values"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"not a .hicoo archive: missing {sorted(missing)}")
        try:
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported .hicoo version {version} "
                    f"(this build reads version {_FORMAT_VERSION})"
                )
            shape = tuple(int(s) for s in archive["shape"])
            block_bits = int(archive["block_bits"])
            bptr = archive["bptr"].astype(np.int64)
            binds = archive["binds"].astype(np.uint32)
            einds = archive["einds"].astype(np.uint8)
            values = archive["values"].astype(np.float64)
        except ValueError:
            raise
        except Exception as exc:
            # member decompression can fail mid-stream on truncation
            raise ValueError(
                f"corrupt .hicoo archive: {exc}") from exc

    nnz = len(values)
    nblocks = len(binds)
    if not 1 <= block_bits <= 8:
        raise ValueError(f"corrupt archive: block_bits={block_bits}")
    if binds.ndim != 2 or binds.shape[1] != len(shape):
        raise ValueError("corrupt archive: binds shape mismatch")
    if einds.shape != (nnz, len(shape)):
        raise ValueError("corrupt archive: einds shape mismatch")
    if len(bptr) != nblocks + 1 or bptr[0] != 0 or bptr[-1] != nnz:
        raise ValueError("corrupt archive: bptr does not cover the nonzeros")
    if np.any(np.diff(bptr) <= 0):
        raise ValueError("corrupt archive: bptr not strictly increasing")
    if nnz and einds.max() >= (1 << block_bits):
        raise ValueError("corrupt archive: element offset exceeds block edge")

    out = HicooTensor.__new__(HicooTensor)
    out._shape = shape
    out.block_bits = block_bits
    out.bptr = bptr
    out.binds = binds
    out.einds = einds
    out.values = values
    # verify coordinates fit the declared shape
    g = out.global_indices()
    if nnz and (g.min() < 0 or np.any(g.max(axis=0) >= np.asarray(shape))):
        raise ValueError("corrupt archive: coordinates exceed declared shape")
    return out
