"""The HiCOO sparse-tensor format — the paper's primary contribution.

HiCOO ("Hierarchical COOrdinate") stores a tensor as Morton-ordered index
blocks of edge ``B = 2**block_bits``:

* ``bptr``  — int64,  (nblocks + 1): nonzero range of each block;
* ``binds`` — uint32, (nblocks, N): block coordinates, stored once per block;
* ``einds`` — uint8,  (nnz, N):     element offsets inside the block;
* ``values``—         (nnz,):       nonzero values.

Compared with COO's four bytes per mode per nonzero, the per-nonzero index
cost drops to one byte per mode plus an amortized per-block overhead of
``8 + 4N`` bytes — a ~2x total-storage reduction on typical tensors.  Unlike
CSF, the layout is identical for every mode, so one HiCOO tensor serves all N
MTTKRP directions of CP-ALS.
"""

from __future__ import annotations

from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor
from ..kernels.gather import (TaskGather, build_task_gather, coalesce_runs,
                              mttkrp_gather_chunk, runs_from_block_ids)
from ..obs import metrics, trace
from ..util.validation import check_factors, check_mode
from .blocking import MAX_BLOCK_BITS
from .convert import hicoo_storage_bytes

__all__ = ["HicooTensor", "DEFAULT_BLOCK_BITS"]

#: the paper's default block edge is B = 128
DEFAULT_BLOCK_BITS = 7


class HicooTensor(SparseTensorFormat):
    """Sparse tensor in HiCOO format.

    Parameters
    ----------
    coo : source tensor in coordinate format.
    block_bits : b with block edge B = 2**b; must satisfy 1 <= b <= 8 so
        element offsets fit in a byte.  Defaults to the paper's B = 128.
    """

    format_name = "hicoo"

    def __init__(self, coo: CooTensor, block_bits: int = DEFAULT_BLOCK_BITS):
        if not isinstance(coo, CooTensor):
            raise TypeError(f"expected a CooTensor, got {type(coo).__name__}")
        # memoized one-sort pipeline: every block size built from this COO
        # tensor shares one Morton encode + sort (see core/convert.py)
        with trace.span("hicoo.construct", b=int(block_bits), nnz=coo.nnz):
            dec = coo.block_decomposition(block_bits)
        metrics.inc("hicoo.constructions")
        for mode, dim in enumerate(coo.shape):
            nblocks_mode = (dim + (1 << block_bits) - 1) >> block_bits
            if nblocks_mode > np.iinfo(np.uint32).max:
                raise ValueError(
                    f"mode {mode} needs {nblocks_mode} block coordinates, "
                    "which does not fit the 32-bit binds array"
                )
        self._shape = coo.shape
        self.block_bits = int(block_bits)
        self.bptr = dec.block_ptr
        self.binds = dec.block_coords.astype(np.uint32)
        self.einds = dec.elem_offsets
        self.values = dec.values
        #: memoized TaskGather per block-run tuple (symbolic kernel cache)
        self._gather_cache: dict = {}

    @classmethod
    def from_parts(cls, shape, block_bits, bptr, binds, einds, values
                   ) -> "HicooTensor":
        """Assemble a HiCOO tensor from prebuilt block arrays (the
        direct-converter entry point — no COO materialization, no Morton
        context).

        The caller owns the layout invariants: blocks in Morton order,
        elements offset-lexicographic (mode 0 most significant) inside each
        block, ``binds`` uint32 and ``einds`` uint8.
        """
        shape = tuple(shape)
        b = int(block_bits)
        for mode, dim in enumerate(shape):
            nblocks_mode = (dim + (1 << b) - 1) >> b
            if nblocks_mode > np.iinfo(np.uint32).max:
                raise ValueError(
                    f"mode {mode} needs {nblocks_mode} block coordinates, "
                    "which does not fit the 32-bit binds array"
                )
        out = cls.__new__(cls)
        out._shape = shape
        out.block_bits = b
        out.bptr = bptr
        out.binds = binds
        out.einds = einds
        out.values = values
        out._gather_cache = {}
        return out

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def nblocks(self) -> int:
        return len(self.binds)

    @property
    def block_size(self) -> int:
        """Block edge B."""
        return 1 << self.block_bits

    def block_nnz(self) -> np.ndarray:
        return np.diff(self.bptr)

    @cached_property
    def _nnz_block_of(self) -> np.ndarray:
        """Block id of every nonzero (cached; used by the flat kernels)."""
        return np.repeat(np.arange(self.nblocks), self.block_nnz())

    # ------------------------------------------------------------------
    # symbolic gather cache
    # ------------------------------------------------------------------
    def task_gather(self, blocks) -> TaskGather:
        """Memoized fused gather arrays for a set of blocks.

        ``blocks`` is either a sequence of block ids or a sequence of
        half-open ``(lo, hi)`` block runs.  The first call materializes the
        int64 ``(binds << b) + einds`` coordinates (and task-ordered values)
        once; every later call with the same block set — every CP-ALS
        iteration, every TTV/TTM batch — is a dict hit.  The returned
        :class:`~repro.kernels.gather.TaskGather` arrays are shared: treat
        them as read-only.
        """
        blocks = list(blocks)
        if blocks and isinstance(blocks[0], (tuple, list)):
            runs = tuple(coalesce_runs(blocks))
        else:
            runs = tuple(runs_from_block_ids(blocks))
        # setdefault keeps deserialized instances (built via __new__) working
        cache = self.__dict__.setdefault("_gather_cache", {})
        cached = cache.get(runs)
        if cached is None:
            metrics.inc("gather.cache_misses")
            with trace.span("gather.build", nruns=len(runs)):
                cached = build_task_gather(self, runs)
            cache[runs] = cached
            metrics.set_gauge("gather.cache_bytes", self.gather_cache_bytes())
        else:
            metrics.inc("gather.cache_hits")
        return cached

    def clear_gather_cache(self) -> None:
        """Drop every memoized :meth:`task_gather` entry (frees memory)."""
        self.__dict__.setdefault("_gather_cache", {}).clear()

    def gather_cache_bytes(self) -> int:
        """Total footprint of the memoized gather arrays."""
        cache = self.__dict__.setdefault("_gather_cache", {})
        return sum(tg.nbytes() for tg in cache.values())

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def global_indices(self) -> np.ndarray:
        """(nnz, N) int64 coordinates reconstructed from binds/einds.

        Cached via :meth:`task_gather` (the whole tensor is one block run);
        callers must not mutate the returned array.
        """
        return self.task_gather([(0, self.nblocks)]).ginds

    def to_coo(self) -> CooTensor:
        # the generic level-driven iterator reconstructs (binds << b) + einds
        # per mode into a fresh array (safe to hand to the CooTensor)
        from ..formats.levels import iterate_coords

        inds, values = iterate_coords(self)
        return CooTensor(self._shape, inds, values, sum_duplicates=False)

    def storage_bytes(self) -> dict:
        """Canonical HiCOO storage accounting (paper notation):
        beta_long = 8-byte bptr, beta_int = 4-byte binds, beta_byte = 1-byte
        einds, 4-byte values."""
        return hicoo_storage_bytes(self.nblocks, self.nnz, self.nmodes)

    # ------------------------------------------------------------------
    # MTTKRP kernels
    # ------------------------------------------------------------------
    def mttkrp(self, factors: Sequence[np.ndarray], mode: int,
               kernel: str = "flat") -> np.ndarray:
        """Sequential HiCOO MTTKRP.

        Two kernels compute the identical result:

        * ``"flat"``   — reconstructs global coordinates once and runs a
          single vectorized gather/scatter pass; this is the fast path under
          NumPy and the default.
        * ``"blocked"``— the paper's per-block loop (Algorithm 3): for every
          block, factor rows are addressed as ``U[(bind << b) + eind]``; the
          faithful access pattern, useful for traffic analysis and tests.
        """
        factors = check_factors(factors, self._shape)
        mode = check_mode(mode, self.nmodes)
        if kernel == "flat":
            return self._mttkrp_flat(factors, mode)
        if kernel == "blocked":
            return self._mttkrp_blocked(factors, mode)
        raise ValueError(f"unknown kernel {kernel!r}; use 'flat' or 'blocked'")

    def _mttkrp_flat(self, factors, mode):
        rank = factors[0].shape[1]
        out = np.zeros((self._shape[mode], rank))
        if self.nnz == 0:
            return out
        tg = self.task_gather([(0, self.nblocks)])
        mttkrp_gather_chunk(tg, factors, mode, out)
        return out

    def _mttkrp_blocked(self, factors, mode):
        rank = factors[0].shape[1]
        out = np.zeros((self._shape[mode], rank))
        shift = self.block_bits
        einds = self.einds.astype(np.int64)
        for blk in range(self.nblocks):
            lo, hi = int(self.bptr[blk]), int(self.bptr[blk + 1])
            base = self.binds[blk].astype(np.int64) << shift
            acc = np.repeat(self.values[lo:hi, None], rank, axis=1)
            for m, f in enumerate(factors):
                if m != mode:
                    acc *= f[base[m] + einds[lo:hi, m]]
            np.add.at(out, base[mode] + einds[lo:hi, mode], acc)
        return out

    # ------------------------------------------------------------------
    # statistics (feed the alpha_b / c_b analysis of the paper)
    # ------------------------------------------------------------------
    def block_ratio(self) -> float:
        """alpha_b = nblocks / nnz.  Near 0: dense blocks, great compression;
        near 1: one nonzero per block, HiCOO degenerates to COO + overhead."""
        return self.nblocks / max(1, self.nnz)

    def avg_slice_size(self) -> float:
        """c_b — the average number of nonzeros per block slice, i.e.
        ``nnz / (nblocks * B)``; equivalently ``1 / (alpha_b * B)``.  Larger
        values mean more factor-row reuse inside a block."""
        return self.nnz / (max(1, self.nblocks) * self.block_size)

    def geometry(self) -> dict:
        """Summary statistics used by the E3 parameter table."""
        bn = self.block_nnz()
        return {
            "block_bits": self.block_bits,
            "nblocks": self.nblocks,
            "alpha_b": self.block_ratio(),
            "c_b": self.avg_slice_size(),
            "max_block_nnz": int(bn.max()) if self.nblocks else 0,
            "mean_block_nnz": float(bn.mean()) if self.nblocks else 0.0,
            "bytes_per_nnz": self.bytes_per_nnz(),
        }


def best_block_bits(coo: CooTensor,
                    candidates: Optional[Sequence[int]] = None) -> int:
    """Pick the block size minimizing HiCOO storage (the paper's guidance:
    B = 128 is a good default, but clustered tensors may prefer other sizes).

    Storage is computed from the shared :meth:`CooTensor.morton_context`
    boundary counts — one Morton sort for the whole sweep and no
    :class:`HicooTensor` materialized per candidate.  Returns the
    ``block_bits`` with the fewest total bytes; ties break toward larger
    blocks (better locality).
    """
    if candidates is None:
        candidates = range(1, MAX_BLOCK_BITS + 1)
    ctx = coo.morton_context()
    best, best_bytes = None, None
    for bits in candidates:
        total = ctx.total_bytes(bits)
        if best_bytes is None or total <= best_bytes:
            best, best_bytes = bits, total
    return int(best)
