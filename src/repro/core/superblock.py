"""Superblocks: logical 2**sb-edge aggregates of HiCOO blocks.

The parallel MTTKRP of the paper does not schedule individual blocks (too
fine) or whole tensors (no parallelism): it groups blocks into *superblocks*
of edge ``L = 2**superblock_bits`` (sb >= b) and schedules those.  Because
blocks are stored in Morton order and a superblock's Morton code is a prefix
of its blocks' codes, every superblock is a *contiguous* run of blocks —
superblock construction is a single scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hicoo import HicooTensor

__all__ = ["SuperblockIndex", "build_superblocks"]


@dataclass
class SuperblockIndex:
    """Superblock structure over a HiCOO tensor.

    Attributes
    ----------
    superblock_bits : sb, with superblock edge L = 2**sb (in element units).
    sptr : (nsuper + 1,) int64 — the block range of each superblock.
    scoords : (nsuper, nmodes) int64 — superblock coordinates (in units of
        superblocks, i.e. element index >> sb).
    nnz_per_superblock : (nsuper,) int64.
    """

    superblock_bits: int
    sptr: np.ndarray
    scoords: np.ndarray
    nnz_per_superblock: np.ndarray

    @property
    def nsuper(self) -> int:
        return len(self.scoords)

    def block_range(self, sb: int) -> tuple:
        """(lo, hi) block ids covered by superblock ``sb``."""
        return int(self.sptr[sb]), int(self.sptr[sb + 1])

    def output_range(self, sb: int, mode: int) -> tuple:
        """Half-open element-index range this superblock writes in ``mode``
        during a mode-``mode`` MTTKRP."""
        lo = int(self.scoords[sb, mode]) << self.superblock_bits
        return lo, lo + (1 << self.superblock_bits)


def build_superblocks(tensor: HicooTensor, superblock_bits: int) -> SuperblockIndex:
    """Group the (Morton-ordered) blocks of ``tensor`` into superblocks.

    Raises if ``superblock_bits < tensor.block_bits`` — a superblock must
    contain whole blocks.

    Note: Morton order guarantees all blocks of a superblock are adjacent,
    so this is a run-length scan over block coordinates shifted down by
    ``sb - b`` bits.
    """
    if superblock_bits < tensor.block_bits:
        raise ValueError(
            f"superblock_bits ({superblock_bits}) must be >= block_bits "
            f"({tensor.block_bits})"
        )
    shift = superblock_bits - tensor.block_bits
    if tensor.nblocks == 0:
        return SuperblockIndex(
            superblock_bits=superblock_bits,
            sptr=np.zeros(1, dtype=np.int64),
            scoords=np.empty((0, tensor.nmodes), dtype=np.int64),
            nnz_per_superblock=np.empty(0, dtype=np.int64),
        )
    scoord_of_block = tensor.binds.astype(np.int64) >> shift
    changed = np.any(scoord_of_block[1:] != scoord_of_block[:-1], axis=1)
    starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
    sptr = np.concatenate([starts, [tensor.nblocks]]).astype(np.int64)

    # sanity: Morton contiguity means no superblock coordinate may reappear
    # in a later run; a violation indicates a corrupted block ordering.
    scoords = scoord_of_block[starts]
    nnz_per = np.add.reduceat(tensor.block_nnz(), starts)
    return SuperblockIndex(
        superblock_bits=superblock_bits,
        sptr=sptr,
        scoords=scoords,
        nnz_per_superblock=nnz_per.astype(np.int64),
    )
