"""Model-driven parameter tuning for HiCOO.

HiCOO has three knobs — block bits ``b``, superblock bits ``sb``, and the
parallel strategy — whose best values depend on the tensor's structure and
the machine.  The paper picks them empirically; the related "model-driven"
line of work picks them from predicted cost.  This tuner does the latter
using the library's exact work counts + machine model: it scores every
candidate configuration by predicted all-mode MTTKRP time (optionally
trading off storage) and returns the winner with the full scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.model import FormatStats, format_stats, predict_all_modes
from ..core.scheduler import choose_strategy, schedule_mode
from ..core.superblock import build_superblocks
from ..formats.coo import CooTensor
from ..parallel.machine import Machine
from .blocking import MAX_BLOCK_BITS
from .hicoo import HicooTensor

__all__ = ["TunedConfig", "choose_format", "retarget", "tune"]

# ----------------------------------------------------------------------
# data-driven format selection (ISSUE 7 / ALTO paper section 6)
# ----------------------------------------------------------------------
#: below this many nonzeros every format's setup cost dwarfs the kernel;
#: plain COO wins by not paying any.
COO_NNZ_CEILING = 128

#: alpha_b at the probe block size at or under which blocks are dense
#: enough for HiCOO's compressed offsets + block locality to pay off.
HICOO_ALPHA_CEILING = 0.5

#: fiber reuse at or above which CSF's fiber tree factors out enough
#: multiplies to win — provided the slice distribution is not so skewed
#: that its per-fiber parallelism collapses (``CSF_SKEW_CEILING``).
CSF_REUSE_FLOOR = 2.0
CSF_SKEW_CEILING = 8.0


def choose_format(coo: Optional[CooTensor] = None, *,
                  stats: Optional[FormatStats] = None) -> str:
    """Pick a storage format from nnz-distribution stats.

    Pass a tensor (stats are measured via
    :func:`repro.analysis.model.format_stats`) or recorded ``stats``
    directly; given the same stats the choice is a pure function — no
    timing, no randomness — so it is reproducible across runs and hosts.

    Decision rule, first match wins:

    1. ``nnz < COO_NNZ_CEILING`` -> ``"coo"`` (setup cost dominates);
    2. ``alpha_b <= HICOO_ALPHA_CEILING`` -> ``"hicoo"`` (dense blocks:
       the paper's compression + locality regime);
    3. ``fiber_reuse >= CSF_REUSE_FLOOR`` and ``mode_skew <=
       CSF_SKEW_CEILING`` -> ``"csf"`` (fiber tree pays, slices balanced);
    4. otherwise -> ``"alto"`` (hyper-sparse and/or skewed: adaptive
       linearization with equal-nnz partitioning is the only one of the
       four whose load balance is independent of the nnz distribution).
    """
    if stats is None:
        if coo is None:
            raise ValueError("choose_format needs a tensor or stats")
        stats = format_stats(coo.to_coo())
    if stats.nnz < COO_NNZ_CEILING:
        return "coo"
    if stats.alpha_b <= HICOO_ALPHA_CEILING:
        return "hicoo"
    if (stats.fiber_reuse >= CSF_REUSE_FLOOR
            and stats.mode_skew <= CSF_SKEW_CEILING):
        return "csf"
    return "alto"


def retarget(tensor, *, stats: Optional[FormatStats] = None):
    """Re-format ``tensor`` (any format) to what :func:`choose_format`
    picks for it, via the direct converter registry.

    Measuring stats needs the coordinates once (skipped when recorded
    ``stats`` are passed), but the conversion itself goes through
    :func:`repro.core.converters.convert` — a registered direct pair never
    materializes an intermediate ``CooTensor``.  A tensor already in the
    chosen format is returned unchanged.
    """
    from .converters import convert

    if stats is None:
        stats = format_stats(tensor.to_coo())
    return convert(tensor, choose_format(stats=stats))


@dataclass
class TunedConfig:
    """One scored configuration."""

    block_bits: int
    superblock_bits: int
    strategies: List[str]  # per mode
    predicted_seconds: float
    total_bytes: int
    alpha_b: float
    score: float

    @property
    def block_size(self) -> int:
        return 1 << self.block_bits


def tune(coo: CooTensor, rank: int, machine: Machine, nthreads: int = 1, *,
         block_candidates: Optional[Sequence[int]] = None,
         superblock_offsets: Sequence[int] = (1, 2, 3, 4),
         storage_weight: float = 0.0) -> dict:
    """Pick (b, sb, per-mode strategy) minimizing predicted cost.

    Parameters
    ----------
    coo : the tensor to tune for.
    rank, machine, nthreads : the MTTKRP workload being optimized.
    block_candidates : block-bits values to try (default 2..8).
    superblock_offsets : sb - b values to try.
    storage_weight : adds ``weight * bytes / machine.socket_bandwidth``
        to the score — a knob for storage-constrained deployments (0 tunes
        purely for speed).

    Returns
    -------
    dict with ``best`` (a :class:`TunedConfig`) and ``scoreboard`` (all
    configurations, best first).
    """
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    if nthreads < 1:
        raise ValueError(f"nthreads must be positive, got {nthreads}")
    if storage_weight < 0:
        raise ValueError("storage_weight must be non-negative")
    if block_candidates is None:
        block_candidates = range(2, MAX_BLOCK_BITS + 1)

    # One Morton encode + sort serves every candidate: HicooTensor
    # construction below hits the per-b decompositions derived from this
    # shared context instead of re-sorting per block size.
    coo.morton_context()

    scoreboard: List[TunedConfig] = []
    for bits in block_candidates:
        hic = HicooTensor(coo, block_bits=bits)
        timing = predict_all_modes(hic, rank, machine, nthreads=nthreads)
        bytes_total = hic.total_bytes()
        base_score = timing.total + storage_weight * (
            bytes_total / machine.socket_bandwidth)
        for offset in superblock_offsets:
            sb_bits = bits + offset
            sbs = build_superblocks(hic, sb_bits)
            strategies = []
            imbalance_penalty = 0.0
            for mode in range(coo.nmodes):
                strat = choose_strategy(sbs, mode, nthreads,
                                        coo.shape[mode], rank)
                strategies.append(strat)
                if strat == "schedule" and nthreads > 1:
                    sched = schedule_mode(sbs, mode, nthreads)
                    # penalize imbalanced schedules proportionally
                    imbalance_penalty += timing.mode_seconds[mode] * (
                        sched.load_imbalance() - 1.0) / max(coo.nmodes, 1)
            scoreboard.append(TunedConfig(
                block_bits=bits,
                superblock_bits=sb_bits,
                strategies=strategies,
                predicted_seconds=timing.total,
                total_bytes=bytes_total,
                alpha_b=hic.block_ratio(),
                score=base_score + imbalance_penalty,
            ))
    scoreboard.sort(key=lambda c: (c.score, -c.block_bits))
    return {"best": scoreboard[0], "scoreboard": scoreboard}
