"""HiCOO's predictive parameters: block ratio alpha_b and slice size c_b.

The paper characterizes when HiCOO wins with two numbers computed from the
block decomposition alone:

* ``alpha_b = n_b / nnz`` — the *block ratio*.  Small alpha_b means many
  nonzeros share each block: the per-block index overhead amortizes and the
  format compresses well.  alpha_b -> 1 means one nonzero per block and
  HiCOO degenerates to COO plus overhead.
* ``c_b = nnz / (n_b * B)`` — the *average slice size per block*
  (equivalently ``1 / (alpha_b * B)``): how many nonzeros land on each of a
  block's B slices on average, a proxy for factor-row reuse inside a block.

This module computes both across block sizes, and implements the block-size
selection rule used by the benchmarks: pick the ``b`` minimizing total HiCOO
bytes subject to the byte-offset constraint ``b <= 8``.

Reconstruction note: the printed paper defines c_b per-block and averages;
the closed form above is the aggregate equivalent used here and documented
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..formats.coo import CooTensor
from .blocking import MAX_BLOCK_BITS
from .convert import hicoo_storage_bytes
from .hicoo import HicooTensor

__all__ = ["HicooParams", "analyze_block_sizes", "recommend_block_bits"]


@dataclass
class HicooParams:
    """Parameters of one (tensor, block size) combination."""

    block_bits: int
    nblocks: int
    nnz: int
    alpha_b: float
    c_b: float
    total_bytes: int
    bytes_per_nnz: float

    @property
    def block_size(self) -> int:
        return 1 << self.block_bits

    def compresses_well(self) -> bool:
        """Paper's qualitative criterion: HiCOO pays off when blocks hold
        several nonzeros each (alpha_b well below 1)."""
        return self.alpha_b < 0.5

    @classmethod
    def measure(cls, tensor: HicooTensor) -> "HicooParams":
        return cls.from_counts(tensor.block_bits, tensor.nblocks, tensor.nnz,
                               tensor.nmodes)

    @classmethod
    def from_counts(cls, block_bits: int, nblocks: int, nnz: int,
                    nmodes: int) -> "HicooParams":
        """All parameters follow from (b, n_b, nnz, N) alone — no tensor
        materialization needed for a block-size sweep."""
        total = int(sum(hicoo_storage_bytes(nblocks, nnz, nmodes).values()))
        return cls(
            block_bits=block_bits,
            nblocks=nblocks,
            nnz=nnz,
            alpha_b=nblocks / max(1, nnz),
            c_b=nnz / (max(1, nblocks) * (1 << block_bits)),
            total_bytes=total,
            bytes_per_nnz=total / max(1, nnz),
        )


def analyze_block_sizes(coo: CooTensor,
                        candidates: Optional[Iterable[int]] = None
                        ) -> List[HicooParams]:
    """Measure alpha_b / c_b / storage across block sizes (experiment E7).

    The whole sweep shares one :meth:`CooTensor.morton_context` sort; each
    block size only scans the precomputed codes for block boundaries.
    """
    if candidates is None:
        candidates = range(1, MAX_BLOCK_BITS + 1)
    ctx = coo.morton_context()
    return [HicooParams.from_counts(b, ctx.nblocks(b), ctx.nnz, ctx.nmodes)
            for b in candidates]


def recommend_block_bits(coo: CooTensor,
                         candidates: Optional[Iterable[int]] = None) -> Dict:
    """Pick block bits minimizing storage; returns the chosen parameters and
    the full sweep so callers can display the trade-off curve."""
    sweep = analyze_block_sizes(coo, candidates)
    best = min(sweep, key=lambda p: (p.total_bytes, -p.block_bits))
    return {"chosen": best, "sweep": sweep}
