"""Lock-free superblock scheduling for parallel MTTKRP.

During a mode-``m`` MTTKRP, a superblock writes only the output rows in its
mode-``m`` index range.  Two superblocks conflict iff they share the same
mode-``m`` superblock coordinate.  The paper's scheduler therefore groups
superblocks by that coordinate and hands *whole groups* to threads: output
ranges of different threads are disjoint, so no atomics or locks are needed.

This module builds such schedules, balances them with an LPT (longest
processing time first) heuristic, verifies their safety, and reports the
load-balance statistics the evaluation section discusses.  When too few
groups exist to occupy all threads, the privatization strategy (per-thread
output buffers + reduction, see :mod:`repro.parallel.privatize`) is the
better choice; :func:`choose_strategy` encodes that heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .superblock import SuperblockIndex

__all__ = ["Schedule", "schedule_mode", "choose_strategy"]


@dataclass
class Schedule:
    """A conflict-free assignment of superblocks to threads for one mode.

    Attributes
    ----------
    mode : the MTTKRP output mode this schedule is safe for.
    nthreads : number of workers.
    assignment : per-thread lists of superblock ids.
    thread_nnz : total nonzeros assigned to each thread.
    group_of : mapping mode-``m`` superblock coordinate -> owning thread.
    """

    mode: int
    nthreads: int
    assignment: List[List[int]]
    thread_nnz: np.ndarray
    group_of: Dict[int, int] = field(default_factory=dict)

    @property
    def ngroups(self) -> int:
        return len(self.group_of)

    def makespan(self) -> int:
        """Work (nnz) on the most loaded thread — the parallel critical path."""
        return int(self.thread_nnz.max()) if len(self.thread_nnz) else 0

    def load_imbalance(self) -> float:
        """max/mean thread load; 1.0 is perfect balance."""
        active = self.thread_nnz[self.thread_nnz > 0]
        if len(active) == 0:
            return 1.0
        mean = self.thread_nnz.sum() / self.nthreads
        return float(self.thread_nnz.max() / mean) if mean else 1.0

    def effective_parallelism(self) -> float:
        """total work / makespan — the speedup this schedule permits before
        memory-bandwidth limits."""
        ms = self.makespan()
        return float(self.thread_nnz.sum() / ms) if ms else 1.0

    def verify(self, sbs: SuperblockIndex) -> None:
        """Raise if any two threads could write overlapping output rows."""
        owner: Dict[int, int] = {}
        seen = [set() for _ in range(self.nthreads)]
        for tid, blocks in enumerate(self.assignment):
            for sb in blocks:
                if sb in seen[tid]:
                    raise AssertionError(f"superblock {sb} assigned twice")
                seen[tid].add(sb)
                coord = int(sbs.scoords[sb, self.mode])
                if coord in owner and owner[coord] != tid:
                    raise AssertionError(
                        f"mode-{self.mode} coordinate {coord} split across "
                        f"threads {owner[coord]} and {tid}"
                    )
                owner[coord] = tid
        total = sum(len(s) for s in seen)
        if total != sbs.nsuper:
            raise AssertionError(
                f"schedule covers {total} superblocks, expected {sbs.nsuper}"
            )


def schedule_mode(sbs: SuperblockIndex, mode: int, nthreads: int) -> Schedule:
    """Build a lock-free schedule for a mode-``mode`` MTTKRP.

    Superblocks are grouped by their mode-``mode`` superblock coordinate;
    groups are assigned to threads greedily, heaviest group first, onto the
    currently least-loaded thread (LPT).  LPT guarantees a makespan within
    4/3 of optimal, which is what keeps HiCOO's parallel efficiency high on
    skewed tensors.
    """
    if nthreads < 1:
        raise ValueError(f"nthreads must be positive, got {nthreads}")
    coords = sbs.scoords[:, mode] if sbs.nsuper else np.empty(0, dtype=np.int64)
    uniq, inverse = np.unique(coords, return_inverse=True)
    group_weight = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(group_weight, inverse, sbs.nnz_per_superblock)
    members: List[List[int]] = [[] for _ in uniq]
    for sb, g in enumerate(inverse):
        members[g].append(sb)

    order = np.argsort(group_weight, kind="stable")[::-1]
    thread_nnz = np.zeros(nthreads, dtype=np.int64)
    assignment: List[List[int]] = [[] for _ in range(nthreads)]
    group_of: Dict[int, int] = {}
    for g in order:
        tid = int(np.argmin(thread_nnz))
        assignment[tid].extend(members[g])
        thread_nnz[tid] += group_weight[g]
        group_of[int(uniq[g])] = tid
    return Schedule(
        mode=mode,
        nthreads=nthreads,
        assignment=assignment,
        thread_nnz=thread_nnz,
        group_of=group_of,
    )


def choose_strategy(sbs: SuperblockIndex, mode: int, nthreads: int,
                    output_rows: int, rank: int,
                    privatize_limit_bytes: int = 1 << 26) -> str:
    """The paper's strategy heuristic for parallel MTTKRP.

    Returns ``"privatize"`` when the output matrix is small enough that
    per-thread copies fit comfortably in cache/memory (each copy is
    ``output_rows * rank * 8`` bytes) or when there are too few independent
    superblock groups to occupy the threads; otherwise ``"schedule"``.
    """
    per_copy = output_rows * rank * 8
    ngroups = len(np.unique(sbs.scoords[:, mode])) if sbs.nsuper else 0
    if per_copy * nthreads <= privatize_limit_bytes:
        return "privatize"
    if ngroups < nthreads:
        return "privatize"
    return "schedule"
