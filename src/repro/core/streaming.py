"""Chunked (streaming) HiCOO construction.

FROSTT files run to billions of nonzeros; holding full 64-bit coordinates
for all of them during construction is the peak-memory bottleneck.  This
module builds a HiCOO tensor from an *iterator of coordinate chunks*: each
chunk is immediately split into block coordinates + 1-byte offsets (the
compact HiCOO-side representation), and only a 2-word Morton key per
nonzero is kept for the final global ordering — about ``16 + N`` bytes per
nonzero instead of ``8N + 8``.

Works with any chunk source; :func:`stream_tns` adapts a ``.tns`` file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..formats.coo import CooTensor
from ..util.bitops import bits_for, morton_encode
from ..util.validation import check_shape
from .blocking import MAX_BLOCK_BITS
from .hicoo import HicooTensor

__all__ = ["hicoo_from_chunks", "stream_tns", "read_tns_chunks"]

Chunk = Tuple[np.ndarray, np.ndarray]  # (indices (n, N) int, values (n,))


def read_tns_chunks(path, chunk_nnz: int = 100_000) -> Iterator[Chunk]:
    """Yield (indices, values) chunks from a FROSTT ``.tns`` file.

    Coordinates are converted to zero-based.  Raises on malformed lines,
    like :func:`repro.data.frostt.read_tns`.
    """
    if chunk_nnz < 1:
        raise ValueError(f"chunk_nnz must be positive, got {chunk_nnz}")
    rows: list = []
    width = None
    with open(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if width is None:
                width = len(parts)
                if width < 2:
                    raise ValueError(f"line {lineno}: need indices + value")
            elif len(parts) != width:
                raise ValueError(f"line {lineno}: expected {width} fields")
            rows.append(_parse_tns_line(parts, lineno))
            if len(rows) >= chunk_nnz:
                yield _rows_to_chunk(rows)
                rows = []
    if rows:
        yield _rows_to_chunk(rows)


def _parse_tns_line(parts, lineno):
    from ..data.frostt import _parse_line

    return _parse_line(parts, lineno)


def _rows_to_chunk(rows: list) -> Chunk:
    inds = np.asarray([r[0] for r in rows], dtype=np.int64)
    vals = np.asarray([r[1] for r in rows], dtype=np.float64)
    if inds.min() < 1:
        raise ValueError(".tns coordinates are one-based")
    return inds - 1, vals


def hicoo_from_chunks(chunks: Iterable[Chunk], block_bits: int,
                      shape: Optional[Sequence[int]] = None) -> HicooTensor:
    """Assemble a HiCOO tensor from coordinate chunks.

    Per chunk, coordinates are split into (block, offset) immediately and a
    compact 2-word Morton key is computed; the full coordinates are
    discarded.  A final lexsort over the keys produces the global Morton
    order, duplicate coordinates are summed, and the block structure is
    scanned out.

    ``shape`` may be omitted, in which case it is inferred from the data.
    """
    if not 1 <= block_bits <= MAX_BLOCK_BITS:
        raise ValueError(
            f"block_bits must be in [1, {MAX_BLOCK_BITS}], got {block_bits}")

    keys_hi, keys_lo = [], []
    offs_parts, bc_parts, val_parts = [], [], []
    nmodes = None
    max_index = None

    for inds, vals in chunks:
        inds = np.asarray(inds, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if inds.ndim != 2 or len(inds) != len(vals):
            raise ValueError("chunk must be ((n, N) indices, (n,) values)")
        if inds.size and inds.min() < 0:
            raise ValueError("negative coordinate in chunk")
        if nmodes is None:
            nmodes = inds.shape[1]
        elif inds.shape[1] != nmodes:
            raise ValueError(
                f"chunk has {inds.shape[1]} modes, expected {nmodes}")
        if len(inds) == 0:
            continue
        chunk_max = inds.max(axis=0)
        max_index = chunk_max if max_index is None else np.maximum(
            max_index, chunk_max)
        bcoords = inds >> block_bits
        offs_parts.append((inds & ((1 << block_bits) - 1)).astype(np.uint8))
        bc_parts.append(bcoords)
        val_parts.append(vals)

    if nmodes is None:
        if shape is None:
            raise ValueError("no chunks and no explicit shape")
        shape = check_shape(shape)
        return HicooTensor(CooTensor.empty(shape), block_bits=block_bits)

    if shape is None:
        shape = tuple(int(m) + 1 for m in max_index)
    else:
        shape = check_shape(shape)
        if len(shape) != nmodes:
            raise ValueError(
                f"shape has {len(shape)} modes, chunks have {nmodes}")
        if max_index is not None and np.any(max_index >= np.asarray(shape)):
            raise ValueError("chunk coordinate out of declared shape")

    bcoords = np.vstack(bc_parts)
    offsets = np.vstack(offs_parts)
    values = np.concatenate(val_parts)
    del bc_parts, offs_parts, val_parts

    # global Morton order over block coords, offsets lexicographic within;
    # key budget: 2 uint64 words covers N*nbits <= 128 bits
    nbits = bits_for(int(bcoords.max()) if bcoords.size else 0)
    if nmodes * nbits > 128:
        raise ValueError(
            f"Morton key needs {nmodes * nbits} bits (> 128); reduce the "
            "index space or use the in-memory constructor")
    words = morton_encode(bcoords.T, nbits)
    off_keys = tuple(offsets[:, m] for m in reversed(range(nmodes)))
    order = np.lexsort(off_keys + tuple(words[::-1]))
    bcoords = bcoords[order]
    offsets = offsets[order]
    values = values[order]

    # sum duplicates (equal block coords AND offsets)
    if len(values) > 1:
        same = np.all(bcoords[1:] == bcoords[:-1], axis=1) & \
            np.all(offsets[1:] == offsets[:-1], axis=1)
        if same.any():
            group = np.concatenate([[0], np.cumsum(~same)])
            first = np.concatenate([[0], np.flatnonzero(~same) + 1])
            summed = np.zeros(group[-1] + 1)
            np.add.at(summed, group, values)
            bcoords, offsets, values = bcoords[first], offsets[first], summed

    # block coordinates must fit the 32-bit binds array (the in-memory
    # constructor enforces the same bound)
    if bcoords.size and bcoords.max() > np.iinfo(np.uint32).max:
        raise ValueError(
            f"block coordinate {int(bcoords.max())} does not fit the "
            "32-bit binds array; use a larger block size or split the mode")

    # block boundaries
    changed = np.any(bcoords[1:] != bcoords[:-1], axis=1)
    starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
    bptr = np.concatenate([starts, [len(values)]]).astype(np.int64)

    out = HicooTensor.__new__(HicooTensor)
    out._shape = shape
    out.block_bits = int(block_bits)
    out.bptr = bptr
    out.binds = bcoords[starts].astype(np.uint32)
    out.einds = offsets
    out.values = values
    return out


def stream_tns(path, block_bits: int, shape: Optional[Sequence[int]] = None,
               chunk_nnz: int = 100_000) -> HicooTensor:
    """Build a HiCOO tensor directly from a ``.tns`` file in chunks."""
    path = Path(path)
    return hicoo_from_chunks(read_tns_chunks(path, chunk_nnz=chunk_nnz),
                             block_bits=block_bits, shape=shape)
