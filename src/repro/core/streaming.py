"""Chunked (streaming) HiCOO construction.

FROSTT files run to billions of nonzeros; holding full 64-bit coordinates
for all of them during construction is the peak-memory bottleneck.  This
module builds a HiCOO tensor from an *iterator of coordinate chunks* without
ever re-sorting the accumulated data from scratch:

* each arriving chunk is immediately reduced to a sorted, duplicate-summed
  *run* of ``(key, offsets, values)``, where ``key`` is a single uint64 that
  orders nonzeros exactly as HiCOO requires — the block Morton code in the
  high bits, mode-0-major element offsets in the low bits.  Full coordinates
  are discarded on arrival (about ``16 + N`` bytes per nonzero retained);
* runs are merged pairwise as they accumulate (a size-balanced merge
  ladder, as in LSM trees / timsort), so the total sorting work is
  O(nnz log nchunks) vectorized merge passes and :meth:`finalize` only has
  to fold the last few runs together;
* block coordinates are recovered at the end by Morton-*decoding* the per-
  block keys — ``nblocks`` decodes instead of ``nnz``.

When the combined key cannot fit 64 bits (huge index spaces) the builder
falls back to the previous whole-stream multi-word lexsort, which covers
keys up to 128 bits.

Works with any chunk source; :func:`stream_tns` adapts a ``.tns`` file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..formats.coo import CooTensor
from ..kernels.gather import scatter_add
from ..util.bitops import (bits_for, morton_decode, morton_encode,
                           stable_argsort_u64)
from ..util.validation import check_shape
from .blocking import MAX_BLOCK_BITS
from .hicoo import HicooTensor

__all__ = ["ChunkedHicooBuilder", "hicoo_from_chunks", "stream_tns",
           "read_tns_chunks"]

Chunk = Tuple[np.ndarray, np.ndarray]  # (indices (n, N) int, values (n,))

#: a sorted, duplicate-summed segment of the stream
Run = Tuple[np.ndarray, np.ndarray, np.ndarray]  # keys, offsets, values


def read_tns_chunks(path, chunk_nnz: int = 100_000) -> Iterator[Chunk]:
    """Yield (indices, values) chunks from a FROSTT ``.tns`` file.

    Coordinates are converted to zero-based.  Raises on malformed lines,
    like :func:`repro.data.frostt.read_tns`.
    """
    if chunk_nnz < 1:
        raise ValueError(f"chunk_nnz must be positive, got {chunk_nnz}")
    rows: list = []
    width = None
    with open(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if width is None:
                width = len(parts)
                if width < 2:
                    raise ValueError(f"line {lineno}: need indices + value")
            elif len(parts) != width:
                raise ValueError(f"line {lineno}: expected {width} fields")
            rows.append(_parse_tns_line(parts, lineno))
            if len(rows) >= chunk_nnz:
                yield _rows_to_chunk(rows)
                rows = []
    if rows:
        yield _rows_to_chunk(rows)


def _parse_tns_line(parts, lineno):
    from ..data.frostt import _parse_line

    return _parse_line(parts, lineno)


def _rows_to_chunk(rows: list) -> Chunk:
    inds = np.asarray([r[0] for r in rows], dtype=np.int64)
    vals = np.asarray([r[1] for r in rows], dtype=np.float64)
    if inds.min() < 1:
        raise ValueError(".tns coordinates are one-based")
    return inds - 1, vals


class ChunkedHicooBuilder:
    """Incremental sort-merge HiCOO construction.

    >>> builder = ChunkedHicooBuilder(block_bits=2, shape=(8, 8))
    >>> builder.add([[0, 0], [5, 5]], [1.0, 2.0])
    >>> builder.add([[0, 1]], [3.0])
    >>> builder.finalize().nnz
    3
    """

    def __init__(self, block_bits: int, shape: Optional[Sequence[int]] = None):
        if not 1 <= block_bits <= MAX_BLOCK_BITS:
            raise ValueError(
                f"block_bits must be in [1, {MAX_BLOCK_BITS}], got {block_bits}")
        self.block_bits = int(block_bits)
        self.declared_shape = None if shape is None else check_shape(shape)
        self._runs: List[Run] = []
        #: multi-word fallback storage: [(bcoords, offsets, values), ...]
        self._raw: Optional[list] = None
        self._nmodes: Optional[int] = None
        self._max_index: Optional[np.ndarray] = None
        self._blk_bits = 1  # widest block coordinate seen, in bits

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add(self, indices, values) -> None:
        """Ingest one coordinate chunk; it is keyed, sorted and
        duplicate-summed immediately, then merged into the run ladder."""
        inds = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.float64).ravel()
        if inds.ndim != 2 or len(inds) != len(vals):
            raise ValueError("chunk must be ((n, N) indices, (n,) values)")
        if inds.size and inds.min() < 0:
            raise ValueError("negative coordinate in chunk")
        if self._nmodes is None:
            self._nmodes = inds.shape[1]
        elif inds.shape[1] != self._nmodes:
            raise ValueError(
                f"chunk has {inds.shape[1]} modes, expected {self._nmodes}")
        if len(inds) == 0:
            return
        chunk_max = inds.max(axis=0)
        self._max_index = chunk_max if self._max_index is None else np.maximum(
            self._max_index, chunk_max)

        b = self.block_bits
        bcoords = inds >> b
        offsets = (inds & ((1 << b) - 1)).astype(np.uint8)
        vals = vals.copy() if vals.base is not None else vals
        if self._raw is not None:
            self._raw.append((bcoords, offsets, vals))
            return
        nmodes = self._nmodes
        blk_bits = max(self._blk_bits, bits_for(int(bcoords.max())))
        if nmodes * (blk_bits + b) > 64:
            self._switch_to_multiword()
            self._raw.append((bcoords, offsets, vals))
            return
        self._blk_bits = blk_bits
        self._push_run(self._make_run(bcoords, offsets, vals))

    def _make_run(self, bcoords, offsets, vals) -> Run:
        """Sorted, deduplicated single-word-key run for one chunk."""
        nmodes, b = self._nmodes, self.block_bits
        key = morton_encode(bcoords.T, self._blk_bits)[0]
        np.left_shift(key, np.uint64(nmodes * b), out=key)
        for m in range(nmodes):
            shift = b * (nmodes - 1 - m)
            col = offsets[:, m].astype(np.uint64)
            key |= col << np.uint64(shift) if shift else col
        order = stable_argsort_u64(key)
        return _dedup_run(key[order], offsets[order], vals[order])

    def _push_run(self, run: Run) -> None:
        """Size-balanced merge ladder: merge whenever the newest run has
        grown to at least half its predecessor, so at most O(log nchunks)
        runs are alive and every nonzero is merged O(log nchunks) times."""
        runs = self._runs
        runs.append(run)
        while len(runs) > 1 and 2 * len(runs[-1][0]) >= len(runs[-2][0]):
            hi = runs.pop()
            lo = runs.pop()
            runs.append(_merge_runs(lo, hi))

    def _switch_to_multiword(self) -> None:
        """Key exceeded 64 bits: re-expand accumulated runs into raw block
        coordinate chunks for the whole-stream lexsort fallback."""
        self._raw = []
        nmodes, b = self._nmodes, self.block_bits
        for keys, offsets, vals in self._runs:
            codes = (keys >> np.uint64(nmodes * b))[None, :]
            bcoords = morton_decode(codes, nmodes, self._blk_bits)
            self._raw.append((bcoords.T.astype(np.int64), offsets, vals))
        self._runs = []

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def finalize(self) -> HicooTensor:
        """Fold the remaining runs together and scan out the block structure."""
        shape = self._resolve_shape()
        if self._nmodes is None:
            return HicooTensor(CooTensor.empty(shape), block_bits=self.block_bits)
        if self._raw is not None:
            return self._assemble_multiword(shape)

        runs = self._runs
        while len(runs) > 1:
            hi = runs.pop()
            lo = runs.pop()
            runs.append(_merge_runs(lo, hi))
        keys, offsets, values = runs[0]
        self._runs = []

        nmodes, b = self._nmodes, self.block_bits
        bcode = keys >> np.uint64(nmodes * b)
        changed = bcode[1:] != bcode[:-1]
        starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
        bptr = np.concatenate([starts, [len(values)]]).astype(np.int64)
        block_codes = bcode[starts]
        binds = morton_decode(block_codes[None, :], nmodes, self._blk_bits).T
        _check_binds_fit(binds)
        return _raw_hicoo(shape, b, bptr, binds.astype(np.uint32),
                          offsets, values)

    def _resolve_shape(self) -> tuple:
        if self._nmodes is None:
            if self.declared_shape is None:
                raise ValueError("no chunks and no explicit shape")
            return self.declared_shape
        if self.declared_shape is None:
            return tuple(int(m) + 1 for m in self._max_index)
        shape = self.declared_shape
        if len(shape) != self._nmodes:
            raise ValueError(
                f"shape has {len(shape)} modes, chunks have {self._nmodes}")
        if self._max_index is not None and np.any(
                self._max_index >= np.asarray(shape)):
            raise ValueError("chunk coordinate out of declared shape")
        return shape

    def _assemble_multiword(self, shape) -> HicooTensor:
        """Previous whole-stream path: 2-word Morton key + offset lexsort.
        Covers index spaces whose keys need up to 128 bits."""
        nmodes, b = self._nmodes, self.block_bits
        bcoords = np.vstack([r[0] for r in self._raw])
        offsets = np.vstack([r[1] for r in self._raw])
        values = np.concatenate([r[2] for r in self._raw])
        self._raw = []

        # global Morton order over block coords, offsets lexicographic
        # within; key budget: 2 uint64 words covers N*nbits <= 128 bits
        nbits = bits_for(int(bcoords.max()) if bcoords.size else 0)
        if nmodes * nbits > 128:
            raise ValueError(
                f"Morton key needs {nmodes * nbits} bits (> 128); reduce the "
                "index space or use the in-memory constructor")
        words = morton_encode(bcoords.T, nbits)
        off_keys = tuple(offsets[:, m] for m in reversed(range(nmodes)))
        order = np.lexsort(off_keys + tuple(words[::-1]))
        bcoords = bcoords[order]
        offsets = offsets[order]
        values = values[order]

        # sum duplicates (equal block coords AND offsets)
        if len(values) > 1:
            same = np.all(bcoords[1:] == bcoords[:-1], axis=1) & \
                np.all(offsets[1:] == offsets[:-1], axis=1)
            if same.any():
                group = np.concatenate([[0], np.cumsum(~same)])
                first = np.concatenate([[0], np.flatnonzero(~same) + 1])
                summed = np.zeros(group[-1] + 1)
                scatter_add(summed, group, values, presorted=True)
                bcoords, offsets, values = bcoords[first], offsets[first], summed

        _check_binds_fit(bcoords)
        changed = np.any(bcoords[1:] != bcoords[:-1], axis=1)
        starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
        bptr = np.concatenate([starts, [len(values)]]).astype(np.int64)
        return _raw_hicoo(shape, b, bptr, bcoords[starts].astype(np.uint32),
                          offsets, values)


def _dedup_run(keys, offsets, values) -> Run:
    """Sum duplicate coordinates (equal keys are equal coordinates)."""
    if len(keys) > 1:
        same = keys[1:] == keys[:-1]
        if same.any():
            first = np.concatenate([[0], np.flatnonzero(~same) + 1])
            group = np.concatenate([[0], np.cumsum(~same)])
            summed = np.zeros(group[-1] + 1)
            scatter_add(summed, group, values, presorted=True)
            return keys[first], offsets[first], summed
    return keys, offsets, values


def _merge_runs(a: Run, b: Run) -> Run:
    """Merge two sorted runs with vectorized searchsorted placement (ties go
    to ``a``, preserving arrival order), then sum cross-run duplicates."""
    ka, kb = a[0], b[0]
    pos_a = np.arange(len(ka)) + np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(len(kb)) + np.searchsorted(ka, kb, side="right")
    n = len(ka) + len(kb)
    keys = np.empty(n, dtype=np.uint64)
    keys[pos_a] = ka
    keys[pos_b] = kb
    offsets = np.empty((n, a[1].shape[1]), dtype=np.uint8)
    offsets[pos_a] = a[1]
    offsets[pos_b] = b[1]
    values = np.empty(n)
    values[pos_a] = a[2]
    values[pos_b] = b[2]
    return _dedup_run(keys, offsets, values)


def _check_binds_fit(bcoords) -> None:
    # block coordinates must fit the 32-bit binds array (the in-memory
    # constructor enforces the same bound)
    if bcoords.size and int(bcoords.max()) > np.iinfo(np.uint32).max:
        raise ValueError(
            f"block coordinate {int(bcoords.max())} does not fit the "
            "32-bit binds array; use a larger block size or split the mode")


def _raw_hicoo(shape, block_bits, bptr, binds, einds, values) -> HicooTensor:
    out = HicooTensor.__new__(HicooTensor)
    out._shape = tuple(shape)
    out.block_bits = int(block_bits)
    out.bptr = bptr
    out.binds = binds
    out.einds = einds
    out.values = values
    out._gather_cache = {}
    return out


def hicoo_from_chunks(chunks: Iterable[Chunk], block_bits: int,
                      shape: Optional[Sequence[int]] = None) -> HicooTensor:
    """Assemble a HiCOO tensor from coordinate chunks.

    Per chunk, coordinates are split into (block, offset), keyed, sorted and
    merged incrementally; the full coordinates are discarded on arrival.
    See :class:`ChunkedHicooBuilder` for the mechanism.

    ``shape`` may be omitted, in which case it is inferred from the data.
    """
    builder = ChunkedHicooBuilder(block_bits, shape=shape)
    for inds, vals in chunks:
        builder.add(inds, vals)
    return builder.finalize()


def stream_tns(path, block_bits: int, shape: Optional[Sequence[int]] = None,
               chunk_nnz: int = 100_000) -> HicooTensor:
    """Build a HiCOO tensor directly from a ``.tns`` file in chunks."""
    path = Path(path)
    return hicoo_from_chunks(read_tns_chunks(path, chunk_nnz=chunk_nnz),
                             block_bits=block_bits, shape=shape)
