"""Model-selection utilities around CP-ALS: restarts and rank sweeps.

CP-ALS converges to local optima and its quality is initialization-
dependent (the paper runs multiple decompositions per tensor when choosing
a rank — the very workload that amortizes HiCOO's construction cost).
These helpers orchestrate that workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..formats.base import SparseTensorFormat
from .cp_als import CpAlsResult, cp_als

__all__ = ["RankProfile", "cp_als_restarts", "rank_sweep"]


def cp_als_restarts(tensor: SparseTensorFormat, rank: int, *,
                    restarts: int = 3, seed: Optional[int] = None,
                    **cp_kwargs) -> CpAlsResult:
    """Run CP-ALS ``restarts`` times from different random initializations
    and return the best-fit result.

    Extra keyword arguments pass through to :func:`repro.cpd.cp_als.cp_als`
    (``maxiters``, ``tol``, ``nthreads``, ...).
    """
    if restarts < 1:
        raise ValueError(f"restarts must be positive, got {restarts}")
    if "init" in cp_kwargs:
        raise ValueError("cp_als_restarts controls initialization itself; "
                         "pass seed instead of init")
    rng = np.random.default_rng(seed)
    best: Optional[CpAlsResult] = None
    for _ in range(restarts):
        run_seed = int(rng.integers(1 << 31))
        result = cp_als(tensor, rank, seed=run_seed, **cp_kwargs)
        if best is None or result.final_fit > best.final_fit:
            best = result
    assert best is not None
    return best


@dataclass
class RankProfile:
    """Outcome of a rank sweep."""

    ranks: List[int] = field(default_factory=list)
    fits: List[float] = field(default_factory=list)
    iterations: List[int] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)

    def best_rank(self) -> int:
        """Smallest rank within ``elbow_tol`` of the maximum fit."""
        return self.knee(tolerance=0.0)

    def knee(self, tolerance: float = 0.01) -> int:
        """Smallest rank whose fit is within ``tolerance`` of the best fit
        seen — the usual elbow criterion for choosing R."""
        if not self.ranks:
            raise ValueError("empty rank profile")
        target = max(self.fits) - tolerance
        for r, f in zip(self.ranks, self.fits):
            if f >= target:
                return r
        return self.ranks[-1]


def rank_sweep(tensor: SparseTensorFormat, ranks: Sequence[int], *,
               restarts: int = 1, seed: Optional[int] = None,
               **cp_kwargs) -> RankProfile:
    """Profile CP-ALS fit across candidate ranks.

    Each rank runs ``restarts`` initializations (best kept); the profile
    records fit, iteration count and wall time per rank.
    """
    ranks = [int(r) for r in ranks]
    if not ranks or any(r < 1 for r in ranks):
        raise ValueError(f"ranks must be positive integers, got {ranks}")
    rng = np.random.default_rng(seed)
    profile = RankProfile()
    for rank in ranks:
        result = cp_als_restarts(tensor, rank, restarts=restarts,
                                 seed=int(rng.integers(1 << 31)), **cp_kwargs)
        profile.ranks.append(rank)
        profile.fits.append(result.final_fit)
        profile.iterations.append(result.iterations)
        profile.seconds.append(result.total_seconds)
    return profile
