"""Kruskal tensors — the output of a CP decomposition.

A rank-R Kruskal tensor is ``sum_r weights[r] * outer(U1[:,r], ..., UN[:,r])``.
This module provides norm/inner-product identities so CP-ALS can evaluate
its fit without ever densifying the input tensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..formats.coo import CooTensor
from ..kernels.khatrirao import gram, hadamard_all

__all__ = ["KruskalTensor"]


@dataclass
class KruskalTensor:
    """weights (R,) and factor matrices (shape[m], R)."""

    weights: np.ndarray
    factors: List[np.ndarray]

    def __post_init__(self):
        self.weights = np.asarray(self.weights, dtype=np.float64).ravel()
        self.factors = [np.asarray(f, dtype=np.float64) for f in self.factors]
        if not self.factors:
            raise ValueError("a Kruskal tensor needs at least one factor")
        rank = self.rank
        for m, f in enumerate(self.factors):
            if f.ndim != 2 or f.shape[1] != rank:
                raise ValueError(
                    f"factor {m} must have {rank} columns, got shape {f.shape}"
                )
        if len(self.weights) != rank:
            raise ValueError(
                f"{len(self.weights)} weights for rank-{rank} factors"
            )

    @property
    def rank(self) -> int:
        return self.factors[0].shape[1]

    @property
    def shape(self) -> tuple:
        return tuple(f.shape[0] for f in self.factors)

    @property
    def nmodes(self) -> int:
        return len(self.factors)

    # ------------------------------------------------------------------
    def full(self) -> np.ndarray:
        """Densify (guarded; for tests and small tensors only)."""
        size = int(np.prod(self.shape))
        if size > 50_000_000:
            raise MemoryError(f"refusing to densify {size} elements")
        out = np.zeros(self.shape)
        for r in range(self.rank):
            term = self.weights[r]
            comp = np.array(term)
            for f in self.factors:
                comp = np.multiply.outer(comp, f[:, r])
            out += comp
        return out

    def norm(self) -> float:
        """||M||_F via the Gram identity:
        ``||M||^2 = w^T (hadamard_m U_m^T U_m) w`` — O(N R^2 I) work."""
        coeff = hadamard_all([gram(f) for f in self.factors])
        val = float(self.weights @ coeff @ self.weights)
        return float(np.sqrt(max(val, 0.0)))

    def innerprod(self, tensor: CooTensor) -> float:
        """<X, M> evaluated sparsely over X's nonzeros."""
        return tensor.innerprod_ktensor(self.weights, self.factors)

    def fit(self, tensor: CooTensor, tensor_norm: float | None = None) -> float:
        """CP fit: ``1 - ||X - M|| / ||X||`` (1 is exact recovery)."""
        xnorm = tensor.norm() if tensor_norm is None else tensor_norm
        if xnorm == 0:
            return 1.0 if self.norm() == 0 else 0.0
        mnorm = self.norm()
        resid_sq = xnorm**2 - 2.0 * self.innerprod(tensor) + mnorm**2
        return 1.0 - np.sqrt(max(resid_sq, 0.0)) / xnorm

    # ------------------------------------------------------------------
    def normalize(self) -> "KruskalTensor":
        """Push column norms into the weights (columns become unit norm)."""
        weights = self.weights.copy()
        factors = []
        for f in self.factors:
            norms = np.linalg.norm(f, axis=0)
            safe = np.where(norms > 0, norms, 1.0)
            factors.append(f / safe)
            weights = weights * norms
        return KruskalTensor(weights, factors)

    def arrange(self) -> "KruskalTensor":
        """Normalize and order components by decreasing |weight|."""
        kt = self.normalize()
        order = np.argsort(-np.abs(kt.weights), kind="stable")
        return KruskalTensor(kt.weights[order], [f[:, order] for f in kt.factors])

    def congruence(self, other: "KruskalTensor") -> float:
        """Factor-match score in [0, 1] against another Kruskal tensor of the
        same rank — used by tests to check recovery of planted factors."""
        if self.rank != other.rank or self.shape != other.shape:
            raise ValueError("Kruskal tensors are not comparable")
        from scipy.optimize import linear_sum_assignment

        # cross-congruence matrix over all component pairs, then optimal
        # matching (CP components are identifiable only up to permutation)
        cross = np.ones((self.rank, self.rank))
        for fa, fb in zip(self.factors, other.factors):
            na = np.linalg.norm(fa, axis=0)
            nb = np.linalg.norm(fb, axis=0)
            fa_n = fa / np.where(na > 0, na, 1.0)
            fb_n = fb / np.where(nb > 0, nb, 1.0)
            cross *= np.abs(fa_n.T @ fb_n)
        rows, cols = linear_sum_assignment(-cross)
        return float(cross[rows, cols].mean())
