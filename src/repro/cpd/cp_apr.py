"""CP-APR: Poisson (KL-divergence) CP decomposition for count tensors.

Most of the paper's datasets carry *count* values (tag assignments, word
frequencies, interaction counts), for which the Gaussian loss of CP-ALS is
statistically mismatched.  CP-APR (Chi & Kolda, 2012) maximizes the Poisson
log-likelihood with multiplicative updates; its per-iteration kernel is the
same gather/Hadamard over nonzeros as MTTKRP, so it exercises the storage
formats identically and is the standard companion solver in sparse-tensor
libraries (including ParTI!, HiCOO's reference implementation).

This is the MU (multiplicative update) variant:

repeat (outer):
  for each mode n:
    for a few inner steps:
      Pi    = Hadamard of the other modes' factor rows per nonzero
      m     = <B_n[i_n,:], Pi>                (model value at each nonzero)
      Phi_n = scatter-add of (x / m) * Pi into the mode-n rows
      B_n  <- B_n * Phi_n                     (elementwise)
    lambda-normalize B_n columns (L1)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..formats.base import SparseTensorFormat
from ..util.validation import check_factors
from .ktensor import KruskalTensor

__all__ = ["CpAprResult", "cp_apr"]

_EPS = 1e-10


@dataclass
class CpAprResult:
    """Decomposition plus the log-likelihood trace."""

    ktensor: KruskalTensor
    log_likelihoods: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    total_seconds: float = 0.0

    @property
    def final_log_likelihood(self) -> float:
        return self.log_likelihoods[-1] if self.log_likelihoods else -np.inf


def _poisson_log_likelihood(values, model_at_nnz, weights, factors) -> float:
    """sum_nnz x*log(m) - sum_all m  (the x! term is constant, dropped).

    The total model mass sum_all m is computed in closed form:
    ``sum_r w_r * prod_m (sum_i U_m[i, r])``.
    """
    col_sums = np.ones_like(weights)
    for f in factors:
        col_sums = col_sums * f.sum(axis=0)
    total_mass = float(weights @ col_sums)
    return float(values @ np.log(np.maximum(model_at_nnz, _EPS))) - total_mass


def cp_apr(tensor: SparseTensorFormat, rank: int, *,
           maxiters: int = 50, inner_iters: int = 5, tol: float = 1e-4,
           seed: Optional[int] = None,
           init: Optional[List[np.ndarray]] = None) -> CpAprResult:
    """Rank-``rank`` Poisson CP decomposition of a non-negative tensor.

    Parameters
    ----------
    tensor : any sparse format; values must be non-negative (counts).
    rank : number of components.
    maxiters / inner_iters : outer sweeps and multiplicative steps per mode.
    tol : relative log-likelihood-change convergence threshold.
    seed / init : random initialization seed, or explicit factors.
    """
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    if maxiters < 1 or inner_iters < 1:
        raise ValueError("maxiters and inner_iters must be positive")
    coo = tensor.to_coo()
    if coo.nnz and coo.values.min() < 0:
        raise ValueError("CP-APR requires non-negative (count) values")
    nmodes = tensor.nmodes
    rng = np.random.default_rng(seed)

    if init is None:
        factors = [rng.random((dim, rank)) + 0.1 for dim in tensor.shape]
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        factors = check_factors(factors, tensor.shape)
        if factors[0].shape[1] != rank:
            raise ValueError(
                f"init factors have rank {factors[0].shape[1]}, expected {rank}")
        if any(f.min() < 0 for f in factors):
            raise ValueError("CP-APR initial factors must be non-negative")

    indices = coo.indices
    values = coo.values
    weights = np.ones(rank)
    result = CpAprResult(ktensor=KruskalTensor(weights, factors))
    t0 = time.perf_counter()
    prev_ll = -np.inf

    for it in range(maxiters):
        for mode in range(nmodes):
            if coo.nnz == 0:
                continue
            # Pi: Hadamard of the *other* (normalized) factors' rows; the
            # weights are absorbed into the mode being updated, as in Chi &
            # Kolda's formulation — folding them into Pi as well would
            # double-count them after the first inner step.
            pi = np.ones((coo.nnz, rank))
            for m, f in enumerate(factors):
                if m != mode:
                    pi *= f[indices[:, m]]
            rows = indices[:, mode]
            b = factors[mode] * weights  # lambda-absorbed B_n
            for _ in range(inner_iters):
                model = np.einsum("ij,ij->i", b[rows], pi)
                ratio = values / np.maximum(model, _EPS)
                phi = np.zeros_like(b)
                np.add.at(phi, rows, ratio[:, None] * pi)
                b = b * phi
            # extract lambda back out by L1-normalizing the columns
            col = b.sum(axis=0)
            safe = np.where(col > 0, col, 1.0)
            factors[mode] = b / safe
            weights = col

        if coo.nnz:
            pi = np.repeat(weights[None, :], coo.nnz, axis=0)
            for m, f in enumerate(factors):
                pi *= f[indices[:, m]]
            model_at_nnz = pi.sum(axis=1)
        else:
            model_at_nnz = np.zeros(0)
        ll = _poisson_log_likelihood(values, model_at_nnz, weights, factors)
        result.log_likelihoods.append(ll)
        result.iterations = it + 1
        if it > 0 and abs(ll - prev_ll) <= tol * (abs(prev_ll) + _EPS):
            result.converged = True
            break
        prev_ll = ll

    result.total_seconds = time.perf_counter() - t0
    result.ktensor = KruskalTensor(weights, factors).arrange()
    return result
