"""Factor-matrix initialization strategies for CP-ALS."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..formats.coo import CooTensor
from ..kernels.matricize import unfold_coo

__all__ = ["random_init", "hosvd_init", "initialize"]


def random_init(shape, rank: int,
                rng: Optional[np.random.Generator] = None) -> List[np.ndarray]:
    """Uniform [0, 1) factors — the default in the paper's CP-ALS runs."""
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    rng = rng or np.random.default_rng()
    return [rng.random((dim, rank)) for dim in shape]


def hosvd_init(tensor: CooTensor, rank: int,
               rng: Optional[np.random.Generator] = None) -> List[np.ndarray]:
    """Leading left singular vectors of each mode unfolding (truncated HOSVD).

    Modes whose size is below ``rank`` are padded with random columns, as in
    Tensor Toolbox's ``nvecs`` handling.
    """
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    rng = rng or np.random.default_rng()
    from scipy.sparse.linalg import svds

    factors = []
    for mode, dim in enumerate(tensor.shape):
        k = min(rank, max(1, dim - 1))
        mat = unfold_coo(tensor, mode)
        if k < 1 or min(mat.shape) <= 1 or tensor.nnz == 0:
            factors.append(rng.random((dim, rank)))
            continue
        try:
            u, _, _ = svds(mat.astype(np.float64), k=min(k, min(mat.shape) - 1))
            u = u[:, ::-1]  # svds returns ascending singular values
        except Exception:
            u = rng.random((dim, 0))
        if u.shape[1] < rank:
            pad = rng.random((dim, rank - u.shape[1]))
            u = np.hstack([u, pad]) if u.size else pad
        factors.append(np.ascontiguousarray(u[:, :rank]))
    return factors


def initialize(tensor: CooTensor, rank: int, method: str = "random",
               rng: Optional[np.random.Generator] = None) -> List[np.ndarray]:
    """Dispatch: ``method`` in {"random", "hosvd"}."""
    if method == "random":
        return random_init(tensor.shape, rank, rng)
    if method == "hosvd":
        return hosvd_init(tensor, rank, rng)
    raise ValueError(f"unknown init method {method!r}; use 'random' or 'hosvd'")
