"""CP-ALS: alternating least squares for the CP decomposition.

The driver is *format-generic*: any object implementing the
:class:`repro.formats.base.SparseTensorFormat` MTTKRP contract can be
decomposed, which is how the paper's end-to-end comparison (experiment E9)
runs the same solver over COO, CSF and HiCOO and attributes the time
difference purely to the MTTKRP kernel.

Per iteration and mode ``n``::

    M     = MTTKRP(X, {U}, n)                  # the only tensor-touching step
    H     = *_{m != n} U_m^T U_m               # R x R Hadamard of Grams
    U_n   = M @ pinv(H)
    U_n, lambda = column-normalize(U_n)

Convergence is declared when the change in fit (1 - relative error) drops
below ``tol``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..formats.base import SparseTensorFormat
from ..kernels.khatrirao import gram, hadamard_all
from ..kernels.mttkrp import mttkrp, mttkrp_parallel
from ..obs import metrics, trace
from ..util.validation import check_factors
from .init import initialize
from .ktensor import KruskalTensor

__all__ = ["CpAlsResult", "cp_als"]


@dataclass
class CpAlsResult:
    """Decomposition plus the per-iteration trace the benchmarks report."""

    ktensor: KruskalTensor
    fits: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    mttkrp_seconds: float = 0.0
    dense_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def final_fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0

    def seconds_per_iteration(self) -> float:
        return self.total_seconds / self.iterations if self.iterations else 0.0


def cp_als(tensor: SparseTensorFormat, rank: int, *,
           maxiters: int = 50, tol: float = 1e-5,
           init: str | Sequence[np.ndarray] = "random",
           nthreads: int = 1, strategy: str = "auto",
           seed: Optional[int] = None,
           callback: Optional[Callable[[int, float], None]] = None,
           plan=None, backend: Optional[str] = None,
           fault_policy=None, format: Optional[str] = None) -> CpAlsResult:
    """Compute a rank-``rank`` CP decomposition of ``tensor``.

    Parameters
    ----------
    tensor : any sparse-format tensor (COO, CSF, HiCOO, dense wrapper).
    rank : number of components R.
    maxiters, tol : iteration cap and fit-change convergence threshold.
    init : "random", "hosvd", or an explicit list of factor matrices.
    nthreads : >1 routes MTTKRP through :func:`mttkrp_parallel`.
    strategy : parallel MTTKRP strategy (see ``mttkrp_parallel``).
    seed : seeds the initializer for reproducible runs.
    callback : called as ``callback(iteration, fit)`` after every iteration.
    plan : a precomputed :class:`repro.kernels.plan.MttkrpPlan` for a HiCOO
        ``tensor``; pass one to share the symbolic state (superblocks,
        schedules, fused gather arrays) across CP-ALS restarts.  When
        omitted and ``nthreads > 1``, one plan is built here and reused by
        every mode of every iteration.
    backend : parallel execution backend forwarded to
        :func:`repro.kernels.mttkrp.mttkrp_parallel` — ``"sim"`` (default),
        ``"thread"``, ``"process"`` (true multicore over shared memory;
        the worker pool and shared segments persist across iterations, so
        start-up cost is paid once per run), ``"numba"`` (fused JIT
        kernels; compiled signatures are reused by every mode of every
        iteration, and compilation is paid before the timed loop), or
        ``"cupy"`` (GPU; the plan's structure is uploaded once and stays
        device-resident across iterations).  The compiled tiers degrade
        silently to the NumPy kernels when the dependency is absent.
    fault_policy : process backend only — ``"fail-fast"`` (default),
        ``"retry"`` (dead/hung workers are respawned and their MTTKRP tasks
        re-run idempotently; budgets reset every parallel region, so a long
        run tolerates repeated isolated faults), or ``"degrade"``
        (exhausted budgets finish the region on the thread/sim backends; a
        ``supervisor.degradations`` metric and trace instant record each
        event).  Also accepts a
        :class:`repro.parallel.supervisor.FaultConfig`.
    format : convert ``tensor`` to this storage format first (one of
        :data:`repro.formats.FORMAT_NAMES`, or ``"auto"`` to let
        :func:`repro.core.tuner.choose_format` pick from the tensor's nnz
        distribution).  ``None`` (default) decomposes ``tensor`` as given.
    """
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    if maxiters < 1:
        raise ValueError(f"maxiters must be positive, got {maxiters}")
    if format is not None:
        from ..formats import as_format

        if format == "auto":
            from ..core.tuner import choose_format

            format = choose_format(tensor.to_coo())
        tensor = as_format(tensor, format)
    nmodes = tensor.nmodes
    rng = np.random.default_rng(seed)

    if isinstance(init, str):
        coo = tensor.to_coo()
        factors = initialize(coo, rank, method=init, rng=rng)
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        factors = check_factors(factors, tensor.shape)
        if factors[0].shape[1] != rank:
            raise ValueError(
                f"init factors have rank {factors[0].shape[1]}, expected {rank}"
            )
        coo = tensor.to_coo()

    xnorm = coo.norm()
    grams = [gram(f) for f in factors]
    weights = np.ones(rank)
    result = CpAlsResult(ktensor=KruskalTensor(weights, factors))

    # precompute the parallel plan once: the superblock index, per-mode
    # schedules, and fused gather arrays are symbolic state, identical
    # across iterations — built here (or passed in), reused every MTTKRP
    from ..core.hicoo import HicooTensor

    parallel = nthreads > 1 or backend in ("process", "numba", "cupy")
    if plan is None and parallel and isinstance(tensor, HicooTensor):
        from ..kernels.plan import plan_mttkrp

        plan = plan_mttkrp(tensor, rank, nthreads,
                           strategy=strategy if strategy != "atomic"
                           else "auto")
    if plan is not None and isinstance(tensor, HicooTensor):
        # materialize every mode's gather arrays up front so no iteration
        # (not even the first) pays symbolic cost inside the timed loop
        plan.ensure_gathers(tensor)
    if backend == "numba":
        # compile the fused kernels (no-op when numba is absent) so JIT
        # cost lands before the timed loop, not inside iteration 0
        from ..kernels.compiled import warmup_numba

        warmup_numba()

    # derived HiCOO structure parameters (the paper's alpha_b / c_b) tag
    # every iteration span so traces compare directly to the storage model
    geom = {}
    if isinstance(tensor, HicooTensor):
        geom = {"alpha_b": tensor.block_ratio(),
                "c_b": tensor.avg_slice_size(), "b": tensor.block_bits}

    t_start = time.perf_counter()
    prev_fit = 0.0
    with trace.span("cpals", rank=rank, nthreads=nthreads,
                    backend=backend or "sim",
                    format=tensor.format_name, **geom) as root:
        for it in range(maxiters):
            with trace.span("cpals.iter", it=it, **geom) as sp:
                for mode in range(nmodes):
                    t0 = time.perf_counter()
                    if plan is not None:
                        m = mttkrp_parallel(tensor, factors, mode,
                                            plan.nthreads, strategy=strategy,
                                            plan=plan, backend=backend,
                                            fault_policy=fault_policy).output
                    elif parallel:
                        m = mttkrp_parallel(tensor, factors, mode, nthreads,
                                            strategy=strategy,
                                            backend=backend,
                                            fault_policy=fault_policy).output
                    else:
                        m = mttkrp(tensor, factors, mode)
                    result.mttkrp_seconds += time.perf_counter() - t0

                    t0 = time.perf_counter()
                    with trace.span("cpals.dense", mode=mode):
                        h = hadamard_all([g for i, g in enumerate(grams)
                                          if i != mode]) \
                            if nmodes > 1 else np.ones((rank, rank))
                        new_factor = m @ np.linalg.pinv(h)
                        norms = np.linalg.norm(new_factor, axis=0)
                        # after iteration 0 use the max(1, norm) convention
                        # of the Tensor Toolbox to avoid shrinking tiny
                        # components to zero
                        if it == 0:
                            safe = np.where(norms > 0, norms, 1.0)
                        else:
                            safe = np.maximum(norms, 1.0)
                        weights = safe.copy()
                        factors[mode] = new_factor / safe
                        grams[mode] = gram(factors[mode])
                    result.dense_seconds += time.perf_counter() - t0

                with trace.span("cpals.fit"):
                    kt = KruskalTensor(weights, [f.copy() for f in factors])
                    fit = kt.fit(coo, tensor_norm=xnorm)
                sp.note(fit=fit)
            result.fits.append(fit)
            result.iterations = it + 1
            metrics.inc("cpals.iterations",
                        labels={"format": tensor.format_name,
                                "backend": backend or "sim"})
            if callback is not None:
                callback(it, fit)
            if it > 0 and abs(fit - prev_fit) < tol:
                result.converged = True
                prev_fit = fit
                break
            prev_fit = fit
        root.note(iterations=result.iterations, fit=prev_fit)

    result.total_seconds = time.perf_counter() - t_start
    result.ktensor = KruskalTensor(weights, factors).arrange()
    return result
