"""Reader/writer for the FROSTT ``.tns`` text format.

One nonzero per line: N one-based coordinates followed by the value,
whitespace separated.  Lines starting with ``#`` are comments.  This is the
format the paper's datasets ship in, so real FROSTT files can be dropped
straight into the benchmark harness.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..formats.coo import CooTensor

__all__ = ["read_tns", "write_tns"]

PathLike = Union[str, Path, io.TextIOBase]


def _parse_line(parts, lineno):
    """Parse one data line: exact int coordinates + float value.

    Coordinates are parsed as integers directly (parsing through float
    would silently corrupt indices beyond 2**53 — FROSTT mode sizes reach
    tens of millions today, but exactness is free).
    """
    coords = []
    for p in parts[:-1]:
        try:
            coords.append(int(p))
        except ValueError:
            try:
                float(p)
            except ValueError as exc:
                raise ValueError(f"line {lineno}: non-numeric field") from exc
            raise ValueError(
                f"line {lineno}: coordinates must be integers, got {p!r}")
    try:
        value = float(parts[-1])
    except ValueError as exc:
        raise ValueError(f"line {lineno}: non-numeric field") from exc
    return coords, value


def read_tns(source: PathLike, shape: Optional[Sequence[int]] = None,
             nmodes: Optional[int] = None) -> CooTensor:
    """Parse a ``.tns`` file into a COO tensor.

    Parameters
    ----------
    source : path or open text file.
    shape : optional explicit shape; inferred as ``max index per mode`` when
        omitted.
    nmodes : optional expected mode count, validated against the file.

    Raises
    ------
    ValueError on ragged rows, non-numeric fields, non-positive indices, or a
    mode-count / shape mismatch.
    """
    close = False
    if isinstance(source, (str, Path)):
        fh = open(source, "r")
        close = True
    else:
        fh = source
    try:
        rows = []
        width = None
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if width is None:
                width = len(parts)
                if width < 2:
                    raise ValueError(
                        f"line {lineno}: need at least one index and a value"
                    )
            elif len(parts) != width:
                raise ValueError(
                    f"line {lineno}: expected {width} fields, got {len(parts)}"
                )
            rows.append(_parse_line(parts, lineno))
    finally:
        if close:
            fh.close()

    if not rows:
        if shape is None:
            raise ValueError("empty .tns file and no explicit shape given")
        return CooTensor.empty(shape)

    inds = np.asarray([r[0] for r in rows], dtype=np.int64)
    vals = np.asarray([r[1] for r in rows], dtype=np.float64)
    if inds.min() < 1:
        raise ValueError(".tns coordinates are one-based and must be >= 1")
    inds -= 1

    file_modes = inds.shape[1]
    if nmodes is not None and file_modes != nmodes:
        raise ValueError(f"file has {file_modes} modes, expected {nmodes}")
    if shape is None:
        shape = tuple(int(m) + 1 for m in inds.max(axis=0))
    return CooTensor(shape, inds, vals, sum_duplicates=True)


def write_tns(tensor: CooTensor, dest: PathLike,
              header: Optional[str] = None) -> None:
    """Write a COO tensor in ``.tns`` format (one-based coordinates)."""
    close = False
    if isinstance(dest, (str, Path)):
        fh = open(dest, "w")
        close = True
    else:
        fh = dest
    try:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for coord, value in zip(tensor.indices, tensor.values):
            fields = " ".join(str(int(c) + 1) for c in coord)
            fh.write(f"{fields} {float(value)!r}\n")
    finally:
        if close:
            fh.close()
