"""Dataset substrate: synthetic generators, FROSTT I/O, and the registry of
scaled-down analogs of the paper's evaluation tensors."""

from . import synthetic  # noqa: F401
from .frostt import read_tns, write_tns  # noqa: F401
from .registry import REGISTRY, DatasetSpec, load, names, summary_rows  # noqa: F401

__all__ = [
    "synthetic", "read_tns", "write_tns",
    "REGISTRY", "DatasetSpec", "load", "names", "summary_rows",
]
