"""Synthetic sparse-tensor generators.

The paper evaluates on FROSTT / HaTen2 tensors whose behaviour under HiCOO
is governed by their *index structure* — how clustered the nonzeros are
(block ratio alpha_b) and how skewed the per-slice counts are.  These
generators expose exactly those knobs, so the registry
(:mod:`repro.data.registry`) can produce scaled-down analogs living in the
same structural regime as each real dataset.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..formats.coo import CooTensor
from ..util.validation import check_shape

__all__ = [
    "random_tensor",
    "clustered_tensor",
    "power_law_tensor",
    "graph_tensor",
    "banded_tensor",
    "lowrank_tensor",
]


def _dedup_fill(shape, draw, nnz, rng, max_rounds: int = 50) -> np.ndarray:
    """Draw coordinate batches until ``nnz`` distinct tuples are collected.

    ``draw(n)`` must return an (n, N) int array within ``shape``.
    """
    seen = np.empty((0, len(shape)), dtype=np.int64)
    need = nnz
    for _ in range(max_rounds):
        batch = draw(int(need * 1.3) + 8)
        cand = np.vstack([seen, batch])
        cand = np.unique(cand, axis=0)
        if len(cand) >= nnz:
            perm = rng.permutation(len(cand))[:nnz]
            return cand[perm]
        seen = cand
        need = nnz - len(cand)
    raise RuntimeError(
        f"could not draw {nnz} distinct coordinates in a "
        f"{'x'.join(map(str, shape))} tensor — index space too small?"
    )


def _values(rng, n, kind: str = "uniform") -> np.ndarray:
    if kind == "uniform":
        return rng.random(n) + 0.1  # bounded away from zero
    if kind == "normal":
        return rng.normal(size=n)
    if kind == "counts":
        return rng.geometric(0.3, size=n).astype(np.float64)
    raise ValueError(f"unknown value kind {kind!r}")


def random_tensor(shape: Sequence[int], nnz: int, *,
                  seed: Optional[int] = None,
                  values: str = "uniform") -> CooTensor:
    """Uniform-random coordinates — the structure-free worst case for HiCOO
    (alpha_b -> 1 when the index space is much larger than nnz)."""
    shape = check_shape(shape)
    rng = np.random.default_rng(seed)
    space = np.prod([float(s) for s in shape])
    if nnz > space:
        raise ValueError(f"cannot place {nnz} distinct nonzeros in {space:.0f} cells")

    def draw(n):
        return np.stack([rng.integers(0, s, n) for s in shape], axis=1)

    inds = _dedup_fill(shape, draw, nnz, rng)
    return CooTensor(shape, inds, _values(rng, nnz, values), sum_duplicates=False)


def clustered_tensor(shape: Sequence[int], nnz: int, *,
                     nclusters: int = 64, spread: float = 8.0,
                     seed: Optional[int] = None,
                     values: str = "uniform") -> CooTensor:
    """Nonzeros gathered around random cluster centres.

    ``spread`` is the per-mode standard deviation of the offsets; small
    spreads produce dense blocks (small alpha_b, large c_b) and are the
    regime where HiCOO shines.
    """
    shape = check_shape(shape)
    if nclusters < 1:
        raise ValueError(f"nclusters must be positive, got {nclusters}")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    rng = np.random.default_rng(seed)
    centers = np.stack([rng.integers(0, s, nclusters) for s in shape], axis=1)

    def draw(n):
        which = rng.integers(0, nclusters, n)
        offs = rng.normal(0.0, max(spread, 1e-9), size=(n, len(shape)))
        pts = centers[which] + np.rint(offs).astype(np.int64)
        return np.clip(pts, 0, np.asarray(shape) - 1)

    inds = _dedup_fill(shape, draw, nnz, rng)
    return CooTensor(shape, inds, _values(rng, nnz, values), sum_duplicates=False)


def power_law_tensor(shape: Sequence[int], nnz: int, *,
                     exponent: float = 1.2,
                     shuffle_labels: bool = False,
                     seed: Optional[int] = None,
                     values: str = "counts") -> CooTensor:
    """Per-mode Zipf-distributed indices — the skew of web/NLP tensors
    (a few very dense slices, a long sparse tail).

    By default labels follow frequency order (index 0 is the heaviest), as
    in frequency-sorted real datasets: the Zipf head concentrates nonzeros
    near the origin, producing the index locality HiCOO exploits.  Pass
    ``shuffle_labels=True`` for the adversarial variant where the same skew
    is scattered randomly over the index space (alpha_b -> 1).
    """
    shape = check_shape(shape)
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = np.random.default_rng(seed)

    # inverse-CDF sampling of a bounded zipf per mode
    cdfs = []
    for s in shape:
        w = 1.0 / np.arange(1, s + 1, dtype=np.float64) ** exponent
        cdfs.append(np.cumsum(w) / w.sum())

    def draw(n):
        cols = []
        for cdf in cdfs:
            u = rng.random(n)
            cols.append(np.searchsorted(cdf, u))
        return np.stack(cols, axis=1)

    inds = _dedup_fill(shape, draw, nnz, rng)
    if shuffle_labels:
        for m, s in enumerate(shape):
            perm = rng.permutation(s)
            inds[:, m] = perm[inds[:, m]]
    return CooTensor(shape, inds, _values(rng, nnz, values), sum_duplicates=False)


def graph_tensor(nnodes: int, ntime: int, *, attach: int = 4,
                 seed: Optional[int] = None,
                 values: str = "counts") -> CooTensor:
    """node x node x time tensor from a preferential-attachment graph.

    Models interaction datasets (DARPA, Facebook): a scale-free graph whose
    edges fire at several random time steps.  Uses networkx's
    Barabasi-Albert generator as the graph substrate.
    """
    import networkx as nx

    if nnodes <= attach:
        raise ValueError(f"nnodes ({nnodes}) must exceed attach ({attach})")
    rng = np.random.default_rng(seed)
    g = nx.barabasi_albert_graph(nnodes, attach, seed=int(rng.integers(1 << 31)))
    edges = np.asarray(g.edges(), dtype=np.int64)
    # each edge fires 1..4 times; direction randomized
    reps = rng.integers(1, 5, size=len(edges))
    src = np.repeat(edges[:, 0], reps)
    dst = np.repeat(edges[:, 1], reps)
    flip = rng.random(len(src)) < 0.5
    src2 = np.where(flip, dst, src)
    dst2 = np.where(flip, src, dst)
    t = rng.integers(0, ntime, size=len(src))
    inds = np.stack([src2, dst2, t], axis=1)
    coo = CooTensor((nnodes, nnodes, ntime), inds,
                    _values(rng, len(inds), values), sum_duplicates=True)
    return coo


def banded_tensor(shape: Sequence[int], nnz: int, *, bandwidth: int = 16,
                  seed: Optional[int] = None,
                  values: str = "uniform") -> CooTensor:
    """Nonzeros near the main diagonal — the most blockable structure
    (stencil-like tensors); the best case for HiCOO compression."""
    shape = check_shape(shape)
    if bandwidth < 1:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    rng = np.random.default_rng(seed)
    smin = min(shape)

    def draw(n):
        diag = rng.integers(0, smin, n)
        cols = []
        for s in shape:
            scaled = (diag.astype(np.float64) * s / smin).astype(np.int64)
            off = rng.integers(-bandwidth, bandwidth + 1, n)
            cols.append(np.clip(scaled + off, 0, s - 1))
        return np.stack(cols, axis=1)

    inds = _dedup_fill(shape, draw, nnz, rng)
    return CooTensor(shape, inds, _values(rng, nnz, values), sum_duplicates=False)


def lowrank_tensor(shape: Sequence[int], nnz: int, rank: int, *,
                   noise: float = 0.0,
                   seed: Optional[int] = None) -> CooTensor:
    """Sparse sample of a planted rank-``rank`` Kruskal tensor.

    Coordinates are uniform; the values come from the planted model (plus
    optional Gaussian noise), so CP-ALS on the result should recover a fit
    near 1 at the planted rank.  Used for correctness experiments.
    """
    shape = check_shape(shape)
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    rng = np.random.default_rng(seed)

    def draw(n):
        return np.stack([rng.integers(0, s, n) for s in shape], axis=1)

    inds = _dedup_fill(shape, draw, nnz, rng)
    factors = [rng.random((s, rank)) + 0.1 for s in shape]
    vals = np.ones(nnz)
    acc = np.ones((nnz, rank))
    for m, f in enumerate(factors):
        acc *= f[inds[:, m]]
    vals = acc.sum(axis=1)
    if noise > 0:
        vals = vals + rng.normal(0.0, noise, nnz)
    return CooTensor(shape, inds, vals, sum_duplicates=False)
