"""Scaled-down analogs of the paper's evaluation datasets.

The SC'18 paper evaluates on FROSTT / HaTen2 tensors of 3M-144M nonzeros
(vast, nell2, choa, darpa, fb-m, flickr, deli, nell1 in 3-D; crime, uber,
nips, enron, flickr4d, deli4d in 4-D).  Those files are multi-GB downloads;
this registry generates synthetic analogs ~1000x smaller that land in the
same *structural regime* — the mode-size ratios and the clustering/skew that
determine HiCOO's block ratio alpha_b, which is what its storage and speed
depend on.  DESIGN.md section 2 documents this substitution.

Every entry records the real dataset's published statistics so the mapping
is auditable, and :func:`load` accepts a ``scale`` factor to grow an analog
toward the real size when more compute is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..formats.coo import CooTensor
from . import synthetic

__all__ = ["DatasetSpec", "REGISTRY", "load", "names", "summary_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """One named workload: the analog generator plus real-dataset metadata."""

    name: str
    shape: Tuple[int, ...]
    nnz: int
    generator: Callable[..., CooTensor]
    params: tuple  # ((key, value), ...) extra generator kwargs
    regime: str  # "clustered" / "skewed" / "uniform" / "graph" / "banded"
    real_shape: str  # the paper dataset's published dimensions
    real_nnz: str  # the paper dataset's published nonzero count

    def build(self, scale: float = 1.0, seed: Optional[int] = None) -> CooTensor:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        dim_scale = scale ** (1.0 / max(1, len(self.shape)))
        shape = tuple(max(4, int(round(s * dim_scale))) for s in self.shape)
        nnz = max(16, int(round(self.nnz * scale)))
        kwargs = dict(self.params)
        if self.generator is synthetic.graph_tensor:
            nnodes = shape[0]
            ntime = shape[2]
            return self.generator(nnodes, ntime, seed=seed, **kwargs)
        return self.generator(shape, nnz, seed=seed, **kwargs)


def _spec(name, shape, nnz, generator, regime, real_shape, real_nnz, **params):
    return DatasetSpec(
        name=name, shape=tuple(shape), nnz=nnz, generator=generator,
        params=tuple(sorted(params.items())), regime=regime,
        real_shape=real_shape, real_nnz=real_nnz,
    )


#: the paper's Table-of-datasets, scaled ~1000x down.
REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # --- 3-D tensors -------------------------------------------------
        _spec("vast", (1600, 1100, 32), 26_000, synthetic.clustered_tensor,
              "clustered", "165K x 11K x 2", "26M",
              nclusters=40, spread=6.0),
        _spec("nell2", (1200, 900, 2800), 77_000, synthetic.power_law_tensor,
              "skewed", "12K x 9K x 28K", "77M", exponent=1.1),
        _spec("choa", (7000, 1000, 80), 27_000, synthetic.clustered_tensor,
              "clustered", "712K x 10K x 767", "27M",
              nclusters=120, spread=4.0),
        _spec("darpa", (2200, 2200, 8000), 28_000, synthetic.power_law_tensor,
              "skewed", "22K x 22K x 23M", "28M", exponent=1.4),
        _spec("fb-m", (9000, 9000, 64), 40_000, synthetic.graph_tensor,
              "graph", "23M x 23M x 166", "100M", attach=3),
        _spec("flickr", (3200, 28000, 1600), 50_000, synthetic.power_law_tensor,
              "skewed", "320K x 28M x 1.6M", "112M", exponent=1.3),
        _spec("deli", (5300, 17000, 2400), 60_000, synthetic.power_law_tensor,
              "skewed", "530K x 17M x 2.4M", "140M", exponent=1.2),
        _spec("nell1", (2900, 2100, 25000), 60_000, synthetic.power_law_tensor,
              "skewed", "2.9M x 2.1M x 25.5M", "144M", exponent=1.5),
        _spec("rand3d", (4000, 4000, 4000), 40_000, synthetic.random_tensor,
              "uniform", "(synthetic)", "-"),
        # --- 4-D tensors -------------------------------------------------
        _spec("crime", (1400, 24, 77, 32), 25_000, synthetic.clustered_tensor,
              "clustered", "6K x 24 x 77 x 32", "5M",
              nclusters=60, spread=3.0),
        _spec("uber", (183, 24, 1140, 1717), 33_000, synthetic.clustered_tensor,
              "clustered", "183 x 24 x 1140 x 1717", "3.3M",
              nclusters=80, spread=5.0),
        _spec("nips", (2500, 2900, 14000, 17), 31_000, synthetic.power_law_tensor,
              "skewed", "2.5K x 2.9K x 14K x 17", "3.1M", exponent=1.1),
        _spec("enron", (600, 570, 2400, 120), 54_000, synthetic.power_law_tensor,
              "skewed", "6K x 5.7K x 244K x 1.2K", "54M", exponent=1.2),
        _spec("flickr4d", (3200, 28000, 1600, 64), 50_000,
              synthetic.power_law_tensor, "skewed",
              "320K x 28M x 1.6M x 731", "112M", exponent=1.3),
        _spec("deli4d", (5300, 17000, 2400, 64), 60_000,
              synthetic.power_law_tensor, "skewed",
              "530K x 17M x 2.4M x 1.4K", "140M", exponent=1.2),
    ]
}


def names() -> list:
    """Registered dataset names, 3-D before 4-D, registry order."""
    return list(REGISTRY)


def load(name: str, scale: float = 1.0, seed: Optional[int] = None) -> CooTensor:
    """Build the named analog tensor.

    ``seed`` defaults to a stable per-name hash so repeated loads (and
    different benchmark processes) see the same tensor.
    """
    if name not in REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(REGISTRY)}"
        )
    if seed is None:
        # process-independent per-name seed (built-in hash() is salted)
        seed = int(np.uint32(
            sum(ord(c) * 131 ** i for i, c in enumerate(name)) & 0x7FFFFFFF))
    return REGISTRY[name].build(scale=scale, seed=seed)


def summary_rows(scale: float = 1.0) -> list:
    """Rows of the dataset table (experiment E1): one dict per dataset."""
    rows = []
    for name, spec in REGISTRY.items():
        tensor = load(name, scale=scale)
        rows.append({
            "name": name,
            "order": tensor.nmodes,
            "shape": "x".join(str(s) for s in tensor.shape),
            "nnz": tensor.nnz,
            "density": tensor.density(),
            "regime": spec.regime,
            "paper_shape": spec.real_shape,
            "paper_nnz": spec.real_nnz,
        })
    return rows
