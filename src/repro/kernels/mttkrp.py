"""MTTKRP kernels: sequential dispatch and the parallel strategies.

Sequential MTTKRP lives on each format class; this module adds

* :func:`mttkrp` — format dispatch (the function CP-ALS calls), and
* :func:`mttkrp_parallel` — the paper's parallel algorithms:

  - **COO/atomic**: nonzeros split across threads, shared output, every
    scatter is an atomic update (the penalty the machine model charges);
  - **COO/privatize**: same split, per-thread outputs, reduction at the end;
  - **HiCOO/schedule**: the lock-free superblock schedule — threads own
    disjoint output row ranges, no atomics, no extra memory;
  - **HiCOO/privatize**: superblocks split contiguously, private outputs;
  - **CSF**: root subtrees split across threads; writes are naturally
    disjoint when the target mode is the tree root, privatized otherwise.

Every parallel run returns the output *and* an execution record with the
per-thread work counts the analytic machine model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.hicoo import HicooTensor
from ..core.scheduler import Schedule, choose_strategy, schedule_mode
from ..core.superblock import build_superblocks
from ..formats.alto import AltoTensor
from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor
from ..formats.csf import CsfTensor
from ..obs import metrics, trace
from ..parallel.executor import (ExecutionReport, TaskResult, resolve_backend,
                                 run_tasks)
from ..parallel.partition import balanced_ranges
from ..parallel.privatize import PrivateBuffers
from ..util.validation import check_factors, check_mode
from .backends import resolve_kernel_backend
from .gather import mttkrp_gather_chunk, scatter_add

__all__ = ["MttkrpRun", "mttkrp", "mttkrp_parallel"]


@dataclass
class MttkrpRun:
    """Result and accounting of one parallel MTTKRP launch."""

    output: np.ndarray
    strategy: str
    nthreads: int
    thread_nnz: np.ndarray
    atomic_updates: int = 0
    reduction_flops: int = 0
    schedule: Optional[Schedule] = None
    report: ExecutionReport = field(default_factory=ExecutionReport)
    #: scatter backends the tasks used (sorted, deduplicated) — see
    #: :func:`repro.kernels.gather.scatter_add`; feeds the analysis layer
    scatter_backends: tuple = ()

    def makespan_nnz(self) -> int:
        """Work on the critical path, in nonzeros."""
        return int(self.thread_nnz.max()) if len(self.thread_nnz) else 0

    def load_imbalance(self) -> float:
        if not len(self.thread_nnz):
            return 1.0
        mean = self.thread_nnz.sum() / self.nthreads
        return float(self.thread_nnz.max() / mean) if mean else 1.0


def mttkrp(tensor: SparseTensorFormat, factors: Sequence[np.ndarray],
           mode: int) -> np.ndarray:
    """Sequential MTTKRP on any supported format."""
    with trace.span("mttkrp.seq", mode=mode, format=tensor.format_name):
        out = tensor.mttkrp(factors, mode)
    metrics.inc("mttkrp.calls",
                labels={"format": tensor.format_name, "mode": mode})
    return out


def mttkrp_parallel(tensor: SparseTensorFormat, factors: Sequence[np.ndarray],
                    mode: int, nthreads: int, strategy: str = "auto",
                    superblock_bits: Optional[int] = None,
                    real_threads: bool = False,
                    plan=None, backend: Optional[str] = None,
                    fault_policy=None) -> MttkrpRun:
    """Parallel MTTKRP with the strategy set of the paper.

    ``strategy``:

    * ``"auto"`` — the paper's heuristic (:func:`choose_strategy` for HiCOO,
      privatization for COO);
    * ``"atomic"``, ``"privatize"`` — COO and HiCOO;
    * ``"schedule"`` — HiCOO only (lock-free superblock scheduling).

    ``plan`` — a precomputed :class:`repro.kernels.plan.MttkrpPlan` for a
    HiCOO tensor; skips superblock construction and scheduling entirely
    (CP-ALS builds one plan and reuses it every iteration).

    ``backend`` — ``"sim"`` (sequential, individually timed tasks),
    ``"thread"`` (GIL-sharing thread pool; equivalent to the legacy
    ``real_threads=True``), ``"process"`` (true multicore over shared
    memory; HiCOO only, see :mod:`repro.parallel.procpool`), ``"numba"``
    (fused machine-code kernels, ``prange`` over the plan's row-disjoint
    tasks), or ``"cupy"`` (GPU segmented reductions over a device-resident
    plan).  The compiled tiers are HiCOO-only and **degrade silently** to
    the NumPy kernels when the dependency is absent (one warning, a
    ``kernel.fallbacks`` counter bump, identical results) — see
    :mod:`repro.kernels.backends` and :mod:`repro.kernels.compiled`.

    ``fault_policy`` — process backend only: ``"fail-fast"`` (default, the
    first worker fault propagates), ``"retry"`` (dead/hung workers are
    respawned and their tasks re-run idempotently — the recovered output is
    bit-identical to a fault-free run), or ``"degrade"`` (exhausted
    recovery budgets fall back to the thread/sim backends).  Accepts a
    :class:`repro.parallel.supervisor.FaultConfig` for fine-grained
    budgets; see ``docs/fault_tolerance.md``.
    """
    factors = check_factors(factors, tensor.shape)
    mode = check_mode(mode, tensor.nmodes)
    if nthreads < 1:
        raise ValueError(f"nthreads must be positive, got {nthreads}")
    backend = resolve_backend(backend, real_threads)
    kernel_tier = None
    if backend in ("numba", "cupy"):
        tier = resolve_kernel_backend(backend)
        if tier == "numpy":
            backend = "sim"  # tier unavailable: silent NumPy fallback
        elif isinstance(tensor, HicooTensor):
            return _parallel_hicoo_compiled(tensor, factors, mode, nthreads,
                                            strategy, superblock_bits, plan,
                                            tier)
        elif isinstance(tensor, AltoTensor) and tier == "numba":
            # ALTO's output-space tasks are row-disjoint, so the jitted
            # scatter tier runs them unchanged: the region executes
            # in-process (like HiCOO's compiled path) with compiled
            # scatter-adds wherever they clear the crossover
            kernel_tier = tier
        else:
            # the GPU tier consumes HiCOO device plans; other combinations
            # take the NumPy path (same silent-degrade contract)
            metrics.inc("kernel.fallbacks", labels={"tier": backend})
            backend = "sim"
    real_threads = backend == "thread"

    if backend == "process":
        if isinstance(tensor, AltoTensor):
            return _parallel_alto_process(tensor, factors, mode, nthreads,
                                          strategy, fault_policy)
        if not isinstance(tensor, HicooTensor):
            raise ValueError(
                "backend='process' shares HiCOO structure arrays between "
                f"workers; format {tensor.format_name!r} is not supported — "
                "convert with HicooTensor(coo) or use backend='thread'")
        return _parallel_hicoo_process(tensor, factors, mode, nthreads,
                                       strategy, superblock_bits, plan,
                                       fault_policy)
    if fault_policy is not None:
        # validate the knob even when it is moot (sim/thread tasks run in
        # this very process and cannot be lost) so typos fail loudly
        from ..parallel.supervisor import FaultConfig

        FaultConfig.resolve(fault_policy)

    with trace.span("mttkrp.parallel", mode=mode,
                    format=tensor.format_name, nthreads=nthreads) as sp:
        if isinstance(tensor, HicooTensor):
            if plan is not None:
                run = _parallel_hicoo_planned(tensor, factors, mode, plan,
                                              real_threads)
            else:
                run = _parallel_hicoo(tensor, factors, mode, nthreads,
                                      strategy, superblock_bits, real_threads)
        elif isinstance(tensor, AltoTensor):
            run = _parallel_alto(tensor, factors, mode, nthreads, strategy,
                                 real_threads, exec_backend=kernel_tier)
        elif isinstance(tensor, CsfTensor):
            run = _parallel_csf(tensor, factors, mode, nthreads, strategy,
                                real_threads)
        elif isinstance(tensor, CooTensor):
            run = _parallel_coo(tensor, factors, mode, nthreads, strategy,
                                real_threads)
        else:
            raise TypeError(
                f"no parallel MTTKRP for format {type(tensor).__name__}")
        sp.note(strategy=run.strategy, imbalance=run.load_imbalance())
    _note_parallel(run, tensor, mode, backend)
    return run


def _note_parallel(run: "MttkrpRun", tensor, mode: int,
                   backend: str) -> None:
    """Count one parallel MTTKRP under its format/backend/mode labels, so
    the telemetry slices regressions along the configuration space."""
    reg = metrics.get_registry()
    if reg.enabled:
        fmt = tensor.format_name
        reg.inc("mttkrp.parallel_calls",
                labels={"format": fmt, "backend": backend, "mode": mode})
        reg.observe("mttkrp.load_imbalance", run.load_imbalance(),
                    labels={"format": fmt, "backend": backend})


def _backends_of(report: ExecutionReport) -> tuple:
    """Deduplicated scatter-backend names returned by the tasks."""
    return tuple(sorted({v for v in report.values()
                         if isinstance(v, str) and v and v != "noop"}))


def _observe_blocks(gathers) -> None:
    """Record blocks touched per task (superblock group) as a histogram."""
    reg = metrics.get_registry()
    if reg.enabled:
        for tg in gathers:
            reg.observe("mttkrp.blocks_per_task",
                        sum(hi - lo for lo, hi in tg.runs))


# ----------------------------------------------------------------------
# COO
# ----------------------------------------------------------------------
def _coo_chunk(indices, values, factors, mode, out):
    rank = out.shape[1]
    if not len(values):
        return "noop"
    acc = np.repeat(values[:, None], rank, axis=1)
    for m, f in enumerate(factors):
        if m != mode:
            acc *= f[indices[:, m]]
    return scatter_add(out, indices[:, mode], acc)


def _parallel_coo(tensor, factors, mode, nthreads, strategy, real_threads):
    if strategy == "auto":
        strategy = "privatize"
    if strategy not in ("privatize", "atomic"):
        raise ValueError(f"COO supports 'privatize' or 'atomic', got {strategy!r}")
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    ranges = balanced_ranges(np.ones(tensor.nnz), nthreads)
    thread_nnz = np.array([hi - lo for lo, hi in ranges], dtype=np.int64)

    if strategy == "privatize":
        bufs = PrivateBuffers.allocate(nthreads, rows, rank)

        def make_task(tid, lo, hi):
            def task():
                return _coo_chunk(tensor.indices[lo:hi], tensor.values[lo:hi],
                                  factors, mode, bufs.view(tid))
            return task

        tasks = [make_task(t, lo, hi) for t, (lo, hi) in enumerate(ranges)]
        # private buffers make concurrent writes race-free, so the caller's
        # thread mode is honored; the reduction always runs after the tasks
        report = run_tasks(tasks, real_threads=real_threads)
        out = bufs.reduce()
        return MttkrpRun(output=out, strategy="privatize", nthreads=nthreads,
                         thread_nnz=thread_nnz,
                         reduction_flops=bufs.reduction_flops(), report=report,
                         scatter_backends=_backends_of(report))

    # atomic: shared output.  This path deliberately ignores ``real_threads``:
    # NumPy has no atomic scatter-add, so concurrent tasks writing overlapping
    # rows of a shared array would silently lose updates.  Sequential
    # execution keeps the result exact; the atomic penalty a real machine
    # would pay is charged analytically by the machine model.
    out = np.zeros((rows, rank))

    def make_task(lo, hi):
        def task():
            return _coo_chunk(tensor.indices[lo:hi], tensor.values[lo:hi],
                              factors, mode, out)
        return task

    tasks = [make_task(lo, hi) for lo, hi in ranges]
    report = run_tasks(tasks, real_threads=False)
    return MttkrpRun(output=out, strategy="atomic", nthreads=nthreads,
                     thread_nnz=thread_nnz,
                     atomic_updates=tensor.nnz if nthreads > 1 else 0,
                     report=report,
                     scatter_backends=_backends_of(report))


# ----------------------------------------------------------------------
# HiCOO
# ----------------------------------------------------------------------
def _hicoo_block_range_chunk(tensor, block_ids, factors, mode, out):
    """Legacy per-block chunk: re-materializes index ranges on every call.

    Kept as the reference baseline the benchmarks and the CI regression
    guard compare the cached gather path against; the production paths go
    through :meth:`HicooTensor.task_gather` + :func:`mttkrp_gather_chunk`.
    """
    if not len(block_ids):
        return
    rank = out.shape[1]
    shift = tensor.block_bits
    # gather the nonzero ranges of all assigned blocks
    pieces_i = []
    pieces_blk = []
    for blk in block_ids:
        lo, hi = int(tensor.bptr[blk]), int(tensor.bptr[blk + 1])
        pieces_i.append(np.arange(lo, hi))
        pieces_blk.append(np.full(hi - lo, blk, dtype=np.int64))
    nz = np.concatenate(pieces_i)
    blk_of = np.concatenate(pieces_blk)
    base = tensor.binds[blk_of].astype(np.int64) << shift
    ginds = base + tensor.einds[nz].astype(np.int64)
    acc = np.repeat(tensor.values[nz, None], rank, axis=1)
    for m, f in enumerate(factors):
        if m != mode:
            acc *= f[ginds[:, m]]
    np.add.at(out, ginds[:, mode], acc)


def _parallel_hicoo(tensor, factors, mode, nthreads, strategy,
                    superblock_bits, real_threads):
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    sb_bits = superblock_bits if superblock_bits is not None else min(
        tensor.block_bits + 3, 20)
    sbs = build_superblocks(tensor, sb_bits)

    if strategy == "auto":
        strategy = choose_strategy(sbs, mode, nthreads, rows, rank)
    if strategy not in ("schedule", "privatize"):
        raise ValueError(
            f"HiCOO supports 'schedule' or 'privatize', got {strategy!r}")

    if strategy == "schedule":
        sched = schedule_mode(sbs, mode, nthreads)
        out = np.zeros((rows, rank))
        # task_gather memoizes on the tensor, so repeated unplanned calls
        # with the same structure also skip the symbolic work
        gathers = [tensor.task_gather([sbs.block_range(sb) for sb in sb_list])
                   for sb_list in sched.assignment]
        _observe_blocks(gathers)

        def make_task(tg):
            def task():
                return mttkrp_gather_chunk(tg, factors, mode, out,
                                           row_local=True)
            return task

        tasks = [make_task(tg) for tg in gathers]
        report = run_tasks(tasks, real_threads=real_threads)
        return MttkrpRun(output=out, strategy="schedule", nthreads=nthreads,
                         thread_nnz=sched.thread_nnz.copy(), schedule=sched,
                         report=report,
                         scatter_backends=_backends_of(report))

    # privatize: contiguous superblock ranges balanced by nnz
    ranges = balanced_ranges(sbs.nnz_per_superblock, nthreads)
    bufs = PrivateBuffers.allocate(nthreads, rows, rank)
    thread_nnz = np.array(
        [int(sbs.nnz_per_superblock[lo:hi].sum()) for lo, hi in ranges],
        dtype=np.int64)
    gathers = [tensor.task_gather([(int(sbs.sptr[lo]), int(sbs.sptr[hi]))])
               if lo < hi else tensor.task_gather([])
               for lo, hi in ranges]
    _observe_blocks(gathers)

    def make_task(tid, tg):
        def task():
            return mttkrp_gather_chunk(tg, factors, mode, bufs.view(tid))
        return task

    tasks = [make_task(t, tg) for t, tg in enumerate(gathers)]
    # private buffers are race-free, so the caller's thread mode is honored
    report = run_tasks(tasks, real_threads=real_threads)
    return MttkrpRun(output=bufs.reduce(), strategy="privatize",
                     nthreads=nthreads, thread_nnz=thread_nnz,
                     reduction_flops=bufs.reduction_flops(), report=report,
                     scatter_backends=_backends_of(report))


def _parallel_hicoo_planned(tensor, factors, mode, plan, real_threads):
    """Execute a mode's MTTKRP from a precomputed plan (no symbolic work).

    The first call for a mode materializes the plan's fused gather arrays
    (through the tensor's memoized cache); every later call — each CP-ALS
    iteration — is a pure gather/multiply/scatter numeric pass.
    """
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    mp = plan.for_mode(mode)
    gathers = plan.ensure_gathers(tensor, mode)
    _observe_blocks(gathers)

    if mp.strategy == "schedule":
        out = np.zeros((rows, rank))

        def make_task(tg):
            def task():
                return mttkrp_gather_chunk(tg, factors, mode, out,
                                           row_local=True)
            return task

        tasks = [make_task(tg) for tg in gathers]
        report = run_tasks(tasks, real_threads=real_threads)
        return MttkrpRun(output=out, strategy="schedule",
                         nthreads=plan.nthreads,
                         thread_nnz=mp.thread_nnz.copy(),
                         schedule=mp.schedule, report=report,
                         scatter_backends=_backends_of(report))

    bufs = PrivateBuffers.allocate(plan.nthreads, rows, rank)

    def make_task(tid, tg):
        def task():
            return mttkrp_gather_chunk(tg, factors, mode, bufs.view(tid))
        return task

    tasks = [make_task(t, tg) for t, tg in enumerate(gathers)]
    # private buffers are race-free, so the caller's thread mode is honored
    report = run_tasks(tasks, real_threads=real_threads)
    return MttkrpRun(output=bufs.reduce(), strategy="privatize",
                     nthreads=plan.nthreads,
                     thread_nnz=mp.thread_nnz.copy(),
                     reduction_flops=bufs.reduction_flops(), report=report,
                     scatter_backends=_backends_of(report))


def _parallel_hicoo_compiled(tensor, factors, mode, nthreads, strategy,
                             superblock_bits, plan, tier):
    """Execute one mode's MTTKRP on a compiled tier (numba / cupy).

    Reuses the plan layer end to end: the partition, strategies, and fused
    gather arrays are exactly the sim/process backends' symbolic state;
    only the numeric pass changes (one jitted kernel launch / one device
    segmented reduction instead of per-task NumPy chunks).  Without a plan
    one is built here — callers that iterate (CP-ALS) pass a plan so the
    per-mode fused arrays and device uploads are paid once.
    """
    from .compiled import mttkrp_compiled, warmup_numba
    from .plan import plan_mttkrp

    if plan is None:
        plan = plan_mttkrp(tensor, factors[0].shape[1], nthreads,
                           superblock_bits=superblock_bits,
                           strategy=strategy)
    if tier == "numba":
        # JIT compilation happens here, outside the kernel span, so the
        # steady-state numbers never include it (recorded separately in
        # the compiled.compile_seconds metric)
        warmup_numba()
    with trace.span("mttkrp.compiled", mode=mode, tier=tier,
                    format=tensor.format_name, nthreads=plan.nthreads) as sp:
        output, flavor, times = mttkrp_compiled(tensor, factors, mode,
                                                plan, tier)
        sp.note(flavor=flavor)
    mp = plan.for_mode(mode)
    report = ExecutionReport(backend=tier, results=[
        TaskResult(tid=0, elapsed=times[0], value=flavor)])
    run = MttkrpRun(output=output, strategy=mp.strategy,
                    nthreads=plan.nthreads,
                    thread_nnz=mp.thread_nnz.copy(),
                    schedule=mp.schedule, report=report,
                    scatter_backends=(flavor,) if flavor != "noop" else ())
    _note_parallel(run, tensor, mode, tier)
    return run


def _parallel_hicoo_process(tensor, factors, mode, nthreads, strategy,
                            superblock_bits, plan, fault_policy=None):
    """True multicore HiCOO MTTKRP: superblock partitions executed by the
    shared-memory process pool (see :mod:`repro.parallel.procpool`).

    Under ``fault_policy="degrade"``, an exhausted recovery budget falls
    back to the in-process backends (``config.fallback_backends``, thread
    then sim) — same partition, same kernels, so the degraded output is
    numerically identical; the event is logged, counted
    (``supervisor.degradations``) and traced.
    """
    from ..parallel.procpool import mttkrp_process
    from ..parallel.supervisor import DegradedExecution

    try:
        with trace.span("mttkrp.parallel", mode=mode, backend="process",
                        format=tensor.format_name, nthreads=nthreads) as sp:
            pr = mttkrp_process(tensor, factors, mode, nthreads,
                                strategy=strategy,
                                superblock_bits=superblock_bits, plan=plan,
                                fault_policy=fault_policy)
            run = MttkrpRun(output=pr.output, strategy=pr.strategy,
                            nthreads=pr.nworkers, thread_nnz=pr.thread_nnz,
                            reduction_flops=pr.reduction_flops,
                            schedule=pr.schedule, report=pr.report,
                            scatter_backends=pr.scatter_backends)
            sp.note(strategy=run.strategy, imbalance=run.load_imbalance())
    except DegradedExecution as exc:
        return _degrade_hicoo(tensor, factors, mode, nthreads, strategy,
                              superblock_bits, plan, exc)
    _note_parallel(run, tensor, mode, "process")
    return run


def _degrade_hicoo(tensor, factors, mode, nthreads, strategy,
                   superblock_bits, plan, exc) -> MttkrpRun:
    """Finish an MTTKRP whose process-backend region gave up, on the first
    usable fallback backend (the in-process paths share the partition and
    kernels, so the result matches what the process backend would have
    produced)."""
    from ..util.log import get_logger

    fallbacks = exc.config.fallback_backends or ("sim",)
    backend = next((b for b in fallbacks if b in ("thread", "sim")), "sim")
    get_logger("repro.supervisor").warning(
        "process backend degraded to %r for mode %d: %s", backend, mode, exc)
    metrics.inc("supervisor.degradations")
    trace.instant("supervisor.degrade", mode=mode, fallback=backend,
                  reason=str(exc))
    real_threads = backend == "thread"
    with trace.span("mttkrp.parallel", mode=mode, backend=backend,
                    format=tensor.format_name, nthreads=nthreads,
                    degraded=True) as sp:
        if plan is not None:
            run = _parallel_hicoo_planned(tensor, factors, mode, plan,
                                          real_threads)
        else:
            run = _parallel_hicoo(tensor, factors, mode, nthreads, strategy,
                                  superblock_bits, real_threads)
        sp.note(strategy=run.strategy, imbalance=run.load_imbalance())
    _note_parallel(run, tensor, mode, backend)
    return run


# ----------------------------------------------------------------------
# ALTO
# ----------------------------------------------------------------------
def _slice_gather(tg, lo: int, hi: int):
    """Contiguous slice of a mode view as a task-sized :class:`TaskGather`.

    The arrays are views (no copy); the parent's sortedness flags carry
    over (a slice of a sorted column is sorted — only the target-mode flag,
    which is always ``True`` for a mode view, affects the scatter choice).
    """
    from .gather import TaskGather

    return TaskGather(runs=((lo, hi),), ginds=tg.ginds[lo:hi],
                      values=tg.values[lo:hi], sorted_modes=tg.sorted_modes)


def _parallel_alto(tensor, factors, mode, nthreads, strategy,
                   real_threads=False, exec_backend=None):
    """Parallel MTTKRP over ALTO's linearized keys.

    * ``"schedule"`` — the load-balanced default: the mode view (nonzeros
      ordered by output row, ties in source order) is cut into equal-nnz
      contiguous ranges on row-segment boundaries, so tasks own disjoint
      output rows and share the output lock-free.  Per-row accumulation
      order is independent of the partition, which keeps every task count
      **bit-identical** to the sequential COO oracle.
    * ``"privatize"`` — equal-nnz chunks of the raw key order into private
      buffers plus one reduction (reassociates row sums; ULP-close only).

    ``exec_backend="numba"`` routes the scatters through the compiled tier
    (same tasks, jitted scatter-adds past the crossover).
    """
    if strategy == "auto":
        strategy = "schedule"
    if strategy not in ("schedule", "privatize"):
        raise ValueError(
            f"ALTO supports 'schedule' or 'privatize', got {strategy!r}")
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    scatter_backend = exec_backend if exec_backend == "numba" else None

    if strategy == "schedule":
        part = tensor.schedule(mode, nthreads)
        view = tensor.mode_view(mode)
        gathers = [_slice_gather(view, lo, hi) for lo, hi in part.ranges]
        _observe_blocks(gathers)
        out = np.zeros((rows, rank))

        def make_task(tg):
            def task():
                return mttkrp_gather_chunk(tg, factors, mode, out,
                                           row_local=True,
                                           backend=scatter_backend,
                                           scatter="seq")
            return task

        tasks = [make_task(tg) for tg in gathers]
        report = run_tasks(tasks, real_threads=real_threads,
                           backend=exec_backend)
        return MttkrpRun(output=out, strategy="schedule", nthreads=nthreads,
                         thread_nnz=part.thread_nnz.copy(), report=report,
                         scatter_backends=_backends_of(report))

    # privatize: equal-nnz chunks of the linearized order, private buffers
    view = tensor.linear_view()
    ranges = balanced_ranges(np.ones(tensor.nnz), nthreads)
    thread_nnz = np.array([hi - lo for lo, hi in ranges], dtype=np.int64)
    gathers = [_slice_gather(view, lo, hi) for lo, hi in ranges]
    _observe_blocks(gathers)
    bufs = PrivateBuffers.allocate(nthreads, rows, rank)

    def make_task(tid, tg):
        def task():
            return mttkrp_gather_chunk(tg, factors, mode, bufs.view(tid),
                                       backend=scatter_backend,
                                       scatter="seq")
        return task

    tasks = [make_task(t, tg) for t, tg in enumerate(gathers)]
    # private buffers are race-free, so the caller's thread mode is honored
    report = run_tasks(tasks, real_threads=real_threads,
                       backend=exec_backend)
    return MttkrpRun(output=bufs.reduce(), strategy="privatize",
                     nthreads=nthreads, thread_nnz=thread_nnz,
                     reduction_flops=bufs.reduction_flops(), report=report,
                     scatter_backends=_backends_of(report))


def _parallel_alto_process(tensor, factors, mode, nthreads, strategy,
                           fault_policy=None):
    """True multicore ALTO MTTKRP: the equal-nnz row-disjoint partition
    executed by the shared-memory process pool (see
    :func:`repro.parallel.procpool.mttkrp_process_alto`).

    Same degrade contract as the HiCOO path: an exhausted recovery budget
    under ``fault_policy="degrade"`` re-runs the region in process on the
    schedule strategy — identical partition and kernels, so the degraded
    output is bit-identical.
    """
    from ..parallel.procpool import mttkrp_process_alto
    from ..parallel.supervisor import DegradedExecution

    try:
        with trace.span("mttkrp.parallel", mode=mode, backend="process",
                        format=tensor.format_name, nthreads=nthreads) as sp:
            pr = mttkrp_process_alto(tensor, factors, mode, nthreads,
                                     strategy=strategy,
                                     fault_policy=fault_policy)
            run = MttkrpRun(output=pr.output, strategy=pr.strategy,
                            nthreads=pr.nworkers, thread_nnz=pr.thread_nnz,
                            reduction_flops=pr.reduction_flops,
                            schedule=pr.schedule, report=pr.report,
                            scatter_backends=pr.scatter_backends)
            sp.note(strategy=run.strategy, imbalance=run.load_imbalance())
    except DegradedExecution as exc:
        return _degrade_alto(tensor, factors, mode, nthreads, strategy, exc)
    _note_parallel(run, tensor, mode, "process")
    return run


def _degrade_alto(tensor, factors, mode, nthreads, strategy, exc) -> MttkrpRun:
    """Finish an ALTO MTTKRP whose process region gave up, on the first
    usable in-process fallback (same partition, same kernels — the result
    matches what the process backend would have produced)."""
    from ..util.log import get_logger

    fallbacks = exc.config.fallback_backends or ("sim",)
    backend = next((b for b in fallbacks if b in ("thread", "sim")), "sim")
    get_logger("repro.supervisor").warning(
        "process backend degraded to %r for mode %d: %s", backend, mode, exc)
    metrics.inc("supervisor.degradations")
    trace.instant("supervisor.degrade", mode=mode, fallback=backend,
                  reason=str(exc))
    with trace.span("mttkrp.parallel", mode=mode, backend=backend,
                    format=tensor.format_name, nthreads=nthreads,
                    degraded=True) as sp:
        run = _parallel_alto(tensor, factors, mode, nthreads, strategy,
                             real_threads=(backend == "thread"))
        sp.note(strategy=run.strategy, imbalance=run.load_imbalance())
    _note_parallel(run, tensor, mode, backend)
    return run


# ----------------------------------------------------------------------
# CSF
# ----------------------------------------------------------------------
def _parallel_csf(tensor, factors, mode, nthreads, strategy, real_threads):
    if strategy == "auto":
        strategy = "subtree"
    if strategy not in ("subtree", "privatize"):
        raise ValueError(f"CSF supports 'subtree' or 'privatize', got {strategy!r}")
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]

    # weight of each root subtree = its leaf count
    subtree_nnz = _root_subtree_nnz(tensor)
    ranges = balanced_ranges(subtree_nnz, nthreads)
    thread_nnz = np.array(
        [int(subtree_nnz[lo:hi].sum()) for lo, hi in ranges], dtype=np.int64)

    root_is_target = tensor.mode_order[0] == mode
    shared = root_is_target and strategy == "subtree"
    out = np.zeros((rows, rank))
    bufs = None if shared else PrivateBuffers.allocate(nthreads, rows, rank)

    def make_task(tid, lo, hi):
        def task():
            if lo >= hi:
                return "noop"
            target = out if shared else bufs.view(tid)
            return _csf_subtree_mttkrp(tensor, factors, mode, lo, hi, target,
                                       row_local=shared)
        return task

    tasks = [make_task(t, lo, hi) for t, (lo, hi) in enumerate(ranges)]
    # subtree writes are row-disjoint (root mode) and privatized buffers are
    # race-free, so real threads are safe either way
    report = run_tasks(tasks, real_threads=real_threads)
    if not shared:
        out = bufs.reduce()
    return MttkrpRun(
        output=out,
        strategy="subtree" if shared else "privatize",
        nthreads=nthreads,
        thread_nnz=thread_nnz,
        reduction_flops=bufs.reduction_flops() if bufs else 0,
        report=report,
        scatter_backends=_backends_of(report),
    )


def _root_subtree_nnz(tensor: CsfTensor) -> np.ndarray:
    """Leaf (nonzero) count under each root node."""
    counts = np.ones(tensor.levels[-1].nnodes, dtype=np.int64)
    for depth in range(len(tensor.levels) - 1, 0, -1):
        parent = tensor.levels[depth].parent
        up = np.zeros(tensor.levels[depth - 1].nnodes, dtype=np.int64)
        # fiber-tree nodes are stored parent-major, so parent is sorted
        scatter_add(up, parent, counts, presorted=True)
        counts = up
    return counts


def _csf_subtree_mttkrp(tensor, factors, mode, root_lo, root_hi, out,
                        row_local=False):
    """Run the two-pass tree MTTKRP restricted to root nodes [lo, hi).

    Returns the scatter backend of the final output scatter.  ``row_local``
    must be set when ``out`` is shared between concurrent subtree tasks
    (root-mode target): the tasks' fids are disjoint, so row-local scatter
    backends are race-free.
    """
    nmodes = tensor.nmodes
    depth_of_mode = tensor.mode_order.index(mode)
    # per-level node ranges covered by the root slice
    los, his = [root_lo], [root_hi]
    for depth in range(1, nmodes):
        fptr = tensor.levels[depth - 1].fptr
        los.append(int(fptr[los[-1]]))
        his.append(int(fptr[his[-1]]))

    values = tensor.values[los[-1]:his[-1]]
    below = values[:, None]
    rank = out.shape[1]
    for depth in range(nmodes - 1, depth_of_mode, -1):
        level = tensor.levels[depth]
        lo, hi = los[depth], his[depth]
        factor = factors[tensor.mode_order[depth]]
        contrib = below * factor[level.fids[lo:hi]]
        plo, phi = los[depth - 1], his[depth - 1]
        agg = np.zeros((phi - plo, rank))
        # nodes are stored parent-major: parent ids are non-decreasing
        scatter_add(agg, level.parent[lo:hi] - plo, contrib, presorted=True)
        below = agg

    above = np.ones((his[0] - los[0], rank))
    for depth in range(1, depth_of_mode + 1):
        level = tensor.levels[depth]
        prev = tensor.levels[depth - 1]
        lo, hi = los[depth], his[depth]
        plo = los[depth - 1]
        parent = level.parent[lo:hi] - plo
        factor = factors[tensor.mode_order[depth - 1]]
        above = above[parent] * factor[prev.fids[los[depth - 1]:his[depth - 1]]][parent]

    target = tensor.levels[depth_of_mode]
    lo, hi = los[depth_of_mode], his[depth_of_mode]
    return scatter_add(out, target.fids[lo:hi], above * below,
                       row_local=row_local)
