"""Tensor-times-matrix (TTM) along one mode for COO tensors.

Used by the HOSVD-style initialization of CP-ALS and exposed as part of the
public kernel API.  The result is dense along the contracted mode (as in all
sparse-TTM implementations) and is returned as a semi-sparse structure:
coordinates over the untouched modes, with an R-vector per coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.coo import CooTensor
from ..util.validation import check_mode
from .gather import scatter_add

__all__ = ["SemiSparseTensor", "ttm"]


@dataclass
class SemiSparseTensor:
    """Sparse over ``shape`` modes, dense along a trailing ``rank`` axis.

    The fibers along the dense axis correspond to mode-``mode`` fibers of the
    TTM input contracted with the matrix.
    """

    shape: tuple
    mode: int  # the mode that was contracted in the source tensor
    indices: np.ndarray  # (nfibers, nmodes-1) coordinates of surviving modes
    fibers: np.ndarray  # (nfibers, rank)

    @property
    def nfibers(self) -> int:
        return len(self.indices)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape + (self.fibers.shape[1],))
        if self.nfibers:
            out[tuple(self.indices.T)] = self.fibers
        return out


def ttm(tensor: CooTensor, matrix: np.ndarray, mode: int) -> SemiSparseTensor:
    """Contract ``mode`` of a COO tensor with ``matrix`` (shape[mode] x R).

    Every nonzero ``x[..., i_mode, ...]`` contributes ``x * matrix[i_mode]``
    to the fiber of its remaining coordinates.
    """
    mode = check_mode(mode, tensor.nmodes)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"matrix must be ({tensor.shape[mode]}, R), got {matrix.shape}"
        )
    keep = [m for m in range(tensor.nmodes) if m != mode]
    keep_shape = tuple(tensor.shape[m] for m in keep)
    if tensor.nnz == 0:
        return SemiSparseTensor(
            shape=keep_shape, mode=mode,
            indices=np.empty((0, len(keep)), dtype=np.int64),
            fibers=np.empty((0, matrix.shape[1])),
        )
    kept = tensor.indices[:, keep]
    # group nonzeros by surviving coordinate
    keys = tuple(kept[:, c] for c in reversed(range(kept.shape[1])))
    order = np.lexsort(keys) if kept.shape[1] else np.arange(tensor.nnz)
    kept = kept[order]
    vals = tensor.values[order]
    rows = matrix[tensor.indices[order, mode]]
    if len(kept) > 1 and kept.shape[1]:
        new_group = np.any(kept[1:] != kept[:-1], axis=1)
        group_id = np.concatenate([[0], np.cumsum(new_group)])
        first = np.concatenate([[0], np.flatnonzero(new_group) + 1])
    else:
        group_id = np.zeros(len(kept), dtype=np.int64)
        first = np.array([0]) if len(kept) else np.empty(0, dtype=np.int64)
    ngroups = int(group_id[-1]) + 1 if len(kept) else 0
    fibers = np.zeros((ngroups, matrix.shape[1]))
    # group ids come from a cumulative sum, hence non-decreasing
    scatter_add(fibers, group_id, vals[:, None] * rows, presorted=True)
    return SemiSparseTensor(
        shape=keep_shape, mode=mode, indices=kept[first], fibers=fibers
    )
