"""Element-wise sparse tensor algebra.

Completes the library surface around the formats: addition, subtraction,
Hadamard (element-wise) product, scalar scaling, and comparison of sparse
tensors.  All operate on COO semantics (missing entries are zero) and
return COO tensors; wrap the result back into HiCOO/CSF when block kernels
are needed next.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor

__all__ = ["add", "subtract", "multiply", "scale", "allclose", "residual_norm"]


def _as_coo(tensor) -> CooTensor:
    if isinstance(tensor, CooTensor):
        return tensor
    if isinstance(tensor, SparseTensorFormat):
        return tensor.to_coo()
    raise TypeError(f"expected a sparse tensor, got {type(tensor).__name__}")


def _check_same_shape(a: CooTensor, b: CooTensor) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")


def add(a, b) -> CooTensor:
    """a + b; overlapping coordinates sum (exact zeros are kept explicit
    only if both operands stored them)."""
    a, b = _as_coo(a), _as_coo(b)
    _check_same_shape(a, b)
    inds = np.vstack([a.indices, b.indices])
    vals = np.concatenate([a.values, b.values])
    return CooTensor(a.shape, inds, vals, sum_duplicates=True)


def subtract(a, b) -> CooTensor:
    """a - b."""
    a, b = _as_coo(a), _as_coo(b)
    _check_same_shape(a, b)
    inds = np.vstack([a.indices, b.indices])
    vals = np.concatenate([a.values, -b.values])
    return CooTensor(a.shape, inds, vals, sum_duplicates=True)


def multiply(a, b) -> CooTensor:
    """Hadamard product: nonzero only where *both* operands are nonzero."""
    a, b = _as_coo(a), _as_coo(b)
    _check_same_shape(a, b)
    if a.nnz == 0 or b.nnz == 0:
        return CooTensor.empty(a.shape)
    # canonicalize: the coordinate join below requires unique coordinates,
    # but COO tensors built with sum_duplicates=False may carry repeats
    a = CooTensor(a.shape, a.indices, a.values)
    b = CooTensor(b.shape, b.indices, b.values)
    # vectorized coordinate join: view each row as one fixed-size record
    a_keys = _row_view(np.ascontiguousarray(a.indices))
    b_keys = _row_view(np.ascontiguousarray(b.indices))
    _, ia, ib = np.intersect1d(a_keys, b_keys, return_indices=True)
    if len(ia) == 0:
        return CooTensor.empty(a.shape)
    return CooTensor(a.shape, a.indices[ia], a.values[ia] * b.values[ib],
                     sum_duplicates=False)


def _row_view(indices: np.ndarray) -> np.ndarray:
    """View an (n, N) int64 array as n opaque records for set operations."""
    return indices.view([("", indices.dtype)] * indices.shape[1]).ravel()


def scale(a, alpha: float) -> CooTensor:
    """alpha * a (alpha == 0 gives an empty tensor)."""
    a = _as_coo(a)
    alpha = float(alpha)
    if alpha == 0.0:
        return CooTensor.empty(a.shape)
    return CooTensor(a.shape, a.indices, a.values * alpha,
                     sum_duplicates=False)


def allclose(a, b, atol: float = 1e-12) -> bool:
    """True iff a and b agree element-wise within ``atol``."""
    return residual_norm(a, b) <= atol * np.sqrt(max(_as_coo(a).nnz, 1))


def residual_norm(a, b) -> float:
    """||a - b||_F without densifying."""
    diff = subtract(a, b)
    return diff.norm()
