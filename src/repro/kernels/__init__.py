"""Tensor kernels: MTTKRP (sequential/parallel/planned), TTV/TTM, and the
gather/scatter layer that separates symbolic index work from numeric work.
"""

from .gather import (TaskGather, build_task_gather, coalesce_runs,
                     mttkrp_gather_chunk, runs_from_block_ids, scatter_add)

__all__ = [
    "TaskGather",
    "build_task_gather",
    "coalesce_runs",
    "mttkrp_gather_chunk",
    "runs_from_block_ids",
    "scatter_add",
]
