"""Tensor kernels: MTTKRP (sequential/parallel/planned), TTV/TTM, the
gather/scatter layer that separates symbolic index work from numeric work,
and the compiled execution tiers (Numba CPU JIT, CuPy GPU) behind the
kernel-backend registry.
"""

from .backends import (KERNEL_TIERS, available_tiers, detect_tiers,
                       resolve_kernel_backend, tier_available, tier_reason)
from .gather import (SCATTER_COMPILED_MIN_N, SCATTER_SMALL_N, TaskGather,
                     build_task_gather, choose_scatter_backend,
                     coalesce_runs, mttkrp_gather_chunk, runs_from_block_ids,
                     scatter_add)

__all__ = [
    "KERNEL_TIERS",
    "SCATTER_COMPILED_MIN_N",
    "SCATTER_SMALL_N",
    "TaskGather",
    "available_tiers",
    "build_task_gather",
    "choose_scatter_backend",
    "coalesce_runs",
    "detect_tiers",
    "mttkrp_gather_chunk",
    "resolve_kernel_backend",
    "runs_from_block_ids",
    "scatter_add",
    "tier_available",
    "tier_reason",
]
