"""Precomputed gather/scatter primitives for the block-sparse kernels.

HiCOO's hot loops all have the same shape: *gather* factor rows at fused
global coordinates ``(bind << b) + eind``, multiply, and *scatter-add* the
result into the output.  The coordinate arithmetic is purely **symbolic** —
it depends only on the tensor's structure, never on the factor values — so
CP-ALS's N modes x K iterations can pay it exactly once.  This module
provides the three pieces of that split (the taco-style symbolic/numeric
separation; see DESIGN.md section 7):

* :class:`TaskGather` — the cached symbolic state of one thread task: fused
  int64 gather coordinates, task-ordered values, and per-mode sortedness
  flags (sorted scatter indices unlock the segmented-reduction backend);
* :func:`scatter_add` — a drop-in replacement for ``np.add.at`` that picks
  the fastest NumPy scatter backend for the input at hand;
* run coalescing — consecutive block ids become ``(lo, hi)`` slice ranges so
  task setup is O(runs), not O(blocks).

Every helper is duck-typed on the HiCOO attribute contract (``bptr``,
``binds``, ``einds``, ``values``, ``block_bits``) to keep this module
import-light; :meth:`repro.core.hicoo.HicooTensor.task_gather` is the
memoizing entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..obs import metrics, trace

__all__ = [
    "SCATTER_SMALL_N",
    "SCATTER_COMPILED_MIN_N",
    "TaskGather",
    "scatter_add",
    "scatter_add_sequential",
    "choose_scatter_backend",
    "coalesce_runs",
    "runs_from_block_ids",
    "build_task_gather",
    "mttkrp_gather_chunk",
]

#: below this many updates the bookkeeping of the fast backends costs more
#: than ``np.add.at`` itself.
SCATTER_SMALL_N = 64

#: below this many updates a *compiled* scatter (numba/cupy) is never
#: selected even when requested and available: the per-call dispatch
#: overhead — and, on the very first call, JIT compilation — dwarfs the
#: scatter itself, so tiny inputs stay on the NumPy ladder above.
SCATTER_COMPILED_MIN_N = 4096

#: when the output has this many times more rows than there are updates, a
#: per-column bincount (which walks the whole output) loses to sorting the
#: updates and segment-reducing them.
_SPARSE_OUT_RATIO = 8


# ----------------------------------------------------------------------
# scatter-add backend selection
# ----------------------------------------------------------------------
def scatter_add(out: np.ndarray, idx: np.ndarray, acc: np.ndarray,
                presorted: bool | None = None,
                row_local: bool = False,
                backend: str | None = None) -> str:
    """Accumulate ``acc`` into ``out`` at rows ``idx``; returns the backend.

    Semantically identical to ``np.add.at(out, idx, acc)`` — duplicate
    indices sum — but picks the fastest primitive available:

    * ``"add_at"`` — tiny inputs (< :data:`SCATTER_SMALL_N` updates);
    * ``"reduceat"`` — ``idx`` is non-decreasing (HiCOO tasks know this from
      their cached sortedness flags): one segmented reduction, no sort;
    * ``"bincount"`` — general case, one ``np.bincount`` per output column;
    * ``"sort_reduceat"`` — output rows vastly outnumber updates, where
      bincount's full-output walk loses to sorting the updates first;
    * ``"numba"`` — only when ``backend="numba"`` is requested, the tier is
      importable, **and** ``n >= SCATTER_COMPILED_MIN_N``: a jitted
      update loop (no per-column passes, no index sort).  An unavailable
      request silently stays on the NumPy ladder.

    ``presorted=None`` probes sortedness (one O(n) pass, cheap next to the
    scatter itself); pass ``True``/``False`` when the caller already knows.
    ``row_local=True`` restricts the choice to backends that write only the
    rows in ``idx`` — required when ``out`` is shared between concurrent
    tasks that own disjoint row ranges (the lock-free superblock schedule):
    bincount adds a full-length column and would race on unowned rows.
    ``out`` may be 1-D (with 1-D ``acc``) or 2-D (rows x rank).

    Each call increments the ``scatter.calls`` / ``scatter.updates`` /
    ``scatter.<backend>`` counters of :mod:`repro.obs.metrics` (so the
    compiled tiers surface as ``scatter.numba`` / ``scatter.cupy``).
    """
    backend = _scatter_add(out, idx, acc, presorted, row_local, backend)
    reg = metrics.get_registry()
    if reg.enabled:
        reg.inc("scatter.calls", labels={"backend": backend})
        reg.inc("scatter.updates", len(idx))
        reg.inc("scatter." + backend)
    return backend


def choose_scatter_backend(n: int, rows: int,
                           presorted: bool = False,
                           row_local: bool = False,
                           backend: str | None = None,
                           compiled_available: bool | None = None) -> str:
    """Pure backend choice for an ``n``-update scatter into ``rows`` rows.

    Factored out of :func:`scatter_add` so the crossover policy — in
    particular that compiled tiers are never chosen below
    :data:`SCATTER_COMPILED_MIN_N` — is unit-testable on hosts where the
    tiers are not installed (``compiled_available`` overrides detection).
    """
    if n == 0:
        return "noop"
    if n <= SCATTER_SMALL_N:
        return "add_at"
    # only the numba tier applies here: these are host arrays (the GPU
    # tier scatters device-side, inside repro.kernels.compiled, and feeds
    # the scatter.cupy counter from there)
    if backend == "numba" and n >= SCATTER_COMPILED_MIN_N:
        if compiled_available is None:
            from .backends import tier_available

            compiled_available = tier_available(backend)
        if compiled_available:
            return backend
    if presorted:
        return "reduceat"
    if row_local or rows > _SPARSE_OUT_RATIO * n:
        return "sort_reduceat"
    return "bincount"


def _scatter_add(out, idx, acc, presorted, row_local, backend=None) -> str:
    n = len(idx)
    if n == 0:
        return "noop"
    if presorted is None and SCATTER_SMALL_N < n:
        presorted = bool(np.all(idx[1:] >= idx[:-1]))
    choice = choose_scatter_backend(n, out.shape[0], bool(presorted),
                                    row_local, backend)
    if choice == "add_at":
        np.add.at(out, idx, acc)
    elif choice == "numba":
        from .compiled import scatter_add_compiled

        scatter_add_compiled(out, idx, acc)
    elif choice == "reduceat":
        _segment_add(out, idx, acc)
    elif choice == "sort_reduceat":
        order = np.argsort(idx, kind="stable")
        _segment_add(out, idx[order], acc[order])
    else:  # bincount
        rows = out.shape[0]
        if acc.ndim == 1:
            out += np.bincount(idx, weights=acc, minlength=rows)
        else:
            for r in range(acc.shape[1]):
                out[:, r] += np.bincount(idx, weights=acc[:, r],
                                         minlength=rows)
    return choice


def _segment_add(out: np.ndarray, idx: np.ndarray, acc: np.ndarray) -> None:
    """Segmented reduction of ``acc`` into ``out``; ``idx`` non-decreasing."""
    starts = np.concatenate([[0], np.flatnonzero(idx[1:] != idx[:-1]) + 1])
    sums = np.add.reduceat(acc, starts, axis=0)
    # idx[starts] are pairwise distinct (idx is sorted), so fancy += is exact
    out[idx[starts]] += sums


def scatter_add_sequential(out: np.ndarray, idx: np.ndarray, acc: np.ndarray,
                           backend: str | None = None) -> str:
    """Scatter-add with a *pinned* summation order: left-to-right in input
    order, per output row — bitwise-identical to ``np.add.at``.

    :func:`scatter_add` is free to pick ``reduceat``-family backends whose
    pairwise reductions round differently from a sequential loop, and its
    choice depends on ``n`` and the output shape — so tiling one input
    stream into chunks can change the result in the last ulp.  This variant
    only ever uses backends that accumulate each row's updates one at a
    time in array order (``np.add.at``, per-column ``np.bincount``, or the
    jitted sequential loop of the numba tier), which makes the result
    invariant under any row-disjoint chunking of the input.  The ALTO
    format pins its scatters here so every backend and thread count
    reproduces the COO oracle bit for bit (DESIGN.md section 13).

    Writes only rows in ``[idx.min(), idx.max()]``; when ``out`` is shared
    between concurrent tasks the caller must own that whole interval (the
    equal-nnz ALTO partition cuts at row boundaries, so it does).
    """
    n = len(idx)
    if n == 0:
        return "noop"
    choice = "add_at"
    if backend == "numba" and n >= SCATTER_COMPILED_MIN_N:
        from .backends import tier_available

        if tier_available("numba"):
            choice = "numba"
    if choice == "numba":
        from .compiled import scatter_add_compiled

        scatter_add_compiled(out, idx, acc)
    elif n > SCATTER_SMALL_N:
        # bincount accumulates each bin sequentially in array order — same
        # bits as add_at, much faster — but walks the whole local row span,
        # so fall back to add_at when the span dwarfs the update count
        lo = int(idx.min())
        hi = int(idx.max()) + 1
        if hi - lo <= _SPARSE_OUT_RATIO * n:
            choice = "bincount"
            local = idx - lo
            span = hi - lo
            if acc.ndim == 1:
                out[lo:hi] += np.bincount(local, weights=acc,
                                          minlength=span)
            else:
                for r in range(acc.shape[1]):
                    out[lo:hi, r] += np.bincount(local, weights=acc[:, r],
                                                 minlength=span)
        else:
            np.add.at(out, idx, acc)
    else:
        np.add.at(out, idx, acc)
    reg = metrics.get_registry()
    if reg.enabled:
        reg.inc("scatter.calls", labels={"backend": choice})
        reg.inc("scatter.updates", n)
        reg.inc("scatter." + choice)
    return choice


# ----------------------------------------------------------------------
# run coalescing (O(runs) task setup)
# ----------------------------------------------------------------------
def coalesce_runs(ranges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge adjacent half-open ``(lo, hi)`` ranges; drops empty ranges."""
    runs: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        lo, hi = int(lo), int(hi)
        if hi <= lo:
            continue
        if runs and runs[-1][1] == lo:
            runs[-1] = (runs[-1][0], hi)
        else:
            runs.append((lo, hi))
    return runs


def runs_from_block_ids(block_ids) -> List[Tuple[int, int]]:
    """Coalesce a sequence of block ids into maximal consecutive runs."""
    ids = np.asarray(block_ids, dtype=np.int64)
    if ids.size == 0:
        return []
    breaks = np.flatnonzero(ids[1:] != ids[:-1] + 1) + 1
    starts = np.concatenate([[0], breaks])
    ends = np.concatenate([breaks, [len(ids)]])
    return [(int(ids[s]), int(ids[e - 1]) + 1) for s, e in zip(starts, ends)]


# ----------------------------------------------------------------------
# fused gather arrays
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskGather:
    """Cached symbolic state of one thread task over a HiCOO tensor.

    Attributes
    ----------
    runs : tuple of (blk_lo, blk_hi) — the block runs this task owns.
    ginds : (nnz, N) int64 — fused global coordinates
        ``(binds[blk] << block_bits) + einds``, task order.
    values : (nnz,) float64 — the nonzero values in the same order (constant
        per tensor, cached so the numeric pass is slice-free).
    sorted_modes : (N,) bool — whether ``ginds[:, m]`` is non-decreasing;
        a sorted scatter mode takes the segmented-reduction backend.
    """

    runs: Tuple[Tuple[int, int], ...]
    ginds: np.ndarray
    values: np.ndarray
    sorted_modes: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.values)

    def nbytes(self) -> int:
        """Cache footprint of the precomputed arrays."""
        return (self.ginds.nbytes + self.values.nbytes
                + self.sorted_modes.nbytes)


def build_task_gather(tensor, runs: Sequence[Tuple[int, int]]) -> TaskGather:
    """Materialize the fused gather arrays for block runs of ``tensor``.

    One vectorized pass per run (O(runs) setup + O(nnz) arithmetic) replaces
    the per-block ``arange``/``full``/``concatenate`` loop.  ``binds`` is
    sliced *before* the int64 widening so only the task's rows are cast.
    """
    runs = tuple(coalesce_runs(runs))
    nmodes = tensor.binds.shape[1] if tensor.binds.ndim == 2 else 1
    shift = tensor.block_bits
    pieces_g, pieces_v = [], []
    for blo, bhi in runs:
        lo, hi = int(tensor.bptr[blo]), int(tensor.bptr[bhi])
        counts = np.diff(tensor.bptr[blo:bhi + 1])
        blk_of = np.repeat(np.arange(blo, bhi), counts)
        base = tensor.binds[blk_of].astype(np.int64) << shift
        base += tensor.einds[lo:hi]
        pieces_g.append(base)
        pieces_v.append(tensor.values[lo:hi])
    if pieces_g:
        ginds = pieces_g[0] if len(pieces_g) == 1 else np.concatenate(pieces_g)
        values = (pieces_v[0] if len(pieces_v) == 1
                  else np.concatenate(pieces_v))
        values = np.ascontiguousarray(values, dtype=np.float64)
    else:
        ginds = np.empty((0, nmodes), dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    sorted_modes = np.array(
        [bool(np.all(ginds[1:, m] >= ginds[:-1, m]))
         for m in range(ginds.shape[1])], dtype=bool)
    return TaskGather(runs=runs, ginds=ginds, values=values,
                      sorted_modes=sorted_modes)


# ----------------------------------------------------------------------
# numeric MTTKRP pass over a cached gather
# ----------------------------------------------------------------------
def mttkrp_gather_chunk(tg: TaskGather, factors, mode: int, out: np.ndarray,
                        row_local: bool = False,
                        backend: str | None = None,
                        scatter: str = "auto") -> str:
    """Pure-numeric MTTKRP of one task: gather, multiply, scatter-add.

    All symbolic work lives in ``tg``; this touches only factor values.
    Returns the scatter backend used (recorded in :class:`MttkrpRun`).
    ``row_local`` is forwarded to :func:`scatter_add` (set it when ``out``
    is shared between concurrently running tasks); ``backend`` requests a
    compiled scatter tier for large-enough updates (see
    :func:`choose_scatter_backend`).  ``scatter="seq"`` pins the
    chunk-invariant left-to-right scatter of
    :func:`scatter_add_sequential` (the ALTO bit-reproducibility
    contract) instead of the adaptive ladder.
    """
    if tg.nnz == 0:
        return "noop"
    if trace.enabled():
        with trace.span("gather.chunk", mode=mode, nnz=tg.nnz):
            used = _mttkrp_gather_chunk(tg, factors, mode, out, row_local,
                                        backend, scatter)
    else:
        used = _mttkrp_gather_chunk(tg, factors, mode, out, row_local,
                                    backend, scatter)
    metrics.inc("mttkrp.nnz_processed", tg.nnz)
    return used


def _mttkrp_gather_chunk(tg, factors, mode, out, row_local, backend=None,
                         scatter="auto"):
    acc = None
    for m, f in enumerate(factors):
        if m == mode:
            continue
        rows = f[tg.ginds[:, m]]
        if acc is None:
            acc = rows  # fresh gather output — safe to scale in place below
        else:
            acc *= rows
    if acc is None:
        acc = np.repeat(tg.values[:, None], out.shape[1], axis=1)
    else:
        acc *= tg.values[:, None]
    if scatter == "seq":
        return scatter_add_sequential(out, tg.ginds[:, mode], acc,
                                      backend=backend)
    return scatter_add(out, tg.ginds[:, mode], acc,
                       presorted=bool(tg.sorted_modes[mode]),
                       row_local=row_local, backend=backend)
