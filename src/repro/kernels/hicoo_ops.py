"""Additional tensor kernels operating directly on HiCOO storage.

The paper's evaluation centres on MTTKRP, but HiCOO (like its reference
implementation in ParTI!) is a general storage format: this module provides
tensor-times-vector and tensor-times-matrix on HiCOO, plus block-local
reductions.  TTV/TTM walk the blocks, reconstruct global coordinates from
``binds``/``einds`` block-by-block, and reduce — never materializing the
whole coordinate list at once, which is the point of the format.
"""

from __future__ import annotations

import numpy as np

from ..core.hicoo import HicooTensor
from ..formats.coo import CooTensor
from ..kernels.gather import scatter_add
from ..kernels.ttm import SemiSparseTensor
from ..util.validation import check_mode

__all__ = ["hicoo_ttv", "hicoo_ttm", "block_norms", "densest_blocks"]


def _block_batches(tensor: HicooTensor, batch_blocks: int = 4096):
    """Yield (global_indices, values) for batches of consecutive blocks.

    Batching bounds the temporary coordinate array to roughly
    ``batch_blocks * mean_block_nnz`` rows.  Each batch goes through the
    tensor's memoized :meth:`~repro.core.hicoo.HicooTensor.task_gather`
    cache, so repeated TTV/TTM calls (e.g. a TTM chain in HOOI, or the
    model-selection sweep) reconstruct the fused coordinates only once.
    """
    for lo_blk in range(0, tensor.nblocks, batch_blocks):
        hi_blk = min(lo_blk + batch_blocks, tensor.nblocks)
        tg = tensor.task_gather([(lo_blk, hi_blk)])
        yield tg.ginds, tg.values


def hicoo_ttv(tensor: HicooTensor, vector: np.ndarray, mode: int) -> CooTensor:
    """Tensor-times-vector on HiCOO: contract ``mode`` with ``vector``.

    Returns an (N-1)-mode COO tensor (coinciding coordinates summed).  Use
    ``HicooTensor(result, ...)`` to re-block the output if further HiCOO
    kernels are needed.
    """
    mode = check_mode(mode, tensor.nmodes)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != tensor.shape[mode]:
        raise ValueError(
            f"vector has length {len(vector)}, expected {tensor.shape[mode]}"
        )
    if tensor.nmodes == 1:
        raise ValueError("cannot contract the only mode of a 1-mode tensor")
    keep = [m for m in range(tensor.nmodes) if m != mode]
    new_shape = tuple(tensor.shape[m] for m in keep)

    parts_inds, parts_vals = [], []
    for ginds, vals in _block_batches(tensor):
        parts_inds.append(ginds[:, keep])
        parts_vals.append(vals * vector[ginds[:, mode]])
    if not parts_inds:
        return CooTensor.empty(new_shape)
    return CooTensor(new_shape, np.vstack(parts_inds),
                     np.concatenate(parts_vals), sum_duplicates=True)


def hicoo_ttm(tensor: HicooTensor, matrix: np.ndarray,
              mode: int) -> SemiSparseTensor:
    """Tensor-times-matrix on HiCOO: contract ``mode`` with a
    ``(shape[mode], R)`` matrix; result is semi-sparse (dense R-fibers over
    the surviving coordinates)."""
    mode = check_mode(mode, tensor.nmodes)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"matrix must be ({tensor.shape[mode]}, R), got {matrix.shape}"
        )
    keep = [m for m in range(tensor.nmodes) if m != mode]
    keep_shape = tuple(tensor.shape[m] for m in keep)
    rank = matrix.shape[1]

    # per batch: partial (coords, fibers); merged in one vectorized pass
    part_coords, part_fibers = [], []
    for ginds, vals in _block_batches(tensor):
        part_coords.append(ginds[:, keep])
        part_fibers.append(vals[:, None] * matrix[ginds[:, mode]])
    if not part_coords:
        return SemiSparseTensor(
            shape=keep_shape, mode=mode,
            indices=np.empty((0, len(keep)), dtype=np.int64),
            fibers=np.empty((0, rank)),
        )
    coords = np.vstack(part_coords)
    fibers = np.vstack(part_fibers)
    order = (np.lexsort(tuple(coords[:, c] for c in reversed(range(len(keep)))))
             if len(keep) else np.arange(len(coords)))
    coords = coords[order]
    fibers = fibers[order]
    if len(keep) and len(coords) > 1:
        new_group = np.any(coords[1:] != coords[:-1], axis=1)
        group_id = np.concatenate([[0], np.cumsum(new_group)])
        first = np.concatenate([[0], np.flatnonzero(new_group) + 1])
    else:
        group_id = np.zeros(len(coords), dtype=np.int64)
        first = np.array([0]) if len(coords) else np.empty(0, dtype=np.int64)
    sums = np.zeros((int(group_id[-1]) + 1 if len(coords) else 0, rank))
    # group ids come from a cumulative sum, hence non-decreasing
    scatter_add(sums, group_id, fibers, presorted=True)
    return SemiSparseTensor(
        shape=keep_shape, mode=mode, indices=coords[first], fibers=sums
    )


def block_norms(tensor: HicooTensor, ord: float = 2.0) -> np.ndarray:
    """Per-block value norm (length ``nblocks``) — block-level statistics
    used by the density analysis and the anomaly example."""
    if tensor.nblocks == 0:
        return np.zeros(0)
    out = np.zeros(tensor.nblocks)
    blk = tensor._nnz_block_of
    if ord == 2.0:
        scatter_add(out, blk, tensor.values ** 2, presorted=True)
        return np.sqrt(out)
    if ord == 1.0:
        scatter_add(out, blk, np.abs(tensor.values), presorted=True)
        return out
    if np.isinf(ord):
        np.maximum.at(out, blk, np.abs(tensor.values))
        return out
    raise ValueError(f"unsupported norm order {ord}; use 1, 2, or inf")


def densest_blocks(tensor: HicooTensor, k: int = 10) -> list:
    """The ``k`` blocks with the most nonzeros: (block_coords, nnz) pairs,
    densest first.  Block-structure inspection utility."""
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    counts = tensor.block_nnz()
    order = np.argsort(counts, kind="stable")[::-1][:k]
    return [(tuple(int(c) for c in tensor.binds[b]), int(counts[b]))
            for b in order]
