"""Kernel-tier registry: which compiled execution tiers this host can run.

The numeric half of MTTKRP is a handful of dense gather–multiply–scatter
loops (see :mod:`repro.kernels.gather`), which a JIT or a GPU executes far
faster than NumPy's interpreter-bound fancy indexing.  This module is the
single source of truth for which of those tiers exist *here*:

* ``"numpy"``  — always available; the reference implementation;
* ``"numba"``  — CPU JIT (``pip install repro[jit]``): fused per-nonzero
  loops compiled to machine code, ``prange`` over row-disjoint tasks;
* ``"cupy"``   — GPU (``pip install repro[gpu]``): requires both the cupy
  package *and* a visible CUDA device.

Detection is done once and cached (:func:`detect_tiers`); every consumer
resolves a user-requested tier through :func:`resolve_kernel_backend`,
which **degrades silently to numpy** when the dependency is absent — a
request for ``"numba"`` on a numba-less host runs the pure-NumPy kernels,
logs one warning, and bumps the ``kernel.fallbacks`` counter.  CI's
default jobs rely on this: the whole suite passes unchanged without the
optional extras.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..obs import metrics
from ..util.log import get_logger

__all__ = [
    "KERNEL_TIERS",
    "TierInfo",
    "detect_tiers",
    "tier_available",
    "tier_reason",
    "available_tiers",
    "resolve_kernel_backend",
]

#: every kernel tier this repo knows about, in preference order for "auto"
KERNEL_TIERS = ("numpy", "numba", "cupy")


@dataclass(frozen=True)
class TierInfo:
    """Availability record of one kernel tier on this host."""

    name: str
    available: bool
    #: human-readable reason when unavailable ("" when available); shown by
    #: ``hicoo-repro info`` and used as the pytest skip reason
    reason: str = ""
    version: str = ""


_CACHE: Optional[Dict[str, TierInfo]] = None
_WARNED: set = set()


def _detect_numba() -> TierInfo:
    try:
        import numba
    except Exception as exc:  # ImportError or a broken install
        return TierInfo("numba", False,
                        f"numba is not installed ({exc}); "
                        "pip install repro[jit]")
    return TierInfo("numba", True, version=getattr(numba, "__version__", "?"))


def _detect_cupy() -> TierInfo:
    try:
        import cupy
    except Exception as exc:
        return TierInfo("cupy", False,
                        f"cupy is not installed ({exc}); "
                        "pip install repro[gpu]")
    try:
        ndev = cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # driver missing / no GPU
        return TierInfo("cupy", False,
                        f"cupy is installed but CUDA is unusable ({exc})")
    if ndev < 1:
        return TierInfo("cupy", False,
                        "cupy is installed but no CUDA device is visible")
    return TierInfo("cupy", True, version=getattr(cupy, "__version__", "?"))


def detect_tiers(refresh: bool = False) -> Dict[str, TierInfo]:
    """Probe (once) which kernel tiers can run on this host."""
    global _CACHE
    if _CACHE is None or refresh:
        _CACHE = {
            "numpy": TierInfo("numpy", True),
            "numba": _detect_numba(),
            "cupy": _detect_cupy(),
        }
    return _CACHE


def tier_available(name: str) -> bool:
    """True when tier ``name`` can execute here."""
    info = detect_tiers().get(name)
    return bool(info and info.available)


def tier_reason(name: str) -> str:
    """Why tier ``name`` is unavailable ("" when it is available)."""
    info = detect_tiers().get(name)
    if info is None:
        return f"unknown kernel tier {name!r}"
    return info.reason


def available_tiers() -> tuple:
    """Names of the tiers that can execute here, in preference order."""
    return tuple(n for n in KERNEL_TIERS if tier_available(n))


def resolve_kernel_backend(name: Optional[str]) -> str:
    """Map a requested tier to one that can actually run.

    ``None``/``"numpy"`` → ``"numpy"``; ``"auto"`` → the fastest available
    CPU tier (numba when present, else numpy — the GPU tier is never
    auto-selected because upload cost only pays off for large plans).  An
    unavailable explicit request **falls back to numpy silently**: one
    warning per tier per process, a ``kernel.fallbacks`` counter bump, and
    the numpy kernels produce the identical result.  Unknown names raise.
    """
    if name is None or name == "numpy":
        return "numpy"
    if name == "auto":
        return "numba" if tier_available("numba") else "numpy"
    if name not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{KERNEL_TIERS + ('auto',)}")
    if tier_available(name):
        return name
    if name not in _WARNED:
        _WARNED.add(name)
        get_logger("repro.kernels").warning(
            "kernel tier %r unavailable (%s); falling back to numpy",
            name, tier_reason(name))
    metrics.inc("kernel.fallbacks", labels={"tier": name})
    return "numpy"
