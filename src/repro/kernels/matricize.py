"""Mode-n matricization (unfolding) for sparse and dense tensors."""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from ..formats.coo import CooTensor
from ..util.validation import check_mode

__all__ = ["unfold_dense", "unfold_coo", "column_index"]


def column_index(indices: np.ndarray, shape, mode: int) -> np.ndarray:
    """Column of each nonzero in the mode-``mode`` unfolding.

    Columns are ordered C-style over the remaining modes (last remaining mode
    varies fastest), matching :meth:`repro.formats.dense.DenseTensor.unfold`.
    """
    mode = check_mode(mode, len(shape))
    rest = [m for m in range(len(shape)) if m != mode]
    col = np.zeros(len(indices), dtype=np.int64)
    for m in rest:
        col = col * shape[m] + indices[:, m]
    return col


def unfold_dense(array: np.ndarray, mode: int) -> np.ndarray:
    """Dense mode-n unfolding (rows = mode ``mode``)."""
    mode = check_mode(mode, array.ndim)
    return np.moveaxis(np.asarray(array), mode, 0).reshape(array.shape[mode], -1)


def unfold_coo(tensor: CooTensor, mode: int) -> sp.csr_matrix:
    """Sparse CSR mode-n unfolding of a COO tensor.

    Raises if the column dimension would overflow practical sparse-matrix
    limits (product of remaining mode sizes beyond 2**62).
    """
    mode = check_mode(mode, tensor.nmodes)
    ncols = 1
    for m, s in enumerate(tensor.shape):
        if m != mode:
            ncols *= s
    if ncols >= 1 << 62:
        raise ValueError("unfolded tensor has too many columns to index")
    rows = tensor.indices[:, mode]
    cols = column_index(tensor.indices, tensor.shape, mode)
    mat = sp.coo_matrix(
        (tensor.values, (rows, cols)), shape=(tensor.shape[mode], ncols)
    )
    return mat.tocsr()
