"""Alternative COO MTTKRP kernels.

The paper's COO baseline is the straightforward gather/scatter loop
(:meth:`repro.formats.coo.CooTensor.mttkrp`).  Tuned COO implementations
(e.g. in ParTI!) improve on it when the tensor is *sorted* by the target
mode: the scatter becomes a segment reduction — one contiguous write per
output row instead of one atomic update per nonzero.  This module provides
that variant plus the precomputed sort plans that make it cheap to call
repeatedly inside CP-ALS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..formats.coo import CooTensor
from ..util.validation import check_factors, check_mode

__all__ = ["SortPlan", "build_sort_plan", "build_all_plans", "mttkrp_sorted"]


@dataclass
class SortPlan:
    """Precomputed mode-sorted view of a COO tensor.

    Attributes
    ----------
    mode : the target mode this plan serves.
    order : permutation sorting nonzeros by the target-mode index.
    segments : start offsets of each distinct output row's run (ends with nnz).
    rows : the distinct output-row indices, aligned with ``segments``.
    """

    mode: int
    order: np.ndarray
    segments: np.ndarray
    rows: np.ndarray


def build_sort_plan(tensor: CooTensor, mode: int) -> SortPlan:
    """Sort plan for ``mode``: stable sort by the target index, run starts.

    One-time cost per mode; CP-ALS amortizes it over iterations exactly
    like CSF/HiCOO amortize their construction.
    """
    mode = check_mode(mode, tensor.nmodes)
    key = tensor.indices[:, mode]
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    if len(sorted_key):
        starts = np.concatenate(
            [[0], np.flatnonzero(sorted_key[1:] != sorted_key[:-1]) + 1])
        segments = np.concatenate([starts, [len(sorted_key)]])
        rows = sorted_key[starts]
    else:
        segments = np.zeros(1, dtype=np.int64)
        rows = np.zeros(0, dtype=np.int64)
    return SortPlan(mode=mode, order=order.astype(np.int64),
                    segments=segments.astype(np.int64),
                    rows=rows.astype(np.int64))


def mttkrp_sorted(tensor: CooTensor, factors: Sequence[np.ndarray],
                  mode: int, plan: SortPlan | None = None) -> np.ndarray:
    """Segment-reduction COO MTTKRP.

    Identical result to ``tensor.mttkrp(factors, mode)``; the scatter-add is
    replaced by ``np.add.reduceat`` over the sorted runs, the write pattern
    a tuned sorted-COO kernel has (sequential, conflict-free per row).
    """
    factors = check_factors(factors, tensor.shape)
    mode = check_mode(mode, tensor.nmodes)
    if plan is None:
        plan = build_sort_plan(tensor, mode)
    elif plan.mode != mode:
        raise ValueError(
            f"plan was built for mode {plan.mode}, not mode {mode}")
    rank = factors[0].shape[1]
    out = np.zeros((tensor.shape[mode], rank))
    if tensor.nnz == 0:
        return out
    order = plan.order
    acc = np.repeat(tensor.values[order, None], rank, axis=1)
    for m, f in enumerate(factors):
        if m != mode:
            acc *= f[tensor.indices[order, m]]
    # reduceat over run starts: one contiguous reduction per output row
    sums = np.add.reduceat(acc, plan.segments[:-1], axis=0)
    out[plan.rows] = sums
    return out


def build_all_plans(tensor: CooTensor) -> List[SortPlan]:
    """Sort plans for every mode (what a CP-ALS run needs)."""
    return [build_sort_plan(tensor, m) for m in range(tensor.nmodes)]
