"""Tensor-times-vector (TTV) chains on sparse tensors.

CP-ALS itself only needs MTTKRP, but TTV is the primitive MTTKRP decomposes
into (one column of the MTTKRP output is a chain of N-1 TTVs), and the tests
use that identity as an independent correctness oracle.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..formats.coo import CooTensor
from ..util.validation import check_mode

__all__ = ["ttv", "ttv_chain", "mttkrp_via_ttv"]


def ttv(tensor: CooTensor, vector: np.ndarray, mode: int) -> CooTensor:
    """Contract one mode of a COO tensor with a vector."""
    return tensor.ttv(vector, mode)


def ttv_chain(tensor: CooTensor, vectors: Dict[int, np.ndarray]) -> CooTensor:
    """Contract several modes (given as ``{mode: vector}``) in sequence.

    Modes are contracted from highest to lowest so earlier contractions do
    not shift the mode numbering of later ones.
    """
    nmodes = tensor.nmodes
    modes = sorted(check_mode(m, nmodes) for m in vectors)
    if len(set(modes)) != len(modes):
        raise ValueError("duplicate modes in TTV chain")
    result = tensor
    removed = 0
    for m in modes:
        result = result.ttv(np.asarray(vectors[m]), m - removed)
        removed += 1
    return result


def mttkrp_via_ttv(tensor: CooTensor, factors: Sequence[np.ndarray],
                   mode: int) -> np.ndarray:
    """Reference MTTKRP computed column-by-column as TTV chains.

    Column ``r`` of the MTTKRP output equals the tensor contracted with the
    ``r``-th column of every non-target factor.  O(R) full passes over the
    tensor — slow, used only as a test oracle.
    """
    mode = check_mode(mode, tensor.nmodes)
    rank = np.asarray(factors[0]).shape[1]
    out = np.zeros((tensor.shape[mode], rank))
    for r in range(rank):
        vectors = {
            m: np.asarray(f)[:, r]
            for m, f in enumerate(factors)
            if m != mode
        }
        reduced = ttv_chain(tensor, vectors)  # 1-mode tensor along `mode`
        out[reduced.indices[:, 0], r] = reduced.values
    return out
