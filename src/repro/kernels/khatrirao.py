"""Dense matrix utilities of CP-ALS: Khatri-Rao, Hadamard, Gram products."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["khatri_rao", "hadamard_all", "gram", "hadamard_grams"]


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Kronecker product; later matrices vary fastest.

    For ``A (I x R)`` and ``B (J x R)`` the result is ``IJ x R`` with row
    ``i*J + j`` equal to ``A[i] * B[j]``.
    """
    from ..formats.dense import khatri_rao as _kr

    return _kr(matrices)


def hadamard_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise product of equally-shaped matrices."""
    matrices = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not matrices:
        raise ValueError("need at least one matrix")
    out = matrices[0].copy()
    for m in matrices[1:]:
        if m.shape != out.shape:
            raise ValueError(f"shape mismatch: {m.shape} vs {out.shape}")
        out *= m
    return out


def gram(matrix: np.ndarray) -> np.ndarray:
    """Gram matrix ``U^T U`` (R x R)."""
    m = np.asarray(matrix, dtype=np.float64)
    return m.T @ m


def hadamard_grams(factors: Sequence[np.ndarray], skip_mode: int) -> np.ndarray:
    """``*_{m != skip} U^(m)T U^(m)`` — the normal-equation matrix of the
    CP-ALS subproblem for ``skip_mode``."""
    grams = [gram(f) for m, f in enumerate(factors) if m != skip_mode]
    if not grams:
        rank = np.asarray(factors[skip_mode]).shape[1]
        return np.ones((rank, rank))
    return hadamard_all(grams)
