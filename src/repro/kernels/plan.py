"""Precomputed parallel-MTTKRP plans for HiCOO.

A CP-ALS run issues the same N MTTKRPs every iteration; rebuilding the
superblock index, strategy choice, and lock-free schedule each time wastes
the symbolic work the paper explicitly amortizes ("construction cost is
paid once").  A :class:`MttkrpPlan` captures all of it — one superblock
index plus a per-mode strategy/schedule — and is reused across iterations
(and across CP-ALS restarts, which share the tensor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.hicoo import HicooTensor
from ..core.scheduler import Schedule, choose_strategy, schedule_mode
from ..core.superblock import SuperblockIndex, build_superblocks
from ..parallel.partition import balanced_ranges

__all__ = ["ModePlan", "MttkrpPlan", "plan_mttkrp"]


@dataclass
class ModePlan:
    """Parallel execution recipe for one MTTKRP mode."""

    mode: int
    strategy: str  # "schedule" | "privatize"
    #: schedule strategy: per-thread block-id lists (flattened superblocks)
    thread_blocks: Optional[List[List[int]]] = None
    schedule: Optional[Schedule] = None
    #: privatize strategy: per-thread contiguous superblock ranges
    superblock_ranges: Optional[List[Tuple[int, int]]] = None
    thread_nnz: Optional[np.ndarray] = None


@dataclass
class MttkrpPlan:
    """All symbolic parallel state for one (tensor, rank, nthreads)."""

    nthreads: int
    rank: int
    superblock_bits: int
    superblocks: SuperblockIndex
    modes: List[ModePlan]

    def for_mode(self, mode: int) -> ModePlan:
        return self.modes[mode]


def plan_mttkrp(tensor: HicooTensor, rank: int, nthreads: int,
                superblock_bits: Optional[int] = None,
                strategy: str = "auto") -> MttkrpPlan:
    """Build the reusable parallel plan for every mode of ``tensor``.

    ``strategy`` forces one strategy for all modes, or ``"auto"`` applies
    the paper's per-mode heuristic.
    """
    if not isinstance(tensor, HicooTensor):
        raise TypeError(f"plans are HiCOO-specific, got {type(tensor).__name__}")
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    if nthreads < 1:
        raise ValueError(f"nthreads must be positive, got {nthreads}")
    if strategy not in ("auto", "schedule", "privatize"):
        raise ValueError(f"unknown strategy {strategy!r}")
    sb_bits = superblock_bits if superblock_bits is not None else min(
        tensor.block_bits + 3, 20)
    sbs = build_superblocks(tensor, sb_bits)

    modes: List[ModePlan] = []
    for mode in range(tensor.nmodes):
        strat = strategy
        if strat == "auto":
            strat = choose_strategy(sbs, mode, nthreads,
                                    tensor.shape[mode], rank)
        if strat == "schedule":
            sched = schedule_mode(sbs, mode, nthreads)
            thread_blocks = []
            for sb_list in sched.assignment:
                blocks: List[int] = []
                for sb in sb_list:
                    lo, hi = sbs.block_range(sb)
                    blocks.extend(range(lo, hi))
                thread_blocks.append(blocks)
            modes.append(ModePlan(mode=mode, strategy="schedule",
                                  thread_blocks=thread_blocks,
                                  schedule=sched,
                                  thread_nnz=sched.thread_nnz.copy()))
        else:
            ranges = balanced_ranges(sbs.nnz_per_superblock, nthreads)
            thread_nnz = np.array(
                [int(sbs.nnz_per_superblock[lo:hi].sum())
                 for lo, hi in ranges], dtype=np.int64)
            modes.append(ModePlan(mode=mode, strategy="privatize",
                                  superblock_ranges=ranges,
                                  thread_nnz=thread_nnz))
    return MttkrpPlan(nthreads=nthreads, rank=rank,
                      superblock_bits=sb_bits, superblocks=sbs, modes=modes)
