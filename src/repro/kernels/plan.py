"""Precomputed parallel-MTTKRP plans for HiCOO.

A CP-ALS run issues the same N MTTKRPs every iteration; rebuilding the
superblock index, strategy choice, and lock-free schedule each time wastes
the symbolic work the paper explicitly amortizes ("construction cost is
paid once").  A :class:`MttkrpPlan` captures all of it — one superblock
index plus a per-mode strategy/schedule — and is reused across iterations
(and across CP-ALS restarts, which share the tensor).

Since the gather/scatter layer (:mod:`repro.kernels.gather`) the plan also
caches the **fused gather arrays** of every thread task: the int64
``(bind << b) + eind`` coordinates, task-ordered values, and per-mode
sortedness flags.  Thread tasks are stored as coalesced block *runs*
(``(lo, hi)`` slices), so plan construction is O(superblocks), not
O(blocks); the gather arrays themselves are built lazily on first execution
through :meth:`repro.core.hicoo.HicooTensor.task_gather` — which memoizes
them on the tensor, so plans over the same tensor share the arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.hicoo import HicooTensor
from ..core.scheduler import Schedule, choose_strategy, schedule_mode
from ..core.superblock import SuperblockIndex, build_superblocks
from ..obs import metrics
from ..parallel.partition import balanced_ranges
from .gather import TaskGather, coalesce_runs

__all__ = ["ModePlan", "MttkrpPlan", "plan_mttkrp"]


@dataclass
class ModePlan:
    """Parallel execution recipe for one MTTKRP mode."""

    mode: int
    strategy: str  # "schedule" | "privatize"
    #: per-thread coalesced block runs (both strategies): task t owns the
    #: nonzeros of blocks ``[lo, hi)`` for every run in ``thread_runs[t]``
    thread_runs: List[List[Tuple[int, int]]] = field(default_factory=list)
    schedule: Optional[Schedule] = None
    #: privatize strategy: per-thread contiguous superblock ranges
    superblock_ranges: Optional[List[Tuple[int, int]]] = None
    thread_nnz: Optional[np.ndarray] = None
    #: lazily-filled fused gather cache, one TaskGather per thread task
    gathers: Optional[List[TaskGather]] = None
    #: compiled-tier state cached per mode: the concatenated kernel-ready
    #: arrays ("fused") and, for the GPU tier, the device arena ("arena") —
    #: built once per plan and reused by every CP-ALS iteration (see
    #: :mod:`repro.kernels.compiled`)
    compiled: dict = field(default_factory=dict)

    @property
    def thread_blocks(self) -> List[List[int]]:
        """Per-thread flat block-id lists, expanded from ``thread_runs``
        (compatibility/inspection view; execution uses the runs)."""
        return [[b for lo, hi in runs for b in range(lo, hi)]
                for runs in self.thread_runs]


@dataclass
class MttkrpPlan:
    """All symbolic parallel state for one (tensor, rank, nthreads)."""

    nthreads: int
    rank: int
    superblock_bits: int
    superblocks: SuperblockIndex
    modes: List[ModePlan]

    def for_mode(self, mode: int) -> ModePlan:
        return self.modes[mode]

    def ensure_gathers(self, tensor: HicooTensor,
                       mode: Optional[int] = None) -> List[TaskGather]:
        """Fill (and return) the fused gather cache for ``mode``.

        The arrays come from :meth:`HicooTensor.task_gather`, so tasks that
        recur across modes (privatize ranges are mode-independent) and
        across plans of the same tensor share one copy.  With ``mode=None``
        every mode is materialized (useful to pre-pay all symbolic cost
        before a timed region).
        """
        if mode is None:
            for m in range(len(self.modes)):
                self.ensure_gathers(tensor, m)
            return [tg for mp in self.modes for tg in mp.gathers]
        mp = self.modes[mode]
        if mp.gathers is None:
            mp.gathers = [tensor.task_gather(runs) for runs in mp.thread_runs]
        else:
            # a warm plan reusing its materialized arrays is a hit of the
            # gather layer, even though the tensor-level dict isn't probed
            metrics.inc("gather.cache_hits", len(mp.gathers))
        return mp.gathers

    def gather_cache_bytes(self) -> int:
        """Footprint of the materialized gather arrays (0 until executed)."""
        seen, total = set(), 0
        for mp in self.modes:
            for tg in mp.gathers or ():
                if id(tg) not in seen:
                    seen.add(id(tg))
                    total += tg.nbytes()
        return total


def plan_mttkrp(tensor: HicooTensor, rank: int, nthreads: int,
                superblock_bits: Optional[int] = None,
                strategy: str = "auto") -> MttkrpPlan:
    """Build the reusable parallel plan for every mode of ``tensor``.

    ``strategy`` forces one strategy for all modes, or ``"auto"`` applies
    the paper's per-mode heuristic.
    """
    if not isinstance(tensor, HicooTensor):
        raise TypeError(f"plans are HiCOO-specific, got {type(tensor).__name__}")
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    if nthreads < 1:
        raise ValueError(f"nthreads must be positive, got {nthreads}")
    if strategy not in ("auto", "schedule", "privatize"):
        raise ValueError(f"unknown strategy {strategy!r}")
    sb_bits = superblock_bits if superblock_bits is not None else min(
        tensor.block_bits + 3, 20)
    sbs = build_superblocks(tensor, sb_bits)

    modes: List[ModePlan] = []
    for mode in range(tensor.nmodes):
        strat = strategy
        if strat == "auto":
            strat = choose_strategy(sbs, mode, nthreads,
                                    tensor.shape[mode], rank)
        if strat == "schedule":
            sched = schedule_mode(sbs, mode, nthreads)
            thread_runs = [
                coalesce_runs([sbs.block_range(sb) for sb in sb_list])
                for sb_list in sched.assignment
            ]
            modes.append(ModePlan(mode=mode, strategy="schedule",
                                  thread_runs=thread_runs,
                                  schedule=sched,
                                  thread_nnz=sched.thread_nnz.copy()))
        else:
            ranges = balanced_ranges(sbs.nnz_per_superblock, nthreads)
            thread_runs = [
                coalesce_runs([(int(sbs.sptr[lo]), int(sbs.sptr[hi]))])
                if lo < hi else []
                for lo, hi in ranges
            ]
            thread_nnz = np.array(
                [int(sbs.nnz_per_superblock[lo:hi].sum())
                 for lo, hi in ranges], dtype=np.int64)
            modes.append(ModePlan(mode=mode, strategy="privatize",
                                  thread_runs=thread_runs,
                                  superblock_ranges=ranges,
                                  thread_nnz=thread_nnz))
    return MttkrpPlan(nthreads=nthreads, rank=rank,
                      superblock_bits=sb_bits, superblocks=sbs, modes=modes)
