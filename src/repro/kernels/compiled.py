"""Compiled MTTKRP kernels: Numba CPU JIT and the CuPy GPU tier.

The gather/scatter split (DESIGN.md section 7) reduced the numeric half of
MTTKRP to fused gather–multiply–scatter loops over cached
:class:`~repro.kernels.gather.TaskGather` arrays.  This module executes
those loops an order of magnitude faster than NumPy fancy indexing:

* **Numba CPU tier** — one machine-code kernel per mode launch: a
  ``prange`` over the plan's thread tasks (row-disjoint under the
  lock-free superblock schedule, so the shared output needs no atomics)
  with a fused per-nonzero inner loop.  All non-target factors are stacked
  into one ``(sum rows, R)`` matrix with per-mode row offsets — the F-COO
  "unified" formulation (arXiv:1705.09905) — so the kernel signature is
  mode-count independent and one compiled signature serves every mode of
  every CP-ALS iteration.
* **CuPy GPU tier** — a :class:`DeviceArena` mirrors the role of the
  process backend's ``ShmArena``: the plan's fused coordinates and values
  are uploaded **once per plan** (with a per-mode sort permutation and
  segment boundaries precomputed on upload), each launch uploads only the
  current factors, runs an F-COO-style *segmented reduction* (sorted
  scatter indices → cumsum-difference per segment → conflict-free writes),
  and downloads the mode's output matrix.

Every public entry degrades to the pure-NumPy twin of the same algorithm
when the dependency is absent — the jitted functions below are ordinary
Python functions that numba decorates only when importable, so the exact
loop nests that get compiled are also unit-tested interpreted.  Compile
and upload costs are observable: ``compiled.compile_seconds`` /
``compiled.upload_bytes`` metrics and ``compiled.warmup`` /
``compiled.upload`` spans keep them out of (and visible next to) the
steady-state numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics, trace
from .backends import tier_available
from .gather import TaskGather

__all__ = [
    "FusedTasks",
    "build_fused_tasks",
    "run_fused_mttkrp",
    "stack_factors",
    "segmented_mttkrp",
    "DeviceArena",
    "mttkrp_cupy",
    "warmup_numba",
    "numba_ready",
]

try:  # optional dependency: decorate when present, run interpreted when not
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - exercised on numba-less hosts
    numba = None
    prange = range
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """No-op decorator stand-in: the kernels stay plain Python."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn
        return wrap


# ----------------------------------------------------------------------
# kernel bodies (compiled by numba when available, interpreted otherwise)
# ----------------------------------------------------------------------
# The loop nests are written in strict nopython-compatible style: scalar
# arithmetic over contiguous float64/int64 arrays, no Python objects.  The
# interpreted twins are what the equivalence tests on numba-less hosts run,
# so the code numba compiles in CI is the code verified everywhere.
def _fused_tasks_body(task_ptr, ginds, values, fstack, offsets, mode, out):
    """MTTKRP of all tasks; parallel over tasks (must be row-disjoint)."""
    nmodes = ginds.shape[1]
    rank = out.shape[1]
    for t in prange(task_ptr.shape[0] - 1):
        for i in range(task_ptr[t], task_ptr[t + 1]):
            row = ginds[i, mode]
            for r in range(rank):
                acc = values[i]
                for m in range(nmodes):
                    if m != mode:
                        acc *= fstack[offsets[m] + ginds[i, m], r]
                out[row, r] += acc


def _fused_serial_body(ginds, values, fstack, offsets, mode, out, lo, hi):
    """MTTKRP of one nonzero slice ``[lo, hi)``; safe for any target rows."""
    nmodes = ginds.shape[1]
    rank = out.shape[1]
    for i in range(lo, hi):
        row = ginds[i, mode]
        for r in range(rank):
            acc = values[i]
            for m in range(nmodes):
                if m != mode:
                    acc *= fstack[offsets[m] + ginds[i, m], r]
            out[row, r] += acc


def _scatter_add_2d_body(out, idx, acc):
    for i in range(idx.shape[0]):
        j = idx[i]
        for r in range(acc.shape[1]):
            out[j, r] += acc[i, r]


def _scatter_add_1d_body(out, idx, acc):
    for i in range(idx.shape[0]):
        out[idx[i]] += acc[i]


if HAVE_NUMBA:
    # nogil lets the thread backend overlap kernel launches; cache=True
    # persists compiled signatures across processes (best effort)
    _fused_tasks_jit = njit(parallel=True, nogil=True, cache=True)(
        _fused_tasks_body)
    _fused_serial_jit = njit(nogil=True, cache=True)(_fused_serial_body)
    _scatter_add_2d_jit = njit(nogil=True, cache=True)(_scatter_add_2d_body)
    _scatter_add_1d_jit = njit(nogil=True, cache=True)(_scatter_add_1d_body)
else:  # the interpreted twins double as the numba-less implementations
    _fused_tasks_jit = _fused_tasks_body
    _fused_serial_jit = _fused_serial_body
    _scatter_add_2d_jit = _scatter_add_2d_body
    _scatter_add_1d_jit = _scatter_add_1d_body


_WARMED = {"numba": False}


def numba_ready() -> bool:
    """True when the numba tier is importable (compiled or compilable)."""
    return HAVE_NUMBA and tier_available("numba")


def warmup_numba() -> float:
    """Compile every jitted signature on toy inputs; returns the seconds.

    CP-ALS and the benchmarks call this once before their timed regions so
    JIT compilation is paid outside the steady state; the cost is recorded
    in the ``compiled.compile_seconds`` histogram and a
    ``compiled.warmup`` span either way.  Idempotent and a no-op without
    numba.
    """
    if not HAVE_NUMBA or _WARMED["numba"]:
        return 0.0
    t0 = time.perf_counter()
    with trace.span("compiled.warmup", tier="numba"):
        ginds = np.zeros((1, 3), dtype=np.int64)
        values = np.ones(1, dtype=np.float64)
        fstack = np.ones((3, 2), dtype=np.float64)
        offsets = np.array([0, 1, 2], dtype=np.int64)
        out = np.zeros((1, 2), dtype=np.float64)
        task_ptr = np.array([0, 1], dtype=np.int64)
        _fused_tasks_jit(task_ptr, ginds, values, fstack, offsets, 0, out)
        _fused_serial_jit(ginds, values, fstack, offsets, 0, out, 0, 1)
        idx = np.zeros(1, dtype=np.int64)
        _scatter_add_2d_jit(out, idx, np.zeros((1, 2)))
        _scatter_add_1d_jit(np.zeros(2), idx, np.zeros(1))
    dt = time.perf_counter() - t0
    _WARMED["numba"] = True
    metrics.observe("compiled.compile_seconds", dt,
                    labels={"tier": "numba"})
    return dt


def scatter_add_compiled(out: np.ndarray, idx: np.ndarray,
                         acc: np.ndarray) -> None:
    """Jitted (or interpreted-twin) scatter-add; semantics of ``np.add.at``."""
    if HAVE_NUMBA:
        warmup_numba()
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    if acc.ndim == 1:
        _scatter_add_1d_jit(out, idx, np.ascontiguousarray(acc))
    else:
        _scatter_add_2d_jit(out, idx, np.ascontiguousarray(acc))


# ----------------------------------------------------------------------
# fused per-plan task arrays (the compiled tiers' symbolic state)
# ----------------------------------------------------------------------
@dataclass
class FusedTasks:
    """Plan-level concatenation of a mode's TaskGather arrays.

    One kernel launch consumes the whole mode: ``task_ptr`` delimits each
    thread task's nonzero slice, so a ``prange`` over tasks reproduces the
    plan's partition exactly.  ``row_disjoint`` records whether concurrent
    tasks may share the output (the lock-free schedule guarantee); when
    False the serial kernel runs instead — still fused and compiled, just
    not task-parallel.
    """

    task_ptr: np.ndarray  # (ntasks + 1,) int64
    ginds: np.ndarray     # (nnz, N) int64, task order
    values: np.ndarray    # (nnz,) float64
    row_disjoint: bool

    @property
    def nnz(self) -> int:
        return len(self.values)

    def nbytes(self) -> int:
        return self.task_ptr.nbytes + self.ginds.nbytes + self.values.nbytes


def build_fused_tasks(gathers: Sequence[TaskGather],
                      row_disjoint: bool) -> FusedTasks:
    """Concatenate per-task gather arrays into one kernel-ready block."""
    sizes = np.array([tg.nnz for tg in gathers], dtype=np.int64)
    task_ptr = np.zeros(len(gathers) + 1, dtype=np.int64)
    if len(sizes):
        np.cumsum(sizes, out=task_ptr[1:])
    nonempty = [tg for tg in gathers if tg.nnz]
    if not nonempty:
        nmodes = gathers[0].ginds.shape[1] if gathers else 0
        ginds = np.empty((0, nmodes), dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    elif len(nonempty) == 1:
        ginds, values = nonempty[0].ginds, nonempty[0].values
    else:
        ginds = np.concatenate([tg.ginds for tg in nonempty])
        values = np.concatenate([tg.values for tg in nonempty])
    return FusedTasks(task_ptr=task_ptr,
                      ginds=np.ascontiguousarray(ginds, dtype=np.int64),
                      values=np.ascontiguousarray(values, dtype=np.float64),
                      row_disjoint=row_disjoint)


def stack_factors(factors: Sequence[np.ndarray]
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Stack factor matrices row-wise; returns ``(fstack, offsets)``.

    The F-COO unification: factor ``m``'s row ``i`` lives at
    ``fstack[offsets[m] + i]``, so one (rows, R) matrix serves every mode
    and the kernel signature never changes with the tensor order.
    """
    offsets = np.zeros(len(factors), dtype=np.int64)
    if len(factors) > 1:
        np.cumsum(np.array([f.shape[0] for f in factors[:-1]],
                           dtype=np.int64), out=offsets[1:])
    fstack = np.ascontiguousarray(np.concatenate(factors, axis=0),
                                  dtype=np.float64)
    return fstack, offsets


def run_fused_mttkrp(fused: FusedTasks, factors: Sequence[np.ndarray],
                     mode: int, out: np.ndarray,
                     force_serial: bool = False) -> str:
    """Execute one mode's MTTKRP through the fused (numba) kernels.

    Returns the scatter flavor used (``"numba"`` / ``"numba_seq"``, or the
    interpreted ``"python"`` twins on numba-less hosts — reached only by
    tests; dispatch never selects this tier without numba).  Row-disjoint
    fused tasks take the task-parallel kernel; everything else takes the
    serial kernel, which is safe for arbitrary (privatized) outputs.
    """
    if fused.nnz == 0:
        return "noop"
    if HAVE_NUMBA:
        warmup_numba()
    fstack, offsets = stack_factors(factors)
    parallel = fused.row_disjoint and not force_serial
    with trace.span("compiled.kernel", tier="numba", mode=mode,
                    nnz=fused.nnz, parallel=parallel):
        if parallel:
            _fused_tasks_jit(fused.task_ptr, fused.ginds, fused.values,
                             fstack, offsets, mode, out)
            flavor = "numba"
        else:
            _fused_serial_jit(fused.ginds, fused.values, fstack, offsets,
                              mode, out, 0, fused.nnz)
            flavor = "numba_seq"
    metrics.inc("mttkrp.nnz_processed", fused.nnz,
                labels={"backend": "numba" if HAVE_NUMBA else "python"})
    return flavor if HAVE_NUMBA else "python"


# ----------------------------------------------------------------------
# segmented-reduction MTTKRP (array-module generic: numpy or cupy)
# ----------------------------------------------------------------------
def segmented_mttkrp(xp, ginds, values, factors, mode, out,
                     order=None, seg_starts=None, seg_rows=None):
    """F-COO-style MTTKRP via sort + segmented reduction; ``xp`` is the
    array module (``numpy`` or ``cupy``), all arrays live in its space.

    The per-nonzero products are permuted so the scatter index is
    non-decreasing, reduced per segment with a cumulative-sum difference
    (no atomics, no conflicting writes — the GPU-friendly formulation),
    and written to the distinct target rows.  The symbolic triple
    ``(order, seg_starts, seg_rows)`` depends only on structure; pass the
    precomputed (device-resident) copies to skip the sort on warm calls.
    """
    n = int(values.shape[0])
    if n == 0:
        return
    if order is None:
        order, seg_starts, seg_rows = segment_plan(xp, ginds[:, mode])
    acc = values[:, None]
    for m in range(len(factors)):
        if m != mode:
            acc = acc * factors[m][ginds[:, m]]
    acc = acc[order]
    csum = xp.cumsum(acc, axis=0)
    ends = xp.concatenate([seg_starts[1:] - 1,
                           xp.asarray([n - 1], dtype=seg_starts.dtype)])
    totals = csum[ends]
    sums = xp.empty_like(totals)
    sums[0] = totals[0]
    sums[1:] = totals[1:] - totals[:-1]
    out[seg_rows] += sums


def segment_plan(xp, scatter_idx):
    """Symbolic half of :func:`segmented_mttkrp` for one mode: a stable
    sort permutation, segment start positions, and the distinct rows."""
    # plain argsort: cupy's has no ``kind`` and stability only permutes
    # the accumulation order inside a segment (ULP-level, budgeted)
    order = xp.argsort(scatter_idx)
    sorted_idx = scatter_idx[order]
    if int(sorted_idx.shape[0]) == 0:
        starts = xp.zeros(0, dtype=xp.int64)
        return order, starts, sorted_idx
    change = xp.flatnonzero(sorted_idx[1:] != sorted_idx[:-1]) + 1
    starts = xp.concatenate([xp.zeros(1, dtype=change.dtype), change])
    return order, starts, sorted_idx[starts]


# ----------------------------------------------------------------------
# CuPy device arena (GPU-HiCOO upload/download lifecycle)
# ----------------------------------------------------------------------
class DeviceArena:
    """Device-resident symbolic state of one plan — ``ShmArena``'s role on
    the GPU: structure uploaded once, reused by every launch.

    Per mode the arena holds the fused coordinates/values plus the
    segmented-reduction plan (sort permutation, segment starts, distinct
    rows).  Factors are the only per-launch upload (they change every
    CP-ALS iteration); the mode's output matrix is the only download.
    Upload traffic is counted in ``compiled.upload_bytes``.
    """

    def __init__(self, xp=None):
        if xp is None:  # pragma: no cover - requires cupy
            import cupy

            xp = cupy
        self.xp = xp
        self._modes = {}

    def upload_mode(self, mode: int, fused: FusedTasks) -> dict:
        """Upload (once) a mode's fused structure + segment plan."""
        if mode in self._modes:
            metrics.inc("compiled.upload_hits")
            return self._modes[mode]
        xp = self.xp
        with trace.span("compiled.upload", tier="cupy", mode=mode,
                        nnz=fused.nnz):
            ginds = xp.asarray(fused.ginds)
            values = xp.asarray(fused.values)
            order, seg_starts, seg_rows = segment_plan(xp, ginds[:, mode]) \
                if fused.nnz else (xp.zeros(0, dtype=xp.int64),) * 3
        state = {"ginds": ginds, "values": values, "order": order,
                 "seg_starts": seg_starts, "seg_rows": seg_rows}
        self._modes[mode] = state
        metrics.inc("compiled.upload_bytes", fused.nbytes())
        return state

    def run(self, mode: int, fused: FusedTasks,
            factors: Sequence[np.ndarray], rows: int, rank: int
            ) -> np.ndarray:
        """One MTTKRP launch: upload factors, reduce, download the output."""
        xp = self.xp
        state = self.upload_mode(mode, fused)
        dev_factors = [xp.asarray(np.ascontiguousarray(f, dtype=np.float64))
                       for f in factors]
        metrics.inc("compiled.upload_bytes",
                    sum(f.nbytes for f in factors))
        out = xp.zeros((rows, rank), dtype=xp.float64)
        with trace.span("compiled.kernel", tier="cupy", mode=mode,
                        nnz=fused.nnz):
            segmented_mttkrp(xp, state["ginds"], state["values"],
                             dev_factors, mode, out,
                             order=state["order"],
                             seg_starts=state["seg_starts"],
                             seg_rows=state["seg_rows"])
        metrics.inc("mttkrp.nnz_processed", fused.nnz,
                    labels={"backend": "cupy"})
        if xp is np:  # the numpy twin used by the unit tests
            return out
        return xp.asnumpy(out)  # pragma: no cover - requires cupy

    def nbytes(self) -> int:
        return sum(int(a.nbytes) for st in self._modes.values()
                   for a in st.values())


def mttkrp_cupy(fused: FusedTasks, factors: Sequence[np.ndarray], mode: int,
                rows: int, rank: int, arena: DeviceArena) -> np.ndarray:
    """One GPU MTTKRP launch through a (plan-cached) :class:`DeviceArena`."""
    return arena.run(mode, fused, factors, rows, rank)


# ----------------------------------------------------------------------
# plan-level cache + the entry point mttkrp_parallel dispatches to
# ----------------------------------------------------------------------
def _mode_state(plan, tensor, mode: int, tier: str):
    """Fused arrays (and, for cupy, the device arena) cached on the plan."""
    mp = plan.for_mode(mode)
    cache = mp.compiled
    fused = cache.get("fused")
    if fused is None:
        gathers = plan.ensure_gathers(tensor, mode)
        fused = build_fused_tasks(gathers, mp.strategy == "schedule")
        cache["fused"] = fused
        metrics.inc("compiled.fused_builds")
    else:
        metrics.inc("compiled.fused_hits")
    arena = None
    if tier == "cupy":
        arena = cache.get("arena")
        if arena is None:
            arena = DeviceArena()
            cache["arena"] = arena
    return fused, arena


def mttkrp_compiled(tensor, factors: Sequence[np.ndarray], mode: int,
                    plan, tier: str,
                    out: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, str, List[float]]:
    """Execute one mode's MTTKRP on a compiled tier from a plan.

    Returns ``(output, scatter_flavor, [kernel_seconds])``.  The caller
    (:func:`repro.kernels.mttkrp.mttkrp_parallel`) has already verified
    the tier is available and the tensor is HiCOO.
    """
    rank = factors[0].shape[1]
    rows = tensor.shape[mode]
    fused, arena = _mode_state(plan, tensor, mode, tier)
    t0 = time.perf_counter()
    if tier == "cupy":
        output = mttkrp_cupy(fused, factors, mode, rows, rank, arena)
        flavor = "cupy"
    else:
        output = out if out is not None else np.zeros((rows, rank))
        flavor = run_fused_mttkrp(fused, factors, mode, output)
    elapsed = time.perf_counter() - t0
    if flavor != "noop":
        backend = "numba" if tier == "numba" else tier
        metrics.inc("scatter.calls", labels={"backend": backend})
        metrics.inc("scatter.updates", fused.nnz)
        metrics.inc("scatter." + backend)
    return output, flavor, [elapsed]
