"""Client library for the serve daemon's line-delimited-JSON protocol.

One :class:`ServeClient` owns one TCP connection; requests are answered
in order, so the client is a simple synchronous request/reply loop.  It
is deliberately thin — framing via :mod:`repro.serve.protocol`, no
retries, no hidden state — because the test harness drives many of these
concurrently and wants every byte's provenance obvious.

Error convention: a reply with ``ok: false`` raises
:class:`ServeError` carrying the structured error (``.code``,
``.status``); transport-level failures raise ``ConnectionError``.  Pass
``check=False`` to :meth:`request` to receive error replies as values
(the fuzz suite does).
"""

from __future__ import annotations

import socket
from typing import Optional

from . import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A structured ``ok: false`` reply from the daemon."""

    def __init__(self, error: dict) -> None:
        super().__init__(error.get("message", "request failed"))
        self.code = error.get("code", "internal")
        self.status = error.get("status", 500)
        self.error = error


class ServeClient:
    """Synchronous client for one daemon connection (context manager)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._req_seq = 0

    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._rfile = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def send_raw(self, payload: bytes) -> None:
        """Ship raw bytes (the fuzzer's entry point — no client-side
        validation, by design)."""
        self.connect()
        self._sock.sendall(payload)

    def read_reply(self) -> dict:
        """Read one reply line; raises ``ConnectionError`` on EOF."""
        line = self._rfile.readline(protocol.MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.decode_frame(line.rstrip(b"\r\n"))

    def request(self, obj: dict, check: bool = True) -> dict:
        """One request/reply round trip.

        With ``check`` (default) an ``ok: false`` reply raises
        :class:`ServeError`; with ``check=False`` it is returned as-is.
        """
        self.connect()
        self._req_seq += 1
        obj = dict(obj)
        obj.setdefault("id", self._req_seq)
        self._sock.sendall(protocol.encode_frame(obj))
        reply = self.read_reply()
        if check and not reply.get("ok", False):
            raise ServeError(reply.get("error", {}))
        return reply

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def register(self, name: str, spec: dict) -> dict:
        return self.request({"op": "register", "name": name, "spec": spec})

    def unregister(self, name: str) -> dict:
        return self.request({"op": "unregister", "name": name})

    def tensors(self) -> list:
        return self.request({"op": "tensors"})["tensors"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def job_status(self, job_id: str) -> dict:
        return self.request({"op": "job_status", "job": job_id})["job"]

    def mttkrp(self, tensor: str, *, mode: int = 0, rank: int = 4,
               seed: int = 0, priority: int = 1,
               return_data: bool = False, check: bool = True) -> dict:
        return self.request({"op": "mttkrp", "tensor": tensor,
                             "mode": mode, "rank": rank, "seed": seed,
                             "priority": priority,
                             "return_data": return_data}, check=check)

    def cp_als(self, tensor: str, *, rank: int = 4, seed: int = 0,
               iters: int = 3, priority: int = 1,
               check: bool = True) -> dict:
        return self.request({"op": "cp_als", "tensor": tensor,
                             "rank": rank, "seed": seed, "iters": iters,
                             "priority": priority}, check=check)

    def ttm(self, tensor: str, *, mode: int = 0, rank: int = 4,
            seed: int = 0, priority: int = 1, check: bool = True) -> dict:
        return self.request({"op": "ttm", "tensor": tensor, "mode": mode,
                             "rank": rank, "seed": seed,
                             "priority": priority}, check=check)

    def submit(self, req: dict, check: bool = True) -> dict:
        """Submit a generated request dict (the replay runner's verb)."""
        return self.request(dict(req), check=check)
