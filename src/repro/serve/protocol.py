"""Line-delimited-JSON wire protocol of the serve daemon.

One request per line, one reply per line, UTF-8 JSON, ``\\n`` terminated.
The framing rules are deliberately strict so the fuzz suite can pin them:

* a frame longer than :data:`MAX_FRAME_BYTES` is rejected with
  ``frame_too_large`` and the connection is closed (the stream can no
  longer be trusted to be line-synchronized);
* a frame that is not valid JSON is rejected with ``bad_json``;
* a JSON frame that is not an object, names no ``op``, names an unknown
  ``op``, or carries ill-typed fields is rejected with ``invalid_request``
  / ``unknown_op``;
* every rejection is a *structured reply* — ``{"ok": false, "error":
  {"code", "status", "message"}}`` — never a traceback, and never daemon
  death.

Replies echo the request's ``id`` field when present, so clients may
correlate without relying on ordering (the bundled client relies on the
per-connection request/reply ordering instead).
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "JOB_OPS",
    "ADMIN_OPS",
    "OPS",
    "ProtocolError",
    "error_reply",
    "encode_frame",
    "decode_frame",
    "validate_request",
]

#: hard cap on one request/reply line (admission control for memory)
MAX_FRAME_BYTES = 1 << 20

PROTOCOL_VERSION = 1

#: error code -> HTTP-style status (429 is the overload-shedding reply the
#: soak test asserts on: rejection is always explicit, never a silent drop)
ERROR_CODES = {
    "bad_json": 400,
    "invalid_request": 400,
    "unknown_op": 400,
    "frame_too_large": 413,
    "not_found": 404,
    "overloaded": 429,
    "shutting_down": 503,
    "job_failed": 500,
    "internal": 500,
}

#: ops that enqueue work on the scheduler
JOB_OPS = ("mttkrp", "cp_als", "ttm")

#: ops answered inline by the connection handler
ADMIN_OPS = ("ping", "register", "unregister", "tensors", "stats",
             "job_status")

OPS = JOB_OPS + ADMIN_OPS

#: bounds on job parameters (validated before anything touches a kernel)
MAX_RANK = 256
MAX_ITERS = 64
MAX_PRIORITY = 2

#: bounds on registered synthetic tensors
MAX_NDIM = 8
MAX_NNZ = 2_000_000
MAX_DIM = 1 << 24


class ProtocolError(Exception):
    """A malformed or inadmissible request; always answered structurally.

    ``fatal`` marks the connection as desynchronized (oversized frame):
    the daemon replies, then closes.
    """

    def __init__(self, code: str, message: str, *,
                 fatal: bool = False) -> None:
        if code not in ERROR_CODES:
            code = "internal"
        super().__init__(message)
        self.code = code
        self.status = ERROR_CODES[code]
        self.fatal = fatal

    def reply(self, req_id=None) -> dict:
        return error_reply(self.code, str(self), req_id=req_id)


def error_reply(code: str, message: str, req_id=None, **extra) -> dict:
    """The structured error reply for ``code`` (see :data:`ERROR_CODES`)."""
    err = {"code": code, "status": ERROR_CODES.get(code, 500),
           "message": message}
    err.update(extra)
    out = {"ok": False, "error": err}
    if req_id is not None:
        out["id"] = req_id
    return out


def encode_frame(obj: dict) -> bytes:
    """One reply/request as a compact JSON line (raises on oversize)."""
    data = json.dumps(obj, separators=(",", ":"),
                      allow_nan=False).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError("frame_too_large",
                            f"frame of {len(data)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}", fatal=True)
    return data


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a request object.

    Raises :class:`ProtocolError` (never json's own exceptions) on
    oversized, non-UTF-8, non-JSON, or non-object frames.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError("frame_too_large",
                            f"frame of {len(line)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}", fatal=True)
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_json", f"unparseable frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("invalid_request",
                            f"request must be a JSON object, got "
                            f"{type(obj).__name__}")
    return obj


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def _need(obj: dict, key: str, types, what: str):
    if key not in obj:
        raise ProtocolError("invalid_request", f"missing field {key!r}")
    val = obj[key]
    if types is int and isinstance(val, bool):
        raise ProtocolError("invalid_request",
                            f"field {key!r} must be {what}, got a bool")
    if not isinstance(val, types):
        raise ProtocolError("invalid_request",
                            f"field {key!r} must be {what}, got "
                            f"{type(val).__name__}")
    return val


def _int_field(obj: dict, key: str, lo: int, hi: int,
               default: Optional[int] = None) -> int:
    if default is not None and key not in obj:
        return default
    val = _need(obj, key, int, "an integer")
    if not lo <= val <= hi:
        raise ProtocolError("invalid_request",
                            f"field {key!r} must be in [{lo}, {hi}], "
                            f"got {val}")
    return int(val)


def validate_request(obj: dict) -> Tuple[str, dict]:
    """Check an already-decoded request object; returns ``(op, obj)``.

    Job ops additionally get their numeric fields bounds-checked here, so
    the scheduler and executor only ever see admissible parameters.
    """
    if "op" not in obj:
        raise ProtocolError("invalid_request", "missing field 'op'")
    op = obj["op"]
    if not isinstance(op, str):
        raise ProtocolError("invalid_request",
                            f"field 'op' must be a string, got "
                            f"{type(op).__name__}")
    if op not in OPS:
        raise ProtocolError("unknown_op",
                            f"unknown op {op!r}; expected one of {OPS}")
    req_id = obj.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise ProtocolError("invalid_request",
                            "field 'id' must be a string or integer")
    if op in JOB_OPS:
        _need(obj, "tensor", str, "a string")
        _int_field(obj, "rank", 1, MAX_RANK)
        _int_field(obj, "seed", 0, 2**63 - 1, default=0)
        _int_field(obj, "priority", 0, MAX_PRIORITY, default=1)
        if op in ("mttkrp", "ttm"):
            _int_field(obj, "mode", 0, MAX_NDIM - 1)
        if op == "cp_als":
            _int_field(obj, "iters", 1, MAX_ITERS, default=3)
        fmt = obj.get("format")
        if fmt is not None:
            from ..formats import FORMAT_NAMES

            if not isinstance(fmt, str) or fmt not in FORMAT_NAMES:
                raise ProtocolError(
                    "invalid_request",
                    f"field 'format' must be one of {FORMAT_NAMES}, "
                    f"got {fmt!r}")
    elif op == "register":
        _need(obj, "name", str, "a string")
        spec = _need(obj, "spec", dict, "an object")
        validate_tensor_spec(spec)
    elif op in ("unregister", "job_status"):
        _need(obj, "name" if op == "unregister" else "job", str, "a string")
    return op, obj


#: synthetic generators a register spec may name (repro.data.synthetic)
SPEC_KINDS = ("random", "clustered", "power_law", "banded", "lowrank")


def validate_tensor_spec(spec: dict) -> dict:
    """Bounds-check a synthetic-tensor registration spec."""
    kind = spec.get("kind", "random")
    if kind not in SPEC_KINDS:
        raise ProtocolError("invalid_request",
                            f"unknown tensor kind {kind!r}; expected one "
                            f"of {SPEC_KINDS}")
    shape = _need(spec, "shape", list, "a list of mode sizes")
    if not 1 <= len(shape) <= MAX_NDIM:
        raise ProtocolError("invalid_request",
                            f"shape must have 1..{MAX_NDIM} modes, got "
                            f"{len(shape)}")
    for s in shape:
        if not isinstance(s, int) or isinstance(s, bool) \
                or not 1 <= s <= MAX_DIM:
            raise ProtocolError("invalid_request",
                                f"mode sizes must be integers in "
                                f"[1, {MAX_DIM}], got {s!r}")
    _int_field(spec, "nnz", 1, MAX_NNZ)
    _int_field(spec, "seed", 0, 2**63 - 1, default=0)
    fmt = spec.get("format", "hicoo")
    from ..formats import FORMAT_NAMES

    if fmt not in FORMAT_NAMES:
        raise ProtocolError("invalid_request",
                            f"unknown format {fmt!r}; expected one of "
                            f"{FORMAT_NAMES}")
    return spec
