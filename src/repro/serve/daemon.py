"""The long-lived tensor-decomposition daemon.

``ReproDaemon`` owns four kinds of state, all warm across requests:

* a **tensor registry** — named tensors built from synthetic specs (or
  registered in-process), converted once via ``as_format`` and kept
  resident; HiCOO entries lazily grow a per-(rank, nthreads) gather-plan
  cache, and the process backend's shared-memory sessions live on the
  tensor objects themselves (refcounted — see
  :class:`repro.parallel.procpool.SharedMttkrpSession`);
* a **socket front door** — line-delimited JSON (:mod:`.protocol`); one
  handler thread per connection, requests answered in order; every
  malformed frame gets a structured error reply, never a traceback and
  never daemon death;
* a **scheduler + executors** — :class:`~repro.serve.scheduler.JobScheduler`
  applies admission control, priority/fairness, and compatible-request
  batching; ``executors`` threads drain it, each batch paying symbolic
  cost once;
* an **HTTP sidecar** — the ``obs.export`` ``/metrics``/``/healthz``
  server extended with ``/jobs``, ``/jobs/<id>``, ``/jobs/<id>/trace``
  (Chrome-trace JSON of the job's span window) and ``/tensors``.

Failure policy: jobs run under the configured ``fault_policy`` (default
``"degrade"``), so a killed or hung pool worker is respawned and the job
retried idempotently — bit-identically, by the supervisor's row-disjoint
argument — and an exhausted recovery budget finishes the job on a
fallback backend instead of failing it.  Per-job retries are attributed
through :func:`repro.parallel.supervisor.add_retry_listener` and surface
as the ``serve.retries`` counter the chaos test conserves against
``supervisor.task_retries``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..formats import as_format
from ..obs import metrics, trace
from ..obs.export import MetricsServer
from ..parallel import supervisor as _supervisor
from ..util.log import get_logger
from . import protocol
from .jobs import Job, run_job
from .protocol import ProtocolError, error_reply
from .scheduler import AdmissionError, JobScheduler

__all__ = ["ReproDaemon", "TensorEntry", "build_tensor"]

#: seconds a connection handler waits for its job before giving up
DEFAULT_JOB_TIMEOUT = 300.0

#: completed jobs kept for /jobs introspection
JOB_HISTORY_CAP = 1024


def build_tensor(spec: dict):
    """Materialize a synthetic-spec tensor in its registered format.

    ``spec`` is a validated registration spec (see
    :func:`repro.serve.protocol.validate_tensor_spec`): a generator
    ``kind`` from :mod:`repro.data.synthetic`, ``shape``, ``nnz``,
    ``seed``, target ``format`` and optional ``block_bits``.
    """
    from ..data import synthetic

    kind = spec.get("kind", "random")
    builders = {
        "random": synthetic.random_tensor,
        "clustered": synthetic.clustered_tensor,
        "power_law": synthetic.power_law_tensor,
        "banded": synthetic.banded_tensor,
        "lowrank": synthetic.lowrank_tensor,
    }
    shape = tuple(int(s) for s in spec["shape"])
    nnz = int(spec["nnz"])
    seed = int(spec.get("seed", 0))
    if kind == "lowrank":
        coo = builders[kind](shape, nnz, rank=4, seed=seed)
    else:
        coo = builders[kind](shape, nnz, seed=seed)
    fmt = spec.get("format", "hicoo")
    if fmt == "hicoo" and spec.get("block_bits") is not None:
        return as_format(coo, fmt, block_bits=int(spec["block_bits"]))
    return as_format(coo, fmt)


class TensorEntry:
    """One resident tensor plus its warm symbolic state."""

    def __init__(self, name: str, tensor, spec: Optional[dict] = None
                 ) -> None:
        self.name = name
        self.tensor = tensor
        self.spec = spec or {}
        self.registered_at = time.time()
        self.jobs_run = 0
        self._coo = tensor if tensor.format_name == "coo" else None
        self._views: Dict[str, object] = {}
        self._plans: Dict[Tuple[str, int, int], object] = {}
        self._lock = threading.Lock()

    def coo(self):
        """Memoized COO view (the TTM path contracts from COO)."""
        with self._lock:
            if self._coo is None:
                self._coo = self.tensor.to_coo()
            return self._coo

    def view_as(self, fmt: Optional[str]):
        """The resident tensor re-formatted on demand (memoized per format).

        Conversion goes through the direct converter registry
        (:mod:`repro.core.converters`), so re-formatting a resident CSF /
        HiCOO / ALTO tensor never re-materializes an intermediate COO —
        the first request pays one direct conversion, every later request
        is a dict hit.
        """
        if fmt is None or fmt == self.tensor.format_name:
            return self.tensor
        if fmt == "coo":
            return self.coo()
        with self._lock:
            view = self._views.get(fmt)
            if view is None:
                from ..core.converters import convert

                with trace.span("serve.view_build", tensor=self.name,
                                fmt=fmt):
                    view = convert(self.tensor, fmt)
                self._views[fmt] = view
                metrics.inc("serve.views_built", labels={"format": fmt})
            else:
                metrics.inc("serve.view_reuses", labels={"format": fmt})
            return view

    def plan_for(self, rank: int, nthreads: int, tensor=None):
        """Memoized MTTKRP plan (HiCOO only) — the one-time symbolic cost
        a resident service amortizes across the request stream.  ``tensor``
        selects a re-formatted view (default: the registered tensor)."""
        tensor = self.tensor if tensor is None else tensor
        if tensor.format_name != "hicoo" or nthreads < 1:
            return None
        key = (tensor.format_name, rank, nthreads)
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                from ..kernels.plan import plan_mttkrp

                plan = plan_mttkrp(tensor, rank, nthreads,
                                   strategy="schedule")
                plan.ensure_gathers(tensor)
                self._plans[key] = plan
                metrics.inc("serve.plans_built")
            else:
                metrics.inc("serve.plan_reuses")
            return plan

    def release(self) -> None:
        """Tear down shared-memory sessions for the tensor and every
        memoized view (views can host their own sessions once a job has
        run against them on the process backend)."""
        from ..parallel.procpool import release_shared

        release_shared(self.tensor)
        with self._lock:
            views = list(self._views.values())
            coo = self._coo
        for view in views:
            release_shared(view)
        if coo is not None and coo is not self.tensor:
            release_shared(coo)

    def describe(self) -> dict:
        from ..formats.levels import level_signature

        return {
            "name": self.name,
            "format": self.tensor.format_name,
            "levels": level_signature(self.tensor),
            "shape": [int(s) for s in self.tensor.shape],
            "nnz": int(self.tensor.nnz),
            "jobs_run": self.jobs_run,
            "plans_cached": len(self._plans),
            "views_cached": sorted(self._views),
        }


class ReproDaemon:
    """The resident server; start with :meth:`start` or as a context
    manager, point a :class:`~repro.serve.client.ServeClient` at
    ``.address``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 http_port: Optional[int] = None,
                 backend: str = "sim", nthreads: int = 1,
                 fault_policy="degrade",
                 max_queue: int = 64, batch_limit: int = 8,
                 executors: int = 1,
                 job_timeout: float = DEFAULT_JOB_TIMEOUT) -> None:
        self.host = host
        self.port = port
        self.http_port = http_port
        self.backend = backend
        self.nthreads = max(1, int(nthreads))
        self.fault_policy = fault_policy
        self.job_timeout = job_timeout
        self.scheduler = JobScheduler(max_queue=max_queue,
                                      batch_limit=batch_limit)
        self.nexecutors = max(1, int(executors))
        self.log = get_logger("repro.serve")

        self._tensors: Dict[str, TensorEntry] = {}
        self._tensors_lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._jobs_lock = threading.Lock()
        self._job_seq = 0
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._http: Optional[MetricsServer] = None
        self._local = threading.local()  # .job — retry attribution
        self._started = False
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ReproDaemon":
        if self._started:
            return self
        self._listener = socket.create_server((self.host, self.port),
                                              backlog=64, reuse_port=False)
        self.port = self._listener.getsockname()[1]
        self._started = True
        self._closing = False
        _supervisor.add_retry_listener(self._on_retry)
        for i in range(self.nexecutors):
            t = threading.Thread(target=self._executor_loop,
                                 name=f"repro-serve-exec-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        t = threading.Thread(target=self._accept_loop,
                             name="repro-serve-accept", daemon=True)
        t.start()
        self._threads.append(t)
        if self.http_port is not None:
            self._http = MetricsServer(port=self.http_port, host=self.host,
                                       resolve=self._http_resolve,
                                       health=self._health).start()
            self.http_port = self._http.port
        metrics.inc("serve.daemons_started")
        self.log.info("serve daemon on %s:%d (backend=%s nthreads=%d "
                      "executors=%d max_queue=%d)", self.host, self.port,
                      self.backend, self.nthreads, self.nexecutors,
                      self.scheduler.max_queue)
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._closing = True
        self.scheduler.close()
        for job in self.scheduler.drain():
            job.state = "failed"
            job.error = {"code": "shutting_down", "status": 503,
                         "message": "daemon stopped before execution"}
            job.done.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads.clear()
        _supervisor.remove_retry_listener(self._on_retry)
        if self._http is not None:
            self._http.stop()
            self._http = None
        with self._tensors_lock:
            entries = list(self._tensors.values())
            self._tensors.clear()
        for entry in entries:
            entry.release()
        self._started = False

    def __enter__(self) -> "ReproDaemon":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # tensor registry
    # ------------------------------------------------------------------
    def register_tensor(self, name: str, tensor=None,
                        spec: Optional[dict] = None) -> TensorEntry:
        """Register a resident tensor: either an in-process object or a
        synthetic ``spec`` (validated; see :mod:`.protocol`)."""
        if tensor is None:
            if spec is None:
                raise ValueError("register_tensor needs a tensor or a spec")
            spec = protocol.validate_tensor_spec(dict(spec))
            tensor = build_tensor(spec)
        entry = TensorEntry(name, tensor, spec)
        with self._tensors_lock:
            self._tensors[name] = entry
        metrics.inc("serve.tensors_registered")
        metrics.set_gauge("serve.resident_tensors", len(self._tensors))
        return entry

    def unregister_tensor(self, name: str) -> bool:
        """Drop a resident tensor.  In-flight jobs that already resolved
        the entry finish safely: the entry object outlives the registry
        slot, and shared-memory sessions defer teardown to the last
        reference (the refcounted-session contract)."""
        with self._tensors_lock:
            entry = self._tensors.pop(name, None)
        if entry is None:
            return False
        entry.release()
        metrics.set_gauge("serve.resident_tensors", len(self._tensors))
        return True

    def _entry(self, name: str) -> TensorEntry:
        with self._tensors_lock:
            entry = self._tensors.get(name)
        if entry is None:
            raise ProtocolError("not_found",
                                f"no tensor registered as {name!r}")
        return entry

    # ------------------------------------------------------------------
    # socket front door
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break  # listener closed
            with self._conns_lock:
                self._conns.add(conn)
            metrics.add_gauge("serve.active_connections", 1)
            t = threading.Thread(target=self._handle_conn,
                                 args=(conn, peer),
                                 name="repro-serve-conn", daemon=True)
            t.start()

    def _handle_conn(self, conn: socket.socket, peer) -> None:
        client = f"{peer[0]}:{peer[1]}"
        rfile = conn.makefile("rb")
        try:
            while not self._closing:
                try:
                    line = rfile.readline(protocol.MAX_FRAME_BYTES + 2)
                except (OSError, ValueError):
                    break
                if not line:
                    break  # clean EOF (or mid-request disconnect)
                if not line.endswith(b"\n"):
                    if len(line) > protocol.MAX_FRAME_BYTES:
                        # oversized frame: reply, then drop the connection —
                        # the byte stream is no longer line-synchronized
                        self._reply(conn, error_reply(
                            "frame_too_large",
                            f"frame exceeds {protocol.MAX_FRAME_BYTES} "
                            f"bytes"))
                        metrics.inc("serve.protocol_errors",
                                    labels={"code": "frame_too_large"})
                    break  # truncated final line: disconnect mid-frame
                reply, fatal = self._one_request(line.rstrip(b"\r\n"),
                                                client)
                if not self._reply(conn, reply):
                    break
                if fatal:
                    break
        finally:
            try:
                rfile.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._conns_lock:
                self._conns.discard(conn)
            metrics.add_gauge("serve.active_connections", -1)

    def _reply(self, conn: socket.socket, obj: dict) -> bool:
        try:
            payload = protocol.encode_frame(obj)
        except ProtocolError as exc:  # reply itself oversized
            payload = protocol.encode_frame(exc.reply(obj.get("id")))
        try:
            conn.sendall(payload)
            return True
        except OSError:
            return False  # client went away mid-reply; daemon unaffected

    def _one_request(self, line: bytes, client: str) -> Tuple[dict, bool]:
        """Decode, validate, dispatch; returns (reply, fatal)."""
        req_id = None
        try:
            obj = protocol.decode_frame(line)
            req_id = obj.get("id")
            op, obj = protocol.validate_request(obj)
            metrics.inc("serve.requests", labels={"op": op})
            reply = self._dispatch(op, obj, client)
            if req_id is not None:
                reply.setdefault("id", req_id)
            return reply, False
        except ProtocolError as exc:
            metrics.inc("serve.protocol_errors", labels={"code": exc.code})
            return exc.reply(req_id), exc.fatal
        except Exception as exc:  # noqa: BLE001 — the daemon must survive
            self.log.exception("internal error handling request")
            metrics.inc("serve.protocol_errors", labels={"code": "internal"})
            return error_reply("internal",
                               f"{type(exc).__name__}: {exc}",
                               req_id=req_id), False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, op: str, obj: dict, client: str) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True,
                    "version": protocol.PROTOCOL_VERSION}
        if op == "tensors":
            with self._tensors_lock:
                entries = [e.describe() for e in self._tensors.values()]
            return {"ok": True, "tensors": entries}
        if op == "stats":
            return {"ok": True, "stats": self._stats()}
        if op == "register":
            if self._closing:
                raise ProtocolError("shutting_down", "daemon is stopping")
            entry = self.register_tensor(obj["name"], spec=obj["spec"])
            return {"ok": True, "tensor": entry.describe()}
        if op == "unregister":
            if not self.unregister_tensor(obj["name"]):
                raise ProtocolError("not_found",
                                    f"no tensor registered as "
                                    f"{obj['name']!r}")
            return {"ok": True, "unregistered": obj["name"]}
        if op == "job_status":
            with self._jobs_lock:
                job = self._jobs.get(obj["job"])
            if job is None:
                raise ProtocolError("not_found",
                                    f"unknown job {obj['job']!r}")
            return {"ok": True, "job": job.describe()}
        # job ops: admission, enqueue, synchronous wait
        return self._submit_and_wait(op, obj, client)

    def _submit_and_wait(self, op: str, obj: dict, client: str) -> dict:
        if self._closing:
            raise ProtocolError("shutting_down", "daemon is stopping")
        self._entry(obj["tensor"])  # existence check at admission time
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"j{self._job_seq:06d}"
        job = Job(id=job_id, op=op, tensor=obj["tensor"],
                  rank=int(obj["rank"]), seed=int(obj.get("seed", 0)),
                  mode=int(obj.get("mode", 0)),
                  iters=int(obj.get("iters", 3)),
                  priority=int(obj.get("priority", 1)), client=client,
                  return_data=bool(obj.get("return_data", False)),
                  format=obj.get("format"))
        job.submitted_at_monotonic = time.monotonic()
        with self._jobs_lock:
            self._jobs[job_id] = job
            while len(self._jobs) > JOB_HISTORY_CAP:
                self._jobs.popitem(last=False)
        try:
            self.scheduler.submit(job)
        except AdmissionError as exc:
            job.state = "failed"
            job.error = {"code": "overloaded", "status": 429,
                         "message": str(exc)}
            job.done.set()
            raise ProtocolError("overloaded", str(exc)) from None
        metrics.inc("serve.accepted", labels={"op": op})
        if not job.done.wait(timeout=self.job_timeout):
            raise ProtocolError("internal",
                                f"job {job_id} timed out after "
                                f"{self.job_timeout:.0f}s")
        if job.state != "done":
            err = job.error or {"code": "internal", "status": 500,
                                "message": "job failed"}
            return {"ok": False, "job": job.id, "error": err}
        reply = {"ok": True, "job": job.id, "op": op,
                 "tensor": job.tensor, "state": job.state,
                 "digest": job.result["digest"],
                 "shape": job.result["shape"],
                 "kind": job.result["kind"],
                 "queued_s": round(job.queued_s, 6),
                 "run_s": round(job.run_s, 6),
                 "retries": job.retries,
                 "batch_size": job.batch_size,
                 "degraded": job.degraded}
        for extra in ("fit", "iterations", "nfibers"):
            if extra in job.result:
                reply[extra] = job.result[extra]
        if job.return_data:
            reply["data"] = [np.asarray(a).tolist()
                             for a in job.result["arrays"]]
        return reply

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def _executor_loop(self) -> None:
        while True:
            batch = self.scheduler.next_batch(timeout=0.5)
            if batch is None:
                if self._closing:
                    return
                continue
            try:
                self._run_batch(batch)
            except Exception:  # noqa: BLE001 — executors must survive
                self.log.exception("executor failed on batch %s",
                                   [j.id for j in batch])
                for job in batch:
                    if not job.done.is_set():
                        job.state = "failed"
                        job.error = {"code": "internal", "status": 500,
                                     "message": "executor error"}
                        job.done.set()

    def _run_batch(self, batch: List[Job]) -> None:
        head = batch[0]
        try:
            entry = self._entry(head.tensor)
        except ProtocolError as exc:
            for job in batch:
                job.state = "failed"
                job.error = {"code": exc.code, "status": exc.status,
                             "message": str(exc)}
                job.done.set()
            return
        # jobs in one batch share a batch_key, hence one format override:
        # resolve the (memoized) view once, plan against it
        try:
            view = entry.view_as(head.format)
        except Exception as exc:  # noqa: BLE001 — conversion failure != death
            for job in batch:
                job.state = "failed"
                job.error = {"code": "job_failed", "status": 500,
                             "message": f"{type(exc).__name__}: {exc}"}
                job.done.set()
            return
        plan = None
        if head.op == "mttkrp" and self.nthreads > 1:
            plan = entry.plan_for(head.rank, self.nthreads, tensor=view)
        with trace.span("serve.batch", op=head.op, tensor=head.tensor,
                        jobs=len(batch)):
            for job in batch:
                job.batch_size = len(batch)
                self._run_one(job, entry, plan, view)
        entry.jobs_run += len(batch)

    def _run_one(self, job: Job, entry: TensorEntry, plan, view) -> None:
        job.state = "running"
        started = time.monotonic()
        job.queued_s = started - (job.submitted_at_monotonic
                                  if hasattr(job, "submitted_at_monotonic")
                                  else started)
        self._local.job = job
        job.start_ns = time.perf_counter_ns()
        tensor = view if job.op != "ttm" else entry.coo()
        try:
            with trace.span("serve.job", job=job.id, op=job.op,
                            tensor=job.tensor, client=job.client):
                result = run_job(job.op, tensor, mode=job.mode,
                                 rank=job.rank, seed=job.seed,
                                 iters=job.iters, backend=self.backend,
                                 nthreads=self.nthreads,
                                 fault_policy=self.fault_policy,
                                 plan=plan)
            job.result = result
            job.state = "done"
            metrics.inc("serve.jobs_done", labels={"op": job.op})
        except Exception as exc:  # noqa: BLE001 — one job, not the daemon
            self.log.warning("job %s failed: %s", job.id, exc)
            job.state = "failed"
            job.error = {"code": "job_failed", "status": 500,
                         "message": f"{type(exc).__name__}: {exc}"}
            metrics.inc("serve.jobs_failed", labels={"op": job.op})
        finally:
            job.end_ns = time.perf_counter_ns()
            job.run_s = time.monotonic() - started
            metrics.observe("serve.job_seconds", job.run_s,
                            labels={"op": job.op})
            self._local.job = None
            job.done.set()

    def _on_retry(self, task_id: int, worker_id: int, attempt: int) -> None:
        """Supervisor retry listener: attribute the retry to the job this
        executor thread is running (listeners fire in the region's own
        thread, so thread-local attribution is exact)."""
        job = getattr(self._local, "job", None)
        if job is not None:
            job.retries += 1
            metrics.inc("serve.retries")

    # ------------------------------------------------------------------
    # HTTP sidecar
    # ------------------------------------------------------------------
    def _stats(self) -> dict:
        with self._tensors_lock:
            ntensors = len(self._tensors)
        return {
            "queue_depth": self.scheduler.depth,
            "max_queue": self.scheduler.max_queue,
            "tensors": ntensors,
            "backend": self.backend,
            "nthreads": self.nthreads,
            "executors": self.nexecutors,
            "jobs_done": int(metrics.value("serve.jobs_done")),
            "jobs_failed": int(metrics.value("serve.jobs_failed")),
            "rejected": int(metrics.value("serve.rejected")),
            "retries": int(metrics.value("serve.retries")),
            "batches": int(metrics.value("serve.batches")),
        }

    def _health(self) -> dict:
        return {"serve": self._stats()}

    def _http_resolve(self, path: str):
        """Extra GET routes mounted on the metrics server."""
        if path == "/tensors":
            with self._tensors_lock:
                body = [e.describe() for e in self._tensors.values()]
            return (200, "application/json",
                    json.dumps(body, indent=2).encode())
        if path == "/jobs":
            with self._jobs_lock:
                body = [j.describe() for j in self._jobs.values()]
            return (200, "application/json",
                    json.dumps(body, indent=2).encode())
        if path.startswith("/jobs/"):
            parts = [p for p in path.split("/") if p]
            with self._jobs_lock:
                job = self._jobs.get(parts[1])
            if job is None:
                return (404, "application/json",
                        json.dumps({"error": "unknown job"}).encode())
            if len(parts) == 2:
                return (200, "application/json",
                        json.dumps(job.describe(), indent=2).encode())
            if len(parts) == 3 and parts[2] == "trace":
                evts = trace.events_between(job.start_ns, job.end_ns) \
                    if job.end_ns else []
                doc = trace.to_chrome_trace(evts)
                return (200, "application/json",
                        json.dumps(doc, default=str).encode())
        return None
