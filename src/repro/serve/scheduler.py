"""Priority/fairness scheduling, admission control, and request batching.

The daemon multiplexes many client connections onto a small set of
executor threads (and, below them, one warm supervised ``ProcPool``).
This module is the multiplexer:

* **admission control** — the queue is *bounded* (``max_queue``); a submit
  against a full queue raises :class:`AdmissionError`, which the
  connection handler answers with an explicit 429-style ``overloaded``
  reply.  Overload sheds load at the door instead of growing latency
  without bound or dying — the soak test asserts both the bound and the
  explicitness.
* **priority + fairness** — three priority levels (0 highest); within a
  level, clients are served round-robin (one job per turn), so a client
  flooding the daemon cannot starve its peers at the same level.
* **batching** — when the executor asks for work it receives a *batch*:
  the fairness-chosen job plus up to ``batch_limit - 1`` queued jobs with
  the same ``(op, tensor, mode, rank)`` compatibility key (MTTKRP only —
  same plan, same shared-memory session, different factor seeds).  The
  batch executes as one region: the symbolic cost (gather plan, arena
  placement, pool warm-up) is paid once — exactly the HiCOO economics,
  applied to the request stream.

Determinism note: batching changes *scheduling*, never *numerics* — each
job in a batch runs the unchanged kernel on its own factors, so batched
results are bit-identical to unbatched ones (asserted by the test suite).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

from ..obs import metrics
from .jobs import Job

__all__ = ["AdmissionError", "JobScheduler", "PRIORITY_LEVELS"]

#: priority levels (0 = highest); requests outside clamp into range
PRIORITY_LEVELS = 3


class AdmissionError(Exception):
    """The bounded queue is full; the caller sheds this request with an
    explicit ``overloaded`` reply (never a silent drop)."""

    def __init__(self, depth: int, max_queue: int) -> None:
        super().__init__(
            f"queue full ({depth}/{max_queue} jobs pending); retry later")
        self.depth = depth
        self.max_queue = max_queue


class JobScheduler:
    """Bounded, priority-aware, client-fair job queue with batch dequeue."""

    def __init__(self, max_queue: int = 64, batch_limit: int = 8) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if batch_limit < 1:
            raise ValueError(
                f"batch_limit must be positive, got {batch_limit}")
        self.max_queue = max_queue
        self.batch_limit = batch_limit
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        # per (priority, client) FIFO; OrderedDict per level preserves
        # client arrival order for the round-robin rotation
        self._queues: List["OrderedDict[str, deque]"] = [
            OrderedDict() for _ in range(PRIORITY_LEVELS)]
        self._depth = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def submit(self, job: Job) -> None:
        """Enqueue or shed: raises :class:`AdmissionError` when full."""
        level = min(max(int(job.priority), 0), PRIORITY_LEVELS - 1)
        with self._lock:
            if self._closed:
                raise AdmissionError(self._depth, self.max_queue)
            if self._depth >= self.max_queue:
                metrics.inc("serve.rejected", labels={"reason": "overloaded"})
                raise AdmissionError(self._depth, self.max_queue)
            per_client = self._queues[level].setdefault(job.client, deque())
            per_client.append(job)
            self._depth += 1
            metrics.set_gauge("serve.queue_depth", self._depth)
            self._work.notify()

    def next_batch(self, timeout: Optional[float] = None
                   ) -> Optional[List[Job]]:
        """Block for work; returns a compatible batch, or None when closed
        (or on timeout with an empty queue)."""
        with self._lock:
            while self._depth == 0 and not self._closed:
                if not self._work.wait(timeout=timeout):
                    return None
            if self._depth == 0:
                return None  # closed and drained
            head = self._pop_fair()
            batch = [head]
            if head.op == "mttkrp" and self.batch_limit > 1:
                key = head.batch_key
                batch.extend(self._pop_matching(key,
                                                self.batch_limit - 1))
            metrics.set_gauge("serve.queue_depth", self._depth)
            if len(batch) > 1:
                metrics.inc("serve.batches")
                metrics.inc("serve.batched_jobs", len(batch))
            return batch

    def close(self) -> None:
        """Stop accepting work and wake every waiting executor."""
        with self._lock:
            self._closed = True
            self._work.notify_all()

    def drain(self) -> List[Job]:
        """Remove and return every queued job (shutdown: the daemon fails
        them with ``shutting_down`` so no client blocks forever)."""
        with self._lock:
            jobs: List[Job] = []
            for level in self._queues:
                for q in level.values():
                    jobs.extend(q)
                level.clear()
            self._depth = 0
            metrics.set_gauge("serve.queue_depth", 0)
            return jobs

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _pop_fair(self) -> Job:
        """Highest non-empty priority level; round-robin over its clients
        (the served client rotates to the back of the level)."""
        for level in self._queues:
            while level:
                client, q = next(iter(level.items()))
                if not q:
                    del level[client]
                    continue
                job = q.popleft()
                # rotate: this client goes to the back of the level
                del level[client]
                if q:
                    level[client] = q
                self._depth -= 1
                return job
        raise RuntimeError("scheduler invariant violated: depth > 0 "
                           "with empty queues")

    def _pop_matching(self, key: Tuple, limit: int) -> List[Job]:
        """Steal up to ``limit`` queued jobs sharing ``key``, scanning
        priorities high to low and clients in rotation order."""
        out: List[Job] = []
        for level in self._queues:
            if len(out) >= limit:
                break
            emptied = []
            for client, q in level.items():
                if len(out) >= limit:
                    break
                kept: Dict[int, Job] = {}
                taken = 0
                for i, job in enumerate(q):
                    if len(out) < limit and job.batch_key == key:
                        out.append(job)
                        taken += 1
                    else:
                        kept[i] = job
                if taken:
                    q.clear()
                    q.extend(kept[i] for i in sorted(kept))
                    self._depth -= taken
                if not q:
                    emptied.append(client)
            for client in emptied:
                del level[client]
        return out
