"""Job model and the single execution path shared by daemon and oracle.

The differential guarantee of ``tests/test_serve.py`` rests on one fact:
the daemon and the test oracle call the *same* function —
:func:`run_job` — differing only in the execution backend.  For HiCOO and
ALTO the parallel paths use the lock-free ``schedule`` strategy, whose
``process``/``thread``/``sim`` outputs are bit-identical by the PR-4/PR-7
contracts (ALTO additionally pins ``scatter="seq"``), so a concurrent,
fault-injected daemon answer must equal a fresh sequential
(``backend="sim"``) execution bit for bit.  COO and CSF jobs always run
the sequential kernel, which is trivially deterministic.

Factors are never shipped over the wire: a request carries a ``seed`` and
both sides derive the dense operands with :func:`factors_for` /
:func:`matrix_for` (``np.random.default_rng`` is stable across processes
and platforms for a fixed seed).  Replies carry a SHA-256 digest of the
result bytes (:func:`digest_array`); bitwise comparison is digest
comparison.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "Job",
    "JOB_STATES",
    "factors_for",
    "matrix_for",
    "digest_array",
    "run_job",
]

JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One accepted decomposition job (admission-rejected requests never
    become jobs)."""

    id: str
    op: str
    tensor: str
    rank: int
    seed: int
    mode: int = 0
    iters: int = 3
    priority: int = 1
    client: str = ""
    return_data: bool = False
    #: execution format override — run against the resident tensor's
    #: memoized ``view_as(format)`` instead of the registered format
    format: Optional[str] = None

    state: str = "queued"
    result: Optional[dict] = None
    error: Optional[dict] = None
    retries: int = 0
    batch_size: int = 1
    degraded: bool = False
    submitted_at: float = field(default_factory=time.time)
    queued_s: float = 0.0
    run_s: float = 0.0
    start_ns: int = 0
    end_ns: int = 0
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False, compare=False)

    #: the (op, tensor, mode, rank, format) compatibility key: jobs sharing
    #: it can ride one batch (same plan, same shared-memory session, same
    #: gathers — and, with a format override, the same resident view)
    @property
    def batch_key(self) -> tuple:
        if self.op == "mttkrp":
            return (self.op, self.tensor, self.mode, self.rank, self.format)
        return (self.op, self.tensor, self.mode, self.rank, self.iters,
                self.id)  # non-MTTKRP jobs never batch

    def describe(self) -> dict:
        """JSON-able public view (the ``/jobs`` HTTP listing)."""
        out = {
            "id": self.id,
            "op": self.op,
            "tensor": self.tensor,
            "rank": self.rank,
            "mode": self.mode,
            "seed": self.seed,
            "priority": self.priority,
            "client": self.client,
            "state": self.state,
            "retries": self.retries,
            "batch_size": self.batch_size,
            "degraded": self.degraded,
            "queued_s": round(self.queued_s, 6),
            "run_s": round(self.run_s, 6),
        }
        if self.format is not None:
            out["format"] = self.format
        if self.result is not None:
            out["result"] = {k: v for k, v in self.result.items()
                             if k != "arrays"}
        if self.error is not None:
            out["error"] = self.error
        return out


def factors_for(shape: Sequence[int], rank: int, seed: int
                ) -> List[np.ndarray]:
    """The dense factor matrices both sides derive from a request seed."""
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(s), rank)) for s in shape]


def matrix_for(dim: int, rank: int, seed: int) -> np.ndarray:
    """The TTM contraction matrix both sides derive from a request seed."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((int(dim), rank))


def digest_array(*arrays: np.ndarray) -> str:
    """SHA-256 over the exact float64/C-contiguous bytes of ``arrays``.

    Equal digests mean bitwise-equal results — the currency of every
    differential assertion in the serve test harness.
    """
    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype.str).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def run_job(op: str, tensor, *, mode: int = 0, rank: int = 4, seed: int = 0,
            iters: int = 3, backend: str = "sim", nthreads: int = 1,
            fault_policy=None, plan=None) -> dict:
    """Execute one job against a resident tensor; returns the result dict.

    This is THE execution function: the daemon calls it with its configured
    ``backend``/``nthreads``, the differential oracle with
    ``backend="sim"`` and the *same* ``nthreads`` (the lock-free partition
    depends on the thread count; sim runs the identical tasks sequentially,
    so process == sim bitwise).

    Returns ``{"digest", "shape", "kind", "arrays"}`` where ``arrays`` is
    the tuple of result ndarrays (daemon-side only; never serialized unless
    the request asked for data).
    """
    fmt = tensor.format_name
    if op == "mttkrp":
        factors = factors_for(tensor.shape, rank, seed)
        if fmt in ("hicoo", "alto") and (nthreads > 1
                                         or backend not in (None, "sim")):
            from ..kernels.mttkrp import mttkrp_parallel

            run = mttkrp_parallel(tensor, factors, mode, nthreads,
                                  strategy="schedule", plan=plan,
                                  backend=backend,
                                  fault_policy=fault_policy)
            out = run.output
        else:
            # COO/CSF (and single-thread sim): the sequential kernel
            out = tensor.mttkrp(factors, mode)
        arrays = (out,)
        return {"digest": digest_array(out), "shape": list(out.shape),
                "kind": "matrix", "arrays": arrays}
    if op == "cp_als":
        from ..cpd.cp_als import cp_als

        use_parallel = fmt in ("hicoo", "alto") and (
            nthreads > 1 or backend not in (None, "sim"))
        res = cp_als(tensor, rank, maxiters=iters, tol=0.0, init="random",
                     seed=seed,
                     nthreads=nthreads if use_parallel else 1,
                     strategy="schedule" if use_parallel else "auto",
                     backend=backend if use_parallel else None,
                     fault_policy=fault_policy if use_parallel else None,
                     plan=plan if use_parallel else None)
        kt = res.ktensor
        arrays = (kt.weights,) + tuple(kt.factors)
        return {"digest": digest_array(*arrays),
                "shape": [list(f.shape) for f in kt.factors],
                "kind": "ktensor",
                "fit": float(res.final_fit),
                "iterations": int(res.iterations),
                "arrays": arrays}
    if op == "ttm":
        from ..kernels.ttm import ttm

        coo = tensor if fmt == "coo" else tensor.to_coo()
        matrix = matrix_for(tensor.shape[mode], rank, seed)
        semi = ttm(coo, matrix, mode)
        arrays = (semi.indices, semi.fibers)
        return {"digest": digest_array(semi.indices, semi.fibers),
                "shape": list(semi.fibers.shape),
                "kind": "semisparse",
                "nfibers": int(semi.nfibers),
                "arrays": arrays}
    raise ValueError(f"unknown job op {op!r}")
