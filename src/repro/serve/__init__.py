"""``repro.serve`` — a long-lived tensor-decomposition daemon.

The HiCOO paper's economics are one-time symbolic cost (blocking, gather
plans, shared-memory placement) amortized over many numeric executions.
This package is that economics as a service: a :class:`~repro.serve.daemon.ReproDaemon`
keeps registered tensors resident (any first-class format via
``as_format``, gather plans and ``ShmArena`` sessions warm across
requests) and serves MTTKRP / CP-ALS / TTM jobs over a line-delimited-JSON
socket protocol, with the ``obs.export`` HTTP endpoint extended to
``/jobs``, ``/tensors`` and per-job trace download.

Entry points:

* :class:`~repro.serve.daemon.ReproDaemon` — the server (also
  ``hicoo-repro serve``);
* :class:`~repro.serve.client.ServeClient` — the client library (also
  ``hicoo-repro submit``), used by the test and bench harnesses;
* :mod:`repro.serve.protocol` — framing, request validation, error codes;
* :mod:`repro.serve.scheduler` — priority/fairness queueing, admission
  control, compatible-request batching;
* :mod:`repro.serve.jobs` — the single job-execution function shared by
  the daemon and the differential-test oracle.

See ``docs/serving.md`` for the protocol reference and the correctness
argument, and ``tests/test_serve.py`` for the differential harness.
"""

from __future__ import annotations

from .client import ServeClient
from .daemon import ReproDaemon
from .jobs import Job, digest_array, run_job
from .protocol import ProtocolError
from .scheduler import AdmissionError, JobScheduler

__all__ = [
    "ReproDaemon",
    "ServeClient",
    "Job",
    "JobScheduler",
    "AdmissionError",
    "ProtocolError",
    "run_job",
    "digest_array",
]
