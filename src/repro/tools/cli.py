"""Command-line interface for the HiCOO reproduction library.

Usage (also available as ``python -m repro.tools``)::

    hicoo-repro inspect  tensor.tns             # shape / nnz / alpha_b sweep
    hicoo-repro convert  tensor.tns out.hicoo   # COO text -> HiCOO binary
    hicoo-repro storage  tensor.tns             # COO/CSF/HiCOO byte table
    hicoo-repro mttkrp   tensor.tns -r 16 -m 0  # run + time one MTTKRP
    hicoo-repro cpd      tensor.tns -r 8        # CP-ALS, print fit trace
    hicoo-repro reorder  tensor.tns out.tns --method bfs
    hicoo-repro dataset  deli out.tns           # emit a registry analog

Every subcommand accepts ``.tns`` (FROSTT text) or ``.hicoo`` (binary,
written by ``convert``) inputs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from ..analysis.report import render_table
from ..core.hicoo import HicooTensor, best_block_bits
from ..core.io import load_hicoo, save_hicoo
from ..core.params import analyze_block_sizes
from ..core.storage import compare_formats, format_table
from ..cpd.cp_als import cp_als
from ..data.frostt import read_tns, write_tns
from ..data.registry import REGISTRY, load as load_dataset
from ..formats.coo import CooTensor
from ..formats.csf import CsfTensor
from ..kernels.mttkrp import mttkrp, mttkrp_parallel
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["main", "build_parser"]


def _read_tensor(path: str) -> CooTensor:
    p = Path(path)
    if not p.exists():
        raise SystemExit(f"error: no such file: {path}")
    if p.suffix == ".hicoo":
        return load_hicoo(p).to_coo()
    return read_tns(p)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_inspect(args) -> int:
    coo = _read_tensor(args.tensor)
    print(f"file      : {args.tensor}")
    print(f"order     : {coo.nmodes}")
    print(f"shape     : {'x'.join(str(s) for s in coo.shape)}")
    print(f"nonzeros  : {coo.nnz}")
    print(f"density   : {coo.density():.3e}")
    print(f"norm      : {coo.norm():.6g}")
    rows = [
        {
            "B": p.block_size,
            "nblocks": p.nblocks,
            "alpha_b": p.alpha_b,
            "c_b": p.c_b,
            "B/nnz": p.bytes_per_nnz,
        }
        for p in analyze_block_sizes(coo, range(2, 9))
    ]
    print()
    print(render_table(rows, ["B", "nblocks", "alpha_b", "c_b", "B/nnz"],
                       title="HiCOO block-size sweep"))
    if args.viz and coo.nmodes >= 2:
        from ..analysis.blockviz import block_density_grid, render_heatmap

        bits = args.block_bits or best_block_bits(coo)
        hic = HicooTensor(coo, block_bits=bits)
        grid = block_density_grid(hic, 0, 1)
        print()
        print(render_heatmap(grid, title=f"block density, modes 0 x 1 (B={1 << bits})"))
    return 0


def cmd_convert(args) -> int:
    coo = _read_tensor(args.tensor)
    bits = args.block_bits or best_block_bits(coo)
    hic = HicooTensor(coo, block_bits=bits)
    save_hicoo(hic, args.output)
    print(f"wrote {args.output}: B={hic.block_size}, {hic.nblocks} blocks, "
          f"{hic.bytes_per_nnz():.2f} B/nnz "
          f"(COO: {coo.bytes_per_nnz():.2f})")
    return 0


def cmd_storage(args) -> int:
    coo = _read_tensor(args.tensor)
    bits = args.block_bits or best_block_bits(coo)
    rows = compare_formats(coo, block_bits=bits, csf_trees=(1, coo.nmodes))
    print(format_table(rows, title=f"storage comparison (b={bits})"))
    return 0


def cmd_mttkrp(args) -> int:
    coo = _read_tensor(args.tensor)
    fmt = args.format
    if fmt == "auto":
        from ..core.tuner import choose_format

        fmt = choose_format(coo)
        print(f"auto format: {fmt}")
    # construct only the requested format (CSF/HiCOO/ALTO builds cost a sort)
    if fmt == "coo":
        tensor = coo
    elif fmt == "csf":
        tensor = CsfTensor(coo)
    elif fmt == "alto":
        from ..formats.alto import AltoTensor

        tensor = AltoTensor(coo)
    else:
        bits = args.block_bits or best_block_bits(coo)
        tensor = HicooTensor(coo, block_bits=bits)
    rng = np.random.default_rng(args.seed)
    factors = [rng.random((s, args.rank)) for s in coo.shape]

    backend = getattr(args, "backend", "sim")
    fault_policy = getattr(args, "fault_policy", None)

    def one_run():
        if args.threads > 1 or backend == "process":
            return mttkrp_parallel(tensor, factors, args.mode, args.threads,
                                   backend=backend,
                                   fault_policy=fault_policy)
        return mttkrp(tensor, factors, args.mode)

    # warmup passes absorb one-time symbolic cost (gather-cache fills,
    # schedules) so the reported time is the steady-state CP-ALS-style cost
    for _ in range(max(0, args.warmup)):
        one_run()
    t0 = time.perf_counter()
    result = one_run()
    dt = time.perf_counter() - t0
    if args.threads > 1 or backend == "process":
        out = result.output
        extra = (f" backend={result.report.backend}"
                 f" strategy={result.strategy}"
                 f" imbalance={result.load_imbalance():.2f}")
    else:
        out = result
        extra = ""
    print(f"{fmt} MTTKRP mode={args.mode} R={args.rank}: "
          f"{dt * 1e3:.2f} ms (warm x{args.warmup}), output {out.shape},"
          f" |out|_F={np.linalg.norm(out):.6g}{extra}")
    return 0


def cmd_cpd(args) -> int:
    coo = _read_tensor(args.tensor)
    fmt = getattr(args, "format", "hicoo")
    if fmt == "hicoo":
        bits = args.block_bits or best_block_bits(coo)
        hic = HicooTensor(coo, block_bits=bits)
    else:
        hic = coo  # cp_als converts via its format= kwarg
    if args.method == "apr":
        from ..cpd.cp_apr import cp_apr

        res = cp_apr(hic, args.rank, maxiters=args.maxiters, tol=args.tol,
                     seed=args.seed)
        for it, ll in enumerate(res.log_likelihoods):
            print(f"iter {it + 1:3d}: logL = {ll:.4f}")
        print(f"converged={res.converged} "
              f"weights={np.round(res.ktensor.weights, 3)}")
        return 0
    res = cp_als(hic, args.rank, maxiters=args.maxiters, tol=args.tol,
                 seed=args.seed, nthreads=args.threads,
                 backend=getattr(args, "backend", None),
                 fault_policy=getattr(args, "fault_policy", None),
                 format=None if fmt == "hicoo" else fmt)
    for it, fit in enumerate(res.fits):
        print(f"iter {it + 1:3d}: fit = {fit:.6f}")
    print(f"converged={res.converged} "
          f"mttkrp={res.mttkrp_seconds:.3f}s/{res.total_seconds:.3f}s "
          f"weights={np.round(res.ktensor.weights, 3)}")
    return 0


def cmd_tucker(args) -> int:
    from ..tucker import hooi

    coo = _read_tensor(args.tensor)
    ranks = tuple(min(args.rank, s) for s in coo.shape)
    res = hooi(coo, ranks, maxiters=args.maxiters, tol=args.tol,
               seed=args.seed)
    for it, fit in enumerate(res.fits):
        print(f"iter {it + 1:3d}: fit = {fit:.6f}")
    print(f"converged={res.converged} core={res.tucker.ranks} "
          f"core_norm={res.tucker.norm():.6g}")
    return 0


def cmd_tune(args) -> int:
    from ..core.tuner import tune
    from ..parallel.machine import Machine

    coo = _read_tensor(args.tensor)
    machine = Machine.detect(cores=args.cores) if args.calibrate else Machine(
        cores=args.cores)
    out = tune(coo, args.rank, machine, nthreads=args.threads,
               storage_weight=args.storage_weight)
    rows = [
        {
            "b": c.block_bits,
            "sb": c.superblock_bits,
            "alpha_b": c.alpha_b,
            "KB": c.total_bytes / 1024,
            "pred_ms": c.predicted_seconds * 1e3,
            "score": c.score * 1e3,
            "strategies": "/".join(s[:4] for s in c.strategies),
        }
        for c in out["scoreboard"][:args.top]
    ]
    print(render_table(
        rows, ["b", "sb", "alpha_b", "KB", "pred_ms", "score", "strategies"],
        title=f"tuner scoreboard (R={args.rank}, P={args.threads}; best first)",
        widths={"strategies": 20}))
    best = out["best"]
    print(f"\nrecommended: --block-bits {best.block_bits} "
          f"(B={best.block_size}), superblock bits {best.superblock_bits}")
    return 0


def cmd_reorder(args) -> int:
    from ..reorder import (alpha_effect, apply_permutations, bfs_mcs,
                           lexi_order, random_permutations)

    coo = _read_tensor(args.tensor)
    if args.method == "lexi":
        perms = lexi_order(coo, iterations=args.iterations)
    elif args.method == "bfs":
        perms = bfs_mcs(coo)
    else:
        perms = random_permutations(coo.shape, seed=args.seed)
    bits = args.block_bits or best_block_bits(coo)
    effect = alpha_effect(coo, perms, block_bits=bits)
    print(f"{args.method}: alpha_b {effect['before']['alpha_b']:.4f} -> "
          f"{effect['after']['alpha_b']:.4f} "
          f"(bytes x{effect['bytes_ratio']:.3f})")
    write_tns(apply_permutations(coo, perms), args.output,
              header=f"reordered with method={args.method}")
    print(f"wrote {args.output}")
    return 0


def cmd_info(args) -> int:
    """Report versions, kernel tiers, backends, and available formats.

    With a tensor argument, also reports the format the tuner's
    data-driven :func:`~repro.core.tuner.choose_format` would pick for it
    (and the nnz-distribution stats the pick is made from).
    """
    import platform

    from .. import __version__ as repro_version
    from ..formats import FORMAT_NAMES
    from ..kernels.backends import KERNEL_TIERS, detect_tiers
    from ..parallel.executor import BACKENDS

    tiers = detect_tiers(refresh=True)
    print(f"repro     : {repro_version}")
    print(f"python    : {platform.python_version()}")
    print(f"numpy     : {np.__version__}")
    print(f"cores     : {os.cpu_count()}")
    print("kernel tiers:")
    for name in KERNEL_TIERS:
        info = tiers[name]
        if info.available:
            ver = f" ({info.version})" if info.version else ""
            print(f"  {name:<6s}: available{ver}")
        else:
            print(f"  {name:<6s}: unavailable — {info.reason}")
    print(f"execution backends: {', '.join(BACKENDS)}")
    print(f"storage formats: {', '.join(FORMAT_NAMES)}")
    if getattr(args, "tensor", None):
        from ..analysis.model import format_stats
        from ..core.tuner import choose_format
        from ..formats import as_format
        from ..formats.levels import describe as describe_levels

        coo = _read_tensor(args.tensor)
        stats = format_stats(coo)
        print(f"tensor    : {args.tensor} "
              f"({'x'.join(str(s) for s in coo.shape)}, nnz={coo.nnz})")
        print(f"  alpha_b={stats.alpha_b:.3f} mode_skew={stats.mode_skew:.2f} "
              f"fiber_reuse={stats.fiber_reuse:.2f}")
        print(f"  tuner would pick: {choose_format(stats=stats)}")
        print("  per-format storage / level types:")
        for fmt in FORMAT_NAMES:
            t = as_format(coo, fmt)
            desc = describe_levels(t)
            print(f"    {fmt:<6s}: {t.total_bytes():>12,d} B "
                  f"({t.bytes_per_nnz():6.2f} B/nnz)  {desc.signature()}")
            print(f"    {'':<6s}  {desc.flags_table()}")
    prefix = getattr(args, "prefix", None)
    if prefix is not None:
        print(f"metrics (prefix={prefix!r}):")
        lines = obs_metrics.report(prefix=prefix)
        if not lines:
            print("  (no series recorded — run with --metrics or in-process)")
        for line in lines:
            print(f"  {line}")
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived serving daemon until interrupted."""
    import json

    from ..formats import as_format
    from ..serve.daemon import ReproDaemon

    daemon = ReproDaemon(host=args.host, port=args.port,
                         http_port=args.http_port, backend=args.backend,
                         nthreads=args.threads,
                         fault_policy=args.fault_policy,
                         max_queue=args.max_queue,
                         batch_limit=args.batch_limit,
                         executors=args.executors)
    daemon.start()
    try:
        for item in args.load or []:
            name, _, path = item.partition("=")
            if not path:
                raise SystemExit(f"error: --load wants NAME=FILE, "
                                 f"got {item!r}")
            coo = _read_tensor(path)
            daemon.register_tensor(name, as_format(coo, args.format))
            print(f"[serve] loaded {name} <- {path} ({coo!r})")
        for item in args.register or []:
            name, _, spec = item.partition("=")
            if not spec:
                raise SystemExit(f"error: --register wants NAME=SPEC_JSON, "
                                 f"got {item!r}")
            daemon.register_tensor(name, spec=json.loads(spec))
            print(f"[serve] registered {name}: {spec}")
        print(f"[serve] listening on {daemon.host}:{daemon.port} "
              f"(backend={daemon.backend}, threads={daemon.nthreads}, "
              f"executors={daemon.nexecutors})")
        if daemon.http_port is not None:
            print(f"[serve] http://{daemon.host}:{daemon.http_port}"
                  f"/healthz /metrics /jobs /tensors")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\n[serve] shutting down")
    finally:
        daemon.stop()
    return 0


def cmd_submit(args) -> int:
    """Submit one request to a running daemon and print the reply."""
    import json

    from ..serve.client import ServeClient

    if args.request:
        req = json.loads(args.request)
    else:
        req = {"op": args.op}
        if args.op in ("mttkrp", "cp_als", "ttm"):
            if not args.tensor_name:
                raise SystemExit("error: job ops need --tensor-name")
            req.update({"tensor": args.tensor_name, "rank": args.rank,
                        "seed": args.seed, "priority": args.priority})
            if args.op in ("mttkrp", "ttm"):
                req["mode"] = args.mode
            if args.op == "cp_als":
                req["iters"] = args.iters
            if args.exec_format:
                req["format"] = args.exec_format
        elif args.op == "register":
            if not (args.tensor_name and args.spec):
                raise SystemExit("error: register needs --tensor-name "
                                 "and --spec")
            req.update({"name": args.tensor_name,
                        "spec": json.loads(args.spec)})
        elif args.op in ("unregister", "job_status"):
            key = "name" if args.op == "unregister" else "job"
            if not args.tensor_name:
                raise SystemExit(f"error: {args.op} needs --tensor-name")
            req[key] = args.tensor_name
    with ServeClient(host=args.host, port=args.port,
                     timeout=args.timeout) as cli:
        reply = cli.request(req, check=False)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def cmd_dataset(args) -> int:
    if args.name not in REGISTRY:
        raise SystemExit(
            f"error: unknown dataset {args.name!r}; "
            f"available: {', '.join(REGISTRY)}")
    coo = load_dataset(args.name, scale=args.scale, seed=args.seed)
    write_tns(coo, args.output, header=f"registry analog: {args.name}")
    print(f"wrote {args.output}: {coo!r}")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hicoo-repro",
        description="HiCOO sparse-tensor format toolkit (SC'18 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs(p):
        p.add_argument("--trace", metavar="OUT.json", default=None,
                       help="record spans and write Chrome-trace JSON "
                            "(open in Perfetto / chrome://tracing)")
        p.add_argument("--metrics", action="store_true",
                       help="print the metrics-registry report on exit")
        p.add_argument("--profile", metavar="OUT.txt", default=None,
                       help="run the sampling profiler and write collapsed "
                            "stacks (flamegraph.pl / speedscope input)")
        p.add_argument("--metrics-port", type=int, metavar="N", default=None,
                       help="serve OpenMetrics on http://127.0.0.1:N/metrics "
                            "for the duration of the command (0: ephemeral "
                            "port, printed on startup)")

    def add_common(p, output=False):
        p.add_argument("tensor", help=".tns or .hicoo input file")
        if output:
            p.add_argument("output", help="output file")
        p.add_argument("--block-bits", type=int, default=None,
                       help="HiCOO block bits b (default: storage-optimal)")
        p.add_argument("--seed", type=int, default=0)
        add_obs(p)

    p = sub.add_parser("inspect", help="structure and block statistics")
    add_common(p)
    p.add_argument("--viz", action="store_true",
                   help="render an ASCII block-density heatmap (modes 0 x 1)")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("convert", help="convert to binary .hicoo")
    add_common(p, output=True)
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("storage", help="COO/CSF/HiCOO storage table")
    add_common(p)
    p.set_defaults(func=cmd_storage)

    def add_backend(p):
        p.add_argument("--backend",
                       choices=["sim", "thread", "process", "numba", "cupy"],
                       default="sim",
                       help="parallel backend: 'sim' (sequential, per-task "
                            "timing), 'thread' (GIL-sharing pool), "
                            "'process' (true multicore over shared memory), "
                            "'numba' (fused JIT kernels; pip install "
                            ".[jit]), or 'cupy' (GPU; pip install .[gpu]). "
                            "Compiled tiers fall back to NumPy when the "
                            "dependency is absent — see 'hicoo-repro info'")
        p.add_argument("--fault-policy",
                       choices=["fail-fast", "retry", "degrade"],
                       default="fail-fast",
                       help="process-backend fault tolerance: 'fail-fast' "
                            "(first worker fault propagates), 'retry' "
                            "(respawn dead/hung workers and re-run their "
                            "tasks idempotently), or 'degrade' (fall back "
                            "to thread/sim when the recovery budget is "
                            "exhausted); see docs/fault_tolerance.md")

    p = sub.add_parser("mttkrp", help="run and time one MTTKRP")
    add_common(p)
    p.add_argument("-r", "--rank", type=int, default=16)
    p.add_argument("-m", "--mode", type=int, default=0)
    p.add_argument("-t", "--threads", type=int, default=1)
    p.add_argument("-f", "--format",
                   choices=["coo", "csf", "hicoo", "alto", "auto"],
                   default="hicoo",
                   help="storage format ('auto': pick from nnz stats via "
                        "the tuner's choose_format)")
    p.add_argument("--warmup", type=int, default=1,
                   help="unrecorded warmup passes before the timed run")
    add_backend(p)
    p.set_defaults(func=cmd_mttkrp)

    p = sub.add_parser("cpd", help="CP decomposition (ALS or Poisson APR)")
    add_common(p)
    p.add_argument("-r", "--rank", type=int, default=8)
    p.add_argument("--maxiters", type=int, default=20)
    p.add_argument("--tol", type=float, default=1e-4)
    p.add_argument("-t", "--threads", type=int, default=1)
    p.add_argument("--method", choices=["als", "apr"], default="als")
    p.add_argument("-f", "--format",
                   choices=["coo", "csf", "hicoo", "alto", "auto"],
                   default="hicoo",
                   help="storage format for ALS ('auto': data-driven pick)")
    add_backend(p)
    p.set_defaults(func=cmd_cpd)

    p = sub.add_parser("tucker", help="sparse Tucker decomposition (HOOI)")
    add_common(p)
    p.add_argument("-r", "--rank", type=int, default=4,
                   help="core size per mode (capped at the mode size)")
    p.add_argument("--maxiters", type=int, default=10)
    p.add_argument("--tol", type=float, default=1e-4)
    p.set_defaults(func=cmd_tucker)

    p = sub.add_parser("tune", help="model-driven (b, sb, strategy) tuning")
    add_common(p)
    p.add_argument("-r", "--rank", type=int, default=16)
    p.add_argument("-t", "--threads", type=int, default=8)
    p.add_argument("--cores", type=int, default=16)
    p.add_argument("--calibrate", action="store_true",
                   help="measure this host's rates instead of defaults")
    p.add_argument("--storage-weight", type=float, default=0.0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("reorder", help="reorder indices to improve blocking")
    add_common(p, output=True)
    p.add_argument("--method", choices=["lexi", "bfs", "random"],
                   default="lexi")
    p.add_argument("--iterations", type=int, default=2,
                   help="lexi-order rounds")
    p.set_defaults(func=cmd_reorder)

    p = sub.add_parser("info", help="versions, kernel tiers, and formats")
    p.add_argument("tensor", nargs="?", default=None,
                   help="optional .tns/.hicoo file: also report which "
                        "format the tuner would pick for it")
    p.add_argument("--prefix", metavar="NAME.", default=None,
                   help="print the labeled metrics snapshot filtered to "
                        "series whose name starts with this prefix "
                        "(e.g. 'mttkrp.'); '' prints everything")
    add_obs(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser(
        "serve", help="run the resident tensor-decomposition daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070,
                   help="socket port (0: ephemeral, printed on startup)")
    p.add_argument("--http-port", type=int, default=None, metavar="N",
                   help="also serve /metrics /healthz /jobs /tensors over "
                        "HTTP on port N (0: ephemeral)")
    p.add_argument("-t", "--threads", type=int, default=1,
                   help="worker threads/processes per kernel execution")
    p.add_argument("--executors", type=int, default=1,
                   help="concurrent executor threads draining the queue")
    p.add_argument("--max-queue", type=int, default=64,
                   help="bounded queue depth; beyond it requests are shed "
                        "with an explicit 'overloaded' reply")
    p.add_argument("--batch-limit", type=int, default=8,
                   help="max compatible MTTKRP jobs fused into one batch")
    p.add_argument("--load", action="append", metavar="NAME=FILE",
                   help="register a .tns/.hicoo file at startup (repeat)")
    p.add_argument("--register", action="append", metavar="NAME=SPEC_JSON",
                   help="register a synthetic tensor at startup, e.g. "
                        "t0='{\"kind\":\"random\",\"shape\":[64,64,64],"
                        "\"nnz\":10000}' (repeat)")
    p.add_argument("-f", "--format",
                   choices=["coo", "csf", "hicoo", "alto"], default="hicoo",
                   help="storage format for --load tensors")
    add_backend(p)
    add_obs(p)
    p.set_defaults(func=cmd_serve, fault_policy="degrade")

    p = sub.add_parser(
        "submit", help="submit one request to a running daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070)
    p.add_argument("--op", default="ping",
                   choices=["ping", "stats", "tensors", "mttkrp", "cp_als",
                            "ttm", "register", "unregister", "job_status"])
    p.add_argument("--tensor-name", default=None,
                   help="tensor name (job ops / register / unregister) or "
                        "job id (job_status)")
    p.add_argument("-r", "--rank", type=int, default=4)
    p.add_argument("-m", "--mode", type=int, default=0)
    p.add_argument("--iters", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--priority", type=int, default=1)
    p.add_argument("--spec", default=None, metavar="SPEC_JSON",
                   help="synthetic-tensor spec for --op register")
    p.add_argument("-f", "--format", dest="exec_format", default=None,
                   choices=["coo", "csf", "hicoo", "alto"],
                   help="execution format override for job ops: the daemon "
                        "runs against a memoized re-formatted view of the "
                        "resident tensor (direct conversion, no COO "
                        "round-trip)")
    p.add_argument("--timeout", type=float, default=300.0)
    p.add_argument("--request", default=None, metavar="JSON",
                   help="raw request object (overrides every other flag)")
    add_obs(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("dataset", help="emit a registry analog as .tns")
    p.add_argument("name", help="registry name (e.g. deli, uber)")
    p.add_argument("output")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=None)
    add_obs(p)
    p.set_defaults(func=cmd_dataset)

    return parser


def _run_with_obs(args) -> int:
    """Execute a subcommand under the observability flags.

    ``--trace`` enables the span tracer, wraps the command in a root
    ``cli.<command>`` span (so coverage is ~100%), and writes the Chrome
    trace on exit; ``--metrics`` prints the registry report;
    ``--profile`` runs the sampling profiler and writes collapsed stacks;
    ``--metrics-port`` serves the registry as OpenMetrics for the
    command's duration.
    """
    trace_path = getattr(args, "trace", None)
    show_metrics = getattr(args, "metrics", False)
    profile_path = getattr(args, "profile", None)
    metrics_port = getattr(args, "metrics_port", None)
    if trace_path:
        obs_trace.enable()
    server = None
    if metrics_port is not None:
        from ..obs.export import MetricsServer

        obs_metrics.enable()
        server = MetricsServer(port=metrics_port)
        server.start()
        print(f"[metrics] serving {server.url}/metrics")
    profiler = None
    if profile_path:
        from ..obs.sampler import SamplingProfiler

        profiler = SamplingProfiler(scope=f"cli.{args.command}")
        profiler.start()
    try:
        with obs_trace.span(f"cli.{args.command}"):
            rc = args.func(args)
    finally:
        if profiler is not None:
            profiler.stop()
        if server is not None:
            server.stop()
        if trace_path:
            obs_trace.disable()
    if profiler is not None:
        profiler.save(profile_path)
        print(f"[profile] {profiler.nsamples} samples, "
              f"{len(profiler.samples)} unique stacks -> {profile_path}")
    if trace_path:
        obs_trace.save(trace_path)
        tracer = obs_trace.get_tracer()
        print(f"[trace] {tracer.nevents} events, "
              f"{obs_trace.coverage() * 100:.1f}% of "
              f"{obs_trace.wall_seconds() * 1e3:.1f} ms covered "
              f"-> {trace_path}")
    if show_metrics:
        print("[metrics]")
        for line in obs_metrics.report():
            print(f"  {line}")
    return rc


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run_with_obs(args)
    except (ValueError, KeyError, OSError) as exc:
        # domain errors (bad parameters, malformed files, corrupt archives)
        # become clean one-line diagnostics rather than tracebacks
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # zipfile.BadZipFile and friends
        if type(exc).__module__ in ("zipfile", "zlib"):
            print(f"error: not a valid .hicoo archive: {exc}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
