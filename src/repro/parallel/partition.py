"""Work partitioning across threads.

Mirrors the OpenMP schedules the paper's kernels rely on: ``static`` (equal
item counts), ``balanced`` (equal *weight*, contiguity preserved — what a
good static schedule achieves for skewed nonzero distributions), and an LPT
bin-packing used for non-contiguous group assignment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["static_ranges", "balanced_ranges", "lpt_assign"]


def static_ranges(nitems: int, nparts: int) -> List[Tuple[int, int]]:
    """Split ``range(nitems)`` into ``nparts`` contiguous near-equal ranges.

    Like OpenMP ``schedule(static)``: part sizes differ by at most one.
    Empty ranges are returned for parts beyond the item count.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be positive, got {nparts}")
    base, extra = divmod(nitems, nparts)
    ranges = []
    lo = 0
    for p in range(nparts):
        size = base + (1 if p < extra else 0)
        ranges.append((lo, lo + size))
        lo += size
    return ranges


def balanced_ranges(weights: Sequence[float], nparts: int) -> List[Tuple[int, int]]:
    """Split items into contiguous ranges of near-equal total weight.

    Uses the prefix-sum method: cut at the positions nearest to the ideal
    ``k * total / nparts`` boundaries.  Guarantees coverage and monotone
    boundaries; a part may be empty when a single item outweighs the ideal
    chunk.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be positive, got {nparts}")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    n = len(weights)
    if n == 0:
        return [(0, 0)] * nparts
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    total = prefix[-1]
    cuts = [0]
    for k in range(1, nparts):
        target = total * k / nparts
        pos = int(np.searchsorted(prefix, target, side="left"))
        cuts.append(min(max(pos, cuts[-1]), n))
    cuts.append(n)
    return [(cuts[i], cuts[i + 1]) for i in range(nparts)]


def lpt_assign(weights: Sequence[float], nparts: int) -> List[List[int]]:
    """Longest-processing-time-first assignment of items to parts.

    Returns per-part item-index lists.  Classic 4/3-approximate makespan
    minimization; used for scheduling superblock groups.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be positive, got {nparts}")
    weights = np.asarray(weights, dtype=np.float64)
    order = np.argsort(weights, kind="stable")[::-1]
    loads = np.zeros(nparts)
    parts: List[List[int]] = [[] for _ in range(nparts)]
    for item in order:
        p = int(np.argmin(loads))
        parts[p].append(int(item))
        loads[p] += weights[item]
    return parts
