"""True multicore MTTKRP: a shared-memory process backend.

The GIL caps what the thread backend can overlap, so this module runs
superblock task partitions in worker *processes*:

* the HiCOO structure arrays (``bptr``, ``binds``, ``einds``, ``values``)
  and the dense factor matrices live in ``multiprocessing.shared_memory``
  segments, placed once per tensor and mapped zero-copy by every worker;
* each worker computes its scheduler-assigned superblock group straight
  into the shared mode-``m`` output — safe without locks because the
  lock-free schedule guarantees the groups write disjoint output rows;
* the privatized fallback (non-row-disjoint partitions) gives each worker
  a private slab of one shared buffer and the parent reduces the slabs;
* workers are reused across calls (a warm pool keyed by worker count), so
  CP-ALS pays process start-up once per run, not once per iteration;
* per-task spans and counters measured inside the workers are shipped back
  over the result pipe and merged into the parent's tracer/registry.

Lifecycle: segments are created by a :class:`SharedMttkrpSession` (cached
on the tensor, like the gather cache), closed+unlinked by
:func:`release_shared` or at interpreter exit.  Workers attach segments by
name and keep them mapped until shutdown; on Linux an unlinked segment
stays valid for already-attached processes, so teardown order is safe.

See ``docs/parallel_backends.md`` for when to prefer which backend.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import traceback
import uuid
import weakref
import multiprocessing as mp
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics, trace
from .executor import ExecutionReport, TaskResult

__all__ = [
    "ShmArraySpec",
    "SharedTensorHandle",
    "SharedMttkrpSession",
    "ProcPool",
    "WorkerTaskError",
    "get_pool",
    "shutdown_pools",
    "mttkrp_process",
    "mttkrp_process_alto",
    "release_shared",
    "run_generic_tasks",
    "default_start_method",
]

#: per-collect timeout (seconds); prevents a hung worker from deadlocking
#: CI.  Override with the REPRO_PROC_TIMEOUT environment variable.
DEFAULT_TIMEOUT = float(os.environ.get("REPRO_PROC_TIMEOUT", "120"))

#: workers cap their symbolic gather cache at this many entries
_WORKER_GATHER_CACHE_CAP = 256


def default_start_method() -> str:
    """``fork`` where available (fast start, inherited imports), else the
    platform default.  Override with REPRO_PROC_START."""
    env = os.environ.get("REPRO_PROC_START", "")
    if env:
        return env
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else mp.get_start_method()


# ----------------------------------------------------------------------
# shared-memory arrays
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmArraySpec:
    """Picklable recipe for mapping an ndarray view over a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from this process's resource tracker.

    Attaching registers the segment with the tracker, which would warn about
    (or even unlink) segments the *parent* owns when a worker exits.  The
    parent arena is the single owner responsible for unlinking.
    """
    try:  # pragma: no cover - depends on CPython internals, best effort
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class ShmArena:
    """Owner of a set of shared segments (create, view, close, unlink)."""

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def share(self, arr: np.ndarray) -> ShmArraySpec:
        """Copy ``arr`` into a fresh segment; returns its spec."""
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, arr.nbytes))
        self._segments[shm.name] = shm
        spec = ShmArraySpec(name=shm.name, shape=tuple(arr.shape),
                            dtype=arr.dtype.str)
        self.view(spec)[...] = arr
        return spec

    def alloc(self, shape, dtype=np.float64) -> ShmArraySpec:
        """Allocate a zeroed segment of the given logical shape."""
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._segments[shm.name] = shm
        spec = ShmArraySpec(name=shm.name, shape=tuple(shape),
                            dtype=np.dtype(dtype).str)
        self.view(spec)[...] = 0
        return spec

    def view(self, spec: ShmArraySpec) -> np.ndarray:
        """Parent-side ndarray view of a spec over an owned segment."""
        shm = self._segments[spec.name]
        return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=shm.buf, offset=spec.offset)

    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments.values())

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        for shm in self._segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()


@dataclass(frozen=True)
class SharedTensorHandle:
    """Picklable handle to a HiCOO structure placed in shared memory.

    ``key`` is unique per session; workers use it to key their symbolic
    gather caches, so a re-shared tensor never aliases stale entries.
    """

    key: str
    block_bits: int
    shape: Tuple[int, ...]
    bptr: ShmArraySpec
    binds: ShmArraySpec
    einds: ShmArraySpec
    values: ShmArraySpec


class _TensorView:
    """Worker-side zero-copy view satisfying the duck-typed HiCOO attribute
    contract of :func:`repro.kernels.gather.build_task_gather`."""

    __slots__ = ("bptr", "binds", "einds", "values", "block_bits", "shape")

    def __init__(self, handle: SharedTensorHandle, attach) -> None:
        self.bptr = attach(handle.bptr)
        self.binds = attach(handle.binds)
        self.einds = attach(handle.einds)
        self.values = attach(handle.values)
        self.block_bits = handle.block_bits
        self.shape = handle.shape


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _pack_events(events) -> list:
    """Serialize worker span events as plain tuples (SpanEvent is picklable,
    but tuples keep the pipe payload small and version-tolerant)."""
    return [(e.name, e.start_ns, e.dur_ns, e.depth, e.args, e.phase)
            for e in events]


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: attach shared arrays, run tasks, ship results back."""
    # a forked worker inherits the parent's tracer/registry state; start
    # clean so shipped events/counters are strictly this worker's own.
    # Metrics stay on regardless of the parent's flag at fork time: the
    # parent's merge is the single gate (it no-ops while disabled)
    trace.disable()
    trace.clear()
    metrics.reset()
    metrics.enable()

    from ..kernels.gather import build_task_gather, mttkrp_gather_chunk

    shm_cache: Dict[str, shared_memory.SharedMemory] = {}
    array_cache: Dict[ShmArraySpec, np.ndarray] = {}
    tensor_cache: Dict[str, _TensorView] = {}
    gather_cache: Dict[tuple, object] = {}
    chaos_state = None  # ChaosState once a ("chaos", plan) message arrives
    task_seq = 0  # compute tasks executed by this worker slot (1-based)
    # shipped-metrics watermark: deltas are computed at reply-send time, so
    # a worker killed/hung/desynced before the send never marks its work as
    # shipped — the retried task re-ships exactly once from a fresh worker
    mstats_state: dict = {}

    def attach(spec: ShmArraySpec) -> np.ndarray:
        arr = array_cache.get(spec)
        if arr is None:
            shm = shm_cache.get(spec.name)
            if shm is None:
                shm = shared_memory.SharedMemory(name=spec.name)
                _untrack(shm)
                shm_cache[spec.name] = shm
            arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                             buffer=shm.buf, offset=spec.offset)
            array_cache[spec] = arr
        return arr

    def tensor_view(handle: SharedTensorHandle) -> _TensorView:
        tv = tensor_cache.get(handle.key)
        if tv is None:
            tv = tensor_cache[handle.key] = _TensorView(handle, attach)
        return tv

    def gather_for(tv: _TensorView, key: str, runs: tuple):
        ck = (key, runs)
        tg = gather_cache.get(ck)
        if tg is None:
            if len(gather_cache) >= _WORKER_GATHER_CACHE_CAP:
                gather_cache.clear()
            tg = gather_cache[ck] = build_task_gather(tv, runs)
        return tg

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        except KeyboardInterrupt:  # pragma: no cover - interactive abort
            break
        kind = msg[0]
        if kind == "shutdown":
            break
        if kind == "chaos":
            from ..testing import ChaosState

            chaos_state = ChaosState(msg[1], worker_id)
            task_seq = 0  # at_task counts from plan installation
            continue
        task_id = msg[1]
        directive = None
        if kind in ("mttkrp", "generic"):
            task_seq += 1
            if chaos_state is not None:
                directive = chaos_state.draw(task_seq)
        try:
            if directive is not None:
                if directive.kind == "raise":
                    from ..testing import ChaosError

                    raise ChaosError(
                        f"injected fault in worker {worker_id} "
                        f"(task #{task_seq})")
                if directive.kind in ("hang", "delay"):
                    # "hang": the parent's deadline fires long before this
                    # sleep ends and the worker is terminated mid-nap
                    time.sleep(directive.seconds)
            if kind == "mttkrp":
                (_, _, handle, factor_specs, mode, runs,
                 out_spec, row_local, scatter, want_trace, reset) = msg
                if want_trace:
                    trace.enable(clear=True)
                t0 = time.perf_counter()
                with trace.span("procpool.task", worker=worker_id,
                                mode=mode, pid=os.getpid()):
                    tv = tensor_view(handle)
                    factors = [attach(s) for s in factor_specs]
                    out = attach(out_spec)
                    tg = gather_for(tv, handle.key, tuple(runs))
                    if reset:
                        # a retried task re-runs idempotently: zero what it
                        # owns first.  Row-local tasks own exactly the rows
                        # they scatter into (the lock-free schedule keeps
                        # them disjoint across tasks); privatized tasks own
                        # their whole slab.
                        if row_local:
                            if tg.nnz:
                                out[np.unique(tg.ginds[:, mode])] = 0.0
                        else:
                            out[...] = 0.0
                    backend = mttkrp_gather_chunk(tg, factors, mode, out,
                                                  row_local=row_local,
                                                  scatter=scatter)
                elapsed = time.perf_counter() - t0
                events = None
                if want_trace:
                    events = _pack_events(trace.events())
                    trace.disable()
                    trace.clear()
                if directive is not None and directive.kind == "kill":
                    os._exit(137)
                if directive is not None and directive.kind == "corrupt":
                    conn.send(("garbled",))
                    continue
                mstats = metrics.get_registry().collect_deltas(mstats_state)
                conn.send(("ok", task_id, elapsed, backend, tg.nnz, events,
                           mstats))
            elif kind == "generic":
                _, _, fn = msg
                t0 = time.perf_counter()
                value = fn()
                elapsed = time.perf_counter() - t0
                if directive is not None and directive.kind == "kill":
                    os._exit(137)
                if directive is not None and directive.kind == "corrupt":
                    conn.send(("garbled",))
                    continue
                mstats = metrics.get_registry().collect_deltas(mstats_state)
                conn.send(("ok", task_id, elapsed, value, 0, None, mstats))
            elif kind == "ping":
                conn.send(("ok", task_id, 0.0, "pong", 0, None, []))
            else:
                raise ValueError(f"unknown worker message {kind!r}")
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            tb = "".join(traceback.format_exception(type(exc), exc,
                                                    exc.__traceback__))
            try:
                conn.send(("err", task_id, exc, tb))
            except Exception:
                # unpicklable exception object: ship a reconstructible stub
                conn.send(("err", task_id,
                           RuntimeError(f"{type(exc).__name__}: {exc}"), tb))


# ----------------------------------------------------------------------
# exception plumbing (original traceback chained across the process gap)
# ----------------------------------------------------------------------
class _RemoteTraceback(Exception):
    """Carrier for a worker-side traceback, chained as ``__cause__``."""

    def __init__(self, tb: str) -> None:
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return "\n" + self.tb


class WorkerTaskError(RuntimeError):
    """A worker task failed; the remote traceback is in ``__cause__``."""


def _raise_remote(task_id: int, exc: BaseException, tb: str):
    """Re-raise a worker exception, preserving its type where possible and
    always chaining the formatted remote traceback."""
    exc.__cause__ = _RemoteTraceback(tb)
    raise exc


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------
class ProcPool:
    """A fixed set of long-lived worker processes connected by pipes.

    Tasks are addressed to a specific worker (the MTTKRP path pins task
    ``t`` to worker ``t`` so privatized slabs stay worker-local) and results
    are collected with :meth:`collect`, which fails fast on worker errors
    and death.
    """

    def __init__(self, nworkers: int,
                 start_method: Optional[str] = None) -> None:
        if nworkers < 1:
            raise ValueError(f"nworkers must be positive, got {nworkers}")
        self.nworkers = nworkers
        # one submit->collect region at a time: task ids are region-local,
        # so two threads interleaving on the same pool would cross-attribute
        # replies.  Region callers (SharedMttkrpSession.run_mode,
        # run_generic_tasks) hold this for their whole region; the serve
        # daemon's concurrent executors therefore share warm pools safely.
        self.region_lock = threading.RLock()
        self.start_method = start_method or default_start_method()
        self._ctx = mp.get_context(self.start_method)
        self._procs: List[mp.Process] = []
        self._conns = []
        for wid in range(nworkers):
            proc, conn = self._spawn(wid)
            self._procs.append(proc)
            self._conns.append(conn)
        self._closed = False
        metrics.inc("procpool.workers_started", nworkers)

    def _spawn(self, wid: int):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main, args=(child_conn, wid),
                                 daemon=True, name=f"repro-procpool-{wid}")
        proc.start()
        child_conn.close()
        return proc, parent_conn

    @property
    def alive(self) -> bool:
        return (not self._closed
                and all(p.is_alive() for p in self._procs))

    def worker_alive(self, worker_id: int) -> bool:
        return not self._closed and self._procs[worker_id].is_alive()

    def submit(self, worker_id: int, msg: tuple) -> None:
        self._conns[worker_id].send(msg)

    def install_chaos(self, plan) -> None:
        """Ship a :class:`repro.testing.ChaosPlan` to every *current*
        worker.  Pipes are FIFO, so the plan is in place before any task
        submitted afterwards; respawned workers get no plan (directives are
        one-shot by construction)."""
        for conn in self._conns:
            conn.send(("chaos", plan))

    def respawn(self, worker_id: int) -> None:
        """Replace one worker slot with a fresh process on a fresh pipe.

        The dead/hung worker is terminated and its pipe closed, so no stale
        reply can ever be attributed to a later task.  The new worker
        re-attaches shared segments lazily by name on its first task (an
        unlinked-later segment stays valid for attachers on Linux)."""
        old = self._procs[worker_id]
        if old.is_alive():
            old.terminate()
        old.join(timeout=5.0)
        if old.is_alive():  # pragma: no cover - SIGTERM ignored
            old.kill()
            old.join(timeout=5.0)
        try:
            self._conns[worker_id].close()
        except OSError:  # pragma: no cover
            pass
        proc, conn = self._spawn(worker_id)
        self._procs[worker_id] = proc
        self._conns[worker_id] = conn
        metrics.inc("procpool.workers_respawned")

    def poll_events(self, worker_ids, timeout: float):
        """Wait up to ``timeout`` seconds for activity on the given workers.

        Returns ``[(worker_id, kind, payload)]`` where kind is ``"msg"``
        (payload = the received message) or ``"dead"`` (pipe EOF — the
        worker process died).  An empty list means the wait timed out: the
        supervisor's deadline logic decides who is hung."""
        conns = {self._conns[w]: w for w in set(worker_ids)}
        events = []
        for conn in _conn_wait(list(conns), timeout=max(0.0, timeout)):
            wid = conns[conn]
            try:
                events.append((wid, "msg", conn.recv()))
            except (EOFError, OSError):
                events.append((wid, "dead", None))
        return events

    def collect(self, expected: Dict[int, int],
                timeout: Optional[float] = None) -> Dict[int, tuple]:
        """Collect one response per (task_id -> worker_id) in ``expected``.

        Returns ``{task_id: (elapsed, value, nnz, events, mstats)}`` where
        ``mstats`` is the worker's metric-delta list (see
        :meth:`repro.obs.metrics.MetricsRegistry.collect_deltas`).  Every
        outstanding response is drained before raising (so the pool stays
        reusable), then the first failure in task order is re-raised with
        its remote traceback chained.
        """
        timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        deadline = time.monotonic() + timeout
        pending: Dict[object, List[int]] = {}
        for task_id, wid in expected.items():
            pending.setdefault(self._conns[wid], []).append(task_id)
        results: Dict[int, tuple] = {}
        errors: Dict[int, tuple] = {}
        outstanding = set(expected)
        while outstanding:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._abandon()
                raise TimeoutError(
                    f"process backend timed out after {timeout:.0f}s waiting "
                    f"for tasks {sorted(outstanding)}")
            for conn in _conn_wait(list(pending), timeout=remaining):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._abandon()
                    raise RuntimeError(
                        "a procpool worker died mid-task (pipe closed); "
                        "the pool has been shut down") from None
                if (not isinstance(msg, tuple) or len(msg) < 2
                        or msg[0] not in ("ok", "err")):
                    # protocol desync (e.g. an injected corrupt reply):
                    # the worker can no longer be trusted — fail fast
                    self._abandon()
                    raise RuntimeError(
                        "a procpool worker sent a malformed reply "
                        f"({msg!r}); the pool has been shut down")
                status, task_id = msg[0], msg[1]
                outstanding.discard(task_id)
                waiting = pending[conn]
                waiting.remove(task_id)
                if not waiting:
                    del pending[conn]
                if status == "ok":
                    if len(msg) != 7:
                        self._abandon()
                        raise RuntimeError(
                            "a procpool worker sent a malformed ok reply "
                            f"(length {len(msg)}); the pool has been shut "
                            "down")
                    _, _, elapsed, value, nnz, events, mstats = msg
                    results[task_id] = (elapsed, value, nnz, events, mstats)
                else:
                    _, _, exc, tb = msg
                    errors[task_id] = (exc, tb)
        if errors:
            task_id = min(errors)
            exc, tb = errors[task_id]
            metrics.inc("procpool.task_errors", len(errors))
            _raise_remote(task_id, exc, tb)
        return results

    def _abandon(self) -> None:
        """Hard-kill the pool (worker death / timeout); drop it from the
        warm cache so the next call builds a fresh one."""
        with _POOLS_LOCK:
            if _POOLS.get((self.nworkers, self.start_method)) is self:
                _POOLS.pop((self.nworkers, self.start_method), None)
        self.shutdown(grace=0.2)

    def shutdown(self, grace: float = 2.0) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=grace)
            if proc.is_alive():  # pragma: no cover - unresponsive worker
                proc.terminate()
                proc.join(timeout=grace)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


_POOLS: Dict[Tuple[int, str], ProcPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(nworkers: int, start_method: Optional[str] = None) -> ProcPool:
    """Warm-start pool cache: one living pool per (nworkers, start method).

    Reuse is what amortizes process start-up across CP-ALS iterations; the
    ``procpool.pool_reuses`` counter proves it in the metrics report.
    Thread-safe: concurrent serve-daemon executors get the same warm pool
    (and serialize their regions on its ``region_lock``).
    """
    start_method = start_method or default_start_method()
    key = (nworkers, start_method)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and pool.alive:
            metrics.inc("procpool.pool_reuses")
            return pool
        if pool is not None:
            pool.shutdown(grace=0.2)
        pool = ProcPool(nworkers, start_method=start_method)
        _POOLS[key] = pool
        return pool


def shutdown_pools() -> None:
    """Stop every warm pool (tests and interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


# ----------------------------------------------------------------------
# per-tensor shared session
# ----------------------------------------------------------------------
_LIVE_SESSIONS: "weakref.WeakSet" = weakref.WeakSet()


class SharedMttkrpSession:
    """Shared-memory residency of one HiCOO tensor plus its dense operands.

    Created once per (tensor, nworkers) and cached on the tensor; the
    structure arrays are copied into shared segments a single time, factor
    slots are rewritten in place every call (a memcpy, no pickling), and the
    output/privatized slabs are recycled across modes and iterations.

    **Ownership.** The factor slots and output/privatized slabs are
    single-occupancy, so concurrent callers (the serve daemon's executor
    threads) serialize each call on the session's execution lock, and the
    session is *refcounted*: :meth:`acquire`/:meth:`release` bracket every
    use, and :meth:`close` while references are held only *marks* the
    session for teardown — the arena is unlinked by the last
    :meth:`release`.  Unregistering a tensor mid-job therefore never pulls
    shared segments out from under a running kernel.
    """

    def __init__(self, tensor, nworkers: int) -> None:
        self.nworkers = nworkers
        self.arena = ShmArena()
        self.key = uuid.uuid4().hex
        self.shape = tuple(tensor.shape)
        self.handle = SharedTensorHandle(
            key=self.key,
            block_bits=tensor.block_bits,
            shape=self.shape,
            bptr=self.arena.share(tensor.bptr),
            binds=self.arena.share(tensor.binds),
            einds=self.arena.share(tensor.einds),
            values=self.arena.share(tensor.values),
        )
        self.rank: Optional[int] = None
        self.factor_specs: List[ShmArraySpec] = []
        self._out_spec: Optional[ShmArraySpec] = None
        self._priv_spec: Optional[ShmArraySpec] = None
        self._closed = False
        self._refs = 0
        self._pending_close = False
        self._state_lock = threading.Lock()
        self._exec_lock = threading.RLock()
        _LIVE_SESSIONS.add(self)
        metrics.inc("procpool.sessions")
        metrics.set_gauge("procpool.shared_bytes", self.arena.total_bytes())

    # -- dense operand slots ------------------------------------------
    def ensure_rank(self, rank: int) -> None:
        """(Re)allocate factor and output slots for decomposition rank R."""
        if self.rank == rank:
            return
        self.rank = rank
        maxrows = max(self.shape)
        self.factor_specs = [self.arena.alloc((dim, rank))
                             for dim in self.shape]
        self._out_spec = self.arena.alloc((maxrows, rank))
        self._priv_spec = None  # lazily sized on first privatized call
        metrics.set_gauge("procpool.shared_bytes", self.arena.total_bytes())

    def _out_view(self, rows: int) -> Tuple[ShmArraySpec, np.ndarray]:
        spec = ShmArraySpec(name=self._out_spec.name, shape=(rows, self.rank),
                            dtype=self._out_spec.dtype)
        return spec, self.arena.view(spec)

    def _priv_views(self, rows: int):
        """Per-worker (spec, view) pairs into the privatized slab."""
        maxrows = max(self.shape)
        if self._priv_spec is None:
            self._priv_spec = self.arena.alloc(
                (self.nworkers, maxrows, self.rank))
            metrics.set_gauge("procpool.shared_bytes",
                              self.arena.total_bytes())
        stride = maxrows * self.rank * np.dtype(self._priv_spec.dtype).itemsize
        pairs = []
        for t in range(self.nworkers):
            spec = ShmArraySpec(name=self._priv_spec.name,
                                shape=(rows, self.rank),
                                dtype=self._priv_spec.dtype,
                                offset=t * stride)
            pairs.append((spec, self.arena.view(spec)))
        return pairs

    # -- execution -----------------------------------------------------
    def run_mode(self, pool: ProcPool, factors: Sequence[np.ndarray],
                 mode: int, thread_runs, strategy: str,
                 timeout: Optional[float] = None, fault_config=None,
                 scatter: str = "auto"):
        """One parallel MTTKRP over pre-partitioned block runs.

        Returns ``(output, report, backends)`` where ``output`` is an owned
        (non-shared) array, ``report`` an :class:`ExecutionReport` built
        from worker-measured task times, and ``backends`` the deduplicated
        scatter backends the workers used.

        ``fault_config`` is a resolved
        :class:`repro.parallel.supervisor.FaultConfig`; with a ``retry`` or
        ``degrade`` policy the region runs under a
        :class:`~repro.parallel.supervisor.Supervisor` instead of the
        fail-fast :meth:`ProcPool.collect`.

        Safe to call from multiple threads: the call holds a reference on
        the session (deferring any concurrent teardown), the session's
        execution lock (the factor/output slots are single-occupancy), and
        the pool's region lock (task ids are region-local) for its whole
        duration.
        """
        self.acquire()
        try:
            with self._exec_lock, pool.region_lock:
                return self._run_mode_locked(
                    pool, factors, mode, thread_runs, strategy,
                    timeout=timeout, fault_config=fault_config,
                    scatter=scatter)
        finally:
            self.release()

    def _run_mode_locked(self, pool: ProcPool,
                         factors: Sequence[np.ndarray],
                         mode: int, thread_runs, strategy: str,
                         timeout: Optional[float] = None, fault_config=None,
                         scatter: str = "auto"):
        rank = factors[0].shape[1]
        self.ensure_rank(rank)
        rows = self.shape[mode]
        for spec, factor in zip(self.factor_specs, factors):
            self.arena.view(spec)[...] = factor

        from ..testing import take_chaos_plan

        chaos_plan = take_chaos_plan()
        if chaos_plan is not None:
            pool.install_chaos(chaos_plan)

        want_trace = trace.enabled()
        row_local = strategy == "schedule"
        if row_local:
            out_spec, out_view = self._out_view(rows)
            out_view[...] = 0.0
            targets = [(out_spec, out_view)] * len(thread_runs)
        else:
            targets = self._priv_views(rows)
            for _, view in targets:
                view[...] = 0.0

        def msg_builder(t, runs, target_spec):
            def build(reset: bool) -> tuple:
                return ("mttkrp", t, self.handle, self.factor_specs, mode,
                        tuple(tuple(r) for r in runs), target_spec,
                        row_local, scatter, want_trace, reset)
            return build

        builders = {t: msg_builder(t, runs, targets[t][0])
                    for t, runs in enumerate(thread_runs)}

        if fault_config is not None and fault_config.policy != "fail-fast":
            from .supervisor import Supervisor

            sup = Supervisor(pool, fault_config, deadline=timeout)
            results = sup.run({t: (t, build)
                               for t, build in builders.items()})
        else:
            expected: Dict[int, int] = {}
            for t, build in builders.items():
                pool.submit(t, build(False))
                expected[t] = t
            results = pool.collect(expected, timeout=timeout)

        report = ExecutionReport(backend="process")
        backends = set()
        reg = metrics.get_registry()
        for t in sorted(results):
            elapsed, backend, nnz, events, mstats = results[t]
            report.results.append(TaskResult(tid=t, elapsed=elapsed,
                                             value=backend))
            if isinstance(backend, str) and backend not in ("noop", ""):
                backends.add(backend)
            if reg.enabled:
                reg.inc("procpool.tasks")
                reg.observe("procpool.task_seconds", elapsed,
                            labels={"worker": f"proc-{t}"})
                # nnz/scatter accounting arrives via the worker's own
                # metric deltas (merged below as worker="proc-N" series);
                # the parent adds nothing, so nothing double-counts
                reg.merge_deltas(mstats, {"worker": f"proc-{t}"})
            if events:
                _ingest_worker_events(events, t)
        if reg.enabled:
            reg.set_gauge("procpool.load_imbalance", report.load_imbalance())

        if row_local:
            output = np.array(targets[0][1], copy=True)
        else:
            output = np.zeros((rows, rank))
            for _, view in targets:
                output += view
        return output, report, tuple(sorted(backends))

    # -- lifecycle -----------------------------------------------------
    def structure_specs(self) -> Tuple[ShmArraySpec, ...]:
        """The shared segments holding the tensor structure arrays."""
        h = self.handle
        return (h.bptr, h.binds, h.einds, h.values)

    def acquire(self) -> "SharedMttkrpSession":
        """Take a reference; the arena stays mapped until :meth:`release`."""
        with self._state_lock:
            if self._closed:
                raise RuntimeError("session used after release_shared()")
            self._refs += 1
            return self

    def release(self) -> None:
        """Drop a reference; the last release of a close-marked session
        unlinks the arena."""
        with self._state_lock:
            self._refs = max(0, self._refs - 1)
            do_close = self._refs == 0 and self._pending_close
        if do_close:
            self.close()

    @property
    def refcount(self) -> int:
        with self._state_lock:
            return self._refs

    def close(self) -> None:
        """Tear the arena down — deferred to the last :meth:`release` while
        references are held (never blocks the caller)."""
        with self._state_lock:
            if self._closed:
                return
            if self._refs > 0:
                self._pending_close = True
                metrics.inc("procpool.session_close_deferred")
                return
            self._closed = True
        self.arena.close()

    def __del__(self) -> None:  # pragma: no cover - GC order dependent
        try:
            self.close()
        except Exception:
            pass


def _ingest_worker_events(packed: list, worker_id: int) -> None:
    """Merge shipped worker span events into the parent tracer.

    Linux ``perf_counter_ns`` is CLOCK_MONOTONIC — system-wide — so worker
    timestamps land on the parent timeline unadjusted; each worker gets its
    own synthetic thread lane.
    """
    events = [trace.SpanEvent(name=name, start_ns=start_ns, dur_ns=dur_ns,
                              thread=-(worker_id + 1), depth=depth,
                              args=args, phase=phase)
              for name, start_ns, dur_ns, depth, args, phase in packed]
    trace.ingest(events)


_SESSIONS_LOCK = threading.Lock()


def _session_for(tensor, nworkers: int) -> SharedMttkrpSession:
    with _SESSIONS_LOCK:
        sessions = tensor.__dict__.setdefault("_proc_sessions", {})
        session = sessions.get(nworkers)
        if session is None or session._closed or session._pending_close:
            session = sessions[nworkers] = SharedMttkrpSession(tensor,
                                                               nworkers)
        else:
            metrics.inc("procpool.session_reuses")
        return session


def release_shared(tensor) -> None:
    """Close and unlink every shared-memory session of ``tensor``.

    Sessions still referenced by an in-flight call (the serve daemon's
    concurrent jobs) are marked for teardown and unlinked by the job's
    closing :meth:`SharedMttkrpSession.release` instead — the call never
    blocks and never breaks a running kernel.

    ALTO tensors hold their sessions on per-mode proxy views
    (:meth:`repro.formats.alto.AltoTensor.proc_view`); those are released
    here too, so one call covers every format.
    """
    with _SESSIONS_LOCK:
        sessions = dict(tensor.__dict__.get("_proc_sessions") or {})
        (tensor.__dict__.get("_proc_sessions") or {}).clear()
        views = list((tensor.__dict__.get("_proc_views") or {}).values())
    for session in sessions.values():
        session.close()
    for view in views:
        release_shared(view)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
@dataclass
class ProcessRun:
    """Raw result of a process-backend MTTKRP (wrapped into MttkrpRun by
    :func:`repro.kernels.mttkrp.mttkrp_parallel`)."""

    output: np.ndarray
    strategy: str
    nworkers: int
    thread_nnz: np.ndarray
    schedule: object = None
    report: ExecutionReport = field(default_factory=ExecutionReport)
    scatter_backends: tuple = ()
    reduction_flops: int = 0


def mttkrp_process(tensor, factors: Sequence[np.ndarray], mode: int,
                   nworkers: int, strategy: str = "auto",
                   superblock_bits: Optional[int] = None,
                   plan=None, start_method: Optional[str] = None,
                   timeout: Optional[float] = None,
                   fault_policy=None) -> ProcessRun:
    """Parallel HiCOO MTTKRP on real cores via the shared-memory pool.

    ``plan`` is an optional precomputed
    :class:`repro.kernels.plan.MttkrpPlan`; without one, a per-call plan is
    built (and its symbolic partition reused through the session's worker
    caches on later calls).

    ``fault_policy`` is ``"fail-fast"`` (default), ``"retry"``,
    ``"degrade"``, or a :class:`repro.parallel.supervisor.FaultConfig`; see
    ``docs/fault_tolerance.md``.  With ``"degrade"``, exhausted recovery
    budgets surface as :class:`~repro.parallel.supervisor.DegradedExecution`
    which :func:`repro.kernels.mttkrp.mttkrp_parallel` converts into a
    fallback-backend run.
    """
    from ..core.hicoo import HicooTensor
    from ..kernels.plan import plan_mttkrp
    from .supervisor import FaultConfig

    if not isinstance(tensor, HicooTensor):
        raise TypeError(
            "the process backend shares HiCOO structure arrays; got "
            f"{type(tensor).__name__} — convert with HicooTensor(coo) first")
    fault_config = FaultConfig.resolve(fault_policy)
    rank = factors[0].shape[1]
    if plan is None:
        plan = plan_mttkrp(tensor, rank, nworkers, strategy=strategy,
                           superblock_bits=superblock_bits)
    nworkers = plan.nthreads
    mp_ = plan.for_mode(mode)

    with trace.span("mttkrp.process", mode=mode, nworkers=nworkers,
                    strategy=mp_.strategy, fault_policy=fault_config.policy):
        pool = get_pool(nworkers, start_method=start_method)
        session = _session_for(tensor, nworkers)
        output, report, backends = session.run_mode(
            pool, factors, mode, mp_.thread_runs, mp_.strategy,
            timeout=timeout, fault_config=fault_config)
    metrics.inc("procpool.calls")

    reduction_flops = 0
    if mp_.strategy != "schedule":
        reduction_flops = (nworkers - 1) * tensor.shape[mode] * rank
    return ProcessRun(output=output, strategy=mp_.strategy,
                      nworkers=nworkers,
                      thread_nnz=mp_.thread_nnz.copy(),
                      schedule=mp_.schedule, report=report,
                      scatter_backends=backends,
                      reduction_flops=reduction_flops)


def mttkrp_process_alto(tensor, factors: Sequence[np.ndarray], mode: int,
                        nworkers: int, strategy: str = "auto",
                        start_method: Optional[str] = None,
                        timeout: Optional[float] = None,
                        fault_policy=None) -> ProcessRun:
    """Parallel ALTO MTTKRP on real cores via the shared-memory pool.

    The mode's output-space view rides the **unchanged** HiCOO worker path
    through a duck-typed proxy (one ``bptr`` "block" per output-row
    segment, all-zero ``binds``, ``block_bits=0`` — the worker's
    ``(binds << b) + einds`` reconstruction returns the mode-sorted global
    coordinates exactly).  Tasks are the same equal-nnz row-disjoint
    segment ranges as the in-process schedule, so the shared-output region
    is lock-free, reset-and-retry stays idempotent (a retried task zeroes
    exactly the rows its ``ginds`` name), and the result is bit-identical
    to the sim backend.

    ``strategy="privatize"`` runs the same segment ranges into per-worker
    slabs plus one parent reduction (ULP-equivalent, not bitwise).
    """
    from ..formats.alto import AltoTensor
    from .supervisor import FaultConfig

    if not isinstance(tensor, AltoTensor):
        raise TypeError(
            "mttkrp_process_alto needs an AltoTensor; got "
            f"{type(tensor).__name__}")
    if strategy == "auto":
        strategy = "schedule"
    if strategy not in ("schedule", "privatize"):
        raise ValueError(
            f"ALTO supports 'schedule' or 'privatize', got {strategy!r}")
    fault_config = FaultConfig.resolve(fault_policy)
    rank = factors[0].shape[1]
    view = tensor.proc_view(mode)
    bounds = view.bptr
    seg_ranges = balanced_ranges_segments(bounds, nworkers)
    thread_runs = [[(slo, shi)] for slo, shi in seg_ranges]
    thread_nnz = np.array(
        [int(bounds[shi] - bounds[slo]) for slo, shi in seg_ranges],
        dtype=np.int64)

    with trace.span("mttkrp.process", mode=mode, nworkers=nworkers,
                    strategy=strategy, format="alto",
                    fault_policy=fault_config.policy):
        pool = get_pool(nworkers, start_method=start_method)
        session = _session_for(view, nworkers)
        output, report, backends = session.run_mode(
            pool, factors, mode, thread_runs, strategy,
            timeout=timeout, fault_config=fault_config, scatter="seq")
    metrics.inc("procpool.calls")

    reduction_flops = 0
    if strategy != "schedule":
        reduction_flops = (nworkers - 1) * tensor.shape[mode] * rank
    return ProcessRun(output=output, strategy=strategy, nworkers=nworkers,
                      thread_nnz=thread_nnz, schedule=None, report=report,
                      scatter_backends=backends,
                      reduction_flops=reduction_flops)


def balanced_ranges_segments(bounds: np.ndarray, nparts: int):
    """Equal-nnz contiguous split of segment space (``bounds`` = segment
    boundary offsets, length nsegments+1) — the partition shared by the
    in-process ALTO schedule and the process backend, so both cut tasks at
    identical places."""
    from .partition import balanced_ranges

    weights = np.diff(bounds)
    return balanced_ranges(weights, nparts)


def run_generic_tasks(tasks, nworkers: Optional[int] = None,
                      start_method: Optional[str] = None,
                      timeout: Optional[float] = None,
                      fault_policy=None) -> ExecutionReport:
    """Generic process execution of picklable zero-arg callables.

    The task's return value must be picklable too; side effects on captured
    objects do *not* propagate back (workers run on copies) — which is why
    the MTTKRP path uses shared memory instead of this entry point.

    ``fault_policy="retry"`` runs the region under a
    :class:`~repro.parallel.supervisor.Supervisor` (generic tasks must then
    be safe to re-execute); ``"degrade"`` additionally falls back to
    running the *whole region* sequentially in the parent when the recovery
    budget is exhausted.
    """
    from ..testing import take_chaos_plan
    from .supervisor import DegradedExecution, FaultConfig, Supervisor

    tasks = list(tasks)
    report = ExecutionReport(backend="process")
    if not tasks:
        return report
    fault_config = FaultConfig.resolve(fault_policy)
    nworkers = min(len(tasks), nworkers or len(tasks))
    pool = get_pool(nworkers, start_method=start_method)
    chaos_plan = take_chaos_plan()
    if chaos_plan is not None:
        pool.install_chaos(chaos_plan)

    def msg_builder(i, task):
        def build(reset: bool) -> tuple:
            return ("generic", i, task)
        return build

    def submit(wid: int, msg: tuple) -> None:
        try:
            pool.submit(wid, msg)
        except (AttributeError, TypeError, ValueError) as exc:
            raise TypeError(
                "process-backend tasks must be picklable zero-arg callables "
                "(module-level functions or functools.partial of them); "
                f"task {msg[1]} failed to serialize: {exc}") from exc

    supervised = fault_config.policy != "fail-fast"
    try:
        with pool.region_lock:
            if supervised:
                sup = Supervisor(pool, fault_config, deadline=timeout,
                                 submit=submit)
                results = sup.run({i: (i % nworkers, msg_builder(i, task))
                                   for i, task in enumerate(tasks)})
            else:
                expected: Dict[int, int] = {}
                for i, task in enumerate(tasks):
                    wid = i % nworkers
                    submit(wid, ("generic", i, task))
                    expected[i] = wid
                results = pool.collect(expected, timeout=timeout)
    except DegradedExecution as exc:
        # recovery budget exhausted: run the whole region inline — generic
        # tasks have no shared output, so a clean sequential pass is exact
        from ..util.log import get_logger

        get_logger("repro.supervisor").warning(
            "process backend degraded to inline execution: %s", exc)
        metrics.inc("supervisor.degradations")
        trace.instant("supervisor.degrade", reason=str(exc))
        for i, task in enumerate(tasks):
            t0 = time.perf_counter()
            value = task()
            report.results.append(TaskResult(
                tid=i, elapsed=time.perf_counter() - t0, value=value))
        report.backend = "sim"
        return report
    reg = metrics.get_registry()
    for i in sorted(results):
        elapsed, value = results[i][0], results[i][1]
        report.results.append(TaskResult(tid=i, elapsed=elapsed, value=value))
        if reg.enabled and len(results[i]) > 4:
            reg.merge_deltas(results[i][4],
                             {"worker": f"proc-{i % nworkers}"})
    if reg.enabled:
        reg.inc("executor.regions", labels={"backend": "process"})
        reg.inc("executor.tasks", len(tasks), labels={"backend": "process"})
        reg.set_gauge("executor.load_imbalance", report.load_imbalance(),
                      labels={"backend": "process"})
        for r in report.results:
            reg.observe("executor.task_seconds", r.elapsed,
                        labels={"backend": "process"})
    return report


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    try:
        shutdown_pools()
    except Exception:
        pass
    for session in list(_LIVE_SESSIONS):
        try:
            session.close()
        except Exception:
            pass
