"""GPU execution model for MTTKRP — the paper's follow-on direction.

HiCOO's follow-on work ports the format to GPUs, where the trade-offs
shift: enormous bandwidth and thread counts, but atomics remain costly per
*conflicting* update and gather locality matters even more (coalescing).
This module extends the roofline machine model with a GPU profile so the
benchmark harness can show the predicted *shape* of that comparison —
HiCOO's scheduled, conflict-free writes pay off more on a GPU than on a
CPU, while COO's per-nonzero atomics become the dominant term.

The profile models:

* ``bandwidth`` — HBM-class memory throughput;
* ``flops`` — aggregate multiply-add rate;
* ``atomic_throughput`` — conflicting atomic updates retired per second
  (conflicts serialize per output row; non-conflicting atomics ride the
  memory system);
* ``coalescing`` — the fraction of peak bandwidth random gathers achieve
  (block-local gathers approach 1.0, scattered COO gathers sit low).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.traffic import mttkrp_work
from ..core.hicoo import HicooTensor
from ..formats.base import SparseTensorFormat

__all__ = ["GpuProfile", "predict_gpu_mttkrp", "gpu_speedup_over_coo",
           "measured_vs_predicted"]


@dataclass(frozen=True)
class GpuProfile:
    """A GPU described by four aggregate rates.

    Defaults approximate a V100-class accelerator (the hardware of the
    follow-on GPU-HiCOO work): 900 GB/s HBM2, ~7 TFLOP/s double precision,
    ~2e9 conflicting atomics/s.
    """

    bandwidth: float = 900.0e9
    flops: float = 7.0e12
    atomic_throughput: float = 2.0e9
    coalesced_fraction: float = 1.0
    scattered_fraction: float = 0.25

    @classmethod
    def cpu_jit(cls, cores: int = 4) -> "GpuProfile":
        """The same roofline shape fitted to a multicore CPU running the
        fused Numba kernels: DDR-class bandwidth, per-core FMA throughput,
        and cheap "atomics" (the lock-free schedule never issues any, so
        the term only prices privatized reductions).  Used to predict the
        compiled CPU tier so its measured times can falsify the model
        (see :func:`measured_vs_predicted`).
        """
        return cls(bandwidth=12.0e9 * cores, flops=8.0e9 * cores,
                   atomic_throughput=50.0e6 * cores,
                   coalesced_fraction=1.0, scattered_fraction=0.5)

    def __post_init__(self):
        for name in ("bandwidth", "flops", "atomic_throughput"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0 < self.scattered_fraction <= self.coalesced_fraction <= 1.0:
            raise ValueError(
                "need 0 < scattered_fraction <= coalesced_fraction <= 1")


@dataclass
class GpuPrediction:
    seconds: float
    compute_seconds: float
    memory_seconds: float
    atomic_seconds: float

    @property
    def bound(self) -> str:
        parts = {
            "compute": self.compute_seconds,
            "memory": self.memory_seconds,
            "atomics": self.atomic_seconds,
        }
        return max(parts, key=parts.get)


def predict_gpu_mttkrp(tensor: SparseTensorFormat, mode: int, rank: int,
                       gpu: GpuProfile) -> GpuPrediction:
    """Predicted GPU seconds for one MTTKRP launch.

    Gathers are charged at the scattered-bandwidth fraction for COO/CSF
    (row accesses are effectively random) and at the coalesced fraction for
    HiCOO (all accesses inside a block hit a <=256-wide row window, which
    coalesces).  COO's scatter updates are atomic; HiCOO's scheduled writes
    and CSF's subtree-private rows are not.
    """
    work = mttkrp_work(tensor, mode, rank, parallel=True)
    gather = work.detail["gather_bytes"]
    other = work.bytes_moved - gather
    if isinstance(tensor, HicooTensor):
        gather_bw = gpu.bandwidth * gpu.coalesced_fraction
    else:
        gather_bw = gpu.bandwidth * gpu.scattered_fraction
    memory = other / gpu.bandwidth + gather / gather_bw
    compute = work.flops / gpu.flops
    atomics = work.atomic_updates / gpu.atomic_throughput
    return GpuPrediction(
        seconds=max(compute, memory) + atomics,
        compute_seconds=compute,
        memory_seconds=memory,
        atomic_seconds=atomics,
    )


def measured_vs_predicted(tensor: SparseTensorFormat, rank: int,
                          gpu: GpuProfile, measured_seconds: dict) -> list:
    """Join measured per-mode kernel times against the model's predictions.

    ``measured_seconds`` maps mode → steady-state seconds (compile/upload
    excluded; those are tracked by the ``compiled.*`` metrics).  Returns
    one row per mode with the prediction breakdown and the
    measured/predicted ratio — the number that makes the analytic model
    falsifiable: a ratio far from 1 on a tier the model claims to cover
    means the profile's rates (not the measurement) need revisiting.
    """
    rows = []
    for mode, secs in sorted(measured_seconds.items()):
        pred = predict_gpu_mttkrp(tensor, mode, rank, gpu)
        rows.append({
            "mode": mode,
            "measured_s": float(secs),
            "predicted_s": pred.seconds,
            "ratio": float(secs) / pred.seconds if pred.seconds else
            float("inf"),
            "bound": pred.bound,
        })
    return rows


def gpu_speedup_over_coo(suite: dict, rank: int, gpu: GpuProfile) -> dict:
    """All-mode GPU speedups relative to COO for a format suite
    (as built by :func:`repro.analysis.model.build_format_suite`)."""
    totals = {}
    for name, tensor in suite.items():
        totals[name] = sum(
            predict_gpu_mttkrp(tensor, m, rank, gpu).seconds
            for m in range(tensor.nmodes)
        )
    base = totals["coo"]
    return {name: base / t if t else float("inf") for name, t in totals.items()}
