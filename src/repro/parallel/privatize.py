"""Output privatization for parallel reductions.

The first of the paper's two parallel-MTTKRP strategies: every thread
accumulates into a private copy of the output matrix and the copies are
summed afterwards.  Race-free regardless of which rows each thread touches,
at the cost of ``nthreads x output`` extra memory and a reduction pass —
which is why the strategy heuristic reserves it for small output matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PrivateBuffers"]


@dataclass
class PrivateBuffers:
    """Per-thread private copies of a (rows x rank) output matrix."""

    buffers: np.ndarray  # (nthreads, rows, rank)

    @classmethod
    def allocate(cls, nthreads: int, rows: int, rank: int) -> "PrivateBuffers":
        if nthreads < 1:
            raise ValueError(f"nthreads must be positive, got {nthreads}")
        return cls(buffers=np.zeros((nthreads, rows, rank)))

    @property
    def nthreads(self) -> int:
        return self.buffers.shape[0]

    def view(self, tid: int) -> np.ndarray:
        """The private output of thread ``tid`` (a writable view)."""
        return self.buffers[tid]

    def reduce(self) -> np.ndarray:
        """Sum the private copies into the final output."""
        return self.buffers.sum(axis=0)

    def reduction_flops(self) -> int:
        """Flops of the reduction pass (counted for the machine model)."""
        t, rows, rank = self.buffers.shape
        return (t - 1) * rows * rank

    def extra_bytes(self) -> int:
        """Memory overhead versus a single shared output."""
        t, rows, rank = self.buffers.shape
        return (t - 1) * rows * rank * self.buffers.itemsize
