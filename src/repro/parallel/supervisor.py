"""Fault tolerance for the shared-memory process backend.

PR 4 made ``backend="process"`` the fastest MTTKRP path, but a single
crashed or hung worker killed the whole CP-ALS run.  This module wraps a
:class:`~repro.parallel.procpool.ProcPool` region in a :class:`Supervisor`
that turns worker faults into bounded recovery work:

* **detection** — worker death is a pipe EOF (``poll_events`` reports
  ``"dead"``); a hung worker is a task that misses its *deadline* (no
  reply within ``task_deadline`` seconds of submission) on a worker that
  is still breathing — both ride the existing pipe protocol, no side
  channel;
* **respawn** — a dead, hung, or protocol-desynced worker slot is replaced
  by a fresh process (:meth:`ProcPool.respawn`); the replacement re-attaches
  the shared-memory segments lazily by name, so recovery never re-ships the
  tensor;
* **retry** — every task lost to a fault (and every task that *raised*) is
  resubmitted with capped exponential backoff and a ``reset`` flag telling
  the worker to zero what the task owns before recomputing.  This is safe
  by construction: HiCOO's lock-free superblock schedule gives each task a
  row-disjoint slice of the output (privatized tasks own a whole slab), so
  a retried task is idempotent and the recovered output stays bit-identical
  to a fault-free ``sim``-backend run;
* **degradation** — when the respawn or retry budget is exhausted under
  ``policy="degrade"``, the region raises :class:`DegradedExecution`, and
  the caller (``mttkrp_parallel`` / ``run_tasks``) re-runs on a fallback
  backend (``thread`` then ``sim``), logging and metering the event.

Every recovery event is counted in :mod:`repro.obs.metrics`
(``supervisor.*``) and emitted as trace instants/spans, so degradation is
observable in the Chrome trace export.  The deterministic fault-injection
hooks this layer is tested against live in :mod:`repro.testing`
(``ChaosPlan``); see ``docs/fault_tolerance.md`` for the full policy and
guarantee write-up.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import metrics, trace
from ..util.log import get_logger
from .procpool import DEFAULT_TIMEOUT, ProcPool, _raise_remote

__all__ = [
    "FAULT_POLICIES",
    "FaultConfig",
    "FaultToleranceExhausted",
    "DegradedExecution",
    "Supervisor",
    "add_retry_listener",
    "remove_retry_listener",
]

#: the selectable fault policies, least to most forgiving
FAULT_POLICIES = ("fail-fast", "retry", "degrade")

#: fault kinds that poison the worker slot and force a respawn ("error"
#: means the task raised — the worker itself is healthy and keeps its slot)
_RESPAWN_KINDS = ("died", "hung", "corrupt")


@dataclass(frozen=True)
class FaultConfig:
    """Resolved fault-tolerance knobs of one supervised region.

    ``policy``:

    * ``"fail-fast"`` — no supervision: first fault tears the region down
      and propagates (with the original worker traceback chained);
    * ``"retry"`` — respawn + retry within the budgets below; exhausting
      them raises :class:`FaultToleranceExhausted`;
    * ``"degrade"`` — like retry, but exhausted budgets raise
      :class:`DegradedExecution` so the caller can finish the work on
      ``fallback_backends`` instead of failing.
    """

    policy: str = "fail-fast"
    #: retries per task (beyond its first attempt)
    max_task_retries: int = 2
    #: worker respawns per supervised region
    respawn_budget: int = 2
    #: exponential backoff before a retry: min(cap, base * 2**(attempt-1))
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: seconds a task may stay unanswered before its worker counts as hung
    #: (None -> the region's collect timeout, ultimately DEFAULT_TIMEOUT)
    task_deadline: Optional[float] = None
    #: tried in order when a degrade-policy region gives up
    fallback_backends: Tuple[str, ...] = ("thread", "sim")

    def __post_init__(self) -> None:
        if self.policy not in FAULT_POLICIES:
            raise ValueError(
                f"unknown fault policy {self.policy!r}; expected one of "
                f"{FAULT_POLICIES}")

    @staticmethod
    def resolve(policy) -> "FaultConfig":
        """Normalize a policy name / None / FaultConfig to a FaultConfig."""
        if policy is None:
            return FaultConfig()
        if isinstance(policy, FaultConfig):
            return policy
        return FaultConfig(policy=policy)

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** max(0, attempt - 1)))


# -- retry listeners ---------------------------------------------------
# Callbacks fired on every supervised task retry, in the thread running the
# supervised region.  The serve daemon registers one to attribute retries
# to the job that owns the region (its ``serve.retries`` counter must stay
# conserved with ``supervisor.task_retries`` under chaos).
_LISTENER_LOCK = threading.Lock()
_RETRY_LISTENERS: List[Callable[[int, int, int], None]] = []


def add_retry_listener(cb: Callable[[int, int, int], None]) -> None:
    """Register ``cb(task_id, worker_id, attempt)`` to run on every
    supervised task retry (any region, the region's own thread)."""
    with _LISTENER_LOCK:
        _RETRY_LISTENERS.append(cb)


def remove_retry_listener(cb: Callable[[int, int, int], None]) -> None:
    """Unregister a listener added by :func:`add_retry_listener`."""
    with _LISTENER_LOCK:
        try:
            _RETRY_LISTENERS.remove(cb)
        except ValueError:
            pass


def _notify_retry(task_id: int, worker_id: int, attempt: int) -> None:
    with _LISTENER_LOCK:
        listeners = list(_RETRY_LISTENERS)
    for cb in listeners:
        try:
            cb(task_id, worker_id, attempt)
        except Exception:  # listeners must never break recovery
            pass


class FaultToleranceExhausted(RuntimeError):
    """A ``retry``-policy region ran out of respawns or task retries."""


class DegradedExecution(RuntimeError):
    """Internal signal of a ``degrade``-policy region that gave up on the
    process backend; the caller finishes on ``config.fallback_backends``.
    The last underlying worker fault rides along as ``__cause__``."""

    def __init__(self, reason: str, config: FaultConfig) -> None:
        super().__init__(reason)
        self.config = config


@dataclass
class _TaskState:
    """Parent-side bookkeeping of one supervised task."""

    task_id: int
    worker: int
    make_msg: Callable[[bool], tuple]
    retries: int = 0
    submitted_at: float = field(default_factory=time.monotonic)


class Supervisor:
    """Run one pool region to completion under a :class:`FaultConfig`.

    One supervisor instance covers one parallel region (e.g. one MTTKRP
    mode): budgets are per region, so a long CP-ALS run tolerates a fault
    per iteration, not a fixed number over its lifetime.  Tasks stay
    pinned to their worker slot — a respawn replaces the slot in place, so
    the privatized-slab ownership the MTTKRP path relies on survives
    recovery.
    """

    def __init__(self, pool: ProcPool, config: FaultConfig,
                 deadline: Optional[float] = None,
                 submit: Optional[Callable[[int, tuple], None]] = None) -> None:
        self.pool = pool
        self.config = config
        self.deadline = (config.task_deadline if config.task_deadline
                         is not None else (deadline if deadline is not None
                                           else DEFAULT_TIMEOUT))
        self._submit_fn = submit or pool.submit
        self.respawns_used = 0
        self.log = get_logger("repro.supervisor")

    # ------------------------------------------------------------------
    def run(self, tasks: Dict[int, Tuple[int, Callable[[bool], tuple]]]
            ) -> Dict[int, tuple]:
        """Execute ``{task_id: (worker_id, make_msg)}``; returns
        ``{task_id: (elapsed, value, nnz, events, mstats)}``.

        ``make_msg(reset)`` builds the submission message; ``reset=True``
        marks a retry, telling the worker to zero the task's owned output
        before recomputing (idempotent re-execution).
        """
        states: Dict[int, _TaskState] = {}
        by_worker: Dict[int, list] = {}
        for task_id, (wid, make_msg) in tasks.items():
            st = _TaskState(task_id=task_id, worker=wid, make_msg=make_msg)
            states[task_id] = st
            by_worker.setdefault(wid, []).append(task_id)
            self._submit(st, reset=False)

        results: Dict[int, tuple] = {}
        recovering: set = set()
        while states:
            now = time.monotonic()
            next_due = min(st.submitted_at + self.deadline
                           for st in states.values())
            events = self.pool.poll_events(
                [st.worker for st in states.values()],
                timeout=max(0.0, next_due - now))
            if not events:
                self._handle_overdue(states, by_worker, recovering)
                continue
            for wid, kind, payload in events:
                if kind == "dead":
                    self._fault_worker(wid, "died", states, by_worker,
                                       recovering)
                    continue
                parsed = self._parse(payload)
                if parsed is None:
                    self._fault_worker(wid, "corrupt", states, by_worker,
                                       recovering)
                    continue
                status, task_id, rest = parsed
                st = states.get(task_id)
                if st is None:  # reply for an already-faulted task
                    continue
                if status == "ok":
                    del states[task_id]
                    by_worker[wid].remove(task_id)
                    results[task_id] = rest
                    if task_id in recovering:
                        recovering.discard(task_id)
                        metrics.inc("supervisor.recoveries")
                        trace.instant("supervisor.recovered", task=task_id,
                                      worker=wid)
                else:  # in-task exception: worker healthy, task failed
                    exc, tb = rest
                    metrics.inc("supervisor.task_errors")
                    trace.instant("supervisor.fault", kind="error",
                                  task=task_id, worker=wid)
                    self._retry_or_give_up(st, recovering,
                                           reason=f"task {task_id} raised "
                                                  f"{type(exc).__name__}",
                                           exc=exc, tb=tb)
        return results

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _submit(self, st: _TaskState, reset: bool) -> None:
        st.submitted_at = time.monotonic()
        try:
            self._submit_fn(st.worker, st.make_msg(reset))
        except (BrokenPipeError, OSError):
            # the worker died between our last look and this send; the next
            # poll reports the pipe EOF and the fault path reclaims the task
            self.log.debug("submit to dead worker %d deferred to recovery",
                           st.worker)

    @staticmethod
    def _parse(payload):
        """Split a worker reply into (status, task_id, rest); None if the
        reply does not follow the pipe protocol (corrupt)."""
        if not isinstance(payload, tuple) or len(payload) < 2:
            return None
        status, task_id = payload[0], payload[1]
        if status == "ok" and len(payload) == 7:
            return status, task_id, tuple(payload[2:])
        if status == "err" and len(payload) == 4:
            return status, task_id, (payload[2], payload[3])
        return None

    def _handle_overdue(self, states, by_worker, recovering) -> None:
        """Poll timed out: every worker owing an overdue task is hung."""
        now = time.monotonic()
        hung = {st.worker for st in states.values()
                if now >= st.submitted_at + self.deadline}
        for wid in sorted(hung):
            self._fault_worker(wid, "hung", states, by_worker, recovering)

    def _fault_worker(self, wid, kind, states, by_worker, recovering) -> None:
        """A worker slot failed (died / hung / corrupt): respawn it and
        retry every task it still owed."""
        owed = [tid for tid in by_worker.get(wid, ()) if tid in states]
        metrics.inc(f"supervisor.workers_{kind}")
        self.log.warning("worker %d %s with %d task(s) outstanding",
                         wid, kind, len(owed))
        trace.instant("supervisor.fault", kind=kind, worker=wid,
                      tasks=list(owed))
        if self.respawns_used >= self.config.respawn_budget:
            self._give_up(
                f"worker {wid} {kind} and the respawn budget "
                f"({self.config.respawn_budget}) is exhausted")
        with trace.span("supervisor.respawn", worker=wid, cause=kind):
            self.pool.respawn(wid)
        self.respawns_used += 1
        metrics.inc("supervisor.respawns")
        for tid in owed:
            self._retry_or_give_up(states[tid], recovering,
                                   reason=f"worker {wid} {kind}")

    def _retry_or_give_up(self, st: _TaskState, recovering,
                          reason: str, exc=None, tb=None) -> None:
        if st.retries >= self.config.max_task_retries:
            self._give_up(
                f"{reason}; task {st.task_id} is out of retries "
                f"({self.config.max_task_retries})", exc=exc, tb=tb)
        st.retries += 1
        pause = self.config.backoff(st.retries)
        metrics.inc("supervisor.task_retries")
        _notify_retry(st.task_id, st.worker, st.retries)
        trace.instant("supervisor.retry", task=st.task_id, worker=st.worker,
                      attempt=st.retries, backoff_s=pause)
        self.log.warning("retrying task %d on worker %d (attempt %d, "
                         "backoff %.0f ms): %s", st.task_id, st.worker,
                         st.retries, pause * 1e3, reason)
        if pause > 0:
            time.sleep(pause)
        recovering.add(st.task_id)
        self._submit(st, reset=True)

    def _give_up(self, reason: str, exc=None, tb=None) -> None:
        """Budgets exhausted: tear the pool down (no stale replies can leak
        into a later region) and raise per policy."""
        self.pool._abandon()
        metrics.inc("supervisor.gave_up")
        trace.instant("supervisor.gave_up", reason=reason,
                      policy=self.config.policy)
        if self.config.policy == "degrade":
            err = DegradedExecution(reason, self.config)
            if exc is not None:
                raise err from exc
            raise err
        if exc is not None and tb is not None:
            try:
                _raise_remote(0, exc, tb)
            except BaseException as remote:
                raise FaultToleranceExhausted(reason) from remote
        raise FaultToleranceExhausted(reason)
