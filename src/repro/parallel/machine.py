"""Analytic multicore machine model (roofline style).

The paper's parallel results come from OpenMP kernels on Haswell/KNL; a pure
Python reproduction cannot time those directly, so parallel *shapes* are
reproduced by combining exactly-counted work (flops and bytes per format,
see :mod:`repro.analysis.traffic`) with this machine model:

``time = max(flops / (P * F_core), bytes / min(BW_socket, P * BW_core))
        + serialization``

* ``F_core``   — per-core flop rate,
* ``BW_core``  — bandwidth one core can draw (a few cores saturate a socket),
* ``BW_socket``— sustained socket bandwidth,
* serialization — COO's atomic scatter updates pay an extra per-update cost
  that does not parallelize; HiCOO's scheduled kernels pay none.

``Machine.detect()`` calibrates ``F_core`` and the bandwidths with small
NumPy measurements on the current host so predicted absolute times are
plausible; all *ratios* (who wins, crossovers) depend only on counted work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["Machine", "Prediction"]


@dataclass
class Prediction:
    """Predicted execution time for one kernel launch."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    serial_seconds: float

    @property
    def bound(self) -> str:
        """Which resource limits this kernel: 'compute' or 'memory'."""
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


@dataclass(frozen=True)
class Machine:
    """A multicore node described by a handful of rates."""

    cores: int = 16
    flops_per_core: float = 4.0e9  # sustained scalar-ish FMA rate per core
    core_bandwidth: float = 12.0e9  # bytes/s one core can stream
    socket_bandwidth: float = 60.0e9  # bytes/s the memory system sustains
    atomic_cost: float = 6.0e-9  # seconds of serialization per atomic update

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("a machine needs at least one core")
        for name in ("flops_per_core", "core_bandwidth", "socket_bandwidth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    def predict(self, flops: float, bytes_moved: float, nthreads: int = 1,
                atomic_updates: float = 0.0) -> Prediction:
        """Roofline time estimate for ``nthreads`` threads.

        ``atomic_updates`` is the number of scatter updates that contend; in
        the model each costs ``atomic_cost`` seconds of *non-parallelizable*
        time once more than one thread is running (a single thread pays
        nothing — there is no contention).
        """
        if nthreads < 1:
            raise ValueError(f"nthreads must be positive, got {nthreads}")
        nthreads = min(nthreads, self.cores)
        compute = flops / (nthreads * self.flops_per_core)
        bw = min(self.socket_bandwidth, nthreads * self.core_bandwidth)
        memory = bytes_moved / bw
        serial = atomic_updates * self.atomic_cost if nthreads > 1 else 0.0
        return Prediction(
            seconds=max(compute, memory) + serial,
            compute_seconds=compute,
            memory_seconds=memory,
            serial_seconds=serial,
        )

    def speedup(self, flops: float, bytes_moved: float, nthreads: int,
                atomic_updates: float = 0.0) -> float:
        """Predicted speedup of ``nthreads`` threads over one thread."""
        t1 = self.predict(flops, bytes_moved, 1).seconds
        tp = self.predict(flops, bytes_moved, nthreads, atomic_updates).seconds
        return t1 / tp if tp else float("inf")

    # ------------------------------------------------------------------
    @staticmethod
    @lru_cache(maxsize=1)
    def detect(cores: int | None = None) -> "Machine":
        """Calibrate a Machine from quick measurements on this host."""
        import os

        ncores = cores or os.cpu_count() or 4

        # flop rate: repeated fused multiply-add on a cache-resident array
        x = np.ones(1 << 16)
        y = np.ones(1 << 16)
        reps = 200
        t0 = time.perf_counter()
        for _ in range(reps):
            y += 1.000001 * x
        dt = max(time.perf_counter() - t0, 1e-9)
        flops = 2.0 * x.size * reps / dt

        # stream bandwidth: copy a memory-resident array
        big = np.ones(1 << 24)  # 128 MB
        t0 = time.perf_counter()
        for _ in range(4):
            big2 = big * 1.0000001
        dt = max(time.perf_counter() - t0, 1e-9)
        bw = 2.0 * big.nbytes * 4 / dt
        del big, big2

        return Machine(
            cores=ncores,
            flops_per_core=flops,
            core_bandwidth=bw * 0.6,  # one core rarely sustains full socket BW
            socket_bandwidth=bw * min(4, ncores) * 0.6,
        )
