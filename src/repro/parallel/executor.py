"""Task execution with per-thread accounting and selectable backends.

Parallel regions run through one entry point, :func:`run_tasks`, behind
three backends:

* ``"sim"`` — tasks run sequentially but each is timed individually, so the
  report's ``makespan`` is what a perfectly overlapping parallel execution
  would cost.  This is the documented substitution for the paper's OpenMP
  testbed (see DESIGN.md section 2): the GIL serializes the index-heavy
  parts of our kernels, so simulated time is the honest single-interpreter
  number.
* ``"thread"`` — a real ``ThreadPoolExecutor``.  NumPy releases the GIL
  inside large vector operations, so this can overlap the numeric parts.
* ``"process"`` — worker *processes* over shared memory (true multicore;
  see :mod:`repro.parallel.procpool`).  Tasks must be picklable zero-arg
  callables (module-level functions, ``functools.partial`` of them, …);
  the specialized MTTKRP path does not go through this generic entry but
  through :func:`repro.parallel.procpool.mttkrp_process`, which shares the
  tensor structure zero-copy instead of pickling it.

Exceptions raised inside a task always propagate to the caller with the
original traceback — never swallowed into a partial
:class:`ExecutionReport` — and the region fails fast: unstarted tasks are
cancelled once the first failure is observed.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..obs import metrics, trace

__all__ = ["TaskResult", "ExecutionReport", "run_tasks", "resolve_backend",
           "BACKENDS"]

#: the selectable execution backends.  The compiled tiers ("numba",
#: "cupy") run tasks in-process like "sim" — their parallelism lives
#: *inside* the jitted/device kernels (prange over row-disjoint tasks,
#: device-wide segmented reductions), not across Python callables — and
#: they degrade silently to the NumPy kernels when the dependency is
#: absent (see :mod:`repro.kernels.backends`).
BACKENDS = ("sim", "thread", "process", "numba", "cupy")


@dataclass
class TaskResult:
    """Outcome of one thread's task."""

    tid: int
    elapsed: float
    value: object = None


@dataclass
class ExecutionReport:
    """Per-thread timing of one parallel region."""

    results: List[TaskResult] = field(default_factory=list)
    real_threads: bool = False
    #: which backend executed the region ("sim", "thread", or "process")
    backend: str = "sim"

    @property
    def nthreads(self) -> int:
        return len(self.results)

    def makespan(self) -> float:
        """The simulated parallel time: the slowest thread's own time."""
        return max((r.elapsed for r in self.results), default=0.0)

    def total_work_time(self) -> float:
        """Sum of per-thread times — the sequential-equivalent cost."""
        return sum(r.elapsed for r in self.results)

    def load_imbalance(self) -> float:
        if not self.results:
            return 1.0
        mean = self.total_work_time() / self.nthreads
        return self.makespan() / mean if mean else 1.0

    def values(self) -> list:
        return [r.value for r in self.results]


def resolve_backend(backend: Optional[str], real_threads: bool = False) -> str:
    """Normalize the (backend, legacy real_threads flag) pair to a name."""
    if backend is None:
        return "thread" if real_threads else "sim"
    if backend in ("seq", "sequential"):
        return "sim"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def run_tasks(tasks: Sequence[Callable[[], object]],
              real_threads: bool = False,
              backend: Optional[str] = None,
              nworkers: Optional[int] = None,
              fault_policy=None) -> ExecutionReport:
    """Execute one callable per logical thread on the chosen backend.

    ``backend=None`` keeps the legacy semantics: ``"thread"`` when
    ``real_threads`` is set, ``"sim"`` otherwise.  ``nworkers`` caps the
    worker count of the process backend (default: one per task).

    A task that raises aborts the region: the exception propagates with its
    original traceback (for process workers, the remote traceback is chained
    as the ``__cause__``), pending tasks are cancelled, and no partial
    report is returned.  ``fault_policy`` (process backend only) relaxes
    this: ``"retry"`` respawns dead/hung workers and re-runs their tasks,
    ``"degrade"`` additionally falls back to inline execution when the
    recovery budget is exhausted — see
    :mod:`repro.parallel.supervisor` and ``docs/fault_tolerance.md``.
    """
    backend = resolve_backend(backend, real_threads)
    if backend == "process":
        from .procpool import run_generic_tasks

        return run_generic_tasks(tasks, nworkers=nworkers,
                                 fault_policy=fault_policy)
    if fault_policy is not None:
        # validate eagerly (typos should not pass silently), then ignore:
        # in-process backends cannot lose workers
        from .supervisor import FaultConfig

        FaultConfig.resolve(fault_policy)

    if backend in ("numba", "cupy"):
        from ..kernels.backends import resolve_kernel_backend

        # generic callables cannot be jitted from here; the region runs
        # in-process (kernel-level parallelism happens inside the tasks),
        # and an unavailable tier is recorded as the numpy fallback
        if resolve_kernel_backend(backend) == "numpy":
            backend = "sim"

    report = ExecutionReport(real_threads=(backend == "thread"),
                             backend=backend)

    def timed_call(pair):
        tid, task = pair
        with trace.span("executor.task", task=tid):
            t0 = time.perf_counter()
            value = task()
            elapsed = time.perf_counter() - t0
        return TaskResult(tid=tid, elapsed=elapsed, value=value)

    if backend == "thread" and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=len(tasks)) as pool:
            futures = [pool.submit(timed_call, pair)
                       for pair in enumerate(tasks)]
            try:
                report.results = [f.result() for f in futures]
            except BaseException:
                # fail fast: a task raised — cancel everything not yet
                # started, then re-raise the original exception (result()
                # preserves the in-task traceback)
                for f in futures:
                    f.cancel()
                raise
    else:
        report.results = [timed_call(pair) for pair in enumerate(tasks)]

    reg = metrics.get_registry()
    if reg.enabled and tasks:
        labels = {"backend": backend}
        reg.inc("executor.regions", labels=labels)
        reg.inc("executor.tasks", len(tasks), labels=labels)
        reg.set_gauge("executor.load_imbalance", report.load_imbalance(),
                      labels=labels)
        for r in report.results:
            reg.observe("executor.task_seconds", r.elapsed, labels=labels)
    return report
