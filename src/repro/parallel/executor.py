"""Task execution with per-thread accounting.

Python cannot reproduce OpenMP's parallel wall-clock behaviour (the GIL
serializes the index-manipulation parts of our kernels), so parallel runs
are executed through this shim, which

* runs every thread's task (optionally on a real thread pool — NumPy
  releases the GIL inside large vector operations, so this can still help),
* measures each task's *own* CPU time, and
* reports the makespan ``max_t(time_t)`` — the quantity a real parallel run
  would have taken, which the machine model combines with memory-bandwidth
  limits.

This is the documented substitution for the paper's OpenMP testbed; see
DESIGN.md section 2.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..obs import metrics, trace

__all__ = ["TaskResult", "ExecutionReport", "run_tasks"]


@dataclass
class TaskResult:
    """Outcome of one thread's task."""

    tid: int
    elapsed: float
    value: object = None


@dataclass
class ExecutionReport:
    """Per-thread timing of one parallel region."""

    results: List[TaskResult] = field(default_factory=list)
    real_threads: bool = False

    @property
    def nthreads(self) -> int:
        return len(self.results)

    def makespan(self) -> float:
        """The simulated parallel time: the slowest thread's own time."""
        return max((r.elapsed for r in self.results), default=0.0)

    def total_work_time(self) -> float:
        """Sum of per-thread times — the sequential-equivalent cost."""
        return sum(r.elapsed for r in self.results)

    def load_imbalance(self) -> float:
        if not self.results:
            return 1.0
        mean = self.total_work_time() / self.nthreads
        return self.makespan() / mean if mean else 1.0

    def values(self) -> list:
        return [r.value for r in self.results]


def run_tasks(tasks: Sequence[Callable[[], object]],
              real_threads: bool = False) -> ExecutionReport:
    """Execute one callable per logical thread.

    With ``real_threads=False`` (default) the tasks run sequentially but each
    is timed individually, so the report's ``makespan`` is what a perfectly
    overlapping parallel execution would cost.  With ``real_threads=True``
    the tasks run on a ``ThreadPoolExecutor``.
    """
    report = ExecutionReport(real_threads=real_threads)

    def timed_call(pair):
        tid, task = pair
        with trace.span("executor.task", task=tid):
            t0 = time.perf_counter()
            value = task()
            elapsed = time.perf_counter() - t0
        return TaskResult(tid=tid, elapsed=elapsed, value=value)

    if real_threads and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=len(tasks)) as pool:
            report.results = list(pool.map(timed_call, enumerate(tasks)))
    else:
        report.results = [timed_call(pair) for pair in enumerate(tasks)]

    reg = metrics.get_registry()
    if reg.enabled and tasks:
        reg.inc("executor.regions")
        reg.inc("executor.tasks", len(tasks))
        reg.set_gauge("executor.load_imbalance", report.load_imbalance())
        for r in report.results:
            reg.observe("executor.task_seconds", r.elapsed)
    return report
