"""Threading-based sampling profiler with flamegraph-ready output.

The deterministic tracer answers "how long did phase X take"; this module
answers "*where inside* phase X did the time go" without instrumenting
anything.  A daemon thread polls :func:`sys._current_frames` every
``interval`` seconds (py-spy style — no ``sys.setprofile`` hook, so the
profiled code runs at full speed between samples) and folds each observed
call stack into a collapsed-stack histogram::

    cli.bench;mttkrp_parallel;_parallel_hicoo;mttkrp_gather_chunk;scatter_add 184

which is exactly the format Brendan Gregg's ``flamegraph.pl`` and
speedscope's "collapsed" importer consume.  When the span tracer is
enabled, every sample is prefixed with the sampled thread's open-span
stack, so flamegraph frames nest under the trace's phase names and the
two views reconcile.

Overhead is bounded by construction: work per sample is O(stack depth)
dict updates on the *sampler* thread; the workload threads only pay GIL
handoffs.  The ``--profile`` CLI budget is <5% on a warm MTTKRP loop,
enforced by ``benchmarks/check_obs.py``.

Usage::

    from repro.obs.sampler import SamplingProfiler

    with SamplingProfiler(interval=0.005) as prof:
        run_workload()
    prof.save("profile.folded")          # feed to flamegraph.pl
    print(prof.top(10))
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple

from . import metrics, trace

__all__ = ["SamplingProfiler", "profile"]

#: frames from these modules are sampler/infrastructure noise, not workload
_SKIP_MODULES = ("repro.obs.sampler",)

#: cap walked stack depth (runaway recursion safety)
_MAX_DEPTH = 128


def _frame_label(frame) -> str:
    """``module.qualname`` for one frame (short, grep-able, stable)."""
    code = frame.f_code
    mod = frame.f_globals.get("__name__", "?")
    func = getattr(code, "co_qualname", None) or code.co_name
    return f"{mod}.{func}"


class SamplingProfiler:
    """Periodic stack sampler over :func:`sys._current_frames`.

    Parameters
    ----------
    interval : seconds between samples (default 5 ms -> ~200 Hz).
    scope : optional root frame prepended to every collapsed stack (the
        CLI passes the subcommand name).
    all_threads : sample every live thread; by default only the thread
        that called :meth:`start` (the workload thread) is sampled, so
        idle helper threads (metrics server, pool pipes) don't pollute
        the flamegraph.
    """

    def __init__(self, interval: float = 0.005, scope: Optional[str] = None,
                 all_threads: bool = False) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.scope = scope
        self.all_threads = all_threads
        self.samples: Dict[str, int] = {}
        self.nsamples = 0
        self._targets: set = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        if not self.all_threads:
            self._targets = {threading.get_ident()}
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        metrics.inc("sampler.runs")
        metrics.inc("sampler.samples", self.nsamples)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # sampling loop (runs on the daemon thread)
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        tracer = trace.get_tracer()
        while not self._stop.wait(self.interval):
            for ident, frame in sys._current_frames().items():
                if ident == own:
                    continue
                if self._targets and ident not in self._targets:
                    continue
                stack: List[str] = []
                f, skip = frame, False
                while f is not None and len(stack) < _MAX_DEPTH:
                    label = _frame_label(f)
                    if label.startswith(_SKIP_MODULES):
                        skip = True
                        break
                    stack.append(label)
                    f = f.f_back
                if skip or not stack:
                    continue
                stack.reverse()
                prefix: List[str] = []
                if self.scope:
                    prefix.append(self.scope)
                if tracer.enabled:
                    prefix.extend(tracer.open_spans(ident))
                key = ";".join(prefix + stack)
                self.samples[key] = self.samples.get(key, 0) + 1
                self.nsamples += 1

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame;... count``), most-sampled
        first — pipe to ``flamegraph.pl`` or load in speedscope."""
        return [f"{stack} {count}"
                for stack, count in sorted(self.samples.items(),
                                           key=lambda kv: (-kv[1], kv[0]))]

    def save(self, path) -> None:
        with open(path, "w") as fh:
            for line in self.collapsed():
                fh.write(line + "\n")

    def top(self, n: int = 10) -> List[Tuple[str, float]]:
        """``(leaf frame, fraction of samples)`` for the hottest leaves."""
        leaves: Dict[str, int] = {}
        for stack, count in self.samples.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        total = self.nsamples or 1
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(leaf, count / total) for leaf, count in ranked[:n]]


def profile(interval: float = 0.005,
            scope: Optional[str] = None) -> SamplingProfiler:
    """Started profiler as a context manager (sugar over the class)."""
    return SamplingProfiler(interval=interval, scope=scope).start()
