"""repro.obs — unified observability: span tracing and a metrics registry.

Two complementary views of a run, both process-wide singletons:

* :mod:`repro.obs.trace` — a thread-aware hierarchical span tracer.  Opt-in
  (``trace.enable()``), near-zero overhead when disabled, exports Chrome
  trace-event JSON (open in Perfetto / ``chrome://tracing``), a flat text
  report, or a :class:`~repro.util.timing.Stopwatch` aggregate.
* :mod:`repro.obs.metrics` — always-on counters/gauges/histograms at call
  granularity: cache hits and byte footprints (MortonContext, gather
  arrays), nonzeros processed, scatter-add backend usage, executor load
  imbalance.

Naming conventions (see ``docs/observability.md``): dotted lowercase,
``<subsystem>.<event>`` — e.g. spans ``convert.sort`` / ``mttkrp.parallel``
/ ``executor.task`` / ``cpals.iter``, metrics ``gather.cache_hits`` /
``convert.context_builds`` / ``executor.load_imbalance``.
"""

from . import metrics, trace

__all__ = ["metrics", "trace"]
