"""repro.obs — unified observability: tracing, metrics, export, profiling.

Complementary views of a run, all process-wide singletons / stdlib-only:

* :mod:`repro.obs.trace` — a thread-aware hierarchical span tracer.  Opt-in
  (``trace.enable()``), near-zero overhead when disabled, exports Chrome
  trace-event JSON (open in Perfetto / ``chrome://tracing``), a flat text
  report, or a :class:`~repro.util.timing.Stopwatch` aggregate.
* :mod:`repro.obs.metrics` — always-on counters/gauges/histograms at call
  granularity, with first-class **labels** (format / backend / mode /
  worker dimensions), quantile-capable histograms, and cross-process
  delta merge for the shared-memory worker pool.
* :mod:`repro.obs.export` — OpenMetrics text rendering plus a background
  ``/metrics`` + ``/healthz`` HTTP endpoint (the first brick of the
  ROADMAP's ``repro.serve`` daemon).
* :mod:`repro.obs.sampler` — a py-spy-style sampling profiler emitting
  flamegraph-ready collapsed stacks scoped to open trace spans.
* :mod:`repro.obs.ledger` — a persistent perf ledger
  (``benchmarks/results/history.jsonl``) with rolling-baseline regression
  detection.

Naming conventions (see ``docs/observability.md``): dotted lowercase,
``<subsystem>.<event>`` — e.g. spans ``convert.sort`` / ``mttkrp.parallel``
/ ``executor.task`` / ``cpals.iter``, metrics ``gather.cache_hits`` /
``convert.context_builds`` / ``executor.load_imbalance``; labels
``{"format": ..., "backend": ..., "mode": ..., "worker": "proc-N"}``.
"""

import importlib

from . import metrics, trace

__all__ = ["export", "ledger", "metrics", "sampler", "trace"]

#: loaded on first attribute access (PEP 562): keeps the hot import path
#: (every kernel module pulls in ``repro.obs.metrics``) free of http.server
#: etc., and lets ``python -m repro.obs.ledger`` run without runpy's
#: already-imported-submodule warning
_LAZY = ("export", "ledger", "sampler")


def __getattr__(name: str):
    if name in _LAZY:
        mod = importlib.import_module(f".{name}", __name__)
        globals()[name] = mod
        return mod
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
