"""Process-wide metrics registry: counters, gauges, histograms.

Complements the span tracer with *cumulative* quantities the paper's
analysis needs but spans cannot express: cache hit/miss counts and byte
footprints (MortonContext, gather arrays), nonzeros processed, scatter-add
backend usage, executor task counts and load imbalance.

Metrics are **always on** by default — every instrumented site fires at
call granularity (per construction, per cache lookup, per task), never per
nonzero, so the cost is a dict lookup and an add under a lock.  Call
:func:`disable` to turn every update into a no-op (used by the overhead
microbenchmarks).

All helpers create metrics on first use, so instrumented code never has to
register anything::

    from repro.obs import metrics

    metrics.inc("gather.cache_hits")
    metrics.set_gauge("gather.cache_bytes", nbytes)
    metrics.observe("executor.task_seconds", dt)
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "inc",
    "set_gauge",
    "observe",
    "value",
    "snapshot",
    "report",
    "reset",
]


class Counter:
    """Monotonic accumulator (``inc`` only)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class Gauge:
    """Last-write-wins value (``set`` only)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming count/total/min/max summary of observed samples."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {"count": self.count, "total": self.total, "mean": self.mean,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use; thread-safe updates."""

    def __init__(self) -> None:
        self.enabled = True
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # creation / lookup
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    # updates (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._get_or_create(name, Counter).value += n

    def set_gauge(self, name: str, val: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._get_or_create(name, Gauge).value = val

    def observe(self, name: str, sample: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._get_or_create(name, Histogram).observe(float(sample))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def value(self, name: str, default: float = 0):
        """Scalar view of a metric: counter/gauge value, histogram count."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def snapshot(self, prefix: Optional[str] = None) -> dict:
        """``{name: value}`` (histograms expand to their summary dict).

        ``prefix`` restricts the view to one subsystem, e.g.
        ``snapshot("supervisor.")`` returns only the fault-tolerance
        recovery accounting."""
        with self._lock:
            items = list(self._metrics.items())
        out = {}
        for name, metric in sorted(items):
            if prefix is not None and not name.startswith(prefix):
                continue
            out[name] = (metric.summary() if isinstance(metric, Histogram)
                         else metric.value)
        return out

    def report(self, prefix: Optional[str] = None) -> List[str]:
        """Human-readable lines, sorted by name."""
        lines = []
        for name, val in self.snapshot(prefix).items():
            if isinstance(val, dict):
                lines.append(
                    f"{name:<32s} n={val['count']} total={val['total']:.6g} "
                    f"mean={val['mean']:.6g} min={val['min']:.6g} "
                    f"max={val['max']:.6g}")
            elif isinstance(val, float):
                lines.append(f"{name:<32s} {val:.6g}")
            else:
                lines.append(f"{name:<32s} {val}")
        return lines

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# module-level singleton API (what instrumented code imports)
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL


def enable() -> None:
    _GLOBAL.enabled = True


def disable() -> None:
    _GLOBAL.enabled = False


def enabled() -> bool:
    return _GLOBAL.enabled


def inc(name: str, n: int = 1) -> None:
    _GLOBAL.inc(name, n)


def set_gauge(name: str, val: float) -> None:
    _GLOBAL.set_gauge(name, val)


def observe(name: str, sample: float) -> None:
    _GLOBAL.observe(name, sample)


def value(name: str, default: float = 0):
    return _GLOBAL.value(name, default)


def snapshot(prefix: Optional[str] = None) -> dict:
    return _GLOBAL.snapshot(prefix)


def report(prefix: Optional[str] = None) -> List[str]:
    return _GLOBAL.report(prefix)


def reset() -> None:
    _GLOBAL.reset()
