"""Process-wide metrics registry: labeled counters, gauges, histograms.

Complements the span tracer with *cumulative* quantities the paper's
analysis needs but spans cannot express: cache hit/miss counts and byte
footprints (MortonContext, gather arrays), nonzeros processed, scatter-add
backend usage, executor task counts and load imbalance.

Every metric name owns a **family** of series keyed by a label set, so one
counter can be sliced along the format x backend x mode space the ALTO and
compiled-tier work opened up::

    from repro.obs import metrics

    metrics.inc("mttkrp.calls", labels={"format": "alto", "mode": 2})
    metrics.observe("executor.task_seconds", dt, labels={"backend": "thread"})

``labels=None`` (the common case) addresses the family's single unlabeled
series, exactly like the pre-label registry.  Reads stay backward
compatible: :func:`value` with no labels aggregates across every series of
the family (counters sum, gauges report the last write, histograms merge),
and :func:`snapshot` emits the bare family name for the aggregate plus one
``name{k="v",...}`` entry per labeled series.

Histograms keep a deterministic reservoir sample alongside the streaming
count/total/min/max, so :meth:`Histogram.summary` reports p50/p95/p99.

Metrics are **always on** by default — every instrumented site fires at
call granularity (per construction, per cache lookup, per task), never per
nonzero, so the cost is a dict lookup and an add under a lock.  Call
:func:`disable` to turn every update into a no-op (used by the overhead
microbenchmarks).

Worker processes ship their registry across the result pipe as compact
deltas (:meth:`MetricsRegistry.collect_deltas`) which the parent merges
under an extra ``worker="proc-N"`` label
(:meth:`MetricsRegistry.merge_deltas`); see ``repro.parallel.procpool``.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "format_series",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "inc",
    "set_gauge",
    "add_gauge",
    "observe",
    "value",
    "snapshot",
    "report",
    "reset",
]

#: canonical label identity: sorted ((key, str(value)), ...) tuples
LabelKey = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Optional[dict]) -> LabelKey:
    """Canonicalize a labels dict (values stringified, keys sorted)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_series(name: str, labelkey: LabelKey) -> str:
    """Render a series identity as ``name{k="v",...}`` (bare name if
    unlabeled) — the key format :func:`snapshot` uses for labeled series."""
    if not labelkey:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labelkey)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic accumulator (``inc`` only)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class Gauge:
    """Last-write-wins value (``set`` only)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming count/total/min/max plus a deterministic reservoir sample.

    The reservoir (algorithm R with a fixed-seed PRNG, so runs are
    reproducible) supports p50/p95/p99 in :meth:`summary` without storing
    every observation.  A small ``recent`` buffer keeps raw samples between
    worker-delta collections so merged parent-side series stay
    quantile-capable.
    """

    kind = "histogram"
    RESERVOIR_SIZE = 512
    RECENT_CAP = 64
    __slots__ = ("count", "total", "min", "max",
                 "_samples", "_seen", "_recent", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []
        self._seen = 0
        self._recent: List[float] = []
        self._rng = random.Random(0x51CC)

    def observe(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample
        self._put(sample)
        if len(self._recent) < self.RECENT_CAP:
            self._recent.append(sample)

    def _put(self, sample: float) -> None:
        """Feed one sample into the reservoir (algorithm R)."""
        self._seen += 1
        if len(self._samples) < self.RESERVOIR_SIZE:
            self._samples.append(sample)
        else:
            j = self._rng.randrange(self._seen)
            if j < self.RESERVOIR_SIZE:
                self._samples[j] = sample

    def merge(self, count: int, total: float, mn: float, mx: float,
              samples=()) -> None:
        """Fold a remote histogram delta (worker-shipped) into this one."""
        self.count += count
        self.total += total
        if count:
            if mn < self.min:
                self.min = mn
            if mx > self.max:
                self.max = mx
        for s in samples:
            self._put(s)

    def drain_recent(self) -> List[float]:
        """Raw samples observed since the last drain (capped), for
        shipping with a worker delta."""
        out, self._recent = self._recent, []
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Reservoir quantile with linear interpolation (0 when empty)."""
        return _quantile(sorted(self._samples), q)

    def summary(self) -> dict:
        ordered = sorted(self._samples)
        return {"count": self.count, "total": self.total, "mean": self.mean,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "p50": _quantile(ordered, 0.50),
                "p95": _quantile(ordered, 0.95),
                "p99": _quantile(ordered, 0.99)}


def _quantile(ordered: List[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


Metric = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """Every series (one per label set) sharing a metric name and kind."""

    __slots__ = ("name", "cls", "series", "last_gauge")

    def __init__(self, name: str, cls) -> None:
        self.name = name
        self.cls = cls
        self.series: Dict[LabelKey, Metric] = {}
        #: most recently written gauge value (the family-level aggregate)
        self.last_gauge = 0.0

    @property
    def kind(self) -> str:
        return self.cls.kind

    def labeled_only(self) -> bool:
        return bool(self.series) and () not in self.series

    def aggregate(self):
        """Family-level scalar/summary across every series: counters sum,
        gauges report the last write, histograms merge (reservoirs pooled
        so quantiles survive aggregation)."""
        if self.cls is Counter:
            return sum(m.value for m in self.series.values())
        if self.cls is Gauge:
            return self.last_gauge
        merged = Histogram()
        for m in self.series.values():
            merged.merge(m.count, m.total, m.min, m.max, m._samples)
        return merged.summary()


class MetricsRegistry:
    """Named metric families, created on first use; thread-safe updates."""

    def __init__(self) -> None:
        self.enabled = True
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # creation / lookup
    # ------------------------------------------------------------------
    def _series(self, name: str, cls, labels: Optional[dict]) -> Metric:
        """Get-or-create one series (caller holds the lock)."""
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(name, cls)
        elif family.cls is not cls:
            raise TypeError(
                f"metric {name!r} is a {family.kind}, not a {cls.kind}")
        key = _labelkey(labels)
        metric = family.series.get(key)
        if metric is None:
            metric = family.series[key] = cls()
        return metric

    def counter(self, name: str, labels: Optional[dict] = None) -> Counter:
        with self._lock:
            return self._series(name, Counter, labels)

    def gauge(self, name: str, labels: Optional[dict] = None) -> Gauge:
        with self._lock:
            return self._series(name, Gauge, labels)

    def histogram(self, name: str,
                  labels: Optional[dict] = None) -> Histogram:
        with self._lock:
            return self._series(name, Histogram, labels)

    # ------------------------------------------------------------------
    # updates (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1,
            labels: Optional[dict] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._series(name, Counter, labels).value += n

    def set_gauge(self, name: str, val: float,
                  labels: Optional[dict] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._series(name, Gauge, labels).value = val
            self._families[name].last_gauge = val

    def add_gauge(self, name: str, delta: float,
                  labels: Optional[dict] = None) -> float:
        """Atomically add ``delta`` to a gauge and return the new value.

        Level-style gauges (queue depth, active connections) are maintained
        by concurrent increments and decrements; read-modify-write through
        :meth:`value`/:meth:`set_gauge` would race, this doesn't.
        """
        if not self.enabled:
            return 0.0
        with self._lock:
            gauge = self._series(name, Gauge, labels)
            gauge.value += delta
            self._families[name].last_gauge = gauge.value
            return gauge.value

    def observe(self, name: str, sample: float,
                labels: Optional[dict] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._series(name, Histogram, labels).observe(float(sample))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def value(self, name: str, default: float = 0,
              labels: Optional[dict] = None):
        """Scalar view of a metric: counter/gauge value, histogram count.

        Without ``labels`` the whole family aggregates (counters sum over
        every labeled series — including merged ``worker="proc-N"`` ones —
        gauges report the last write, histograms their pooled count); with
        ``labels`` only that exact series is read.
        """
        with self._lock:
            family = self._families.get(name)
            if family is None or not family.series:
                return default
            if labels is not None:
                metric = family.series.get(_labelkey(labels))
                if metric is None:
                    return default
                if isinstance(metric, Histogram):
                    return metric.count
                return metric.value
            if family.cls is Histogram:
                return sum(m.count for m in family.series.values())
            if family.cls is Gauge:
                return family.last_gauge
            return sum(m.value for m in family.series.values())

    def series_labels(self, name: str) -> List[dict]:
        """The label sets carried by ``name``'s series (``{}`` for the
        unlabeled one) — lets tests enumerate the dimension space."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            return [dict(key) for key in family.series]

    def snapshot(self, prefix: Optional[str] = None) -> dict:
        """``{series: value}`` (histograms expand to their summary dict).

        Unlabeled-only families appear exactly as before: one bare-name
        entry.  Families with labeled series emit the bare name for the
        family aggregate *plus* one ``name{k="v",...}`` entry per labeled
        series, so both old bare-name consumers and new per-dimension
        consumers read the same snapshot.  ``prefix`` restricts the view to
        one subsystem, e.g. ``snapshot("supervisor.")`` returns only the
        fault-tolerance recovery accounting.
        """
        with self._lock:
            families = [
                (name, fam.cls, fam.aggregate(),
                 [(key, m.summary() if isinstance(m, Histogram) else m.value)
                  for key, m in fam.series.items() if key])
                for name, fam in self._families.items()
                if fam.series and (prefix is None or name.startswith(prefix))
            ]
        out = {}
        for name, _cls, aggregate, labeled in sorted(families):
            out[name] = aggregate
            for key, val in sorted(labeled):
                out[format_series(name, key)] = val
        return out

    def report(self, prefix: Optional[str] = None) -> List[str]:
        """Human-readable lines, sorted by series name."""
        lines = []
        for name, val in self.snapshot(prefix).items():
            if isinstance(val, dict):
                lines.append(
                    f"{name:<40s} n={val['count']} total={val['total']:.6g} "
                    f"mean={val['mean']:.6g} min={val['min']:.6g} "
                    f"max={val['max']:.6g} p50={val['p50']:.6g} "
                    f"p95={val['p95']:.6g} p99={val['p99']:.6g}")
            elif isinstance(val, float):
                lines.append(f"{name:<40s} {val:.6g}")
            else:
                lines.append(f"{name:<40s} {val}")
        return lines

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # cross-process shipping (worker -> parent over the result pipe)
    # ------------------------------------------------------------------
    def collect_deltas(self, state: dict) -> list:
        """Changes since the last collection against ``state`` (a plain
        dict the caller owns, keyed by (name, labelkey)).

        Returns compact picklable tuples
        ``(name, labelkey, kind_char, payload)`` — counters ship the
        increment, gauges the new value, histograms
        ``(dcount, dtotal, min, max, recent_samples)``.  Collecting marks
        the shipped state, so a successful send is exactly-once: a worker
        killed *before* the send never marks, and the retry re-ships the
        recomputed delta on a fresh worker.
        """
        out = []
        with self._lock:
            for name, family in self._families.items():
                for key, m in family.series.items():
                    sk = (name, key)
                    if family.cls is Counter:
                        delta = m.value - state.get(sk, 0)
                        if delta:
                            out.append((name, key, "c", delta))
                            state[sk] = m.value
                    elif family.cls is Gauge:
                        if state.get(sk) != m.value:
                            out.append((name, key, "g", m.value))
                            state[sk] = m.value
                    else:
                        prev_count, prev_total = state.get(sk, (0, 0.0))
                        if m.count != prev_count:
                            out.append((name, key, "h",
                                        (m.count - prev_count,
                                         m.total - prev_total,
                                         m.min, m.max, m.drain_recent())))
                            state[sk] = (m.count, m.total)
        return out

    def merge_deltas(self, deltas: list,
                     extra_labels: Optional[dict] = None) -> None:
        """Fold worker-shipped deltas in, adding ``extra_labels`` (the
        parent passes ``{"worker": "proc-N"}``) to every series identity."""
        if not self.enabled or not deltas:
            return
        extra = _labelkey(extra_labels)
        with self._lock:
            for name, key, kind, payload in deltas:
                labels = dict(key)
                labels.update(extra)
                if kind == "c":
                    self._series(name, Counter, labels).value += payload
                elif kind == "g":
                    self._series(name, Gauge, labels).value = payload
                    self._families[name].last_gauge = payload
                elif kind == "h":
                    dcount, dtotal, mn, mx, samples = payload
                    self._series(name, Histogram, labels).merge(
                        dcount, dtotal, mn, mx, samples)

    # ------------------------------------------------------------------
    # exporter view
    # ------------------------------------------------------------------
    def export_view(self) -> list:
        """Consistent read for :mod:`repro.obs.export`:
        ``[(name, kind, [(labelkey, payload), ...]), ...]`` where payload
        is a float for counters/gauges and a summary dict for histograms.
        Taken under the lock, so a scrape during concurrent mutation sees
        a coherent point-in-time view."""
        with self._lock:
            out = []
            for name in sorted(self._families):
                family = self._families[name]
                if not family.series:
                    continue
                series = [
                    (key,
                     m.summary() if isinstance(m, Histogram) else m.value)
                    for key, m in sorted(family.series.items())
                ]
                out.append((name, family.kind, series))
            return out


# ----------------------------------------------------------------------
# module-level singleton API (what instrumented code imports)
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL


def enable() -> None:
    _GLOBAL.enabled = True


def disable() -> None:
    _GLOBAL.enabled = False


def enabled() -> bool:
    return _GLOBAL.enabled


def inc(name: str, n: int = 1, labels: Optional[dict] = None) -> None:
    _GLOBAL.inc(name, n, labels=labels)


def set_gauge(name: str, val: float, labels: Optional[dict] = None) -> None:
    _GLOBAL.set_gauge(name, val, labels=labels)


def add_gauge(name: str, delta: float,
              labels: Optional[dict] = None) -> float:
    return _GLOBAL.add_gauge(name, delta, labels=labels)


def observe(name: str, sample: float,
            labels: Optional[dict] = None) -> None:
    _GLOBAL.observe(name, sample, labels=labels)


def value(name: str, default: float = 0, labels: Optional[dict] = None):
    return _GLOBAL.value(name, default, labels=labels)


def snapshot(prefix: Optional[str] = None) -> dict:
    return _GLOBAL.snapshot(prefix)


def report(prefix: Optional[str] = None) -> List[str]:
    return _GLOBAL.report(prefix)


def reset() -> None:
    _GLOBAL.reset()
